#ifndef TSPN_CORE_ENCODERS_H_
#define TSPN_CORE_ENCODERS_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "geo/geometry.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "rs/image.h"

namespace tspn::core {

/// Me1 (Sec. IV-A): embeds every tile's remote-sensing image with three
/// stride-2 convolutions (the memory-lean replacement for conv+pool the
/// paper motivates), a projection to dm and row-wise L2 normalization.
/// Following the paper's "cluster of adaptable tile embeddings" (whose
/// gradient maps dominate training memory), each tile also carries a
/// learnable residual embedding added to the CNN output — the imagery
/// provides environmental context while the residual lets visually similar
/// tiles stay separable. The No-Imagery ablation keeps only the residual
/// table.
class TileEncoder : public nn::Module {
 public:
  /// `tile_images` are the cached rendered images for all tiles (quad-tree
  /// nodes or grid cells), indexed by tile id; ignored when use_imagery is
  /// false, in which case `num_tiles` sizes the fallback embedding table.
  TileEncoder(const TspnRaConfig& config, int64_t num_tiles, common::Rng& rng);

  /// Computes ET for all tiles: [num_tiles, dm], rows L2-normalized.
  /// `images` must be a [num_tiles, 3, R, R] tensor when imagery is on.
  nn::Tensor EncodeAll(const nn::Tensor& images) const;

  int64_t num_tiles() const { return num_tiles_; }

 private:
  const TspnRaConfig config_;
  int64_t num_tiles_ = 0;
  int64_t flat_dim_ = 0;
  // Imagery path.
  std::unique_ptr<nn::Tensor> conv1_w_, conv1_b_;
  std::unique_ptr<nn::Tensor> conv2_w_, conv2_b_;
  std::unique_ptr<nn::Tensor> conv3_w_, conv3_b_;
  std::unique_ptr<nn::Linear> project_;
  // Per-tile adaptable embeddings (sole path for the No-Imagery ablation).
  std::unique_ptr<nn::Embedding> id_embedding_;
};

/// Packs rendered tile images into the [N, 3, R, R] constant tensor consumed
/// by TileEncoder::EncodeAll.
nn::Tensor PackImages(const std::vector<rs::Image>& images);

/// Me2 (Sec. IV-B): EP(p) = alpha * embed(id) + (1 - alpha) * embed(cate).
class PoiEncoder : public nn::Module {
 public:
  PoiEncoder(const TspnRaConfig& config, int64_t num_pois, int64_t num_categories,
             common::Rng& rng);

  /// Embeds a list of POIs given parallel id and category index vectors.
  /// Returns [L, dm] (not normalized; normalization happens at scoring).
  nn::Tensor Encode(const std::vector<int64_t>& poi_ids,
                    const std::vector<int64_t>& categories) const;

 private:
  const TspnRaConfig config_;
  std::unique_ptr<nn::Embedding> id_embedding_;
  std::unique_ptr<nn::Embedding> category_embedding_;
};

/// The sinusoidal spatial encoding of Eq. 4 over normalized (x, y) in
/// [0,1]^2 scaled by `spatial_scale`. Returns [dm] per location; requires
/// dm % 4 == 0. Pure function of the location — no parameters.
nn::Tensor SpatialEncoding(double x, double y, int64_t dm, float scale);

/// Mt (Sec. IV-A): 48 learnable half-hour-slot embeddings added to sequence
/// elements.
class TemporalEncoder : public nn::Module {
 public:
  TemporalEncoder(int64_t dm, common::Rng& rng);

  /// Embedding row for a time slot in [0, 48).
  nn::Tensor SlotEmbedding(int64_t slot) const;

  /// [L, dm] rows for a slot sequence.
  nn::Tensor SlotEmbeddings(const std::vector<int64_t>& slots) const;

 private:
  std::unique_ptr<nn::Embedding> slots_;
};

}  // namespace tspn::core

#endif  // TSPN_CORE_ENCODERS_H_
