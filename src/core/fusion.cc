#include "core/fusion.h"

#include "common/check.h"
#include "nn/ops.h"

namespace tspn::core {

AttentionBlock::AttentionBlock(int64_t dm, common::Rng& rng) {
  self_attention_ = std::make_unique<nn::Attention>(dm, rng);
  RegisterChild(self_attention_.get());
  norm1_ = std::make_unique<nn::LayerNormLayer>(dm);
  RegisterChild(norm1_.get());
  cross_attention_ = std::make_unique<nn::Attention>(dm, rng);
  RegisterChild(cross_attention_.get());
  norm2_ = std::make_unique<nn::LayerNormLayer>(dm);
  RegisterChild(norm2_.get());
  feed_forward_ = std::make_unique<nn::Linear>(dm, dm, rng);
  RegisterChild(feed_forward_.get());
  norm3_ = std::make_unique<nn::LayerNormLayer>(dm);
  RegisterChild(norm3_.get());
}

nn::Tensor AttentionBlock::Forward(const nn::Tensor& sequence,
                                   const nn::Tensor& history, common::Rng& rng,
                                   float dropout) const {
  TSPN_CHECK_EQ(sequence.rank(), 2);
  TSPN_CHECK_EQ(history.rank(), 2);
  // 1. Masked sequential self-attention (inverted-triangle mask).
  nn::Tensor z_m = self_attention_->Forward(sequence, sequence, /*causal=*/true);
  z_m = nn::Dropout(z_m, dropout, rng, training());
  // 2. Add & normalize.
  nn::Tensor h1 = norm1_->Forward(nn::Add(sequence, z_m));
  // 3. Cross attention over historical knowledge.
  nn::Tensor z_h = cross_attention_->Forward(h1, history, /*causal=*/false);
  z_h = nn::Dropout(z_h, dropout, rng, training());
  nn::Tensor h2 = norm2_->Forward(nn::Add(h1, z_h));
  // 4. Feed forward (Z_f = ReLU(W_f Z_h + b_f)).
  nn::Tensor z_f = nn::Relu(feed_forward_->Forward(h2));
  return norm3_->Forward(nn::Add(h2, z_f));
}

FusionModule::FusionModule(const TspnRaConfig& config, common::Rng& rng)
    : config_(config) {
  for (int32_t i = 0; i < config_.num_fusion_layers; ++i) {
    blocks_.push_back(std::make_unique<AttentionBlock>(config_.dm, rng));
    RegisterChild(blocks_.back().get());
  }
}

nn::Tensor FusionModule::Forward(const nn::Tensor& sequence,
                                 const nn::Tensor& history,
                                 common::Rng& rng) const {
  nn::Tensor h = sequence;
  for (const auto& block : blocks_) {
    h = block->Forward(h, history, rng, config_.dropout);
  }
  return nn::Row(h, h.dim(0) - 1);
}

}  // namespace tspn::core
