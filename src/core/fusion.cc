#include "core/fusion.h"

#include "common/check.h"
#include "nn/ops.h"

namespace tspn::core {

AttentionBlock::AttentionBlock(int64_t dm, common::Rng& rng) {
  self_attention_ = std::make_unique<nn::Attention>(dm, rng);
  RegisterChild(self_attention_.get());
  norm1_ = std::make_unique<nn::LayerNormLayer>(dm);
  RegisterChild(norm1_.get());
  cross_attention_ = std::make_unique<nn::Attention>(dm, rng);
  RegisterChild(cross_attention_.get());
  norm2_ = std::make_unique<nn::LayerNormLayer>(dm);
  RegisterChild(norm2_.get());
  feed_forward_ = std::make_unique<nn::Linear>(dm, dm, rng);
  RegisterChild(feed_forward_.get());
  norm3_ = std::make_unique<nn::LayerNormLayer>(dm);
  RegisterChild(norm3_.get());
}

nn::Tensor AttentionBlock::Forward(const nn::Tensor& sequence,
                                   const nn::Tensor& history, common::Rng& rng,
                                   float dropout) const {
  TSPN_CHECK_EQ(sequence.rank(), 2);
  TSPN_CHECK_EQ(history.rank(), 2);
  // 1. Masked sequential self-attention (inverted-triangle mask).
  nn::Tensor z_m = self_attention_->Forward(sequence, sequence, /*causal=*/true);
  z_m = nn::Dropout(z_m, dropout, rng, training());
  // 2. Add & normalize.
  nn::Tensor h1 = norm1_->Forward(nn::Add(sequence, z_m));
  // 3. Cross attention over historical knowledge.
  nn::Tensor z_h = cross_attention_->Forward(h1, history, /*causal=*/false);
  z_h = nn::Dropout(z_h, dropout, rng, training());
  nn::Tensor h2 = norm2_->Forward(nn::Add(h1, z_h));
  // 4. Feed forward (Z_f = ReLU(W_f Z_h + b_f)).
  nn::Tensor z_f = nn::Relu(feed_forward_->Forward(h2));
  return norm3_->Forward(nn::Add(h2, z_f));
}

nn::Tensor AttentionBlock::ForwardPacked(
    const nn::Tensor& sequence, const std::vector<int64_t>& offsets,
    const nn::Tensor& history, const std::vector<int64_t>& hist_offsets) const {
  TSPN_CHECK(!training()) << "packed forward is inference-only (no dropout)";
  TSPN_CHECK_EQ(sequence.rank(), 2);
  TSPN_CHECK_EQ(history.rank(), 2);
  TSPN_CHECK_EQ(offsets.size(), hist_offsets.size());
  TSPN_CHECK_GE(offsets.size(), 2u);
  const size_t batch = offsets.size() - 1;
  // 1. Masked self-attention: project the whole pack with one GEMM per
  // projection, then score/softmax each segment against itself only.
  nn::Tensor q = self_attention_->ProjectQuery(sequence);
  nn::Tensor k = self_attention_->ProjectKey(sequence);
  nn::Tensor v = self_attention_->ProjectValue(sequence);
  std::vector<nn::Tensor> parts;
  parts.reserve(batch);
  for (size_t b = 0; b < batch; ++b) {
    const int64_t start = offsets[b];
    const int64_t len = offsets[b + 1] - start;
    parts.push_back(self_attention_->ForwardProjected(
        nn::SliceRows(q, start, len), nn::SliceRows(k, start, len),
        nn::SliceRows(v, start, len), /*causal=*/true));
  }
  nn::Tensor z_m = nn::ConcatRows(parts);
  // 2. Add & normalize (row-wise, safe over the pack).
  nn::Tensor h1 = norm1_->Forward(nn::Add(sequence, z_m));
  // 3. Cross attention over each segment's own historical knowledge.
  nn::Tensor cq = cross_attention_->ProjectQuery(h1);
  nn::Tensor ck = cross_attention_->ProjectKey(history);
  nn::Tensor cv = cross_attention_->ProjectValue(history);
  parts.clear();
  for (size_t b = 0; b < batch; ++b) {
    const int64_t start = offsets[b];
    const int64_t len = offsets[b + 1] - start;
    const int64_t h_start = hist_offsets[b];
    const int64_t h_len = hist_offsets[b + 1] - h_start;
    parts.push_back(cross_attention_->ForwardProjected(
        nn::SliceRows(cq, start, len), nn::SliceRows(ck, h_start, h_len),
        nn::SliceRows(cv, h_start, h_len), /*causal=*/false));
  }
  nn::Tensor z_h = nn::ConcatRows(parts);
  nn::Tensor h2 = norm2_->Forward(nn::Add(h1, z_h));
  // 4. Feed forward over the pack.
  nn::Tensor z_f = nn::Relu(feed_forward_->Forward(h2));
  return norm3_->Forward(nn::Add(h2, z_f));
}

FusionModule::FusionModule(const TspnRaConfig& config, common::Rng& rng)
    : config_(config) {
  for (int32_t i = 0; i < config_.num_fusion_layers; ++i) {
    blocks_.push_back(std::make_unique<AttentionBlock>(config_.dm, rng));
    RegisterChild(blocks_.back().get());
  }
}

nn::Tensor FusionModule::Forward(const nn::Tensor& sequence,
                                 const nn::Tensor& history,
                                 common::Rng& rng) const {
  nn::Tensor h = sequence;
  for (const auto& block : blocks_) {
    h = block->Forward(h, history, rng, config_.dropout);
  }
  return nn::Row(h, h.dim(0) - 1);
}

nn::Tensor FusionModule::ForwardPacked(
    const nn::Tensor& sequence, const std::vector<int64_t>& offsets,
    const nn::Tensor& history, const std::vector<int64_t>& hist_offsets) const {
  nn::Tensor h = sequence;
  for (const auto& block : blocks_) {
    h = block->ForwardPacked(h, offsets, history, hist_offsets);
  }
  std::vector<nn::Tensor> last_rows;
  last_rows.reserve(offsets.size() - 1);
  for (size_t b = 0; b + 1 < offsets.size(); ++b) {
    last_rows.push_back(nn::Row(h, offsets[b + 1] - 1));
  }
  return nn::StackRows(last_rows);
}

}  // namespace tspn::core
