#ifndef TSPN_CORE_CONFIG_H_
#define TSPN_CORE_CONFIG_H_

#include <cstdint>

namespace tspn::core {

/// Hyper-parameters and ablation switches of TSPN-RA. Defaults follow the
/// paper's Sec. VI-A choices scaled to CPU training (dm 512 -> 64 by
/// default; the Fig. 10 bench sweeps dm itself).
struct TspnRaConfig {
  // --- Architecture -----------------------------------------------------------
  int64_t dm = 64;                 ///< embedding dimension
  int32_t image_resolution = 32;   ///< tile imagery side (paper: 256)
  int32_t conv_channels[3] = {8, 16, 32};  ///< Me1's three strided conv layers
  int32_t num_fusion_layers = 2;   ///< N attention blocks in MP1 / MP2
  int32_t num_hgat_layers = 2;     ///< n in Sec. IV-C
  float alpha = 0.7f;              ///< id/category merge ratio (Eq. 5)
  float dropout = 0.1f;
  int32_t max_seq_len = 16;        ///< prefix truncation for the encoders
  int64_t max_history_checkins = 150;  ///< cap on QR-P input length
  /// Multiplier mapping normalized [0,1] coordinates onto the sinusoidal
  /// position axis (Eq. 4). 64 reproduces Fig. 8's smooth local falloff:
  /// ~1% of the region span stays at cosine similarity > 0.9 while distant
  /// points decorrelate.
  float spatial_scale = 64.0f;

  // --- Two-step prediction ------------------------------------------------------
  int32_t top_k_tiles = 10;        ///< K (overridden from the city profile)
  int64_t max_poi_candidates = 400;  ///< negative subsampling cap in training
  /// Uniform random negatives mixed into the POI loss in addition to the
  /// top-K-tile candidates. At paper scale the tile screen alone suffices;
  /// at CPU scale embeddings outside visited tiles would otherwise never
  /// receive gradient and stay randomly competitive at inference.
  int64_t num_random_negatives = 96;
  float arcface_scale = 10.0f;     ///< s in Eq. 8
  float arcface_margin = 0.2f;     ///< m in Eq. 8
  float beta = 1.0f;               ///< tile-loss weight in loss = beta*loss_t + loss_p

  // --- Ablation switches (Table IV rows) -------------------------------------
  bool use_quadtree = true;        ///< false: fixed grid partition
  int32_t grid_cells_per_side = 12;///< granularity for the grid ablation
  bool use_two_step = true;        ///< false: rank all POIs directly
  bool use_graph = true;           ///< QR-P graph + historical knowledge
  bool use_road_edges = true;
  bool use_contain_edges = true;
  bool use_imagery = true;         ///< false: learnable tile-id embeddings
  bool use_st_encoder = true;      ///< spatial + temporal encoders
  bool use_category = true;        ///< POI category in Me2

  /// Fraction of imagery pixels replaced by noise (Fig. 12b case study).
  double image_noise_fraction = 0.0;

  uint64_t seed = 42;
};

}  // namespace tspn::core

#endif  // TSPN_CORE_CONFIG_H_
