// Training loop of TSPN-RA (Sec. V-B "Model Learning"): Adam over the joint
// loss = beta * loss_tile + loss_poi with per-epoch learning-rate decay.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/tspn_ra_internal.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace tspn::core {

void TspnRa::Train(const eval::TrainOptions& options) {
  net_->SetTraining(true);
  std::vector<data::SampleRef> samples = dataset_->Samples(data::Split::kTrain);
  common::Rng rng(options.seed ^ config_.seed);
  nn::Adam optimizer(net_->Parameters(), {.lr = options.lr, .grad_clip = 50.0f});

  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(samples);
    int64_t budget = options.max_samples_per_epoch > 0
                         ? std::min<int64_t>(options.max_samples_per_epoch,
                                             static_cast<int64_t>(samples.size()))
                         : static_cast<int64_t>(samples.size());
    double epoch_loss = 0.0;
    int64_t steps = 0;
    common::Stopwatch epoch_watch;
    for (int64_t begin = 0; begin < budget; begin += options.batch_size) {
      int64_t end = std::min<int64_t>(begin + options.batch_size, budget);
      optimizer.ZeroGrad();
      // ET is computed once per step and shared by the whole batch; the
      // imagery CNN thus receives gradient from every sample in the batch.
      nn::Tensor et = ComputeTileEmbeddings();
      nn::Tensor loss = nn::Tensor::Scalar(0.0f);
      for (int64_t i = begin; i < end; ++i) {
        loss = nn::Add(loss, SampleLoss(samples[static_cast<size_t>(i)], et, rng));
      }
      loss = nn::MulScalar(loss, 1.0f / static_cast<float>(end - begin));
      loss.Backward();
      optimizer.Step();
      epoch_loss += loss.item();
      ++steps;
    }
    optimizer.DecayLr(options.lr_decay);
    if (options.verbose && steps > 0) {
      std::fprintf(stderr, "[TSPN-RA] epoch %d/%d loss=%.4f (%.1fs)\n", epoch + 1,
                   options.epochs, epoch_loss / static_cast<double>(steps),
                   epoch_watch.ElapsedSeconds());
    }
  }
  net_->SetTraining(false);
  cache_state_.store(0);  // inference caches must be rebuilt from new weights
}

int64_t TspnRa::TrainOnline(common::Span<const eval::OnlineSample> samples,
                            const eval::TrainOptions& options) {
  std::lock_guard<std::mutex> lock(online_mutex_);
  if (online_ == nullptr) {
    online_ = std::make_unique<OnlineState>(
        net_->Parameters(), nn::Adam::Options{.lr = options.lr, .grad_clip = 50.0f},
        options.seed ^ config_.seed ^ 0x0A11CE5ULL);
  }
  // Extract features up front so invalid samples (unknown POI ids from
  // cold-start arrivals) are skipped without burning a step.
  std::vector<Features> features;
  features.reserve(samples.size());
  for (const eval::OnlineSample& sample : samples) {
    Features f;
    if (FeaturesFromCheckins(common::Span<const data::Checkin>(
                                 sample.history.data(), sample.history.size()),
                             sample.target, &f)) {
      features.push_back(std::move(f));
    }
  }
  if (features.empty()) return 0;

  net_->SetTraining(true);
  const int64_t batch_size = std::max<int32_t>(1, options.batch_size);
  const int64_t total = static_cast<int64_t>(features.size());
  for (int64_t begin = 0; begin < total; begin += batch_size) {
    int64_t end = std::min<int64_t>(begin + batch_size, total);
    online_->optimizer.ZeroGrad();
    nn::Tensor et = ComputeTileEmbeddings();
    nn::Tensor loss = nn::Tensor::Scalar(0.0f);
    for (int64_t i = begin; i < end; ++i) {
      loss = nn::Add(loss, LossFromFeatures(features[static_cast<size_t>(i)],
                                            et, online_->rng));
    }
    loss = nn::MulScalar(loss, 1.0f / static_cast<float>(end - begin));
    loss.Backward();
    online_->optimizer.Step();
    ++online_->steps;
  }
  net_->SetTraining(false);
  cache_state_.store(0);  // inference caches must be rebuilt from new weights
  return total;
}

}  // namespace tspn::core
