#ifndef TSPN_CORE_FUSION_H_
#define TSPN_CORE_FUSION_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/gru.h"
#include "nn/layers.h"

namespace tspn::core {

/// One attention block AB_i of Sec. V-A: masked sequential self-attention,
/// add & layer-norm, cross-attention over historical knowledge, and a
/// position-wise feed-forward — each sublayer with a residual + norm for
/// training stability.
class AttentionBlock : public nn::Module {
 public:
  AttentionBlock(int64_t dm, common::Rng& rng);

  /// sequence: [L, dm]; history: [H, dm] (H >= 1). Returns [L, dm].
  nn::Tensor Forward(const nn::Tensor& sequence, const nn::Tensor& history,
                     common::Rng& rng, float dropout) const;

 private:
  std::unique_ptr<nn::Attention> self_attention_;
  std::unique_ptr<nn::LayerNormLayer> norm1_;
  std::unique_ptr<nn::Attention> cross_attention_;
  std::unique_ptr<nn::LayerNormLayer> norm2_;
  std::unique_ptr<nn::Linear> feed_forward_;
  std::unique_ptr<nn::LayerNormLayer> norm3_;
};

/// MP1 / MP2 (Sec. V-A): N stacked attention blocks fusing the current
/// prefix-sequence embedding with historical knowledge; the last position of
/// the final layer is the prediction vector h_out.
class FusionModule : public nn::Module {
 public:
  FusionModule(const TspnRaConfig& config, common::Rng& rng);

  /// Returns h_out = H_out[-1]: [dm].
  nn::Tensor Forward(const nn::Tensor& sequence, const nn::Tensor& history,
                     common::Rng& rng) const;

 private:
  const TspnRaConfig config_;
  std::vector<std::unique_ptr<AttentionBlock>> blocks_;
};

}  // namespace tspn::core

#endif  // TSPN_CORE_FUSION_H_
