#ifndef TSPN_CORE_FUSION_H_
#define TSPN_CORE_FUSION_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/gru.h"
#include "nn/layers.h"

namespace tspn::core {

/// One attention block AB_i of Sec. V-A: masked sequential self-attention,
/// add & layer-norm, cross-attention over historical knowledge, and a
/// position-wise feed-forward — each sublayer with a residual + norm for
/// training stability.
class AttentionBlock : public nn::Module {
 public:
  AttentionBlock(int64_t dm, common::Rng& rng);

  /// sequence: [L, dm]; history: [H, dm] (H >= 1). Returns [L, dm].
  nn::Tensor Forward(const nn::Tensor& sequence, const nn::Tensor& history,
                     common::Rng& rng, float dropout) const;

  /// Packed-batch inference forward. `sequence` holds B variable-length
  /// segments concatenated row-wise ([total, dm], boundaries in `offsets`,
  /// size B+1); `history` likewise ([total_h, dm], `hist_offsets`). The
  /// projections, norms and feed-forward run as single GEMMs over the whole
  /// pack; only the softmax(QK^T)V stage runs per segment (attention must
  /// not cross sequence boundaries). Every row of the result is bitwise
  /// identical to Forward() on the corresponding segment: each packed op is
  /// row-wise with a per-row accumulation order independent of the number
  /// of rows. Inference-only: requires !training() (no dropout). Returns
  /// [total, dm].
  nn::Tensor ForwardPacked(const nn::Tensor& sequence,
                           const std::vector<int64_t>& offsets,
                           const nn::Tensor& history,
                           const std::vector<int64_t>& hist_offsets) const;

 private:
  std::unique_ptr<nn::Attention> self_attention_;
  std::unique_ptr<nn::LayerNormLayer> norm1_;
  std::unique_ptr<nn::Attention> cross_attention_;
  std::unique_ptr<nn::LayerNormLayer> norm2_;
  std::unique_ptr<nn::Linear> feed_forward_;
  std::unique_ptr<nn::LayerNormLayer> norm3_;
};

/// MP1 / MP2 (Sec. V-A): N stacked attention blocks fusing the current
/// prefix-sequence embedding with historical knowledge; the last position of
/// the final layer is the prediction vector h_out.
class FusionModule : public nn::Module {
 public:
  FusionModule(const TspnRaConfig& config, common::Rng& rng);

  /// Returns h_out = H_out[-1]: [dm].
  nn::Tensor Forward(const nn::Tensor& sequence, const nn::Tensor& history,
                     common::Rng& rng) const;

  /// Packed-batch inference forward over B concatenated segments (see
  /// AttentionBlock::ForwardPacked for the packing contract). Returns
  /// [B, dm]: row b is the last position of segment b after the final
  /// block, bitwise identical to Forward() on that segment alone.
  nn::Tensor ForwardPacked(const nn::Tensor& sequence,
                           const std::vector<int64_t>& offsets,
                           const nn::Tensor& history,
                           const std::vector<int64_t>& hist_offsets) const;

 private:
  const TspnRaConfig config_;
  std::vector<std::unique_ptr<AttentionBlock>> blocks_;
};

}  // namespace tspn::core

#endif  // TSPN_CORE_FUSION_H_
