#include "core/encoders.h"

#include <cmath>

#include "common/check.h"
#include "data/poi.h"
#include "nn/ops.h"

namespace tspn::core {

TileEncoder::TileEncoder(const TspnRaConfig& config, int64_t num_tiles,
                         common::Rng& rng)
    : config_(config), num_tiles_(num_tiles) {
  id_embedding_ = std::make_unique<nn::Embedding>(num_tiles, config_.dm, rng);
  RegisterChild(id_embedding_.get());
  if (!config_.use_imagery) return;
  const int32_t r = config_.image_resolution;
  TSPN_CHECK_EQ(r % 8, 0) << "resolution must be divisible by 8 (three stride-2 convs)";
  const int32_t c1 = config_.conv_channels[0];
  const int32_t c2 = config_.conv_channels[1];
  const int32_t c3 = config_.conv_channels[2];
  auto make_param = [&](const nn::Shape& shape, float fan_in) {
    return std::make_unique<nn::Tensor>(RegisterParameter(nn::Tensor::RandomUniform(
        shape, std::sqrt(1.0f / fan_in), rng, /*requires_grad=*/true)));
  };
  conv1_w_ = make_param({c1, 3, 3, 3}, 3 * 9.0f);
  conv1_b_ = make_param({c1}, static_cast<float>(c1));
  conv2_w_ = make_param({c2, c1, 3, 3}, c1 * 9.0f);
  conv2_b_ = make_param({c2}, static_cast<float>(c2));
  conv3_w_ = make_param({c3, c2, 3, 3}, c2 * 9.0f);
  conv3_b_ = make_param({c3}, static_cast<float>(c3));
  flat_dim_ = static_cast<int64_t>(c3) * (r / 8) * (r / 8);
  // No bias: a projection bias is a shared free direction across all tiles
  // and lets the imagery path collapse every row onto it under Adam.
  project_ = std::make_unique<nn::Linear>(flat_dim_, config_.dm, rng,
                                          /*with_bias=*/false);
  RegisterChild(project_.get());
}

nn::Tensor TileEncoder::EncodeAll(const nn::Tensor& images) const {
  std::vector<int64_t> all(static_cast<size_t>(num_tiles_));
  for (int64_t i = 0; i < num_tiles_; ++i) all[static_cast<size_t>(i)] = i;
  nn::Tensor residual = nn::L2Normalize(id_embedding_->Forward(all));
  if (!config_.use_imagery) return residual;
  TSPN_CHECK(images.defined());
  TSPN_CHECK_EQ(images.dim(0), num_tiles_);
  nn::Tensor h = nn::Relu(nn::Conv2d(images, *conv1_w_, *conv1_b_, 2, 1));
  h = nn::Relu(nn::Conv2d(h, *conv2_w_, *conv2_b_, 2, 1));
  h = nn::Relu(nn::Conv2d(h, *conv3_w_, *conv3_b_, 2, 1));
  h = nn::Reshape(h, {num_tiles_, flat_dim_});
  // Both paths are normalized before the sum so neither can dominate and
  // collapse the joint embedding onto a shared direction.
  nn::Tensor imagery = nn::L2Normalize(project_->Forward(h));
  return nn::L2Normalize(nn::Add(imagery, residual));
}

nn::Tensor PackImages(const std::vector<rs::Image>& images) {
  TSPN_CHECK(!images.empty());
  const int32_t r = images[0].height;
  std::vector<float> packed;
  packed.reserve(images.size() * images[0].data.size());
  for (const rs::Image& img : images) {
    TSPN_CHECK_EQ(img.height, r);
    TSPN_CHECK_EQ(img.width, r);
    TSPN_CHECK_EQ(img.channels, 3);
    packed.insert(packed.end(), img.data.begin(), img.data.end());
  }
  return nn::Tensor::FromVector({static_cast<int64_t>(images.size()), 3, r, r},
                                std::move(packed));
}

PoiEncoder::PoiEncoder(const TspnRaConfig& config, int64_t num_pois,
                       int64_t num_categories, common::Rng& rng)
    : config_(config) {
  // POI ids start near zero: an unvisited POI is then represented almost
  // entirely by its (well-trained, shared) category embedding instead of id
  // noise, and ids grow to differentiate as visits provide gradient. This
  // matters at CPU scale where most ids receive few updates.
  id_embedding_ = std::make_unique<nn::Embedding>(num_pois, config_.dm, rng);
  {
    nn::Tensor w = id_embedding_->weight();
    float* data = w.data();
    for (int64_t i = 0; i < w.numel(); ++i) data[i] *= 0.2f;
  }
  RegisterChild(id_embedding_.get());
  if (config_.use_category) {
    category_embedding_ =
        std::make_unique<nn::Embedding>(num_categories, config_.dm, rng);
    RegisterChild(category_embedding_.get());
  }
}

nn::Tensor PoiEncoder::Encode(const std::vector<int64_t>& poi_ids,
                              const std::vector<int64_t>& categories) const {
  TSPN_CHECK_EQ(poi_ids.size(), categories.size());
  nn::Tensor ids = id_embedding_->Forward(poi_ids);
  if (!config_.use_category) return ids;
  nn::Tensor cats = category_embedding_->Forward(categories);
  return nn::Add(nn::MulScalar(ids, config_.alpha),
                 nn::MulScalar(cats, 1.0f - config_.alpha));
}

nn::Tensor SpatialEncoding(double x, double y, int64_t dm, float scale) {
  TSPN_CHECK_EQ(dm % 4, 0) << "Eq. 4 requires dm divisible by 4";
  std::vector<float> enc(static_cast<size_t>(dm));
  const double xs = x * scale;
  const double ys = y * scale;
  const int64_t half = dm / 2;
  // First half encodes x, second half encodes y, as in Eq. 4: index pairs
  // (2i, 2i+1) hold (sin, cos) at frequency 10000^{-2i/dm}.
  for (int64_t i = 0; 2 * i + 1 < half; ++i) {
    double freq = std::pow(10000.0, -2.0 * static_cast<double>(i) /
                                        static_cast<double>(dm));
    enc[static_cast<size_t>(2 * i)] = static_cast<float>(std::sin(xs * freq));
    enc[static_cast<size_t>(2 * i + 1)] = static_cast<float>(std::cos(xs * freq));
    enc[static_cast<size_t>(half + 2 * i)] = static_cast<float>(std::sin(ys * freq));
    enc[static_cast<size_t>(half + 2 * i + 1)] =
        static_cast<float>(std::cos(ys * freq));
  }
  return nn::Tensor::FromVector({dm}, std::move(enc));
}

TemporalEncoder::TemporalEncoder(int64_t dm, common::Rng& rng) {
  slots_ = std::make_unique<nn::Embedding>(data::kTimeSlotsPerDay, dm, rng);
  RegisterChild(slots_.get());
}

nn::Tensor TemporalEncoder::SlotEmbedding(int64_t slot) const {
  return slots_->ForwardOne(slot);
}

nn::Tensor TemporalEncoder::SlotEmbeddings(const std::vector<int64_t>& slots) const {
  return slots_->Forward(slots);
}

}  // namespace tspn::core
