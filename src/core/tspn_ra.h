#ifndef TSPN_CORE_TSPN_RA_H_
#define TSPN_CORE_TSPN_RA_H_

#include <atomic>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/encoders.h"
#include "core/fusion.h"
#include "core/hgat.h"
#include "data/dataset.h"
#include "eval/model_api.h"
#include "graph/qrp_graph.h"
#include "rs/synthesizer.h"
#include "spatial/grid_index.h"

namespace tspn::eval {
class ConstraintEvaluator;
}  // namespace tspn::eval

namespace tspn::core {

/// TSPN-RA: the Two-Step Prediction Network with Remote Sensing Augmentation
/// (the paper's model, Secs. III-V). Owns every sub-module — tile/POI
/// embedding, spatial & temporal encoders, the QR-P graph encoder and the
/// two attention-fusion predictors — and implements the tile-then-POI
/// two-step prediction with the ArcFace-margin training loss (Eq. 8).
class TspnRa : public eval::NextPoiModel {
 public:
  TspnRa(std::shared_ptr<const data::CityDataset> dataset, TspnRaConfig config);
  ~TspnRa() override;

  std::string name() const override { return "TSPN-RA"; }
  void Train(const eval::TrainOptions& options) override;

  /// Incremental updates from streamed check-in samples. Optimizer moments,
  /// learning rate, and the negative-sampling RNG persist across calls (the
  /// continual trainer calls this once per drained mini-batch). Samples
  /// whose history or target references a POI id outside the dataset are
  /// skipped (cold-start arrivals are handled by eval::ColdStartPriors at
  /// serving time, not here). Dirties the inference caches when any step
  /// was taken. Returns the number of samples trained on.
  int64_t TrainOnline(common::Span<const eval::OnlineSample> samples,
                      const eval::TrainOptions& options) override;

  // --- Extended API for the figure benches -----------------------------------

  /// Ranked candidate-tile indices (dense leaf order), best first.
  /// Ties rank by ascending tile index, so orderings are deterministic.
  std::vector<int64_t> RankTiles(const data::SampleRef& sample) const;

  /// Top-k prefix of RankTiles via partial selection: identical ordering to
  /// RankTiles(sample) truncated to k, without sorting the full tile set.
  std::vector<int64_t> RankTilesTopK(const data::SampleRef& sample,
                                     int64_t k) const;

  /// Dense candidate-tile index containing the sample's target POI.
  int64_t TargetTileIndex(const data::SampleRef& sample) const;

  /// Recommend with an inference-time top-K override (Fig. 11 sweeps K).
  std::vector<int64_t> RecommendWithK(const data::SampleRef& sample, int64_t top_n,
                                      int32_t top_k) const;

  /// Number of candidate POIs screened when keeping `top_k` tiles.
  int64_t CandidatePoiCount(const data::SampleRef& sample, int32_t top_k) const;

  int64_t NumCandidateTiles() const {
    return static_cast<int64_t>(leaf_tile_ids_.size());
  }

  /// Debug/inspection: the inference-time tile embedding matrix (all tile
  /// ids, rows L2-normalized) and the candidate-tile id list.
  nn::Tensor DebugTileEmbeddings() const {
    EnsureInferenceCaches();
    return et_cache_;
  }
  const std::vector<int32_t>& candidate_tile_ids() const { return leaf_tile_ids_; }
  const TspnRaConfig& config() const { return config_; }
  int64_t ParameterCount() const;

  /// Whether int8 scoring is live: TSPN_QUANT_SCORING was set at cache-build
  /// time AND the quantized caches passed the top-k parity gate against the
  /// fp32 path on test-split probes. False means fp32 scoring — either the
  /// knob is off or the gate tripped the fallback. Builds the caches if
  /// needed.
  bool QuantScoringActive() const {
    EnsureInferenceCaches();
    return quant_scoring_;
  }

  /// All trainable parameters (for serialization).
  std::vector<nn::Tensor> Parameters() const;

  /// Saves / restores trained weights. Load requires an identically
  /// configured model (same dataset + config); returns false on mismatch.
  /// Deprecated: raw nn::serialize payloads without the checkpoint header —
  /// prefer SaveCheckpoint/LoadCheckpoint (eval::NextPoiModel).
  void SaveWeights(const std::string& path) const;
  bool LoadWeights(const std::string& path);

 protected:
  /// Scored, constraint-aware single query (the v2 core): the stage-1 tile
  /// screen applies constraints before top-k selection, widening until the
  /// allowed candidate pool can fill request.top_n.
  eval::RecommendResponse RecommendImpl(
      const eval::RecommendRequest& request) const override;

  /// Batch-first inference, end to end: ForwardBatch() runs the sequence
  /// encoders for the whole batch as one packed forward (GEMM-shaped), the
  /// fused [batch, dm] outputs are scored against the cached normalized
  /// leaf-tile and POI matrices with one GEMM per stage (fp32, or int8 when
  /// quant scoring is active), and constraint filtering / top-k selection
  /// run per request. Requests may differ in top_n and constraints;
  /// per-request results are bitwise identical to RecommendImpl().
  /// TSPN_DISABLE_BATCHED_ENCODER=1 restores the per-sample encoder loop
  /// (A/B switch for the throughput bench); falls back to the serial loop
  /// entirely when TSPN_DISABLE_INFERENCE_CACHE is set.
  std::vector<eval::RecommendResponse> RecommendBatchImpl(
      common::Span<eval::RecommendRequest> requests) const override;

  /// Checkpoint payload: the trained parameter tensors via nn::serialize.
  void SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

 private:
  struct Net;
  struct Features {
    std::vector<int64_t> poi_ids;
    std::vector<int64_t> poi_cats;
    std::vector<int64_t> time_slots;
    std::vector<int64_t> tile_rows;   // ET row (tile id) per prefix element
    std::vector<double> norm_x, norm_y;
    const graph::QrpGraph* history_graph = nullptr;  // may be null/empty
    int64_t target_poi = -1;
    int64_t target_tile_index = -1;   // dense candidate-tile index
  };

  /// Renders (and caches) the tile imagery tensor for all tile ids.
  void BuildImageCache();
  /// Precomputes per-candidate-tile POI lists.
  void BuildTilePoiLists();

  Features ExtractFeatures(const data::SampleRef& sample) const;

  /// Builds Features directly from raw check-ins (the online-training path,
  /// where samples come from live traffic instead of stored trajectories).
  /// No history graph — streamed prefixes have no trajectory id to key the
  /// QR-P cache, and a stale graph would be worse than none. Returns false
  /// (leaving `out` unspecified) when any check-in references a POI id the
  /// dataset does not know.
  bool FeaturesFromCheckins(common::Span<const data::Checkin> history,
                            const data::Checkin& target, Features* out) const;
  const graph::QrpGraph* HistoryGraph(int32_t user, int32_t traj) const;

  /// ET for all tile ids ([num_tile_ids, dm], rows normalized); part of the
  /// autograd graph during training.
  nn::Tensor ComputeTileEmbeddings() const;

  /// Forward pass producing (h_out_tau, h_out_p) for a sample.
  struct ForwardOut {
    nn::Tensor h_tile;
    nn::Tensor h_poi;
  };
  ForwardOut Forward(const Features& features, const nn::Tensor& et,
                     common::Rng& rng) const;

  /// Batched inference forward: one packed encoder pass over all samples.
  /// The tile/POI sequences are concatenated row-wise and run through the
  /// embedding gathers, spatial/temporal encoders and fusion modules as
  /// whole-pack tensors (per-sample only where structure forces it: the
  /// history-graph HGAT encodings and the within-sequence attention
  /// softmax). Returns [B, dm] h_tile / h_poi matrices whose rows are
  /// bitwise identical to Forward() on each sample. Inference-only.
  struct BatchForwardOut {
    nn::Tensor h_tile;  // [B, dm]
    nn::Tensor h_poi;   // [B, dm]
  };
  BatchForwardOut ForwardBatch(const std::vector<Features>& features,
                               const nn::Tensor& et) const;

  /// Seed-style per-query encoder loop writing L2-normalized fused outputs
  /// into row-major [batch, dm] buffers. A/B reference for ForwardBatch
  /// (TSPN_DISABLE_BATCHED_ENCODER=1); bitwise-identical rows by contract.
  void EncodeQueriesSerial(common::Span<eval::RecommendRequest> requests,
                           float* h_tiles, float* h_pois) const;

  /// Per-sample training loss (Eq. 8): beta * loss_tile + loss_poi.
  nn::Tensor SampleLoss(const data::SampleRef& sample, const nn::Tensor& et,
                        common::Rng& rng) const;

  /// The loss core shared by the offline (SampleLoss) and online
  /// (TrainOnline) paths, computed from already-extracted Features.
  nn::Tensor LossFromFeatures(const Features& f, const nn::Tensor& et,
                              common::Rng& rng) const;

  /// Candidate POI ids when keeping the given ranked tiles.
  std::vector<int64_t> GatherCandidates(const std::vector<int64_t>& ranked_tiles,
                                        int32_t top_k) const;

  /// Shared v2 core behind RecommendImpl and RecommendWithK: forward pass,
  /// constraint-aware stage-1 screen, scored stage-2 ranking.
  eval::RecommendResponse ScoredRecommend(const eval::RecommendRequest& request,
                                          int32_t top_k) const;

  /// Stage-1 candidate gather with constraints applied before selection:
  /// keeps the top_k tiles by cosine, skips fence-disjoint tiles, filters
  /// POIs through `filter`, and doubles the screen until at least
  /// `required` allowed candidates exist (or every tile was screened).
  /// `required` = 1 without constraints, reproducing the v1 behavior
  /// exactly. `max_tiles` > 0 bounds the screen (widening included) — the
  /// gateway's degraded-mode cap — at the cost of possibly gathering fewer
  /// than `required` candidates; 0 leaves it unbounded. Writes the final
  /// screen width to `tiles_screened`.
  std::vector<int64_t> GatherAllowedCandidates(
      const float* cos_tiles, int32_t top_k, int64_t required,
      const eval::ConstraintEvaluator* filter, int64_t max_tiles,
      int64_t* tiles_screened) const;

  /// Bounding box of a dense candidate-tile index (quad-tree leaf or grid
  /// cell).
  geo::BoundingBox CandidateTileBounds(int64_t candidate) const;

  /// All POI ids passing `filter` (the no-two-step candidate set).
  std::vector<int64_t> AllAllowedPois(
      const eval::ConstraintEvaluator* filter) const;

  /// Shared response tail of the single and batched paths: top-n selection
  /// over the fused candidate scores and ScoredPoi item construction. One
  /// copy, so selection and tie-breaking can never drift between the two
  /// paths (their bitwise parity is a serving-layer contract).
  void FillRankedItems(const std::vector<int64_t>& candidates,
                       const float* scores, int64_t top_n,
                       eval::RecommendResponse* response) const;

  /// Cosines between h_tile and every candidate tile's ET row ([num_tiles]).
  /// Training path: gathers from the autograd-tracked `et` every call.
  nn::Tensor TileCosinesFrom(const nn::Tensor& et, const nn::Tensor& h_tile) const;

  /// Inference path: cosines against the cached, pre-normalized leaf-tile
  /// matrix (EnsureInferenceCaches must have run). Falls back to the
  /// per-query gather when TSPN_DISABLE_INFERENCE_CACHE is set.
  nn::Tensor InferenceLeafCosines(const nn::Tensor& h_tile) const;

  /// Dense candidate-tile index containing a POI.
  int64_t CandidateTileOfPoi(int64_t poi_id) const;

  void EnsureInferenceCaches() const;

  std::shared_ptr<const data::CityDataset> dataset_;
  TspnRaConfig config_;

  // Partition: quad-tree (from the dataset) or grid (ablation). Tile ids are
  // quad-tree node ids or grid cell indices; candidates are leaves / cells.
  std::unique_ptr<spatial::GridIndex> grid_;
  std::unique_ptr<roadnet::TileAdjacency> grid_adjacency_;
  int64_t num_tile_ids_ = 0;
  std::vector<int32_t> leaf_tile_ids_;              // candidate idx -> tile id
  std::vector<std::vector<int64_t>> tile_pois_;     // candidate idx -> POI ids
  std::vector<int64_t> poi_tile_;                   // POI id -> candidate idx

  nn::Tensor tile_images_;  // [num_tile_ids, 3, R, R], constant
  std::unique_ptr<Net> net_;

  // Online-training state (TrainOnline): Adam moments and the
  // negative-sampling RNG must persist across mini-batches or the online
  // path degenerates to SGD with a reset seed every call. Created lazily on
  // the first TrainOnline call; guarded by online_mutex_ (TrainOnline may
  // not run concurrently with itself, though it never races inference —
  // the trainer owns a private clone).
  struct OnlineState;
  std::mutex online_mutex_;
  std::unique_ptr<OnlineState> online_;

  // --- Inference-only state. Recommend/RecommendBatch are const and must be
  // callable concurrently (serve::InferenceEngine workers); every lazily
  // built mutable member below is guarded. --------------------------------
  mutable std::mutex graph_mutex_;    // guards graph_cache_
  mutable std::unordered_map<int64_t, graph::QrpGraph> graph_cache_;
  mutable std::mutex cache_mutex_;    // guards the cache build below
  mutable nn::Tensor et_cache_;       // inference-time ET
  mutable nn::Tensor leaf_et_cache_;  // gathered + L2-normalized leaf rows
  mutable nn::Tensor poi_et_cache_;   // all POI embeddings, L2-normalized
  // int8 scoring caches (TSPN_QUANT_SCORING): symmetric per-row quantized
  // codes, scales and code L1 norms (for the rigorous quantization-error
  // bound, see QuantFusedScores) of the two matrices above, and whether the
  // quantized path survived the build-time top-k parity gate (false = fp32
  // fallback). Built under cache_mutex_ and published by the cache_state_
  // release store like the fp32 tensors.
  mutable std::vector<int8_t> leaf_q_codes_;
  mutable std::vector<float> leaf_q_scales_;
  mutable std::vector<float> leaf_q_l1_;
  mutable std::vector<int8_t> poi_q_codes_;
  mutable std::vector<float> poi_q_scales_;
  mutable std::vector<float> poi_q_l1_;
  mutable bool quant_scoring_ = false;
  /// Which mode the caches are built for: 0 = dirty/unbuilt, 1 = built with
  /// the leaf/POI matrices, 2 = built without (cache-disabled A/B mode),
  /// 3 = built with the leaf/POI matrices plus the int8 variant requested
  /// (quant_scoring_ records whether the parity gate actually admitted it).
  /// An atomic mode tag instead of a std::once_flag because Train() and
  /// LoadWeights() re-dirty the caches and the A/B env switches can change
  /// the requested mode between calls; a once_flag cannot be re-armed.
  mutable std::atomic<int> cache_state_{0};

  /// Builds the int8 caches from the fp32 ones and runs the parity gate
  /// (top-k sets on test-split probes). Returns whether int8 scoring may
  /// serve. Caller holds cache_mutex_; leaf/POI fp32 caches must be built.
  bool BuildQuantCachesLocked() const;

  /// A query row's int8 form: codes, scale, and code L1 norm (the query-side
  /// inputs of the quantization-error bound).
  struct QuantRow {
    std::vector<int8_t> codes;
    float scale = 0.0f;
    float l1 = 0.0f;
  };
  static QuantRow QuantizeQueryRow(const float* row, int64_t dm);

  /// int8 screen + fp32 rescue for the stage-1 tile scores. On entry
  /// `tile_scores` holds the dequantized int8 cosines of all
  /// leaf_tile_ids_.size() tiles for the normalized query row `ht_row`;
  /// on exit every tile that can reach the true fp32 top-`k` (by the sound
  /// per-pair quantization-error bound) carries its exact fp32 cosine, so a
  /// (score desc, index asc) top-`k` selection over the array returns the
  /// fp32 top-`k` prefix bitwise — set AND order. Tiles outside the rescue
  /// band keep their int8 approximation (provably below the k-th true
  /// score, so they cannot reach the prefix).
  void ExactTileHybrid(const float* ht_row, const QuantRow& q, int64_t k,
                       float* tile_scores) const;

  /// Quant stage-2: fused candidate scores pc + gamma*tc with pc from the
  /// int8 POI cache, refined so that every candidate that can reach the
  /// true fp32 top-`top_n` carries its exact fp32 fused score. `pc_q_row`
  /// optionally supplies precomputed dequantized int8 scores for ALL POIs
  /// (the batched Int8ScoreGemm row); when null the per-candidate Int8Dot
  /// produces bitwise-identical values (exact integer accumulation).
  /// `tc` must hold exact fp32 values at every candidate's tile (nullptr
  /// when two-step fusion is off). The resulting top-`top_n` of `scores`
  /// (FillRankedItems order) is bitwise the fp32 path's.
  void QuantFusedScores(const float* hp_row, const QuantRow& q,
                        const std::vector<int64_t>& candidates,
                        const float* pc_q_row, const float* tc, float gamma,
                        int64_t top_n, float* scores) const;
};

}  // namespace tspn::core

#endif  // TSPN_CORE_TSPN_RA_H_
