#ifndef TSPN_CORE_TSPN_RA_H_
#define TSPN_CORE_TSPN_RA_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/encoders.h"
#include "core/fusion.h"
#include "core/hgat.h"
#include "data/dataset.h"
#include "eval/model_api.h"
#include "graph/qrp_graph.h"
#include "rs/synthesizer.h"
#include "spatial/grid_index.h"

namespace tspn::core {

/// TSPN-RA: the Two-Step Prediction Network with Remote Sensing Augmentation
/// (the paper's model, Secs. III-V). Owns every sub-module — tile/POI
/// embedding, spatial & temporal encoders, the QR-P graph encoder and the
/// two attention-fusion predictors — and implements the tile-then-POI
/// two-step prediction with the ArcFace-margin training loss (Eq. 8).
class TspnRa : public eval::NextPoiModel {
 public:
  TspnRa(std::shared_ptr<const data::CityDataset> dataset, TspnRaConfig config);
  ~TspnRa() override;

  std::string name() const override { return "TSPN-RA"; }
  void Train(const eval::TrainOptions& options) override;
  std::vector<int64_t> Recommend(const data::SampleRef& sample,
                                 int64_t top_n) const override;

  /// Batch-first inference: the per-query sequence encoders still run one
  /// sample at a time, but both scoring stages are batched — the queries'
  /// fused outputs are stacked into [batch, dm] matrices and scored against
  /// the cached normalized leaf-tile and POI matrices with one
  /// kernels::DotProductGemm each, followed by per-row top-k selection.
  /// Rankings are identical to per-query Recommend(). Falls back to the
  /// serial loop when TSPN_DISABLE_INFERENCE_CACHE is set.
  std::vector<std::vector<int64_t>> RecommendBatch(
      common::Span<data::SampleRef> samples, int64_t top_n) const override;

  // --- Extended API for the figure benches -----------------------------------

  /// Ranked candidate-tile indices (dense leaf order), best first.
  /// Ties rank by ascending tile index, so orderings are deterministic.
  std::vector<int64_t> RankTiles(const data::SampleRef& sample) const;

  /// Top-k prefix of RankTiles via partial selection: identical ordering to
  /// RankTiles(sample) truncated to k, without sorting the full tile set.
  std::vector<int64_t> RankTilesTopK(const data::SampleRef& sample,
                                     int64_t k) const;

  /// Dense candidate-tile index containing the sample's target POI.
  int64_t TargetTileIndex(const data::SampleRef& sample) const;

  /// Recommend with an inference-time top-K override (Fig. 11 sweeps K).
  std::vector<int64_t> RecommendWithK(const data::SampleRef& sample, int64_t top_n,
                                      int32_t top_k) const;

  /// Number of candidate POIs screened when keeping `top_k` tiles.
  int64_t CandidatePoiCount(const data::SampleRef& sample, int32_t top_k) const;

  int64_t NumCandidateTiles() const {
    return static_cast<int64_t>(leaf_tile_ids_.size());
  }

  /// Debug/inspection: the inference-time tile embedding matrix (all tile
  /// ids, rows L2-normalized) and the candidate-tile id list.
  nn::Tensor DebugTileEmbeddings() const {
    EnsureInferenceCaches();
    return et_cache_;
  }
  const std::vector<int32_t>& candidate_tile_ids() const { return leaf_tile_ids_; }
  const TspnRaConfig& config() const { return config_; }
  int64_t ParameterCount() const;

  /// All trainable parameters (for serialization).
  std::vector<nn::Tensor> Parameters() const;

  /// Saves / restores trained weights. Load requires an identically
  /// configured model (same dataset + config); returns false on mismatch.
  void SaveWeights(const std::string& path) const;
  bool LoadWeights(const std::string& path);

 private:
  struct Net;
  struct Features {
    std::vector<int64_t> poi_ids;
    std::vector<int64_t> poi_cats;
    std::vector<int64_t> time_slots;
    std::vector<int64_t> tile_rows;   // ET row (tile id) per prefix element
    std::vector<double> norm_x, norm_y;
    const graph::QrpGraph* history_graph = nullptr;  // may be null/empty
    int64_t target_poi = -1;
    int64_t target_tile_index = -1;   // dense candidate-tile index
  };

  /// Renders (and caches) the tile imagery tensor for all tile ids.
  void BuildImageCache();
  /// Precomputes per-candidate-tile POI lists.
  void BuildTilePoiLists();

  Features ExtractFeatures(const data::SampleRef& sample) const;
  const graph::QrpGraph* HistoryGraph(int32_t user, int32_t traj) const;

  /// ET for all tile ids ([num_tile_ids, dm], rows normalized); part of the
  /// autograd graph during training.
  nn::Tensor ComputeTileEmbeddings() const;

  /// Forward pass producing (h_out_tau, h_out_p) for a sample.
  struct ForwardOut {
    nn::Tensor h_tile;
    nn::Tensor h_poi;
  };
  ForwardOut Forward(const Features& features, const nn::Tensor& et,
                     common::Rng& rng) const;

  /// Per-sample training loss (Eq. 8): beta * loss_tile + loss_poi.
  nn::Tensor SampleLoss(const data::SampleRef& sample, const nn::Tensor& et,
                        common::Rng& rng) const;

  /// Candidate POI ids when keeping the given ranked tiles.
  std::vector<int64_t> GatherCandidates(const std::vector<int64_t>& ranked_tiles,
                                        int32_t top_k) const;

  /// Cosines between h_tile and every candidate tile's ET row ([num_tiles]).
  /// Training path: gathers from the autograd-tracked `et` every call.
  nn::Tensor TileCosinesFrom(const nn::Tensor& et, const nn::Tensor& h_tile) const;

  /// Inference path: cosines against the cached, pre-normalized leaf-tile
  /// matrix (EnsureInferenceCaches must have run). Falls back to the
  /// per-query gather when TSPN_DISABLE_INFERENCE_CACHE is set.
  nn::Tensor InferenceLeafCosines(const nn::Tensor& h_tile) const;

  /// Dense candidate-tile index containing a POI.
  int64_t CandidateTileOfPoi(int64_t poi_id) const;

  void EnsureInferenceCaches() const;

  std::shared_ptr<const data::CityDataset> dataset_;
  TspnRaConfig config_;

  // Partition: quad-tree (from the dataset) or grid (ablation). Tile ids are
  // quad-tree node ids or grid cell indices; candidates are leaves / cells.
  std::unique_ptr<spatial::GridIndex> grid_;
  std::unique_ptr<roadnet::TileAdjacency> grid_adjacency_;
  int64_t num_tile_ids_ = 0;
  std::vector<int32_t> leaf_tile_ids_;              // candidate idx -> tile id
  std::vector<std::vector<int64_t>> tile_pois_;     // candidate idx -> POI ids
  std::vector<int64_t> poi_tile_;                   // POI id -> candidate idx

  nn::Tensor tile_images_;  // [num_tile_ids, 3, R, R], constant
  std::unique_ptr<Net> net_;

  // --- Inference-only state. Recommend/RecommendBatch are const and must be
  // callable concurrently (serve::InferenceEngine workers); every lazily
  // built mutable member below is guarded. --------------------------------
  mutable std::mutex graph_mutex_;    // guards graph_cache_
  mutable std::unordered_map<int64_t, graph::QrpGraph> graph_cache_;
  mutable std::mutex cache_mutex_;    // guards the cache build below
  mutable nn::Tensor et_cache_;       // inference-time ET
  mutable nn::Tensor leaf_et_cache_;  // gathered + L2-normalized leaf rows
  mutable nn::Tensor poi_et_cache_;   // all POI embeddings, L2-normalized
  /// Which mode the caches are built for: 0 = dirty/unbuilt, 1 = built with
  /// the leaf/POI matrices, 2 = built without (cache-disabled A/B mode).
  /// An atomic mode tag instead of a std::once_flag because Train() and
  /// LoadWeights() re-dirty the caches and the A/B env switch can change the
  /// requested mode between calls; a once_flag cannot be re-armed.
  mutable std::atomic<int> cache_state_{0};
};

}  // namespace tspn::core

#endif  // TSPN_CORE_TSPN_RA_H_
