#ifndef TSPN_CORE_TSPN_RA_INTERNAL_H_
#define TSPN_CORE_TSPN_RA_INTERNAL_H_

// Implementation detail shared by tspn_ra.cc and trainer.cc only.

#include "core/tspn_ra.h"
#include "nn/optim.h"

namespace tspn::core {

/// Persistent state of the online-training path (TrainOnline): one Adam
/// whose moments carry across calls, plus the negative-sampling RNG stream.
struct TspnRa::OnlineState {
  OnlineState(std::vector<nn::Tensor> params, const nn::Adam::Options& opts,
              uint64_t seed)
      : optimizer(std::move(params), opts), rng(seed) {}

  nn::Adam optimizer;
  common::Rng rng;
  int64_t steps = 0;
};

/// Aggregates every trainable sub-module of TSPN-RA.
struct TspnRa::Net : nn::Module {
  Net(const TspnRaConfig& config, int64_t num_tile_ids, int64_t num_pois,
      int64_t num_categories, common::Rng& rng)
      : tile_encoder(config, num_tile_ids, rng),
        poi_encoder(config, num_pois, num_categories, rng),
        temporal(config.dm, rng),
        qrp(config, rng),
        mp1(config, rng),
        mp2(config, rng) {
    RegisterChild(&tile_encoder);
    RegisterChild(&poi_encoder);
    RegisterChild(&temporal);
    RegisterChild(&qrp);
    RegisterChild(&mp1);
    RegisterChild(&mp2);
    null_tile_history = RegisterParameter(
        nn::Tensor::RandomNormal({1, config.dm}, 0.1f, rng, true));
    null_poi_history = RegisterParameter(
        nn::Tensor::RandomNormal({1, config.dm}, 0.1f, rng, true));
    tile_prior_weight = RegisterParameter(nn::Tensor::Full({1}, 0.0f, true));
  }

  TileEncoder tile_encoder;
  PoiEncoder poi_encoder;
  TemporalEncoder temporal;
  QrpEncoder qrp;
  FusionModule mp1;
  FusionModule mp2;
  nn::Tensor null_tile_history;
  nn::Tensor null_poi_history;
  /// gamma: weight of the tile-score prior inside stage-2 POI scoring
  /// (hierarchical score fusion across the two steps).
  nn::Tensor tile_prior_weight;
};

}  // namespace tspn::core

#endif  // TSPN_CORE_TSPN_RA_INTERNAL_H_
