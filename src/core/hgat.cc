#include "core/hgat.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace tspn::core {

HgatLayer::HgatLayer(int64_t dm, common::Rng& rng) : dm_(dm) {
  for (int k = 0; k < kNumEdgeTypes; ++k) {
    w_.push_back(std::make_unique<nn::Linear>(dm, dm, rng, /*with_bias=*/false));
    RegisterChild(w_.back().get());
    float bound = std::sqrt(3.0f / static_cast<float>(dm));
    a_src_.push_back(std::make_unique<nn::Tensor>(RegisterParameter(
        nn::Tensor::RandomUniform({dm}, bound, rng, /*requires_grad=*/true))));
    a_dst_.push_back(std::make_unique<nn::Tensor>(RegisterParameter(
        nn::Tensor::RandomUniform({dm}, bound, rng, /*requires_grad=*/true))));
  }
  self_ = std::make_unique<nn::Linear>(dm, dm, rng, /*with_bias=*/false);
  RegisterChild(self_.get());
}

nn::Tensor HgatLayer::Forward(const nn::Tensor& h,
                              const std::vector<nn::Tensor>& adjacency) const {
  TSPN_CHECK_EQ(h.rank(), 2);
  TSPN_CHECK_EQ(static_cast<int>(adjacency.size()), kNumEdgeTypes);
  const int64_t n = h.dim(0);
  // Self-transform keeps isolated nodes (and every node's own state) alive.
  nn::Tensor aggregated = self_->Forward(h);
  for (int k = 0; k < kNumEdgeTypes; ++k) {
    const nn::Tensor& adj = adjacency[static_cast<size_t>(k)];
    if (!adj.defined()) continue;  // edge type disabled / absent
    nn::Tensor hk = w_[static_cast<size_t>(k)]->Forward(h);  // [n, dm]
    // Attention logits: e[i,j] = LeakyReLU(a_src . hk_i + a_dst . hk_j).
    nn::Tensor e_src = nn::Reshape(nn::MatVec(hk, *a_src_[static_cast<size_t>(k)]),
                                   {n, 1});
    nn::Tensor e_dst = nn::Reshape(nn::MatVec(hk, *a_dst_[static_cast<size_t>(k)]),
                                   {1, n});
    nn::Tensor scores = nn::LeakyRelu(nn::Add(e_src, e_dst), 0.2f);
    // Mask non-edges with -1e9 before the row softmax, then zero them after
    // (rows without type-k neighbours otherwise become uniform).
    nn::Tensor neg_mask = nn::MulScalar(nn::AddScalar(nn::Neg(adj), 1.0f), -1e9f);
    nn::Tensor attention = nn::Mul(nn::Softmax(nn::Add(scores, neg_mask)), adj);
    aggregated = nn::Add(aggregated, nn::MatMul(attention, hk));
  }
  return nn::Elu(aggregated);
}

QrpEncoder::QrpEncoder(const TspnRaConfig& config, common::Rng& rng)
    : config_(config) {
  for (int32_t i = 0; i < config_.num_hgat_layers; ++i) {
    layers_.push_back(std::make_unique<HgatLayer>(config_.dm, rng));
    RegisterChild(layers_.back().get());
  }
}

QrpEncoder::Output QrpEncoder::Encode(const graph::QrpGraph& graph,
                                      const nn::Tensor& tile_init,
                                      const nn::Tensor& poi_init) const {
  TSPN_CHECK(!graph.empty());
  TSPN_CHECK_EQ(tile_init.dim(0), graph.NumTileNodes());
  TSPN_CHECK_EQ(poi_init.dim(0), graph.NumPoiNodes());
  nn::Tensor h = nn::ConcatRows({tile_init, poi_init});
  std::vector<nn::Tensor> adjacency =
      BuildAdjacency(graph, config_.use_road_edges, config_.use_contain_edges);
  for (const auto& layer : layers_) {
    h = layer->Forward(h, adjacency);
  }
  Output out;
  out.tile_knowledge = nn::SliceRows(h, 0, graph.NumTileNodes());
  out.poi_knowledge = nn::SliceRows(h, graph.NumTileNodes(), graph.NumPoiNodes());
  return out;
}

std::vector<nn::Tensor> BuildAdjacency(const graph::QrpGraph& graph,
                                       bool use_road_edges,
                                       bool use_contain_edges) {
  const int64_t n = graph.NumNodes();
  auto dense = [n](const std::vector<std::pair<int32_t, int32_t>>& edges) {
    std::vector<float> mask(static_cast<size_t>(n * n), 0.0f);
    for (const auto& [a, b] : edges) {
      mask[static_cast<size_t>(a) * n + b] = 1.0f;
      mask[static_cast<size_t>(b) * n + a] = 1.0f;
    }
    return nn::Tensor::FromVector({n, n}, std::move(mask));
  };
  std::vector<nn::Tensor> adjacency(HgatLayer::kNumEdgeTypes);
  if (!graph.branch_edges.empty()) adjacency[0] = dense(graph.branch_edges);
  if (use_road_edges && !graph.road_edges.empty()) {
    adjacency[1] = dense(graph.road_edges);
  }
  if (use_contain_edges && !graph.contain_edges.empty()) {
    adjacency[2] = dense(graph.contain_edges);
  }
  return adjacency;
}

}  // namespace tspn::core
