#ifndef TSPN_CORE_HGAT_H_
#define TSPN_CORE_HGAT_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "graph/qrp_graph.h"
#include "nn/layers.h"

namespace tspn::core {

/// One heterogeneous graph-attention layer (Eq. 6): per edge type k, GAT
/// attention with weights W_k and attention vector a_k, summed over types
/// and passed through a nonlinearity. A self-transform keeps isolated nodes
/// informative. Implemented densely — QR-P graphs are small (tens of nodes).
class HgatLayer : public nn::Module {
 public:
  static constexpr int kNumEdgeTypes = 3;  // branch, road, contain

  HgatLayer(int64_t dm, common::Rng& rng);

  /// h: [n, dm]; adjacency[k]: symmetric {0,1} mask [n, n] per edge type.
  /// Returns the updated [n, dm].
  nn::Tensor Forward(const nn::Tensor& h,
                     const std::vector<nn::Tensor>& adjacency) const;

 private:
  int64_t dm_;
  std::vector<std::unique_ptr<nn::Linear>> w_;       // W_k
  std::vector<std::unique_ptr<nn::Tensor>> a_src_;   // a_k split: source half
  std::vector<std::unique_ptr<nn::Tensor>> a_dst_;   // a_k split: target half
  std::unique_ptr<nn::Linear> self_;
};

/// MG (Sec. IV-C): stacks HGAT layers over a QR-P graph. Initial node
/// features come from ET (tile nodes) and EP-style POI embeddings; the
/// output splits back into tile-level and POI-level historical knowledge.
class QrpEncoder : public nn::Module {
 public:
  QrpEncoder(const TspnRaConfig& config, common::Rng& rng);

  struct Output {
    nn::Tensor tile_knowledge;  ///< [num_tile_nodes, dm] (H^T_<)
    nn::Tensor poi_knowledge;   ///< [num_poi_nodes, dm]  (H^P_<)
  };

  /// `tile_init` [num_tile_nodes, dm] and `poi_init` [num_poi_nodes, dm] are
  /// the gathered initial embeddings (Eq. 7). Edge types can be disabled for
  /// the fine-grained ablations.
  Output Encode(const graph::QrpGraph& graph, const nn::Tensor& tile_init,
                const nn::Tensor& poi_init) const;

 private:
  const TspnRaConfig config_;
  std::vector<std::unique_ptr<HgatLayer>> layers_;
};

/// Builds the dense symmetric adjacency masks ([n, n] per edge type) for a
/// QR-P graph, honouring the road/contain ablation switches.
std::vector<nn::Tensor> BuildAdjacency(const graph::QrpGraph& graph,
                                       bool use_road_edges, bool use_contain_edges);

}  // namespace tspn::core

#endif  // TSPN_CORE_HGAT_H_
