#include "core/tspn_ra.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/env.h"
#include "core/tspn_ra_internal.h"
#include "eval/constraints.h"
#include "nn/kernels.h"
#include "nn/ops.h"
#include "nn/serialize.h"

namespace tspn::core {

namespace {

/// Indices of the k largest entries of scores[0..n), ordered by (score desc,
/// index asc). k >= n degenerates to a full deterministic ranking; k < n uses
/// nth_element + a sort of only the kept prefix instead of sorting all n.
std::vector<int64_t> TopKIndices(const float* scores, int64_t n, int64_t k) {
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto better = [scores](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  if (k >= n) {
    std::sort(order.begin(), order.end(), better);
    return order;
  }
  std::nth_element(order.begin(), order.begin() + k, order.end(), better);
  order.resize(static_cast<size_t>(k));
  std::sort(order.begin(), order.end(), better);
  return order;
}

/// When set, inference recomputes the leaf gather per query and ranks with a
/// full sort (the pre-cache behavior). Kept as an A/B switch for the Table V
/// efficiency bench.
bool InferenceCacheDisabled() {
  return common::EnvInt("TSPN_DISABLE_INFERENCE_CACHE", 0) != 0;
}

}  // namespace

TspnRa::TspnRa(std::shared_ptr<const data::CityDataset> dataset, TspnRaConfig config)
    : dataset_(std::move(dataset)), config_(config) {
  TSPN_CHECK(dataset_ != nullptr);
  TSPN_CHECK_EQ(config_.dm % 4, 0);

  if (config_.use_quadtree) {
    const spatial::QuadTree& tree = dataset_->quadtree();
    num_tile_ids_ = tree.NumNodes();
    leaf_tile_ids_ = tree.LeafNodes();
  } else {
    grid_ = std::make_unique<spatial::GridIndex>(dataset_->profile().bbox,
                                                 config_.grid_cells_per_side);
    grid_adjacency_ = std::make_unique<roadnet::TileAdjacency>(
        roadnet::TileAdjacency::Build(dataset_->roads(), *grid_));
    num_tile_ids_ = grid_->NumTiles();
    leaf_tile_ids_.resize(static_cast<size_t>(num_tile_ids_));
    for (int64_t i = 0; i < num_tile_ids_; ++i) {
      leaf_tile_ids_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
  }

  BuildImageCache();
  BuildTilePoiLists();

  common::Rng rng(config_.seed);
  net_ = std::make_unique<Net>(config_, num_tile_ids_,
                               static_cast<int64_t>(dataset_->pois().size()),
                               dataset_->profile().num_categories, rng);
}

TspnRa::~TspnRa() = default;

void TspnRa::BuildImageCache() {
  if (!config_.use_imagery) return;
  // Imagery is a property of the simulated world, not of the model: seed the
  // renderer from the dataset profile so differently-seeded models see the
  // same ground truth.
  rs::ImageSynthesizer synthesizer(
      &dataset_->layout(), &dataset_->roads(),
      {.resolution = config_.image_resolution,
       .world_seed = dataset_->profile().seed});
  common::Rng noise_rng(config_.seed ^ 0x401EULL);
  std::vector<rs::Image> images;
  images.reserve(static_cast<size_t>(num_tile_ids_));
  for (int64_t id = 0; id < num_tile_ids_; ++id) {
    geo::BoundingBox bounds =
        config_.use_quadtree ? dataset_->quadtree().node(id).bounds
                             : grid_->TileBounds(id);
    rs::Image image = synthesizer.RenderTile(bounds);
    if (config_.image_noise_fraction > 0.0) {
      rs::AddPixelNoise(image, config_.image_noise_fraction, noise_rng);
    }
    images.push_back(std::move(image));
  }
  tile_images_ = PackImages(images);
}

void TspnRa::BuildTilePoiLists() {
  tile_pois_.assign(leaf_tile_ids_.size(), {});
  poi_tile_.assign(dataset_->pois().size(), 0);
  for (const data::Poi& poi : dataset_->pois()) {
    int64_t candidate;
    if (config_.use_quadtree) {
      candidate = dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(poi.id));
    } else {
      candidate = grid_->TileOf(poi.loc);
    }
    tile_pois_[static_cast<size_t>(candidate)].push_back(poi.id);
    poi_tile_[static_cast<size_t>(poi.id)] = candidate;
  }
}

nn::Tensor TspnRa::TileCosinesFrom(const nn::Tensor& et,
                                   const nn::Tensor& h_tile) const {
  std::vector<int64_t> leaf_rows(leaf_tile_ids_.begin(), leaf_tile_ids_.end());
  nn::Tensor leaf_embeddings = nn::EmbeddingGather(et, leaf_rows);
  return nn::MatVec(leaf_embeddings, nn::L2Normalize(h_tile));
}

nn::Tensor TspnRa::InferenceLeafCosines(const nn::Tensor& h_tile) const {
  if (!leaf_et_cache_.defined()) {
    // Cache disabled (or not yet built): per-query gather, as the seed did.
    return TileCosinesFrom(et_cache_, h_tile);
  }
  return nn::MatVec(leaf_et_cache_, nn::L2Normalize(h_tile));
}

int64_t TspnRa::CandidateTileOfPoi(int64_t poi_id) const {
  return poi_tile_[static_cast<size_t>(poi_id)];
}

const graph::QrpGraph* TspnRa::HistoryGraph(int32_t user, int32_t traj) const {
  // Full-width packing: the old (user << 20 | traj) key silently collided
  // once traj reached 2^20.
  TSPN_CHECK_GE(user, 0);
  TSPN_CHECK_GE(traj, 0);
  int64_t key = (static_cast<int64_t>(user) << 32) |
                static_cast<int64_t>(static_cast<uint32_t>(traj));
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    auto it = graph_cache_.find(key);
    if (it != graph_cache_.end()) return &it->second;
  }
  // Build outside the lock: graph construction is the expensive part, and
  // two workers racing on the same key merely duplicate work — emplace below
  // keeps the first copy. unordered_map nodes are pointer-stable, so the
  // returned pointer survives later inserts.
  std::vector<int64_t> history = dataset_->HistoryPoiIds(user, traj);
  if (static_cast<int64_t>(history.size()) > config_.max_history_checkins) {
    history.erase(history.begin(),
                  history.end() - config_.max_history_checkins);
  }
  graph::QrpGraph graph;
  if (config_.use_quadtree) {
    graph = graph::BuildQrpGraph(dataset_->quadtree(), dataset_->leaf_adjacency(),
                                 dataset_->pois(), history);
  } else {
    graph = graph::BuildQrpGraphFromGrid(*grid_, *grid_adjacency_,
                                         dataset_->pois(), history);
  }
  std::lock_guard<std::mutex> lock(graph_mutex_);
  auto [inserted, unused] = graph_cache_.emplace(key, std::move(graph));
  return &inserted->second;
}

TspnRa::Features TspnRa::ExtractFeatures(const data::SampleRef& sample) const {
  const data::Trajectory& traj = dataset_->trajectory(sample);
  Features f;
  int64_t start = std::max<int64_t>(0, sample.prefix_len - config_.max_seq_len);
  for (int64_t i = start; i < sample.prefix_len; ++i) {
    const data::Checkin& c = traj.checkins[static_cast<size_t>(i)];
    const data::Poi& poi = dataset_->poi(c.poi_id);
    f.poi_ids.push_back(c.poi_id);
    f.poi_cats.push_back(poi.category);
    f.time_slots.push_back(data::TimeSlotOf(c.timestamp));
    if (config_.use_quadtree) {
      f.tile_rows.push_back(dataset_->LeafNodeOfPoi(c.poi_id));
    } else {
      f.tile_rows.push_back(grid_->TileOf(poi.loc));
    }
    double x, y;
    dataset_->profile().bbox.Normalize(poi.loc, &x, &y);
    f.norm_x.push_back(x);
    f.norm_y.push_back(y);
  }
  if (config_.use_graph) {
    f.history_graph = HistoryGraph(sample.user, sample.traj);
  }
  const data::Checkin& target = dataset_->Target(sample);
  f.target_poi = target.poi_id;
  const data::Poi& target_poi = dataset_->poi(target.poi_id);
  if (config_.use_quadtree) {
    f.target_tile_index =
        dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(target.poi_id));
  } else {
    f.target_tile_index = grid_->TileOf(target_poi.loc);
  }
  return f;
}

nn::Tensor TspnRa::ComputeTileEmbeddings() const {
  return net_->tile_encoder.EncodeAll(tile_images_);
}

TspnRa::ForwardOut TspnRa::Forward(const Features& f, const nn::Tensor& et,
                                   common::Rng& rng) const {
  TSPN_CHECK(!f.poi_ids.empty());
  // --- Tile sequence embedding (Sec. IV-A) ----------------------------------
  nn::Tensor tile_seq = nn::EmbeddingGather(et, f.tile_rows);
  if (config_.use_st_encoder) {
    std::vector<nn::Tensor> locs;
    locs.reserve(f.norm_x.size());
    for (size_t i = 0; i < f.norm_x.size(); ++i) {
      locs.push_back(SpatialEncoding(f.norm_x[i], f.norm_y[i], config_.dm,
                                     config_.spatial_scale));
    }
    // The raw sinusoidal encoding has norm sqrt(dm/2); rescale to unit norm
    // so it augments rather than drowns the unit-norm tile embeddings.
    float loc_scale = std::sqrt(2.0f / static_cast<float>(config_.dm));
    tile_seq = nn::Add(tile_seq, nn::MulScalar(nn::StackRows(locs), loc_scale));
    tile_seq = nn::Add(tile_seq, net_->temporal.SlotEmbeddings(f.time_slots));
  }
  // --- POI sequence embedding (Sec. IV-B) -----------------------------------
  nn::Tensor poi_seq = net_->poi_encoder.Encode(f.poi_ids, f.poi_cats);
  if (config_.use_st_encoder) {
    poi_seq = nn::Add(poi_seq, net_->temporal.SlotEmbeddings(f.time_slots));
  }
  // --- Historical graph knowledge (Sec. IV-C) --------------------------------
  nn::Tensor tile_history = net_->null_tile_history;
  nn::Tensor poi_history = net_->null_poi_history;
  if (config_.use_graph && f.history_graph != nullptr && !f.history_graph->empty()) {
    const graph::QrpGraph& g = *f.history_graph;
    std::vector<int64_t> tile_rows(g.tile_ids.begin(), g.tile_ids.end());
    nn::Tensor tile_init = nn::EmbeddingGather(et, tile_rows);
    std::vector<int64_t> cats;
    cats.reserve(g.poi_ids.size());
    for (int64_t pid : g.poi_ids) cats.push_back(dataset_->poi(pid).category);
    nn::Tensor poi_init = net_->poi_encoder.Encode(g.poi_ids, cats);
    QrpEncoder::Output knowledge = net_->qrp.Encode(g, tile_init, poi_init);
    tile_history = knowledge.tile_knowledge;
    poi_history = knowledge.poi_knowledge;
  }
  // --- Attention fusion (Sec. V-A) -------------------------------------------
  ForwardOut out;
  out.h_tile = net_->mp1.Forward(tile_seq, tile_history, rng);
  out.h_poi = net_->mp2.Forward(poi_seq, poi_history, rng);
  return out;
}

std::vector<int64_t> TspnRa::GatherCandidates(
    const std::vector<int64_t>& ranked_tiles, int32_t top_k) const {
  std::vector<int64_t> candidates;
  int64_t limit = std::min<int64_t>(top_k, static_cast<int64_t>(ranked_tiles.size()));
  for (int64_t i = 0; i < limit; ++i) {
    const auto& pois = tile_pois_[static_cast<size_t>(ranked_tiles[static_cast<size_t>(i)])];
    candidates.insert(candidates.end(), pois.begin(), pois.end());
  }
  return candidates;
}

nn::Tensor TspnRa::SampleLoss(const data::SampleRef& sample, const nn::Tensor& et,
                              common::Rng& rng) const {
  Features f = ExtractFeatures(sample);
  ForwardOut fwd = Forward(f, et, rng);

  nn::Tensor loss = nn::Tensor::Scalar(0.0f);
  std::vector<int64_t> candidate_pois;
  nn::Tensor tile_cos_for_prior;

  if (config_.use_two_step) {
    // --- Step 1: tile ranking loss over all leaf candidates ------------------
    nn::Tensor cos_tiles = TileCosinesFrom(et, fwd.h_tile);
    nn::Tensor tile_logits =
        nn::ArcFaceLogits(cos_tiles, f.target_tile_index, config_.arcface_scale,
                          config_.arcface_margin);
    nn::Tensor tile_loss =
        nn::CrossEntropyWithLogits(tile_logits, f.target_tile_index);
    loss = nn::Add(loss, nn::MulScalar(tile_loss, config_.beta));

    // --- Step 2 candidates: POIs in the current top-K tiles (the tile
    // selector acting as negative-sample generator, Sec. V-B). Only the
    // top-K prefix is consumed, so partial selection suffices. ---------------
    std::vector<int64_t> order =
        TopKIndices(cos_tiles.data(), static_cast<int64_t>(leaf_tile_ids_.size()),
                    config_.top_k_tiles);
    candidate_pois = GatherCandidates(order, config_.top_k_tiles);
    // Global random negatives keep never-screened POI embeddings trained
    // (see TspnRaConfig::num_random_negatives).
    int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
    for (int64_t i = 0; i < config_.num_random_negatives; ++i) {
      candidate_pois.push_back(rng.UniformInt(num_pois));
    }
    tile_cos_for_prior = cos_tiles;
  } else {
    // No-two-step ablation: sample negatives from the full POI set.
    int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
    for (int64_t i = 0;
         i < std::min<int64_t>(config_.max_poi_candidates, num_pois); ++i) {
      candidate_pois.push_back(rng.UniformInt(num_pois));
    }
  }

  // Ensure the target is present, dedupe, and cap.
  std::sort(candidate_pois.begin(), candidate_pois.end());
  candidate_pois.erase(std::unique(candidate_pois.begin(), candidate_pois.end()),
                       candidate_pois.end());
  if (static_cast<int64_t>(candidate_pois.size()) > config_.max_poi_candidates) {
    rng.Shuffle(candidate_pois);
    candidate_pois.resize(static_cast<size_t>(config_.max_poi_candidates));
    std::sort(candidate_pois.begin(), candidate_pois.end());
  }
  auto it = std::lower_bound(candidate_pois.begin(), candidate_pois.end(),
                             f.target_poi);
  if (it == candidate_pois.end() || *it != f.target_poi) {
    candidate_pois.insert(it, f.target_poi);
  }
  int64_t target_pos =
      std::lower_bound(candidate_pois.begin(), candidate_pois.end(), f.target_poi) -
      candidate_pois.begin();

  std::vector<int64_t> cats;
  cats.reserve(candidate_pois.size());
  for (int64_t pid : candidate_pois) cats.push_back(dataset_->poi(pid).category);
  nn::Tensor cand_embeddings =
      nn::L2Normalize(net_->poi_encoder.Encode(candidate_pois, cats));
  nn::Tensor cos_pois = nn::MatVec(cand_embeddings, nn::L2Normalize(fwd.h_poi));
  nn::Tensor poi_logits = nn::ArcFaceLogits(
      cos_pois, target_pos, config_.arcface_scale, config_.arcface_margin);
  if (config_.use_two_step) {
    // Hierarchical score fusion: each candidate also carries its tile's
    // stage-1 cosine, weighted by the learnable gamma. This couples the two
    // steps so spatial plausibility keeps discriminating within the
    // screened candidate set.
    const nn::Tensor& leaf_cos = tile_cos_for_prior;
    std::vector<int64_t> cand_tiles;
    cand_tiles.reserve(candidate_pois.size());
    for (int64_t pid : candidate_pois) {
      cand_tiles.push_back(CandidateTileOfPoi(pid));
    }
    nn::Tensor prior = nn::Reshape(
        nn::EmbeddingGather(nn::Reshape(leaf_cos, {NumCandidateTiles(), 1}),
                            cand_tiles),
        {static_cast<int64_t>(cand_tiles.size())});
    poi_logits = nn::Add(
        poi_logits, nn::Mul(nn::MulScalar(net_->tile_prior_weight,
                                          config_.arcface_scale),
                            prior));
  }
  nn::Tensor poi_loss = nn::CrossEntropyWithLogits(poi_logits, target_pos);
  return nn::Add(loss, poi_loss);
}

void TspnRa::EnsureInferenceCaches() const {
  const bool cache_leaf = !InferenceCacheDisabled();
  const int want = cache_leaf ? 1 : 2;
  // Double-checked build so concurrent Recommend calls from the serving
  // workers are safe: the fast path is one acquire load, the build runs once
  // under the mutex, and the release store publishes the cache tensors.
  if (cache_state_.load(std::memory_order_acquire) == want) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_state_.load(std::memory_order_relaxed) == want) return;
  // Inference is always deterministic: dropout off regardless of whether the
  // model was ever trained.
  net_->SetTraining(false);
  nn::NoGradGuard guard;
  et_cache_ = ComputeTileEmbeddings();
  if (cache_leaf) {
    // Gather + normalize the leaf-tile matrix once so every query is a single
    // MatVec against it, instead of re-running EmbeddingGather + L2Normalize.
    std::vector<int64_t> leaf_rows(leaf_tile_ids_.begin(), leaf_tile_ids_.end());
    leaf_et_cache_ =
        nn::L2Normalize(nn::EmbeddingGather(et_cache_, leaf_rows));
    // Same for the POI side: encode + normalize every POI once; per-query
    // stage-2 scoring then just gathers candidate rows. Row i is bitwise
    // identical to L2Normalize(Encode({i}, ...)), so results don't change.
    const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
    std::vector<int64_t> all_pois(static_cast<size_t>(num_pois));
    std::vector<int64_t> all_cats(static_cast<size_t>(num_pois));
    for (int64_t i = 0; i < num_pois; ++i) {
      all_pois[static_cast<size_t>(i)] = i;
      all_cats[static_cast<size_t>(i)] = dataset_->poi(i).category;
    }
    poi_et_cache_ =
        nn::L2Normalize(net_->poi_encoder.Encode(all_pois, all_cats));
  } else {
    leaf_et_cache_ = nn::Tensor();
    poi_et_cache_ = nn::Tensor();
  }
  cache_state_.store(want, std::memory_order_release);
}

std::vector<int64_t> TspnRa::RankTiles(const data::SampleRef& sample) const {
  return RankTilesTopK(sample, static_cast<int64_t>(leaf_tile_ids_.size()));
}

std::vector<int64_t> TspnRa::RankTilesTopK(const data::SampleRef& sample,
                                           int64_t k) const {
  EnsureInferenceCaches();
  nn::NoGradGuard guard;
  // Dropout is off at inference, so the rng is never consumed; a local one
  // (rather than a shared mutable member) keeps const paths race-free.
  common::Rng rng(config_.seed ^ 0xD00DULL);
  Features f = ExtractFeatures(sample);
  ForwardOut fwd = Forward(f, et_cache_, rng);
  nn::Tensor cos_tiles = InferenceLeafCosines(fwd.h_tile);
  return TopKIndices(cos_tiles.data(),
                     static_cast<int64_t>(leaf_tile_ids_.size()), k);
}

int64_t TspnRa::TargetTileIndex(const data::SampleRef& sample) const {
  const data::Checkin& target = dataset_->Target(sample);
  if (config_.use_quadtree) {
    return dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(target.poi_id));
  }
  return grid_->TileOf(dataset_->poi(target.poi_id).loc);
}

int64_t TspnRa::CandidatePoiCount(const data::SampleRef& sample,
                                  int32_t top_k) const {
  std::vector<int64_t> ranked = RankTilesTopK(sample, top_k);
  return static_cast<int64_t>(GatherCandidates(ranked, top_k).size());
}

geo::BoundingBox TspnRa::CandidateTileBounds(int64_t candidate) const {
  if (config_.use_quadtree) {
    return dataset_->quadtree()
        .node(leaf_tile_ids_[static_cast<size_t>(candidate)])
        .bounds;
  }
  return grid_->TileBounds(candidate);
}

std::vector<int64_t> TspnRa::GatherAllowedCandidates(
    const float* cos_tiles, int32_t top_k, int64_t required,
    const eval::ConstraintEvaluator* filter, int64_t max_tiles,
    int64_t* tiles_screened) const {
  const int64_t num_tiles = static_cast<int64_t>(leaf_tile_ids_.size());
  // The degraded-mode cap bounds the whole screen, initial top_k included:
  // under overload the gateway would rather serve a shallower candidate
  // pool than let constraint widening walk every tile in the city.
  const int64_t tile_cap =
      max_tiles > 0 ? std::min<int64_t>(max_tiles, num_tiles) : num_tiles;
  std::vector<int64_t> candidates;
  // Gathers tiles order[consumed, limit) into `candidates`, through the
  // constraint filter when one is active.
  auto gather = [&](const std::vector<int64_t>& order, int64_t consumed,
                    int64_t limit) {
    for (int64_t i = consumed; i < limit; ++i) {
      const int64_t tile = order[static_cast<size_t>(i)];
      if (filter != nullptr &&
          !filter->BoundsMayIntersectFence(CandidateTileBounds(tile))) {
        continue;  // the whole tile lies outside the geo fence
      }
      for (int64_t pid : tile_pois_[static_cast<size_t>(tile)]) {
        if (filter == nullptr || filter->Allows(pid)) candidates.push_back(pid);
      }
    }
  };
  // Constraints are applied before top-k selection, so the screen must keep
  // widening until the allowed pool can fill the request (required = top_n)
  // — not merely until it is non-empty as in the unconstrained case
  // (required = 1, the exact v1 behavior). Widening is incremental: the
  // (score desc, index asc) tile order is a fixed total order, so top-2k's
  // prefix equals top-k and only the newly admitted tiles need gathering;
  // the first widening switches to the full ranking once instead of
  // re-selecting per round.
  int64_t widened = std::min<int64_t>(top_k, tile_cap);
  std::vector<int64_t> order = TopKIndices(cos_tiles, num_tiles, top_k);
  int64_t consumed = widened;
  gather(order, 0, consumed);
  while (static_cast<int64_t>(candidates.size()) < required &&
         widened < tile_cap) {
    widened *= 2;
    if (static_cast<int64_t>(order.size()) < num_tiles) {
      order = TopKIndices(cos_tiles, num_tiles, num_tiles);
    }
    const int64_t limit = std::min<int64_t>(widened, tile_cap);
    gather(order, consumed, limit);
    consumed = limit;
  }
  if (tiles_screened != nullptr) {
    *tiles_screened = std::min<int64_t>(widened, tile_cap);
  }
  return candidates;
}

std::vector<int64_t> TspnRa::AllAllowedPois(
    const eval::ConstraintEvaluator* filter) const {
  const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
  std::vector<int64_t> candidates;
  candidates.reserve(static_cast<size_t>(num_pois));
  for (int64_t id = 0; id < num_pois; ++id) {
    if (filter == nullptr || filter->Allows(id)) candidates.push_back(id);
  }
  return candidates;
}

void TspnRa::FillRankedItems(const std::vector<int64_t>& candidates,
                             const float* scores, int64_t top_n,
                             eval::RecommendResponse* response) const {
  std::vector<int64_t> order = TopKIndices(
      scores, static_cast<int64_t>(candidates.size()), top_n);
  response->items.reserve(order.size());
  for (int64_t idx : order) {
    const int64_t poi = candidates[static_cast<size_t>(idx)];
    response->items.push_back(
        {poi, scores[static_cast<size_t>(idx)],
         config_.use_two_step ? CandidateTileOfPoi(poi) : int64_t{-1}});
  }
}

eval::RecommendResponse TspnRa::ScoredRecommend(
    const eval::RecommendRequest& request, int32_t top_k) const {
  EnsureInferenceCaches();
  nn::NoGradGuard guard;
  common::Rng rng(config_.seed ^ 0xD00DULL);
  Features f = ExtractFeatures(request.sample);
  ForwardOut fwd = Forward(f, et_cache_, rng);

  std::unique_ptr<eval::ConstraintEvaluator> filter =
      eval::MakeConstraintFilter(*dataset_, request);

  eval::RecommendResponse response;
  std::vector<int64_t> candidates;
  nn::Tensor cos_tiles;
  if (config_.use_two_step) {
    response.stages_used = 2;
    cos_tiles = InferenceLeafCosines(fwd.h_tile);
    candidates = GatherAllowedCandidates(
        cos_tiles.data(), top_k, filter != nullptr ? request.top_n : 1,
        filter.get(), request.max_tiles_screened, &response.tiles_screened);
  } else {
    response.stages_used = 1;
    candidates = AllAllowedPois(filter.get());
  }
  if (candidates.empty()) return response;

  nn::Tensor cand_embeddings;
  if (poi_et_cache_.defined()) {
    cand_embeddings = nn::EmbeddingGather(poi_et_cache_, candidates);
  } else {
    std::vector<int64_t> cats;
    cats.reserve(candidates.size());
    for (int64_t pid : candidates) cats.push_back(dataset_->poi(pid).category);
    cand_embeddings = nn::L2Normalize(net_->poi_encoder.Encode(candidates, cats));
  }
  nn::Tensor cos_pois = nn::MatVec(cand_embeddings, nn::L2Normalize(fwd.h_poi));

  std::vector<float> scores(candidates.size());
  const float* pc = cos_pois.data();
  if (config_.use_two_step) {
    // Same hierarchical score fusion as training: stage-1 tile cosine as a
    // gamma-weighted prior on each candidate.
    const float gamma = net_->tile_prior_weight.at(0);
    const float* tc = cos_tiles.data();
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = pc[i] + gamma * tc[CandidateTileOfPoi(candidates[i])];
    }
  } else {
    std::copy_n(pc, candidates.size(), scores.data());
  }

  // Only the top-N ordering is returned; FillRankedItems selects instead of
  // sorting all candidates.
  FillRankedItems(candidates, scores.data(), request.top_n, &response);
  return response;
}

std::vector<int64_t> TspnRa::RecommendWithK(const data::SampleRef& sample,
                                            int64_t top_n, int32_t top_k) const {
  eval::RecommendRequest request;
  request.sample = sample;
  request.top_n = top_n;
  return ScoredRecommend(request, top_k).PoiIds();
}

eval::RecommendResponse TspnRa::RecommendImpl(
    const eval::RecommendRequest& request) const {
  return ScoredRecommend(request, config_.top_k_tiles);
}

std::vector<eval::RecommendResponse> TspnRa::RecommendBatchImpl(
    common::Span<eval::RecommendRequest> requests) const {
  const int64_t batch = static_cast<int64_t>(requests.size());
  if (batch == 0) return {};
  EnsureInferenceCaches();
  if (!leaf_et_cache_.defined() || !poi_et_cache_.defined()) {
    // Cache-disabled A/B mode keeps the seed's per-query gather path; defer
    // to the serial fallback rather than duplicating it here.
    return eval::NextPoiModel::RecommendBatchImpl(requests);
  }
  nn::NoGradGuard guard;
  common::Rng rng(config_.seed ^ 0xD00DULL);
  const int64_t dm = config_.dm;
  const int64_t num_tiles = static_cast<int64_t>(leaf_tile_ids_.size());
  const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());

  // The sequence encoders are inherently per-query; the batching win is
  // downstream. Stack every query's L2-normalized fused outputs into
  // [batch, dm] matrices...
  std::vector<float> h_tiles(static_cast<size_t>(batch * dm));
  std::vector<float> h_pois(static_cast<size_t>(batch * dm));
  for (int64_t b = 0; b < batch; ++b) {
    Features f = ExtractFeatures(requests[static_cast<size_t>(b)].sample);
    ForwardOut fwd = Forward(f, et_cache_, rng);
    nn::Tensor ht = nn::L2Normalize(fwd.h_tile);
    nn::Tensor hp = nn::L2Normalize(fwd.h_poi);
    std::copy_n(ht.data(), dm, h_tiles.data() + b * dm);
    std::copy_n(hp.data(), dm, h_pois.data() + b * dm);
  }

  // ...then score all queries against the cached normalized tile and POI
  // matrices with one GEMM per prediction stage. Per-element math matches the
  // per-query MatVec (identical accumulation order in the kernel), so the
  // per-request results below are bitwise-reproducible against
  // RecommendImpl() — constraints and top_n apply per request, after the
  // shared GEMMs.
  std::vector<float> cos_tiles;
  if (config_.use_two_step) {
    cos_tiles.resize(static_cast<size_t>(batch * num_tiles));
    nn::kernels::DotProductGemm(h_tiles.data(), leaf_et_cache_.data(),
                            cos_tiles.data(), batch, num_tiles, dm,
                            /*accumulate=*/false);
  }
  std::vector<float> cos_pois(static_cast<size_t>(batch * num_pois));
  nn::kernels::DotProductGemm(h_pois.data(), poi_et_cache_.data(), cos_pois.data(),
                          batch, num_pois, dm, /*accumulate=*/false);

  const float gamma = net_->tile_prior_weight.at(0);
  std::vector<eval::RecommendResponse> responses(static_cast<size_t>(batch));
  for (int64_t b = 0; b < batch; ++b) {
    const eval::RecommendRequest& request = requests[static_cast<size_t>(b)];
    eval::RecommendResponse& response = responses[static_cast<size_t>(b)];
    std::unique_ptr<eval::ConstraintEvaluator> filter =
        eval::MakeConstraintFilter(*dataset_, request);
    std::vector<int64_t> candidates;
    const float* tc = cos_tiles.empty() ? nullptr : cos_tiles.data() + b * num_tiles;
    if (config_.use_two_step) {
      response.stages_used = 2;
      candidates = GatherAllowedCandidates(
          tc, config_.top_k_tiles, filter != nullptr ? request.top_n : 1,
          filter.get(), request.max_tiles_screened, &response.tiles_screened);
    } else {
      response.stages_used = 1;
      candidates = AllAllowedPois(filter.get());
    }
    if (candidates.empty()) continue;

    const float* pc = cos_pois.data() + b * num_pois;
    std::vector<float> fused(candidates.size());
    if (config_.use_two_step) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        fused[i] = pc[candidates[i]] +
                   gamma * tc[CandidateTileOfPoi(candidates[i])];
      }
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) {
        fused[i] = pc[candidates[i]];
      }
    }
    FillRankedItems(candidates, fused.data(), request.top_n, &response);
  }
  return responses;
}

int64_t TspnRa::ParameterCount() const { return net_->ParameterCount(); }

std::vector<nn::Tensor> TspnRa::Parameters() const { return net_->Parameters(); }

void TspnRa::SaveWeights(const std::string& path) const {
  std::vector<nn::Tensor> params = net_->Parameters();
  nn::SaveParametersToFile(params, path);
}

bool TspnRa::LoadWeights(const std::string& path) {
  std::vector<nn::Tensor> params = net_->Parameters();
  if (!nn::LoadParametersFromFile(params, path)) return false;
  cache_state_.store(0);  // ET must be recomputed from the loaded weights
  return true;
}

void TspnRa::SaveState(std::ostream& out) const {
  nn::SaveParameters(net_->Parameters(), out);
}

bool TspnRa::LoadState(std::istream& in) {
  // Atomic load: a corrupted payload must leave the live weights (and the
  // inference caches built from them) untouched.
  std::vector<nn::Tensor> params = net_->Parameters();
  if (!nn::LoadParametersAtomic(params, in)) return false;
  cache_state_.store(0);  // ET must be recomputed from the loaded weights
  return true;
}

}  // namespace tspn::core
