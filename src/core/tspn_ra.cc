#include "core/tspn_ra.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/env.h"
#include "core/tspn_ra_internal.h"
#include "eval/constraints.h"
#include "nn/kernels.h"
#include "nn/ops.h"
#include "nn/serialize.h"

namespace tspn::core {

namespace {

/// Indices of the k largest entries of scores[0..n), ordered by (score desc,
/// index asc). k >= n degenerates to a full deterministic ranking; k < n uses
/// nth_element + a sort of only the kept prefix instead of sorting all n.
std::vector<int64_t> TopKIndices(const float* scores, int64_t n, int64_t k) {
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  auto better = [scores](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  if (k >= n) {
    std::sort(order.begin(), order.end(), better);
    return order;
  }
  std::nth_element(order.begin(), order.begin() + k, order.end(), better);
  order.resize(static_cast<size_t>(k));
  std::sort(order.begin(), order.end(), better);
  return order;
}

/// When set, inference recomputes the leaf gather per query and ranks with a
/// full sort (the pre-cache behavior). Kept as an A/B switch for the Table V
/// efficiency bench.
bool InferenceCacheDisabled() {
  return common::EnvInt("TSPN_DISABLE_INFERENCE_CACHE", 0) != 0;
}

/// When set, RecommendBatch runs the sequence encoders one sample at a time
/// (the pre-packing behavior). Kept as an A/B switch for the batched-encoder
/// throughput bench row.
bool BatchedEncoderDisabled() {
  return common::EnvInt("TSPN_DISABLE_BATCHED_ENCODER", 0) != 0;
}

/// Requests int8 scoring GEMMs against quantized leaf/POI caches. Subject to
/// the build-time top-k parity gate (see BuildQuantCachesLocked); read at
/// cache-build time like the cache switch above.
bool QuantScoringRequested() {
  return common::EnvInt("TSPN_QUANT_SCORING", 0) != 0;
}

/// How many held-out samples the quant parity gate replays. Covers every
/// sample the parity tests and typical eval slices draw from while keeping
/// the one-time gate cost bounded on big deployments.
constexpr size_t kQuantGateProbes = 128;

/// Sound upper bound on |fp32_dot - dequantized_int8_dot| for one
/// (query, cache-row) pair. Writing each vector as x = s*q + e with
/// |e_i| <= s/2 (symmetric round-to-nearest):
///
///   |err| <= sy*sz*((L1y + L1z)/2 + dm/4)
///
/// where L1 is the code L1 norm. Inflated slightly to also absorb the float
/// rounding of the dequant multiplies and of this bound arithmetic itself —
/// a looser bound only rescues a few more rows in fp32, never miscounts.
inline float QuantPairEps(float sy, float l1y, float sz, float l1z,
                          int64_t dm) {
  return sy * sz * (0.5f * (l1y + l1z) + 0.25f * static_cast<float>(dm)) *
             1.0001f +
         1e-6f;
}

}  // namespace

TspnRa::TspnRa(std::shared_ptr<const data::CityDataset> dataset, TspnRaConfig config)
    : dataset_(std::move(dataset)), config_(config) {
  TSPN_CHECK(dataset_ != nullptr);
  TSPN_CHECK_EQ(config_.dm % 4, 0);

  if (config_.use_quadtree) {
    const spatial::QuadTree& tree = dataset_->quadtree();
    num_tile_ids_ = tree.NumNodes();
    leaf_tile_ids_ = tree.LeafNodes();
  } else {
    grid_ = std::make_unique<spatial::GridIndex>(dataset_->profile().bbox,
                                                 config_.grid_cells_per_side);
    grid_adjacency_ = std::make_unique<roadnet::TileAdjacency>(
        roadnet::TileAdjacency::Build(dataset_->roads(), *grid_));
    num_tile_ids_ = grid_->NumTiles();
    leaf_tile_ids_.resize(static_cast<size_t>(num_tile_ids_));
    for (int64_t i = 0; i < num_tile_ids_; ++i) {
      leaf_tile_ids_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
  }

  BuildImageCache();
  BuildTilePoiLists();

  common::Rng rng(config_.seed);
  net_ = std::make_unique<Net>(config_, num_tile_ids_,
                               static_cast<int64_t>(dataset_->pois().size()),
                               dataset_->profile().num_categories, rng);
}

TspnRa::~TspnRa() = default;

void TspnRa::BuildImageCache() {
  if (!config_.use_imagery) return;
  // Imagery is a property of the simulated world, not of the model: seed the
  // renderer from the dataset profile so differently-seeded models see the
  // same ground truth.
  rs::ImageSynthesizer synthesizer(
      &dataset_->layout(), &dataset_->roads(),
      {.resolution = config_.image_resolution,
       .world_seed = dataset_->profile().seed});
  common::Rng noise_rng(config_.seed ^ 0x401EULL);
  std::vector<rs::Image> images;
  images.reserve(static_cast<size_t>(num_tile_ids_));
  for (int64_t id = 0; id < num_tile_ids_; ++id) {
    geo::BoundingBox bounds =
        config_.use_quadtree ? dataset_->quadtree().node(id).bounds
                             : grid_->TileBounds(id);
    rs::Image image = synthesizer.RenderTile(bounds);
    if (config_.image_noise_fraction > 0.0) {
      rs::AddPixelNoise(image, config_.image_noise_fraction, noise_rng);
    }
    images.push_back(std::move(image));
  }
  tile_images_ = PackImages(images);
}

void TspnRa::BuildTilePoiLists() {
  tile_pois_.assign(leaf_tile_ids_.size(), {});
  poi_tile_.assign(dataset_->pois().size(), 0);
  for (const data::Poi& poi : dataset_->pois()) {
    int64_t candidate;
    if (config_.use_quadtree) {
      candidate = dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(poi.id));
    } else {
      candidate = grid_->TileOf(poi.loc);
    }
    tile_pois_[static_cast<size_t>(candidate)].push_back(poi.id);
    poi_tile_[static_cast<size_t>(poi.id)] = candidate;
  }
}

nn::Tensor TspnRa::TileCosinesFrom(const nn::Tensor& et,
                                   const nn::Tensor& h_tile) const {
  std::vector<int64_t> leaf_rows(leaf_tile_ids_.begin(), leaf_tile_ids_.end());
  nn::Tensor leaf_embeddings = nn::EmbeddingGather(et, leaf_rows);
  return nn::MatVec(leaf_embeddings, nn::L2Normalize(h_tile));
}

nn::Tensor TspnRa::InferenceLeafCosines(const nn::Tensor& h_tile) const {
  if (!leaf_et_cache_.defined()) {
    // Cache disabled (or not yet built): per-query gather, as the seed did.
    return TileCosinesFrom(et_cache_, h_tile);
  }
  return nn::MatVec(leaf_et_cache_, nn::L2Normalize(h_tile));
}

int64_t TspnRa::CandidateTileOfPoi(int64_t poi_id) const {
  return poi_tile_[static_cast<size_t>(poi_id)];
}

const graph::QrpGraph* TspnRa::HistoryGraph(int32_t user, int32_t traj) const {
  // Full-width packing: the old (user << 20 | traj) key silently collided
  // once traj reached 2^20.
  TSPN_CHECK_GE(user, 0);
  TSPN_CHECK_GE(traj, 0);
  int64_t key = (static_cast<int64_t>(user) << 32) |
                static_cast<int64_t>(static_cast<uint32_t>(traj));
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    auto it = graph_cache_.find(key);
    if (it != graph_cache_.end()) return &it->second;
  }
  // Build outside the lock: graph construction is the expensive part, and
  // two workers racing on the same key merely duplicate work — emplace below
  // keeps the first copy. unordered_map nodes are pointer-stable, so the
  // returned pointer survives later inserts.
  std::vector<int64_t> history = dataset_->HistoryPoiIds(user, traj);
  if (static_cast<int64_t>(history.size()) > config_.max_history_checkins) {
    history.erase(history.begin(),
                  history.end() - config_.max_history_checkins);
  }
  graph::QrpGraph graph;
  if (config_.use_quadtree) {
    graph = graph::BuildQrpGraph(dataset_->quadtree(), dataset_->leaf_adjacency(),
                                 dataset_->pois(), history);
  } else {
    graph = graph::BuildQrpGraphFromGrid(*grid_, *grid_adjacency_,
                                         dataset_->pois(), history);
  }
  std::lock_guard<std::mutex> lock(graph_mutex_);
  auto [inserted, unused] = graph_cache_.emplace(key, std::move(graph));
  return &inserted->second;
}

TspnRa::Features TspnRa::ExtractFeatures(const data::SampleRef& sample) const {
  const data::Trajectory& traj = dataset_->trajectory(sample);
  Features f;
  int64_t start = std::max<int64_t>(0, sample.prefix_len - config_.max_seq_len);
  for (int64_t i = start; i < sample.prefix_len; ++i) {
    const data::Checkin& c = traj.checkins[static_cast<size_t>(i)];
    const data::Poi& poi = dataset_->poi(c.poi_id);
    f.poi_ids.push_back(c.poi_id);
    f.poi_cats.push_back(poi.category);
    f.time_slots.push_back(data::TimeSlotOf(c.timestamp));
    if (config_.use_quadtree) {
      f.tile_rows.push_back(dataset_->LeafNodeOfPoi(c.poi_id));
    } else {
      f.tile_rows.push_back(grid_->TileOf(poi.loc));
    }
    double x, y;
    dataset_->profile().bbox.Normalize(poi.loc, &x, &y);
    f.norm_x.push_back(x);
    f.norm_y.push_back(y);
  }
  if (config_.use_graph) {
    f.history_graph = HistoryGraph(sample.user, sample.traj);
  }
  const data::Checkin& target = dataset_->Target(sample);
  f.target_poi = target.poi_id;
  const data::Poi& target_poi = dataset_->poi(target.poi_id);
  if (config_.use_quadtree) {
    f.target_tile_index =
        dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(target.poi_id));
  } else {
    f.target_tile_index = grid_->TileOf(target_poi.loc);
  }
  return f;
}

bool TspnRa::FeaturesFromCheckins(common::Span<const data::Checkin> history,
                                  const data::Checkin& target,
                                  Features* out) const {
  const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
  if (history.empty()) return false;
  if (target.poi_id < 0 || target.poi_id >= num_pois) return false;
  for (const data::Checkin& c : history) {
    if (c.poi_id < 0 || c.poi_id >= num_pois) return false;
  }
  Features f;
  size_t start = history.size() > static_cast<size_t>(config_.max_seq_len)
                     ? history.size() - static_cast<size_t>(config_.max_seq_len)
                     : 0;
  for (size_t i = start; i < history.size(); ++i) {
    const data::Checkin& c = history[i];
    const data::Poi& poi = dataset_->poi(c.poi_id);
    f.poi_ids.push_back(c.poi_id);
    f.poi_cats.push_back(poi.category);
    f.time_slots.push_back(data::TimeSlotOf(c.timestamp));
    if (config_.use_quadtree) {
      f.tile_rows.push_back(dataset_->LeafNodeOfPoi(c.poi_id));
    } else {
      f.tile_rows.push_back(grid_->TileOf(poi.loc));
    }
    double x, y;
    dataset_->profile().bbox.Normalize(poi.loc, &x, &y);
    f.norm_x.push_back(x);
    f.norm_y.push_back(y);
  }
  // No history graph: streamed prefixes carry no trajectory identity to key
  // the QR-P cache on, so the online loss runs graph-free (Forward already
  // handles a null graph via the learned null-history embeddings).
  f.history_graph = nullptr;
  f.target_poi = target.poi_id;
  const data::Poi& target_poi = dataset_->poi(target.poi_id);
  if (config_.use_quadtree) {
    f.target_tile_index =
        dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(target.poi_id));
  } else {
    f.target_tile_index = grid_->TileOf(target_poi.loc);
  }
  *out = std::move(f);
  return true;
}

nn::Tensor TspnRa::ComputeTileEmbeddings() const {
  return net_->tile_encoder.EncodeAll(tile_images_);
}

TspnRa::ForwardOut TspnRa::Forward(const Features& f, const nn::Tensor& et,
                                   common::Rng& rng) const {
  TSPN_CHECK(!f.poi_ids.empty());
  // --- Tile sequence embedding (Sec. IV-A) ----------------------------------
  nn::Tensor tile_seq = nn::EmbeddingGather(et, f.tile_rows);
  if (config_.use_st_encoder) {
    std::vector<nn::Tensor> locs;
    locs.reserve(f.norm_x.size());
    for (size_t i = 0; i < f.norm_x.size(); ++i) {
      locs.push_back(SpatialEncoding(f.norm_x[i], f.norm_y[i], config_.dm,
                                     config_.spatial_scale));
    }
    // The raw sinusoidal encoding has norm sqrt(dm/2); rescale to unit norm
    // so it augments rather than drowns the unit-norm tile embeddings.
    float loc_scale = std::sqrt(2.0f / static_cast<float>(config_.dm));
    tile_seq = nn::Add(tile_seq, nn::MulScalar(nn::StackRows(locs), loc_scale));
    tile_seq = nn::Add(tile_seq, net_->temporal.SlotEmbeddings(f.time_slots));
  }
  // --- POI sequence embedding (Sec. IV-B) -----------------------------------
  nn::Tensor poi_seq = net_->poi_encoder.Encode(f.poi_ids, f.poi_cats);
  if (config_.use_st_encoder) {
    poi_seq = nn::Add(poi_seq, net_->temporal.SlotEmbeddings(f.time_slots));
  }
  // --- Historical graph knowledge (Sec. IV-C) --------------------------------
  nn::Tensor tile_history = net_->null_tile_history;
  nn::Tensor poi_history = net_->null_poi_history;
  if (config_.use_graph && f.history_graph != nullptr && !f.history_graph->empty()) {
    const graph::QrpGraph& g = *f.history_graph;
    std::vector<int64_t> tile_rows(g.tile_ids.begin(), g.tile_ids.end());
    nn::Tensor tile_init = nn::EmbeddingGather(et, tile_rows);
    std::vector<int64_t> cats;
    cats.reserve(g.poi_ids.size());
    for (int64_t pid : g.poi_ids) cats.push_back(dataset_->poi(pid).category);
    nn::Tensor poi_init = net_->poi_encoder.Encode(g.poi_ids, cats);
    QrpEncoder::Output knowledge = net_->qrp.Encode(g, tile_init, poi_init);
    tile_history = knowledge.tile_knowledge;
    poi_history = knowledge.poi_knowledge;
  }
  // --- Attention fusion (Sec. V-A) -------------------------------------------
  ForwardOut out;
  out.h_tile = net_->mp1.Forward(tile_seq, tile_history, rng);
  out.h_poi = net_->mp2.Forward(poi_seq, poi_history, rng);
  return out;
}

TspnRa::BatchForwardOut TspnRa::ForwardBatch(
    const std::vector<Features>& features, const nn::Tensor& et) const {
  TSPN_CHECK(!features.empty());
  const size_t batch = features.size();
  // Concatenate every sample's prefix sequence row-wise; `offsets` keeps the
  // segment boundaries for the stages that must not cross samples.
  std::vector<int64_t> offsets(batch + 1, 0);
  std::vector<int64_t> all_tile_rows, all_poi_ids, all_poi_cats, all_slots;
  std::vector<double> all_x, all_y;
  for (size_t b = 0; b < batch; ++b) {
    const Features& f = features[b];
    TSPN_CHECK(!f.poi_ids.empty());
    offsets[b + 1] = offsets[b] + static_cast<int64_t>(f.poi_ids.size());
    all_tile_rows.insert(all_tile_rows.end(), f.tile_rows.begin(),
                         f.tile_rows.end());
    all_poi_ids.insert(all_poi_ids.end(), f.poi_ids.begin(), f.poi_ids.end());
    all_poi_cats.insert(all_poi_cats.end(), f.poi_cats.begin(),
                        f.poi_cats.end());
    all_slots.insert(all_slots.end(), f.time_slots.begin(), f.time_slots.end());
    all_x.insert(all_x.end(), f.norm_x.begin(), f.norm_x.end());
    all_y.insert(all_y.end(), f.norm_y.begin(), f.norm_y.end());
  }
  // The sequence embeddings (Secs. IV-A/IV-B) are row-wise gathers, adds and
  // scales, so the whole pack goes through them in one call each — bitwise
  // equal per row to the per-sample path.
  nn::Tensor tile_seq = nn::EmbeddingGather(et, all_tile_rows);
  if (config_.use_st_encoder) {
    std::vector<nn::Tensor> locs;
    locs.reserve(all_x.size());
    for (size_t i = 0; i < all_x.size(); ++i) {
      locs.push_back(SpatialEncoding(all_x[i], all_y[i], config_.dm,
                                     config_.spatial_scale));
    }
    float loc_scale = std::sqrt(2.0f / static_cast<float>(config_.dm));
    tile_seq = nn::Add(tile_seq, nn::MulScalar(nn::StackRows(locs), loc_scale));
    tile_seq = nn::Add(tile_seq, net_->temporal.SlotEmbeddings(all_slots));
  }
  nn::Tensor poi_seq = net_->poi_encoder.Encode(all_poi_ids, all_poi_cats);
  if (config_.use_st_encoder) {
    poi_seq = nn::Add(poi_seq, net_->temporal.SlotEmbeddings(all_slots));
  }
  // Historical knowledge (Sec. IV-C) stays per sample — each history graph
  // has its own structure — but the encodings are packed row-wise so the
  // fusion stage can slice them per segment.
  std::vector<nn::Tensor> tile_hists, poi_hists;
  std::vector<int64_t> tile_hist_offsets(batch + 1, 0);
  std::vector<int64_t> poi_hist_offsets(batch + 1, 0);
  tile_hists.reserve(batch);
  poi_hists.reserve(batch);
  for (size_t b = 0; b < batch; ++b) {
    const Features& f = features[b];
    nn::Tensor tile_history = net_->null_tile_history;
    nn::Tensor poi_history = net_->null_poi_history;
    if (config_.use_graph && f.history_graph != nullptr &&
        !f.history_graph->empty()) {
      const graph::QrpGraph& g = *f.history_graph;
      std::vector<int64_t> tile_rows(g.tile_ids.begin(), g.tile_ids.end());
      nn::Tensor tile_init = nn::EmbeddingGather(et, tile_rows);
      std::vector<int64_t> cats;
      cats.reserve(g.poi_ids.size());
      for (int64_t pid : g.poi_ids) cats.push_back(dataset_->poi(pid).category);
      nn::Tensor poi_init = net_->poi_encoder.Encode(g.poi_ids, cats);
      QrpEncoder::Output knowledge = net_->qrp.Encode(g, tile_init, poi_init);
      tile_history = knowledge.tile_knowledge;
      poi_history = knowledge.poi_knowledge;
    }
    tile_hist_offsets[b + 1] = tile_hist_offsets[b] + tile_history.dim(0);
    poi_hist_offsets[b + 1] = poi_hist_offsets[b] + poi_history.dim(0);
    tile_hists.push_back(std::move(tile_history));
    poi_hists.push_back(std::move(poi_history));
  }
  nn::Tensor tile_hist = nn::ConcatRows(tile_hists);
  nn::Tensor poi_hist = nn::ConcatRows(poi_hists);
  // Attention fusion (Sec. V-A) over the pack: projections, norms and
  // feed-forward as single GEMMs, per-segment softmax inside.
  BatchForwardOut out;
  out.h_tile =
      net_->mp1.ForwardPacked(tile_seq, offsets, tile_hist, tile_hist_offsets);
  out.h_poi =
      net_->mp2.ForwardPacked(poi_seq, offsets, poi_hist, poi_hist_offsets);
  return out;
}

std::vector<int64_t> TspnRa::GatherCandidates(
    const std::vector<int64_t>& ranked_tiles, int32_t top_k) const {
  std::vector<int64_t> candidates;
  int64_t limit = std::min<int64_t>(top_k, static_cast<int64_t>(ranked_tiles.size()));
  for (int64_t i = 0; i < limit; ++i) {
    const auto& pois = tile_pois_[static_cast<size_t>(ranked_tiles[static_cast<size_t>(i)])];
    candidates.insert(candidates.end(), pois.begin(), pois.end());
  }
  return candidates;
}

nn::Tensor TspnRa::SampleLoss(const data::SampleRef& sample, const nn::Tensor& et,
                              common::Rng& rng) const {
  return LossFromFeatures(ExtractFeatures(sample), et, rng);
}

nn::Tensor TspnRa::LossFromFeatures(const Features& f, const nn::Tensor& et,
                                    common::Rng& rng) const {
  ForwardOut fwd = Forward(f, et, rng);

  nn::Tensor loss = nn::Tensor::Scalar(0.0f);
  std::vector<int64_t> candidate_pois;
  nn::Tensor tile_cos_for_prior;

  if (config_.use_two_step) {
    // --- Step 1: tile ranking loss over all leaf candidates ------------------
    nn::Tensor cos_tiles = TileCosinesFrom(et, fwd.h_tile);
    nn::Tensor tile_logits =
        nn::ArcFaceLogits(cos_tiles, f.target_tile_index, config_.arcface_scale,
                          config_.arcface_margin);
    nn::Tensor tile_loss =
        nn::CrossEntropyWithLogits(tile_logits, f.target_tile_index);
    loss = nn::Add(loss, nn::MulScalar(tile_loss, config_.beta));

    // --- Step 2 candidates: POIs in the current top-K tiles (the tile
    // selector acting as negative-sample generator, Sec. V-B). Only the
    // top-K prefix is consumed, so partial selection suffices. ---------------
    std::vector<int64_t> order =
        TopKIndices(cos_tiles.data(), static_cast<int64_t>(leaf_tile_ids_.size()),
                    config_.top_k_tiles);
    candidate_pois = GatherCandidates(order, config_.top_k_tiles);
    // Global random negatives keep never-screened POI embeddings trained
    // (see TspnRaConfig::num_random_negatives).
    int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
    for (int64_t i = 0; i < config_.num_random_negatives; ++i) {
      candidate_pois.push_back(rng.UniformInt(num_pois));
    }
    tile_cos_for_prior = cos_tiles;
  } else {
    // No-two-step ablation: sample negatives from the full POI set.
    int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
    for (int64_t i = 0;
         i < std::min<int64_t>(config_.max_poi_candidates, num_pois); ++i) {
      candidate_pois.push_back(rng.UniformInt(num_pois));
    }
  }

  // Ensure the target is present, dedupe, and cap.
  std::sort(candidate_pois.begin(), candidate_pois.end());
  candidate_pois.erase(std::unique(candidate_pois.begin(), candidate_pois.end()),
                       candidate_pois.end());
  if (static_cast<int64_t>(candidate_pois.size()) > config_.max_poi_candidates) {
    rng.Shuffle(candidate_pois);
    candidate_pois.resize(static_cast<size_t>(config_.max_poi_candidates));
    std::sort(candidate_pois.begin(), candidate_pois.end());
  }
  auto it = std::lower_bound(candidate_pois.begin(), candidate_pois.end(),
                             f.target_poi);
  if (it == candidate_pois.end() || *it != f.target_poi) {
    candidate_pois.insert(it, f.target_poi);
  }
  int64_t target_pos =
      std::lower_bound(candidate_pois.begin(), candidate_pois.end(), f.target_poi) -
      candidate_pois.begin();

  std::vector<int64_t> cats;
  cats.reserve(candidate_pois.size());
  for (int64_t pid : candidate_pois) cats.push_back(dataset_->poi(pid).category);
  nn::Tensor cand_embeddings =
      nn::L2Normalize(net_->poi_encoder.Encode(candidate_pois, cats));
  nn::Tensor cos_pois = nn::MatVec(cand_embeddings, nn::L2Normalize(fwd.h_poi));
  nn::Tensor poi_logits = nn::ArcFaceLogits(
      cos_pois, target_pos, config_.arcface_scale, config_.arcface_margin);
  if (config_.use_two_step) {
    // Hierarchical score fusion: each candidate also carries its tile's
    // stage-1 cosine, weighted by the learnable gamma. This couples the two
    // steps so spatial plausibility keeps discriminating within the
    // screened candidate set.
    const nn::Tensor& leaf_cos = tile_cos_for_prior;
    std::vector<int64_t> cand_tiles;
    cand_tiles.reserve(candidate_pois.size());
    for (int64_t pid : candidate_pois) {
      cand_tiles.push_back(CandidateTileOfPoi(pid));
    }
    nn::Tensor prior = nn::Reshape(
        nn::EmbeddingGather(nn::Reshape(leaf_cos, {NumCandidateTiles(), 1}),
                            cand_tiles),
        {static_cast<int64_t>(cand_tiles.size())});
    poi_logits = nn::Add(
        poi_logits, nn::Mul(nn::MulScalar(net_->tile_prior_weight,
                                          config_.arcface_scale),
                            prior));
  }
  nn::Tensor poi_loss = nn::CrossEntropyWithLogits(poi_logits, target_pos);
  return nn::Add(loss, poi_loss);
}

void TspnRa::EnsureInferenceCaches() const {
  const bool cache_leaf = !InferenceCacheDisabled();
  const bool want_quant = cache_leaf && QuantScoringRequested();
  const int want = cache_leaf ? (want_quant ? 3 : 1) : 2;
  // Double-checked build so concurrent Recommend calls from the serving
  // workers are safe: the fast path is one acquire load, the build runs once
  // under the mutex, and the release store publishes the cache tensors.
  if (cache_state_.load(std::memory_order_acquire) == want) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_state_.load(std::memory_order_relaxed) == want) return;
  // Inference is always deterministic: dropout off regardless of whether the
  // model was ever trained.
  net_->SetTraining(false);
  nn::NoGradGuard guard;
  et_cache_ = ComputeTileEmbeddings();
  if (cache_leaf) {
    // Gather + normalize the leaf-tile matrix once so every query is a single
    // MatVec against it, instead of re-running EmbeddingGather + L2Normalize.
    std::vector<int64_t> leaf_rows(leaf_tile_ids_.begin(), leaf_tile_ids_.end());
    leaf_et_cache_ =
        nn::L2Normalize(nn::EmbeddingGather(et_cache_, leaf_rows));
    // Same for the POI side: encode + normalize every POI once; per-query
    // stage-2 scoring then just gathers candidate rows. Row i is bitwise
    // identical to L2Normalize(Encode({i}, ...)), so results don't change.
    const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
    std::vector<int64_t> all_pois(static_cast<size_t>(num_pois));
    std::vector<int64_t> all_cats(static_cast<size_t>(num_pois));
    for (int64_t i = 0; i < num_pois; ++i) {
      all_pois[static_cast<size_t>(i)] = i;
      all_cats[static_cast<size_t>(i)] = dataset_->poi(i).category;
    }
    poi_et_cache_ =
        nn::L2Normalize(net_->poi_encoder.Encode(all_pois, all_cats));
  } else {
    leaf_et_cache_ = nn::Tensor();
    poi_et_cache_ = nn::Tensor();
  }
  if (want_quant) {
    // The gate decides whether int8 may actually serve; a false verdict
    // leaves the fp32 tensors in charge (graceful fallback) while the mode
    // tag still records that quant was *requested*, so the build is not
    // retried on every call.
    quant_scoring_ = BuildQuantCachesLocked();
  } else {
    quant_scoring_ = false;
  }
  if (!quant_scoring_) {
    leaf_q_codes_.clear();
    leaf_q_scales_.clear();
    leaf_q_l1_.clear();
    poi_q_codes_.clear();
    poi_q_scales_.clear();
    poi_q_l1_.clear();
  }
  cache_state_.store(want, std::memory_order_release);
}

TspnRa::QuantRow TspnRa::QuantizeQueryRow(const float* row, int64_t dm) {
  QuantRow q;
  q.codes.resize(static_cast<size_t>(dm));
  nn::kernels::QuantizeRowsInt8(row, 1, dm, q.codes.data(), &q.scale);
  float l1 = 0.0f;
  for (int64_t i = 0; i < dm; ++i) {
    l1 += std::abs(static_cast<float>(q.codes[static_cast<size_t>(i)]));
  }
  q.l1 = l1;
  return q;
}

void TspnRa::ExactTileHybrid(const float* ht_row, const QuantRow& q, int64_t k,
                             float* tile_scores) const {
  const int64_t num_tiles = static_cast<int64_t>(leaf_tile_ids_.size());
  const int64_t dm = config_.dm;
  if (num_tiles == 0 || k <= 0) return;
  k = std::min(k, num_tiles);
  std::vector<float> eps(static_cast<size_t>(num_tiles));
  std::vector<float> lb(static_cast<size_t>(num_tiles));
  for (int64_t j = 0; j < num_tiles; ++j) {
    const size_t js = static_cast<size_t>(j);
    eps[js] = QuantPairEps(q.scale, q.l1, leaf_q_scales_[js], leaf_q_l1_[js], dm);
    lb[js] = tile_scores[j] - eps[js];
  }
  std::vector<float> tmp(lb);
  std::nth_element(tmp.begin(), tmp.begin() + (k - 1), tmp.end(),
                   std::greater<float>());
  const float kth_lb = tmp[static_cast<size_t>(k - 1)];
  // Every tile whose upper bound reaches the k-th lower bound could be in the
  // true fp32 top-k; rescore it exactly. The 1x1 GEMM call runs the same
  // DotRow reduction as the full fp32 GEMM/MatVec, so rescored values are
  // bitwise the fp32 ones.
  for (int64_t j = 0; j < num_tiles; ++j) {
    const size_t js = static_cast<size_t>(j);
    if (tile_scores[j] + eps[js] >= kth_lb) {
      nn::kernels::DotProductGemm(ht_row, leaf_et_cache_.data() + j * dm,
                                  tile_scores + j, 1, 1, dm,
                                  /*accumulate=*/false);
    }
  }
}

void TspnRa::QuantFusedScores(const float* hp_row, const QuantRow& q,
                              const std::vector<int64_t>& candidates,
                              const float* pc_q_row, const float* tc,
                              float gamma, int64_t top_n,
                              float* scores) const {
  const int64_t dm = config_.dm;
  const size_t n = candidates.size();
  if (n == 0) return;
  std::vector<float> eps(n);
  std::vector<float> lb(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t pid = candidates[i];
    const size_t ps = static_cast<size_t>(pid);
    float pc;
    if (pc_q_row != nullptr) {
      pc = pc_q_row[pid];
    } else {
      // Exact integer accumulation: bitwise-identical to the batched
      // Int8ScoreGemm element, blocking and threading notwithstanding.
      const int32_t acc = nn::kernels::Int8Dot(
          q.codes.data(), poi_q_codes_.data() + pid * dm, dm);
      pc = static_cast<float>(acc) * (q.scale * poi_q_scales_[ps]);
    }
    eps[i] = QuantPairEps(q.scale, q.l1, poi_q_scales_[ps], poi_q_l1_[ps], dm);
    scores[i] = tc != nullptr ? pc + gamma * tc[CandidateTileOfPoi(pid)] : pc;
    lb[i] = scores[i] - eps[i];
  }
  const size_t k = static_cast<size_t>(
      std::min<int64_t>(top_n, static_cast<int64_t>(n)));
  if (k == 0) return;
  std::vector<float> tmp(lb);
  std::nth_element(tmp.begin(), tmp.begin() + (k - 1), tmp.end(),
                   std::greater<float>());
  const float kth_lb = tmp[k - 1];
  for (size_t i = 0; i < n; ++i) {
    if (scores[i] + eps[i] >= kth_lb) {
      const int64_t pid = candidates[i];
      float pc_exact = 0.0f;
      nn::kernels::DotProductGemm(hp_row, poi_et_cache_.data() + pid * dm,
                                  &pc_exact, 1, 1, dm, /*accumulate=*/false);
      // Mirrors the fp32 fused expression exactly (same operation order), so
      // rescued scores are bitwise the fp32 path's.
      scores[i] = tc != nullptr
                      ? pc_exact + gamma * tc[CandidateTileOfPoi(pid)]
                      : pc_exact;
    }
  }
}

bool TspnRa::BuildQuantCachesLocked() const {
  const int64_t dm = config_.dm;
  const int64_t num_tiles = leaf_et_cache_.dim(0);
  const int64_t num_pois = poi_et_cache_.dim(0);
  leaf_q_codes_.resize(static_cast<size_t>(num_tiles * dm));
  leaf_q_scales_.resize(static_cast<size_t>(num_tiles));
  leaf_q_l1_.resize(static_cast<size_t>(num_tiles));
  poi_q_codes_.resize(static_cast<size_t>(num_pois * dm));
  poi_q_scales_.resize(static_cast<size_t>(num_pois));
  poi_q_l1_.resize(static_cast<size_t>(num_pois));
  nn::kernels::QuantizeRowsInt8(leaf_et_cache_.data(), num_tiles, dm,
                                leaf_q_codes_.data(), leaf_q_scales_.data());
  nn::kernels::QuantizeRowsInt8(poi_et_cache_.data(), num_pois, dm,
                                poi_q_codes_.data(), poi_q_scales_.data());
  auto code_l1 = [dm](const int8_t* codes, int64_t row) {
    float l1 = 0.0f;
    for (int64_t i = 0; i < dm; ++i) {
      l1 += std::abs(static_cast<float>(codes[row * dm + i]));
    }
    return l1;
  };
  for (int64_t j = 0; j < num_tiles; ++j) {
    leaf_q_l1_[static_cast<size_t>(j)] = code_l1(leaf_q_codes_.data(), j);
  }
  for (int64_t j = 0; j < num_pois; ++j) {
    poi_q_l1_[static_cast<size_t>(j)] = code_l1(poi_q_codes_.data(), j);
  }

  // Parity gate: replay held-out samples through the default unconstrained
  // query pipeline with both backends and require identical top-n POI id
  // sets. The int8 screen + fp32 rescue (ExactTileHybrid/QuantFusedScores)
  // makes the quant path bitwise-equal to fp32 by construction, so a
  // mismatch here means an implementation or error-bound bug — in which
  // case the safe answer is the fp32 fallback, not a maybe-wrong fast path.
  std::vector<data::SampleRef> probes = dataset_->Samples(data::Split::kTest);
  if (probes.empty()) probes = dataset_->Samples(data::Split::kTrain);
  if (probes.size() > kQuantGateProbes) probes.resize(kQuantGateProbes);
  if (probes.empty()) return true;  // nothing to probe against (or to serve)
  const int64_t p_rows = static_cast<int64_t>(probes.size());

  std::vector<Features> features;
  features.reserve(probes.size());
  for (const data::SampleRef& sample : probes) {
    features.push_back(ExtractFeatures(sample));
  }
  BatchForwardOut fwd = ForwardBatch(features, et_cache_);
  nn::Tensor ht = nn::L2Normalize(fwd.h_tile);
  nn::Tensor hp = nn::L2Normalize(fwd.h_poi);

  std::vector<float> tc_f;
  if (config_.use_two_step) {
    tc_f.resize(static_cast<size_t>(p_rows * num_tiles));
    nn::kernels::DotProductGemm(ht.data(), leaf_et_cache_.data(), tc_f.data(),
                                p_rows, num_tiles, dm, /*accumulate=*/false);
  }
  std::vector<float> pc_f(static_cast<size_t>(p_rows * num_pois));
  nn::kernels::DotProductGemm(hp.data(), poi_et_cache_.data(), pc_f.data(),
                              p_rows, num_pois, dm, /*accumulate=*/false);

  const float gamma = net_->tile_prior_weight.at(0);
  const int64_t top_n = eval::RecommendRequest().top_n;
  const int64_t k0 = std::min<int64_t>(config_.top_k_tiles, num_tiles);
  auto id_set = [&](const std::vector<int64_t>& candidates,
                    const float* fused) {
    std::vector<int64_t> order = TopKIndices(
        fused, static_cast<int64_t>(candidates.size()), top_n);
    std::vector<int64_t> ids;
    ids.reserve(order.size());
    for (int64_t idx : order) ids.push_back(candidates[static_cast<size_t>(idx)]);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  std::vector<int64_t> all_pois;
  if (!config_.use_two_step) all_pois = AllAllowedPois(nullptr);
  for (int64_t p = 0; p < p_rows; ++p) {
    const float* ht_row = ht.data() + p * dm;
    const float* hp_row = hp.data() + p * dm;
    const float* pf = pc_f.data() + p * num_pois;
    QuantRow qp = QuantizeQueryRow(hp_row, dm);
    std::vector<int64_t> cand_f, cand_q;
    std::vector<float> tq_row;
    const float* tf = nullptr;
    if (config_.use_two_step) {
      tf = tc_f.data() + p * num_tiles;
      cand_f = GatherAllowedCandidates(tf, config_.top_k_tiles, 1, nullptr, 0,
                                       nullptr);
      // Quant replica of the serving stage 1: int8 row, hybrid refinement,
      // full-fp32 redo if the screen widened past the exact prefix.
      QuantRow qt = QuantizeQueryRow(ht_row, dm);
      tq_row.resize(static_cast<size_t>(num_tiles));
      nn::kernels::Int8ScoreGemm(qt.codes.data(), &qt.scale,
                                 leaf_q_codes_.data(), leaf_q_scales_.data(),
                                 tq_row.data(), 1, num_tiles, dm);
      ExactTileHybrid(ht_row, qt, k0, tq_row.data());
      int64_t screened = 0;
      cand_q = GatherAllowedCandidates(tq_row.data(), config_.top_k_tiles, 1,
                                       nullptr, 0, &screened);
      if (screened > k0) {
        std::copy(tf, tf + num_tiles, tq_row.data());
        cand_q = GatherAllowedCandidates(tq_row.data(), config_.top_k_tiles, 1,
                                         nullptr, 0, &screened);
      }
    } else {
      cand_f = all_pois;
      cand_q = all_pois;
    }
    std::vector<float> fused_f(cand_f.size());
    for (size_t i = 0; i < cand_f.size(); ++i) {
      fused_f[i] = tf != nullptr
                       ? pf[cand_f[i]] + gamma * tc_f[static_cast<size_t>(
                             p * num_tiles + CandidateTileOfPoi(cand_f[i]))]
                       : pf[cand_f[i]];
    }
    std::vector<float> fused_q(cand_q.size());
    QuantFusedScores(hp_row, qp, cand_q, nullptr,
                     tf != nullptr ? tq_row.data() : nullptr, gamma, top_n,
                     fused_q.data());
    if (id_set(cand_f, fused_f.data()) != id_set(cand_q, fused_q.data())) {
      return false;
    }
  }
  return true;
}

std::vector<int64_t> TspnRa::RankTiles(const data::SampleRef& sample) const {
  return RankTilesTopK(sample, static_cast<int64_t>(leaf_tile_ids_.size()));
}

std::vector<int64_t> TspnRa::RankTilesTopK(const data::SampleRef& sample,
                                           int64_t k) const {
  EnsureInferenceCaches();
  nn::NoGradGuard guard;
  // Dropout is off at inference, so the rng is never consumed; a local one
  // (rather than a shared mutable member) keeps const paths race-free.
  common::Rng rng(config_.seed ^ 0xD00DULL);
  Features f = ExtractFeatures(sample);
  ForwardOut fwd = Forward(f, et_cache_, rng);
  nn::Tensor cos_tiles = InferenceLeafCosines(fwd.h_tile);
  return TopKIndices(cos_tiles.data(),
                     static_cast<int64_t>(leaf_tile_ids_.size()), k);
}

int64_t TspnRa::TargetTileIndex(const data::SampleRef& sample) const {
  const data::Checkin& target = dataset_->Target(sample);
  if (config_.use_quadtree) {
    return dataset_->quadtree().LeafIndexOf(dataset_->LeafNodeOfPoi(target.poi_id));
  }
  return grid_->TileOf(dataset_->poi(target.poi_id).loc);
}

int64_t TspnRa::CandidatePoiCount(const data::SampleRef& sample,
                                  int32_t top_k) const {
  std::vector<int64_t> ranked = RankTilesTopK(sample, top_k);
  return static_cast<int64_t>(GatherCandidates(ranked, top_k).size());
}

geo::BoundingBox TspnRa::CandidateTileBounds(int64_t candidate) const {
  if (config_.use_quadtree) {
    return dataset_->quadtree()
        .node(leaf_tile_ids_[static_cast<size_t>(candidate)])
        .bounds;
  }
  return grid_->TileBounds(candidate);
}

std::vector<int64_t> TspnRa::GatherAllowedCandidates(
    const float* cos_tiles, int32_t top_k, int64_t required,
    const eval::ConstraintEvaluator* filter, int64_t max_tiles,
    int64_t* tiles_screened) const {
  const int64_t num_tiles = static_cast<int64_t>(leaf_tile_ids_.size());
  // The degraded-mode cap bounds the whole screen, initial top_k included:
  // under overload the gateway would rather serve a shallower candidate
  // pool than let constraint widening walk every tile in the city.
  const int64_t tile_cap =
      max_tiles > 0 ? std::min<int64_t>(max_tiles, num_tiles) : num_tiles;
  std::vector<int64_t> candidates;
  // Gathers tiles order[consumed, limit) into `candidates`, through the
  // constraint filter when one is active.
  auto gather = [&](const std::vector<int64_t>& order, int64_t consumed,
                    int64_t limit) {
    for (int64_t i = consumed; i < limit; ++i) {
      const int64_t tile = order[static_cast<size_t>(i)];
      if (filter != nullptr &&
          !filter->BoundsMayIntersectFence(CandidateTileBounds(tile))) {
        continue;  // the whole tile lies outside the geo fence
      }
      for (int64_t pid : tile_pois_[static_cast<size_t>(tile)]) {
        if (filter == nullptr || filter->Allows(pid)) candidates.push_back(pid);
      }
    }
  };
  // Constraints are applied before top-k selection, so the screen must keep
  // widening until the allowed pool can fill the request (required = top_n)
  // — not merely until it is non-empty as in the unconstrained case
  // (required = 1, the exact v1 behavior). Widening is incremental: the
  // (score desc, index asc) tile order is a fixed total order, so top-2k's
  // prefix equals top-k and only the newly admitted tiles need gathering;
  // the first widening switches to the full ranking once instead of
  // re-selecting per round.
  int64_t widened = std::min<int64_t>(top_k, tile_cap);
  std::vector<int64_t> order = TopKIndices(cos_tiles, num_tiles, top_k);
  int64_t consumed = widened;
  gather(order, 0, consumed);
  while (static_cast<int64_t>(candidates.size()) < required &&
         widened < tile_cap) {
    widened *= 2;
    if (static_cast<int64_t>(order.size()) < num_tiles) {
      order = TopKIndices(cos_tiles, num_tiles, num_tiles);
    }
    const int64_t limit = std::min<int64_t>(widened, tile_cap);
    gather(order, consumed, limit);
    consumed = limit;
  }
  if (tiles_screened != nullptr) {
    *tiles_screened = std::min<int64_t>(widened, tile_cap);
  }
  return candidates;
}

std::vector<int64_t> TspnRa::AllAllowedPois(
    const eval::ConstraintEvaluator* filter) const {
  const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());
  std::vector<int64_t> candidates;
  candidates.reserve(static_cast<size_t>(num_pois));
  for (int64_t id = 0; id < num_pois; ++id) {
    if (filter == nullptr || filter->Allows(id)) candidates.push_back(id);
  }
  return candidates;
}

void TspnRa::FillRankedItems(const std::vector<int64_t>& candidates,
                             const float* scores, int64_t top_n,
                             eval::RecommendResponse* response) const {
  std::vector<int64_t> order = TopKIndices(
      scores, static_cast<int64_t>(candidates.size()), top_n);
  response->items.reserve(order.size());
  for (int64_t idx : order) {
    const int64_t poi = candidates[static_cast<size_t>(idx)];
    response->items.push_back(
        {poi, scores[static_cast<size_t>(idx)],
         config_.use_two_step ? CandidateTileOfPoi(poi) : int64_t{-1}});
  }
}

eval::RecommendResponse TspnRa::ScoredRecommend(
    const eval::RecommendRequest& request, int32_t top_k) const {
  EnsureInferenceCaches();
  nn::NoGradGuard guard;
  common::Rng rng(config_.seed ^ 0xD00DULL);
  Features f = ExtractFeatures(request.sample);
  ForwardOut fwd = Forward(f, et_cache_, rng);
  // Gate-approved int8 scoring (TSPN_QUANT_SCORING): int8 screen + fp32
  // rescue of the rows inside the quantization-error band, which makes the
  // returned response bitwise-identical to the fp32 path (see
  // ExactTileHybrid / QuantFusedScores).
  const bool quant = quant_scoring_;
  const int64_t dm = config_.dm;
  const float gamma = net_->tile_prior_weight.at(0);

  std::unique_ptr<eval::ConstraintEvaluator> filter =
      eval::MakeConstraintFilter(*dataset_, request);

  eval::RecommendResponse response;
  std::vector<int64_t> candidates;
  nn::Tensor cos_tiles;
  std::vector<float> tile_scores_q;
  const float* tc = nullptr;
  if (config_.use_two_step) {
    response.stages_used = 2;
    const int64_t required = filter != nullptr ? request.top_n : 1;
    if (quant) {
      const int64_t num_tiles = static_cast<int64_t>(leaf_tile_ids_.size());
      nn::Tensor ht = nn::L2Normalize(fwd.h_tile);
      QuantRow qt = QuantizeQueryRow(ht.data(), dm);
      tile_scores_q.resize(static_cast<size_t>(num_tiles));
      nn::kernels::Int8ScoreGemm(qt.codes.data(), &qt.scale,
                                 leaf_q_codes_.data(), leaf_q_scales_.data(),
                                 tile_scores_q.data(), 1, num_tiles, dm);
      const int64_t tile_cap =
          request.max_tiles_screened > 0
              ? std::min<int64_t>(request.max_tiles_screened, num_tiles)
              : num_tiles;
      const int64_t k0 = std::min<int64_t>(top_k, tile_cap);
      ExactTileHybrid(ht.data(), qt, k0, tile_scores_q.data());
      tc = tile_scores_q.data();
      candidates = GatherAllowedCandidates(tc, top_k, required, filter.get(),
                                           request.max_tiles_screened,
                                           &response.tiles_screened);
      if (response.tiles_screened > k0) {
        // Constraint widening walked past the exact top-k0 prefix, where the
        // hybrid array's order is only approximate. Redo the screen on full
        // fp32 cosines (rare: only starved constrained queries get here).
        nn::kernels::DotProductGemm(ht.data(), leaf_et_cache_.data(),
                                    tile_scores_q.data(), 1, num_tiles, dm,
                                    /*accumulate=*/false);
        candidates = GatherAllowedCandidates(tc, top_k, required, filter.get(),
                                             request.max_tiles_screened,
                                             &response.tiles_screened);
      }
    } else {
      cos_tiles = InferenceLeafCosines(fwd.h_tile);
      tc = cos_tiles.data();
      candidates = GatherAllowedCandidates(tc, top_k, required, filter.get(),
                                           request.max_tiles_screened,
                                           &response.tiles_screened);
    }
  } else {
    response.stages_used = 1;
    candidates = AllAllowedPois(filter.get());
  }
  if (candidates.empty()) return response;

  std::vector<float> scores(candidates.size());
  if (quant) {
    nn::Tensor hp = nn::L2Normalize(fwd.h_poi);
    QuantRow qp = QuantizeQueryRow(hp.data(), dm);
    QuantFusedScores(hp.data(), qp, candidates, nullptr,
                     config_.use_two_step ? tc : nullptr, gamma, request.top_n,
                     scores.data());
  } else {
    nn::Tensor cand_embeddings;
    if (poi_et_cache_.defined()) {
      cand_embeddings = nn::EmbeddingGather(poi_et_cache_, candidates);
    } else {
      std::vector<int64_t> cats;
      cats.reserve(candidates.size());
      for (int64_t pid : candidates) cats.push_back(dataset_->poi(pid).category);
      cand_embeddings =
          nn::L2Normalize(net_->poi_encoder.Encode(candidates, cats));
    }
    nn::Tensor cos_pois =
        nn::MatVec(cand_embeddings, nn::L2Normalize(fwd.h_poi));
    const float* pc = cos_pois.data();
    if (config_.use_two_step) {
      // Same hierarchical score fusion as training: stage-1 tile cosine as a
      // gamma-weighted prior on each candidate.
      for (size_t i = 0; i < candidates.size(); ++i) {
        scores[i] = pc[i] + gamma * tc[CandidateTileOfPoi(candidates[i])];
      }
    } else {
      std::copy_n(pc, candidates.size(), scores.data());
    }
  }

  // Only the top-N ordering is returned; FillRankedItems selects instead of
  // sorting all candidates.
  FillRankedItems(candidates, scores.data(), request.top_n, &response);
  return response;
}

std::vector<int64_t> TspnRa::RecommendWithK(const data::SampleRef& sample,
                                            int64_t top_n, int32_t top_k) const {
  eval::RecommendRequest request;
  request.sample = sample;
  request.top_n = top_n;
  return ScoredRecommend(request, top_k).PoiIds();
}

eval::RecommendResponse TspnRa::RecommendImpl(
    const eval::RecommendRequest& request) const {
  return ScoredRecommend(request, config_.top_k_tiles);
}

void TspnRa::EncodeQueriesSerial(common::Span<eval::RecommendRequest> requests,
                                 float* h_tiles, float* h_pois) const {
  // A/B reference path (TSPN_DISABLE_BATCHED_ENCODER=1): the seed's
  // per-query encoder loop, kept so the batched forward's speedup and parity
  // stay measurable in production builds.
  nn::NoGradGuard guard;
  common::Rng rng(config_.seed ^ 0xD00DULL);
  const int64_t dm = config_.dm;
  for (size_t b = 0; b < requests.size(); ++b) {
    Features f = ExtractFeatures(requests[b].sample);
    ForwardOut fwd = Forward(f, et_cache_, rng);
    nn::Tensor ht = nn::L2Normalize(fwd.h_tile);
    nn::Tensor hp = nn::L2Normalize(fwd.h_poi);
    std::copy_n(ht.data(), dm, h_tiles + static_cast<int64_t>(b) * dm);
    std::copy_n(hp.data(), dm, h_pois + static_cast<int64_t>(b) * dm);
  }
}

std::vector<eval::RecommendResponse> TspnRa::RecommendBatchImpl(
    common::Span<eval::RecommendRequest> requests) const {
  const int64_t batch = static_cast<int64_t>(requests.size());
  if (batch == 0) return {};
  EnsureInferenceCaches();
  if (!leaf_et_cache_.defined() || !poi_et_cache_.defined()) {
    // Cache-disabled A/B mode keeps the seed's per-query gather path; defer
    // to the serial fallback rather than duplicating it here.
    return eval::NextPoiModel::RecommendBatchImpl(requests);
  }
  nn::NoGradGuard guard;
  const int64_t dm = config_.dm;
  const int64_t num_tiles = static_cast<int64_t>(leaf_tile_ids_.size());
  const int64_t num_pois = static_cast<int64_t>(dataset_->pois().size());

  // One batched encoder forward for the whole coalesced batch: the B query
  // sequences ride a single packed [total_len, dm] tensor through the
  // projections, norms and feed-forwards, with only softmax(QK^T)V and the
  // structurally irregular history-graph encodings handled per segment
  // (inside ForwardBatch). Every packed op computes rows independently with
  // the serial accumulation order, so the [batch, dm] outputs here are
  // bitwise-identical to B serial Forward() calls.
  std::vector<float> h_tiles(static_cast<size_t>(batch * dm));
  std::vector<float> h_pois(static_cast<size_t>(batch * dm));
  if (BatchedEncoderDisabled()) {
    EncodeQueriesSerial(requests, h_tiles.data(), h_pois.data());
  } else {
    std::vector<Features> features;
    features.reserve(static_cast<size_t>(batch));
    for (const eval::RecommendRequest& request : requests) {
      features.push_back(ExtractFeatures(request.sample));
    }
    BatchForwardOut fwd = ForwardBatch(features, et_cache_);
    nn::Tensor ht = nn::L2Normalize(fwd.h_tile);
    nn::Tensor hp = nn::L2Normalize(fwd.h_poi);
    std::copy_n(ht.data(), batch * dm, h_tiles.data());
    std::copy_n(hp.data(), batch * dm, h_pois.data());
  }

  // Then score all queries against the cached normalized tile and POI
  // matrices with one GEMM per prediction stage — int8 when the quant gate
  // admitted the checkpoint, fp32 otherwise. Per-element math matches the
  // per-query path (identical accumulation order in the fp32 kernel; exact
  // integer accumulation plus the same fp32 rescue in int8 mode), so the
  // per-request results below are bitwise-reproducible against
  // RecommendImpl() — constraints and top_n apply per request, after the
  // shared GEMMs.
  const bool quant = quant_scoring_;
  std::vector<QuantRow> qt_rows, qp_rows;
  std::vector<int8_t> hq;
  std::vector<float> hs;
  if (quant) {
    hq.resize(static_cast<size_t>(batch * dm));
    hs.resize(static_cast<size_t>(batch));
  }
  std::vector<float> cos_tiles;
  if (config_.use_two_step) {
    cos_tiles.resize(static_cast<size_t>(batch * num_tiles));
    if (quant) {
      qt_rows.reserve(static_cast<size_t>(batch));
      for (int64_t b = 0; b < batch; ++b) {
        qt_rows.push_back(QuantizeQueryRow(h_tiles.data() + b * dm, dm));
        std::copy_n(qt_rows.back().codes.data(), dm, hq.data() + b * dm);
        hs[static_cast<size_t>(b)] = qt_rows.back().scale;
      }
      nn::kernels::Int8ScoreGemm(hq.data(), hs.data(), leaf_q_codes_.data(),
                                 leaf_q_scales_.data(), cos_tiles.data(), batch,
                                 num_tiles, dm);
    } else {
      nn::kernels::DotProductGemm(h_tiles.data(), leaf_et_cache_.data(),
                                  cos_tiles.data(), batch, num_tiles, dm,
                                  /*accumulate=*/false);
    }
  }
  std::vector<float> cos_pois(static_cast<size_t>(batch * num_pois));
  if (quant) {
    qp_rows.reserve(static_cast<size_t>(batch));
    for (int64_t b = 0; b < batch; ++b) {
      qp_rows.push_back(QuantizeQueryRow(h_pois.data() + b * dm, dm));
      std::copy_n(qp_rows.back().codes.data(), dm, hq.data() + b * dm);
      hs[static_cast<size_t>(b)] = qp_rows.back().scale;
    }
    nn::kernels::Int8ScoreGemm(hq.data(), hs.data(), poi_q_codes_.data(),
                               poi_q_scales_.data(), cos_pois.data(), batch,
                               num_pois, dm);
  } else {
    nn::kernels::DotProductGemm(h_pois.data(), poi_et_cache_.data(),
                                cos_pois.data(), batch, num_pois, dm,
                                /*accumulate=*/false);
  }

  const float gamma = net_->tile_prior_weight.at(0);
  std::vector<eval::RecommendResponse> responses(static_cast<size_t>(batch));
  for (int64_t b = 0; b < batch; ++b) {
    const eval::RecommendRequest& request = requests[static_cast<size_t>(b)];
    eval::RecommendResponse& response = responses[static_cast<size_t>(b)];
    std::unique_ptr<eval::ConstraintEvaluator> filter =
        eval::MakeConstraintFilter(*dataset_, request);
    std::vector<int64_t> candidates;
    float* tc =
        cos_tiles.empty() ? nullptr : cos_tiles.data() + b * num_tiles;
    if (config_.use_two_step) {
      response.stages_used = 2;
      const int64_t required = filter != nullptr ? request.top_n : 1;
      if (quant) {
        const int64_t tile_cap =
            request.max_tiles_screened > 0
                ? std::min<int64_t>(request.max_tiles_screened, num_tiles)
                : num_tiles;
        const int64_t k0 = std::min<int64_t>(config_.top_k_tiles, tile_cap);
        ExactTileHybrid(h_tiles.data() + b * dm,
                        qt_rows[static_cast<size_t>(b)], k0, tc);
        candidates = GatherAllowedCandidates(tc, config_.top_k_tiles, required,
                                             filter.get(),
                                             request.max_tiles_screened,
                                             &response.tiles_screened);
        if (response.tiles_screened > k0) {
          // Widened past the exact prefix: redo this row on full fp32
          // cosines, exactly as the serial path does.
          nn::kernels::DotProductGemm(h_tiles.data() + b * dm,
                                      leaf_et_cache_.data(), tc, 1, num_tiles,
                                      dm, /*accumulate=*/false);
          candidates = GatherAllowedCandidates(
              tc, config_.top_k_tiles, required, filter.get(),
              request.max_tiles_screened, &response.tiles_screened);
        }
      } else {
        candidates = GatherAllowedCandidates(tc, config_.top_k_tiles, required,
                                             filter.get(),
                                             request.max_tiles_screened,
                                             &response.tiles_screened);
      }
    } else {
      response.stages_used = 1;
      candidates = AllAllowedPois(filter.get());
    }
    if (candidates.empty()) continue;

    const float* pc = cos_pois.data() + b * num_pois;
    std::vector<float> fused(candidates.size());
    if (quant) {
      QuantFusedScores(h_pois.data() + b * dm, qp_rows[static_cast<size_t>(b)],
                       candidates, pc, config_.use_two_step ? tc : nullptr,
                       gamma, request.top_n, fused.data());
    } else if (config_.use_two_step) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        fused[i] = pc[candidates[i]] +
                   gamma * tc[CandidateTileOfPoi(candidates[i])];
      }
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) {
        fused[i] = pc[candidates[i]];
      }
    }
    FillRankedItems(candidates, fused.data(), request.top_n, &response);
  }
  return responses;
}

int64_t TspnRa::ParameterCount() const { return net_->ParameterCount(); }

std::vector<nn::Tensor> TspnRa::Parameters() const { return net_->Parameters(); }

void TspnRa::SaveWeights(const std::string& path) const {
  std::vector<nn::Tensor> params = net_->Parameters();
  nn::SaveParametersToFile(params, path);
}

bool TspnRa::LoadWeights(const std::string& path) {
  std::vector<nn::Tensor> params = net_->Parameters();
  if (!nn::LoadParametersFromFile(params, path)) return false;
  cache_state_.store(0);  // ET must be recomputed from the loaded weights
  return true;
}

void TspnRa::SaveState(std::ostream& out) const {
  nn::SaveParameters(net_->Parameters(), out);
}

bool TspnRa::LoadState(std::istream& in) {
  // Atomic load: a corrupted payload must leave the live weights (and the
  // inference caches built from them) untouched.
  std::vector<nn::Tensor> params = net_->Parameters();
  if (!nn::LoadParametersAtomic(params, in)) return false;
  cache_state_.store(0);  // ET must be recomputed from the loaded weights
  return true;
}

}  // namespace tspn::core
