#include "common/env.h"

#include <cstdlib>

namespace tspn::common {

int64_t EnvInt(const std::string& name, int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<int64_t>(value);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

int64_t BenchScale() {
  int64_t scale = EnvInt("TSPN_BENCH_SCALE", 1);
  return scale < 1 ? 1 : scale;
}

}  // namespace tspn::common
