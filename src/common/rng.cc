#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace tspn::common {

uint64_t Rng::NextU64() {
  // splitmix64: fast, high-quality for simulation purposes, trivially seedable.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  TSPN_CHECK_GT(n, 0);
  return static_cast<int64_t>(NextU64() % static_cast<uint64_t>(n));
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-12) u1 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  TSPN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TSPN_CHECK_GE(w, 0.0);
    total += w;
  }
  TSPN_CHECK_GT(total, 0.0) << "Categorical requires a positive total weight";
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace tspn::common
