#ifndef TSPN_COMMON_SPAN_H_
#define TSPN_COMMON_SPAN_H_

#include <cstddef>
#include <vector>

namespace tspn::common {

/// Minimal non-owning view over a contiguous range (std::span arrives with
/// C++20; this project builds as C++17). Cheap to copy; the caller must keep
/// the underlying storage alive for the view's lifetime.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// Sub-view of [offset, offset + count); count is clamped to the tail.
  Span subspan(size_t offset, size_t count) const {
    if (offset >= size_) return Span();
    return Span(data_ + offset, count < size_ - offset ? count : size_ - offset);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_SPAN_H_
