#ifndef TSPN_COMMON_STOPWATCH_H_
#define TSPN_COMMON_STOPWATCH_H_

#include <chrono>

namespace tspn::common {

/// Simple monotonic wall-clock stopwatch used by trainers and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double ElapsedSeconds() const;

  /// Elapsed milliseconds since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_STOPWATCH_H_
