#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace tspn::common {

void FatalError(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[TSPN FATAL] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tspn::common
