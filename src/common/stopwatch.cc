#include "common/stopwatch.h"

namespace tspn::common {

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace tspn::common
