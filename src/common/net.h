#ifndef TSPN_COMMON_NET_H_
#define TSPN_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace tspn::common {

/// RAII owner of one POSIX file descriptor (socket, pipe end, ...). Closes
/// on destruction; movable, not copyable, so a descriptor has exactly one
/// owner and a leaked fd is a compile-time shape error, not a runtime hunt.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void Reset(int fd = -1);

  /// Gives up ownership without closing; returns the descriptor.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Puts the descriptor into non-blocking mode. False (with *error set) on
/// fcntl failure.
bool SetNonBlocking(int fd, std::string* error = nullptr);

/// Opens a TCP listener bound to host:port (port 0 picks an ephemeral port;
/// the actual one is written to *bound_port). Returns an invalid UniqueFd
/// with *error set on failure. The socket is non-blocking with SO_REUSEADDR.
UniqueFd ListenTcp(const std::string& host, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error = nullptr);

/// Blocking TCP connect to host:port. Invalid UniqueFd with *error on
/// failure. The returned socket is in blocking mode (callers that want a
/// non-blocking socket run SetNonBlocking on it).
UniqueFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error = nullptr);

/// Blocking, EINTR-safe full write of `size` bytes. Uses send(MSG_NOSIGNAL)
/// on sockets so a peer that hung up yields `false`, not SIGPIPE.
bool WriteAll(int fd, const void* data, size_t size);

/// Blocking, EINTR-safe full read of `size` bytes; false on EOF or error.
bool ReadAll(int fd, void* data, size_t size);

/// Little-endian uint32 byte helpers — the single definition of the
/// length-prefix framing shared by serve::FrameServer and
/// serve::FrameClient (docs/wire_protocol.md "Transport framing").
void StoreU32Le(uint32_t value, uint8_t out[4]);
uint32_t LoadU32Le(const uint8_t bytes[4]);

/// Self-pipe for waking a poll() loop from another thread: the loop polls
/// read_fd() for POLLIN, any thread calls Notify(), the loop calls Drain()
/// when woken. Both ends are non-blocking, so Notify never stalls (a full
/// pipe already guarantees a pending wake-up).
class WakePipe {
 public:
  WakePipe();

  bool valid() const { return read_.valid() && write_.valid(); }
  int read_fd() const { return read_.get(); }

  /// Wakes the poller. Safe from any thread; a no-op if the pipe is full
  /// (the reader is already due to wake).
  void Notify();

  /// Discards every pending wake byte. Called by the poll loop after it
  /// observes POLLIN on read_fd().
  void Drain();

 private:
  UniqueFd read_;
  UniqueFd write_;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_NET_H_
