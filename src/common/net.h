#ifndef TSPN_COMMON_NET_H_
#define TSPN_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace tspn::common {

/// RAII owner of one POSIX file descriptor (socket, pipe end, ...). Closes
/// on destruction; movable, not copyable, so a descriptor has exactly one
/// owner and a leaked fd is a compile-time shape error, not a runtime hunt.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void Reset(int fd = -1);

  /// Gives up ownership without closing; returns the descriptor.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Puts the descriptor into non-blocking mode. False (with *error set) on
/// fcntl failure.
bool SetNonBlocking(int fd, std::string* error = nullptr);

/// One transport endpoint the serving stack can listen on or connect to —
/// the seam that lets FrameServer/FrameClient ride either TCP (cross-host)
/// or a unix-domain socket (the co-located-shard fast path: no TCP stack,
/// no ports to allocate, filesystem permissions for access control).
struct SocketAddress {
  enum class Kind : uint8_t {
    kTcp = 0,   ///< host:port over IPv4 loopback/LAN
    kUnix = 1,  ///< filesystem path (SOCK_STREAM AF_UNIX)
  };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< kTcp: dotted-quad IPv4
  uint16_t port = 0;               ///< kTcp: 0 binds ephemeral
  std::string path;                ///< kUnix: socket path (sun_path-bounded)

  static SocketAddress Tcp(std::string host, uint16_t port);
  static SocketAddress Unix(std::string path);

  /// "tcp://127.0.0.1:4217" or "unix:///tmp/shard0.sock" — the canonical
  /// spelling Parse accepts, for CLI flags and log lines.
  std::string ToString() const;

  /// Inverse of ToString. A bare "host:port" is accepted as TCP shorthand.
  /// False with *error set on anything else.
  static bool Parse(const std::string& text, SocketAddress* out,
                    std::string* error = nullptr);
};

/// Opens a listener on the address (either kind). TCP port 0 picks an
/// ephemeral port; *bound (when non-null) reports the actual address. A
/// unix address unlinks any stale socket file at the path first, and the
/// file is NOT removed on close — owners that care run ::unlink on
/// shutdown. Invalid UniqueFd with *error set on failure; the socket is
/// non-blocking (TCP adds SO_REUSEADDR).
UniqueFd ListenOn(const SocketAddress& address, int backlog,
                  SocketAddress* bound, std::string* error = nullptr);

/// Blocking connect to the address (either kind). Invalid UniqueFd with
/// *error on failure. TCP sockets get TCP_NODELAY; the returned socket is
/// in blocking mode either way.
UniqueFd ConnectTo(const SocketAddress& address, std::string* error = nullptr);

/// TCP-only convenience over ListenOn: listener bound to host:port (port 0
/// picks an ephemeral port; the actual one is written to *bound_port).
/// Returns an invalid UniqueFd with *error set on failure. The socket is
/// non-blocking with SO_REUSEADDR.
UniqueFd ListenTcp(const std::string& host, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error = nullptr);

/// Blocking TCP connect to host:port. Invalid UniqueFd with *error on
/// failure. The returned socket is in blocking mode (callers that want a
/// non-blocking socket run SetNonBlocking on it).
UniqueFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error = nullptr);

/// Blocking, EINTR-safe full write of `size` bytes. Uses send(MSG_NOSIGNAL)
/// on sockets so a peer that hung up yields `false`, not SIGPIPE.
bool WriteAll(int fd, const void* data, size_t size);

/// Blocking, EINTR-safe full read of `size` bytes; false on EOF or error.
bool ReadAll(int fd, void* data, size_t size);

/// Little-endian uint32 byte helpers — the single definition of the
/// length-prefix framing shared by serve::FrameServer and
/// serve::FrameClient (docs/wire_protocol.md "Transport framing").
void StoreU32Le(uint32_t value, uint8_t out[4]);
uint32_t LoadU32Le(const uint8_t bytes[4]);

/// Self-pipe for waking a poll() loop from another thread: the loop polls
/// read_fd() for POLLIN, any thread calls Notify(), the loop calls Drain()
/// when woken. Both ends are non-blocking, so Notify never stalls (a full
/// pipe already guarantees a pending wake-up).
class WakePipe {
 public:
  WakePipe();

  bool valid() const { return read_.valid() && write_.valid(); }
  int read_fd() const { return read_.get(); }

  /// Wakes the poller. Safe from any thread; a no-op if the pipe is full
  /// (the reader is already due to wake).
  void Notify();

  /// Discards every pending wake byte. Called by the poll loop after it
  /// observes POLLIN on read_fd().
  void Drain();

 private:
  UniqueFd read_;
  UniqueFd write_;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_NET_H_
