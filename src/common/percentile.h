#ifndef TSPN_COMMON_PERCENTILE_H_
#define TSPN_COMMON_PERCENTILE_H_

#include <algorithm>
#include <vector>

namespace tspn::common {

/// p-th percentile (p in [0, 1]) by nearest-rank with rounding, via a single
/// nth_element pass. Takes its input by value (it must reorder); 0 on empty.
/// Shared by the serving engine's latency stats and the throughput bench so
/// both report percentiles with the same convention.
inline double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + idx, values.end());
  return values[idx];
}

}  // namespace tspn::common

#endif  // TSPN_COMMON_PERCENTILE_H_
