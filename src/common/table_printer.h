#ifndef TSPN_COMMON_TABLE_PRINTER_H_
#define TSPN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace tspn::common {

/// Renders aligned ASCII tables matching the row/column layout of the paper's
/// result tables. Cells are strings; numeric formatting is the caller's job.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (with a rule under the header) to a string.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  /// Formats a double with the paper's 4-decimal metric convention.
  static std::string Metric(double value);

  /// Formats a double with fixed precision.
  static std::string Fixed(double value, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_TABLE_PRINTER_H_
