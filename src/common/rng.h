#ifndef TSPN_COMMON_RNG_H_
#define TSPN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace tspn::common {

/// Deterministic 64-bit random number generator (splitmix64 core). Every
/// stochastic component in the library takes an explicit Rng (or seed) so
/// experiments are reproducible; there is no global RNG state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int64_t i = static_cast<int64_t>(items.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each parallel
  /// component its own stream.
  Rng Fork();

 private:
  uint64_t state_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_RNG_H_
