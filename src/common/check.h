#ifndef TSPN_COMMON_CHECK_H_
#define TSPN_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace tspn::common {

/// Aborts the process with a diagnostic message. Used for programming errors
/// (contract violations), never for recoverable conditions.
[[noreturn]] void FatalError(const char* file, int line, const std::string& message);

namespace internal {

/// Stream-style message builder used by the TSPN_CHECK macros.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "Check failed: " << condition << " ";
  }

  [[noreturn]] ~CheckMessageBuilder() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tspn::common

/// Aborts with a message if `condition` is false. Usage:
///   TSPN_CHECK(x > 0) << "x must be positive, got " << x;
#define TSPN_CHECK(condition)                                             \
  if (condition) {                                                        \
  } else                                                                  \
    ::tspn::common::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define TSPN_CHECK_EQ(a, b) TSPN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSPN_CHECK_NE(a, b) TSPN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSPN_CHECK_LT(a, b) TSPN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSPN_CHECK_LE(a, b) TSPN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSPN_CHECK_GT(a, b) TSPN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSPN_CHECK_GE(a, b) TSPN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // TSPN_COMMON_CHECK_H_
