#ifndef TSPN_COMMON_ENV_H_
#define TSPN_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace tspn::common {

/// Reads an environment variable as int64, returning `fallback` if unset or
/// unparsable. Used for bench scaling knobs (e.g. TSPN_BENCH_SCALE).
int64_t EnvInt(const std::string& name, int64_t fallback);

/// Reads an environment variable as double, returning `fallback` if unset.
double EnvDouble(const std::string& name, double fallback);

/// Global scale multiplier for benchmark workloads; defaults to 1.
/// Controlled by TSPN_BENCH_SCALE.
int64_t BenchScale();

}  // namespace tspn::common

#endif  // TSPN_COMMON_ENV_H_
