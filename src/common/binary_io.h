#ifndef TSPN_COMMON_BINARY_IO_H_
#define TSPN_COMMON_BINARY_IO_H_

#include <istream>
#include <ostream>

namespace tspn::common {

/// Raw little-endian POD stream I/O shared by the checkpoint writers
/// (eval::NextPoiModel header, MarkovChain state). Only trivially copyable
/// scalar/struct types belong here.
template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Reads one POD value; false when the stream cannot supply it.
template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

}  // namespace tspn::common

#endif  // TSPN_COMMON_BINARY_IO_H_
