#ifndef TSPN_COMMON_BINARY_IO_H_
#define TSPN_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace tspn::common {

/// Raw little-endian POD stream I/O shared by the checkpoint writers
/// (eval::NextPoiModel header, MarkovChain state). Only trivially copyable
/// scalar/struct types belong here.
template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Reads one POD value; false when the stream cannot supply it.
template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

/// Append-only in-memory byte sink for building wire frames (serve::codec).
/// Same POD convention as WritePod, but over a growable byte vector instead
/// of a stream, so an encoded frame is one contiguous buffer.
class ByteWriter {
 public:
  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "ByteWriter only serializes trivially copyable types");
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(value));
  }

  void Raw(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  /// Length-prefixed string (uint32 count + raw bytes).
  void String(const std::string& s) {
    Pod(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

  /// Overwrites sizeof(T) bytes at `offset` — used to back-patch a frame's
  /// payload-length field after the payload is written.
  template <typename T>
  void PatchPod(size_t offset, const T& value) {
    std::memcpy(bytes_.data() + offset, &value, sizeof(value));
  }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a received byte buffer. Every accessor
/// returns false instead of reading past the end, and `Remaining()` lets
/// strict decoders reject trailing garbage.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  template <typename T>
  bool Pod(T* value) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "ByteReader only deserializes trivially copyable types");
    if (size_ - pos_ < sizeof(*value)) return false;
    std::memcpy(value, data_ + pos_, sizeof(*value));
    pos_ += sizeof(*value);
    return true;
  }

  /// Reads a uint32-length-prefixed string; `max_len` guards against
  /// corrupt lengths allocating gigabytes.
  bool String(std::string* out, uint32_t max_len = 4096) {
    uint32_t len = 0;
    if (!Pod(&len) || len > max_len || size_ - pos_ < len) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  size_t Remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tspn::common

#endif  // TSPN_COMMON_BINARY_IO_H_
