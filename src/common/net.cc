#include "common/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace tspn::common {

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

/// Parses a dotted-quad host into an IPv4 sockaddr. The serving stack is
/// loopback/LAN-oriented; name resolution is the caller's business.
bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1) return true;
  if (error != nullptr) {
    *error = "host '" + host + "' is not a dotted-quad IPv4 address";
  }
  return false;
}

/// Fills an AF_UNIX sockaddr; the path must fit sun_path with its NUL.
bool FillUnixAddr(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = "unix socket path '" + path + "' is empty or longer than " +
               std::to_string(sizeof(addr->sun_path) - 1) + " bytes";
    }
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

UniqueFd ListenUnix(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr;
  if (!FillUnixAddr(path, &addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket(AF_UNIX)");
    return UniqueFd();
  }
  // A previous owner that crashed leaves the socket file behind and bind
  // would fail with EADDRINUSE forever; the new listener owns the path.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    SetError(error, "bind " + path);
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) < 0) {
    SetError(error, "listen " + path);
    return UniqueFd();
  }
  if (!SetNonBlocking(fd.get(), error)) return UniqueFd();
  return fd;
}

UniqueFd ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillUnixAddr(path, &addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket(AF_UNIX)");
    return UniqueFd();
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    SetError(error, "connect " + path);
    return UniqueFd();
  }
  return fd;
}

}  // namespace

SocketAddress SocketAddress::Tcp(std::string host, uint16_t port) {
  SocketAddress a;
  a.kind = Kind::kTcp;
  a.host = std::move(host);
  a.port = port;
  return a;
}

SocketAddress SocketAddress::Unix(std::string path) {
  SocketAddress a;
  a.kind = Kind::kUnix;
  a.path = std::move(path);
  return a;
}

std::string SocketAddress::ToString() const {
  if (kind == Kind::kUnix) return "unix://" + path;
  return "tcp://" + host + ":" + std::to_string(port);
}

bool SocketAddress::Parse(const std::string& text, SocketAddress* out,
                          std::string* error) {
  std::string rest = text;
  bool is_unix = false;
  if (rest.rfind("unix://", 0) == 0) {
    is_unix = true;
    rest = rest.substr(7);
  } else if (rest.rfind("tcp://", 0) == 0) {
    rest = rest.substr(6);
  }
  if (is_unix) {
    if (rest.empty()) {
      if (error != nullptr) *error = "empty unix socket path in '" + text + "'";
      return false;
    }
    *out = Unix(rest);
    return true;
  }
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon + 1 >= rest.size()) {
    if (error != nullptr) {
      *error = "address '" + text + "' is not host:port or unix://path";
    }
    return false;
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(rest.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) {
    if (error != nullptr) *error = "bad port in address '" + text + "'";
    return false;
  }
  *out = Tcp(rest.substr(0, colon), static_cast<uint16_t>(port));
  return true;
}

UniqueFd ListenOn(const SocketAddress& address, int backlog,
                  SocketAddress* bound, std::string* error) {
  if (address.kind == SocketAddress::Kind::kUnix) {
    UniqueFd fd = ListenUnix(address.path, backlog, error);
    if (fd.valid() && bound != nullptr) *bound = address;
    return fd;
  }
  uint16_t bound_port = 0;
  UniqueFd fd =
      ListenTcp(address.host, address.port, backlog, &bound_port, error);
  if (fd.valid() && bound != nullptr) {
    *bound = SocketAddress::Tcp(address.host, bound_port);
  }
  return fd;
}

UniqueFd ConnectTo(const SocketAddress& address, std::string* error) {
  if (address.kind == SocketAddress::Kind::kUnix) {
    return ConnectUnix(address.path, error);
  }
  return ConnectTcp(address.host, address.port, error);
}

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool SetNonBlocking(int fd, std::string* error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    SetError(error, "fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

UniqueFd ListenTcp(const std::string& host, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return UniqueFd();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    SetError(error, "bind " + host + ":" + std::to_string(port));
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) < 0) {
    SetError(error, "listen");
    return UniqueFd();
  }
  if (!SetNonBlocking(fd.get(), error)) return UniqueFd();
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      SetError(error, "getsockname");
      return UniqueFd();
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

UniqueFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host.empty() ? "127.0.0.1" : host, port, &addr, error)) {
    return UniqueFd();
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    SetError(error, "socket");
    return UniqueFd();
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    SetError(error, "connect " + host + ":" + std::to_string(port));
    return UniqueFd();
  }
  // Frames are small and latency-sensitive; don't let Nagle hold a response
  // frame hostage to the next one.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as an error
    // return, never as a process-killing SIGPIPE. send() fails with ENOTSOCK
    // on non-socket fds, where plain write() (no SIGPIPE concern from
    // sockets) takes over.
    ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, void* data, size_t size) {
  auto* p = static_cast<uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-object
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

void StoreU32Le(uint32_t value, uint8_t out[4]) {
  out[0] = static_cast<uint8_t>(value & 0xff);
  out[1] = static_cast<uint8_t>((value >> 8) & 0xff);
  out[2] = static_cast<uint8_t>((value >> 16) & 0xff);
  out[3] = static_cast<uint8_t>((value >> 24) & 0xff);
}

uint32_t LoadU32Le(const uint8_t bytes[4]) {
  return static_cast<uint32_t>(bytes[0]) |
         (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) |
         (static_cast<uint32_t>(bytes[3]) << 24);
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) return;
  read_.Reset(fds[0]);
  write_.Reset(fds[1]);
  SetNonBlocking(read_.get());
  SetNonBlocking(write_.get());
}

void WakePipe::Notify() {
  if (!write_.valid()) return;
  const uint8_t byte = 1;
  // EAGAIN means the pipe already holds unconsumed wake bytes: the poller is
  // guaranteed to wake, so dropping this one is correct.
  ssize_t rc;
  do {
    rc = ::write(write_.get(), &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

void WakePipe::Drain() {
  if (!read_.valid()) return;
  uint8_t scratch[64];
  while (::read(read_.get(), scratch, sizeof(scratch)) > 0) {
  }
}

}  // namespace tspn::common
