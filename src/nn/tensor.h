#ifndef TSPN_NN_TENSOR_H_
#define TSPN_NN_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tspn::nn {

/// Tensor shape: row-major, up to rank 4 in practice.
using Shape = std::vector<int64_t>;

/// Number of elements described by a shape.
int64_t NumElements(const Shape& shape);

/// Human-readable "[2, 3]" rendering.
std::string ShapeToString(const Shape& shape);

namespace internal {

/// Process-wide accounting of live tensor bytes, used by the Table V
/// efficiency bench and the pooling-vs-strided-conv memory ablation.
/// Counters are atomic so tensors may be created and destroyed from the
/// serving worker threads; the peak is maintained with a CAS loop and stays
/// exact under concurrency.
struct MemoryStats {
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> peak_bytes{0};
  std::atomic<int64_t> total_allocations{0};
};

MemoryStats& GetMemoryStats();
void TrackAlloc(int64_t bytes);
void TrackFree(int64_t bytes);

struct Storage;
struct TensorNode;

}  // namespace internal

/// Resets the live/peak byte counters (live bytes are recomputed from zero, so
/// call this only between experiments when all tensors are released).
void ResetMemoryStats();

/// Bytes of tensor payload (data + grad) currently alive.
int64_t LiveTensorBytes();

/// High-water mark of live tensor bytes since the last ResetMemoryStats().
int64_t PeakTensorBytes();

/// Dense float32 tensor with reverse-mode autodiff. `Tensor` is a cheap
/// shared handle: copies alias the same storage/graph node. The autograd
/// graph is define-by-run; calling Backward() on a scalar propagates
/// gradients to every reachable tensor created with requires_grad=true.
class Tensor {
 public:
  /// Null handle; most APIs require a non-null tensor.
  Tensor() = default;

  /// Factory: zero-filled tensor.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);

  /// Factory: constant-filled tensor.
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);

  /// Factory: takes ownership of `values` (size must match shape).
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);

  /// Factory: scalar (rank-0 stored as shape {1}).
  static Tensor Scalar(float value, bool requires_grad = false);

  /// Factory: U(-bound, bound) init.
  static Tensor RandomUniform(const Shape& shape, float bound, common::Rng& rng,
                              bool requires_grad = false);

  /// Factory: N(0, stddev) init.
  static Tensor RandomNormal(const Shape& shape, float stddev, common::Rng& rng,
                             bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Shape& shape() const;
  int64_t dim(int i) const;
  int rank() const;
  int64_t numel() const;
  bool requires_grad() const;

  float* data();
  const float* data() const;
  std::vector<float> ToVector() const;

  /// Value of a single-element tensor.
  float item() const;
  float at(int64_t flat_index) const;

  /// Gradient storage (allocated on demand); only valid for requires_grad
  /// tensors after Backward() has run.
  float* grad();
  const float* grad() const;
  std::vector<float> GradToVector() const;

  /// Zeroes this tensor's gradient buffer (if allocated).
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this tensor. Requires numel() == 1.
  void Backward();

  /// Detaches from the autograd graph: returns a tensor sharing the same
  /// data but with no parents and requires_grad=false.
  Tensor Detach() const;

  /// Internal: wraps an existing node.
  explicit Tensor(std::shared_ptr<internal::TensorNode> node) : node_(std::move(node)) {}
  const std::shared_ptr<internal::TensorNode>& node() const { return node_; }

 private:
  std::shared_ptr<internal::TensorNode> node_;
};

namespace internal {

/// Reference-counted value buffer. Aliasing views (e.g. Reshape) share one
/// Storage between nodes; byte accounting lives here so aliases are not
/// double-counted.
struct Storage {
  explicit Storage(std::vector<float> v);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  std::vector<float> values;
};

/// Heap node backing a Tensor. Holds storage, gradient, and the backward
/// closure that scatters this node's gradient into its parents.
struct TensorNode {
  TensorNode(Shape s, std::vector<float> values, bool rg);
  /// Aliasing view over existing storage (numel must match the shape).
  TensorNode(Shape s, std::shared_ptr<Storage> existing, bool rg);
  ~TensorNode();

  TensorNode(const TensorNode&) = delete;
  TensorNode& operator=(const TensorNode&) = delete;

  void EnsureGrad();

  Shape shape;
  std::shared_ptr<Storage> storage;
  std::vector<float>& data;  // alias of storage->values
  std::vector<float> grad;   // empty until EnsureGrad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  std::function<void(TensorNode&)> backward;  // may be empty for leaves
  const char* op = "leaf";
};

}  // namespace internal

/// RAII guard disabling autograd-graph construction (inference mode). While
/// active, ops produce requires_grad=false tensors with no parents.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True if gradient recording is currently enabled on this thread.
  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace tspn::nn

#endif  // TSPN_NN_TENSOR_H_
