#include "nn/conv.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/check.h"

namespace tspn::nn {

namespace {

using internal::TensorNode;

Tensor MakeConvOp(Shape shape, std::vector<float> data, std::vector<Tensor> parents,
                  std::function<void(TensorNode&)> backward, const char* op) {
  bool track = NoGradGuard::GradEnabled();
  bool any_requires = false;
  if (track) {
    for (const Tensor& p : parents) {
      if (p.defined() && p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  Tensor out = Tensor::FromVector(shape, std::move(data), track && any_requires);
  if (track && any_requires) {
    TensorNode* node = out.node().get();
    for (const Tensor& p : parents) {
      if (p.defined()) node->parents.push_back(p.node());
    }
    node->backward = std::move(backward);
    node->op = op;
  }
  return out;
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias, int stride,
              int padding) {
  TSPN_CHECK_EQ(input.rank(), 4);
  TSPN_CHECK_EQ(weight.rank(), 4);
  TSPN_CHECK_GE(stride, 1);
  TSPN_CHECK_GE(padding, 0);
  const int64_t n = input.dim(0), ic = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t oc = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  TSPN_CHECK_EQ(weight.dim(1), ic);
  const bool has_bias = bias.defined();
  if (has_bias) {
    TSPN_CHECK_EQ(bias.numel(), oc);
  }
  const int64_t oh = (h + 2 * padding - kh) / stride + 1;
  const int64_t ow = (w + 2 * padding - kw) / stride + 1;
  TSPN_CHECK_GT(oh, 0);
  TSPN_CHECK_GT(ow, 0);

  std::vector<float> out(static_cast<size_t>(n * oc * oh * ow), 0.0f);
  const float* px = input.data();
  const float* pw = weight.data();
  const float* pb = has_bias ? bias.data() : nullptr;

  for (int64_t b = 0; b < n; ++b) {
    for (int64_t o = 0; o < oc; ++o) {
      float bias_val = has_bias ? pb[o] : 0.0f;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias_val;
          const int64_t iy0 = oy * stride - padding;
          const int64_t ix0 = ox * stride - padding;
          for (int64_t c = 0; c < ic; ++c) {
            const float* xplane = px + ((b * ic + c) * h) * w;
            const float* wplane = pw + ((o * ic + c) * kh) * kw;
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= w) continue;
                acc += xplane[iy * w + ix] * wplane[ky * kw + kx];
              }
            }
          }
          out[static_cast<size_t>(((b * oc + o) * oh + oy) * ow + ox)] = acc;
        }
      }
    }
  }

  auto backward = [n, ic, h, w, oc, kh, kw, oh, ow, stride, padding,
                   has_bias](TensorNode& node) {
    const auto& x_node = node.parents[0];
    const auto& w_node = node.parents[1];
    TensorNode* b_node = has_bias ? node.parents[2].get() : nullptr;
    const float* g = node.grad.data();
    const float* xv = x_node->data.data();
    const float* wv = w_node->data.data();
    const bool need_x = x_node->requires_grad;
    const bool need_w = w_node->requires_grad;
    const bool need_b = b_node != nullptr && b_node->requires_grad;
    if (need_x) x_node->EnsureGrad();
    if (need_w) w_node->EnsureGrad();
    if (need_b) b_node->EnsureGrad();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t o = 0; o < oc; ++o) {
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            float go = g[((b * oc + o) * oh + oy) * ow + ox];
            if (go == 0.0f) continue;
            if (need_b) b_node->grad[static_cast<size_t>(o)] += go;
            const int64_t iy0 = oy * stride - padding;
            const int64_t ix0 = ox * stride - padding;
            for (int64_t c = 0; c < ic; ++c) {
              const int64_t xbase = ((b * ic + c) * h) * w;
              const int64_t wbase = ((o * ic + c) * kh) * kw;
              for (int64_t ky = 0; ky < kh; ++ky) {
                const int64_t iy = iy0 + ky;
                if (iy < 0 || iy >= h) continue;
                for (int64_t kx = 0; kx < kw; ++kx) {
                  const int64_t ix = ix0 + kx;
                  if (ix < 0 || ix >= w) continue;
                  if (need_w) {
                    w_node->grad[static_cast<size_t>(wbase + ky * kw + kx)] +=
                        go * xv[xbase + iy * w + ix];
                  }
                  if (need_x) {
                    x_node->grad[static_cast<size_t>(xbase + iy * w + ix)] +=
                        go * wv[wbase + ky * kw + kx];
                  }
                }
              }
            }
          }
        }
      }
    }
  };

  std::vector<Tensor> parents = {input, weight};
  if (has_bias) parents.push_back(bias);
  return MakeConvOp({n, oc, oh, ow}, std::move(out), std::move(parents), backward,
                    "conv2d");
}

Tensor MaxPool2x2(const Tensor& input) {
  TSPN_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  TSPN_CHECK_EQ(h % 2, 0);
  TSPN_CHECK_EQ(w % 2, 0);
  const int64_t oh = h / 2, ow = w / 2;
  std::vector<float> out(static_cast<size_t>(n * c * oh * ow));
  // argmax indices into the input, saved for backward. This is exactly the
  // "3/4 redundant gradients" overhead the paper attributes to pooling: the
  // pool layer must retain per-output bookkeeping plus a full-resolution
  // gradient buffer upstream.
  std::vector<int64_t> argmax(out.size());
  const float* px = input.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const int64_t base = ((b * c + ch) * h) * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          int64_t best = base + (2 * oy) * w + 2 * ox;
          float best_val = px[best];
          const int64_t candidates[3] = {base + (2 * oy) * w + 2 * ox + 1,
                                         base + (2 * oy + 1) * w + 2 * ox,
                                         base + (2 * oy + 1) * w + 2 * ox + 1};
          for (int64_t idx : candidates) {
            if (px[idx] > best_val) {
              best_val = px[idx];
              best = idx;
            }
          }
          size_t oidx = static_cast<size_t>(((b * c + ch) * oh + oy) * ow + ox);
          out[oidx] = best_val;
          argmax[oidx] = best;
        }
      }
    }
  }
  auto backward = [argmax = std::move(argmax)](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      parent->grad[static_cast<size_t>(argmax[i])] += node.grad[i];
    }
  };
  return MakeConvOp({n, c, oh, ow}, std::move(out), {input}, backward, "max_pool_2x2");
}

}  // namespace tspn::nn
