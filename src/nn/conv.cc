#include "nn/conv.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/check.h"
#include "nn/kernels.h"

namespace tspn::nn {

namespace {

using internal::TensorNode;

/// Reusable per-thread scratch for the im2col buffers (like
/// kernels::TransposeScratch): at the tile-image sizes that dominate this
/// model a fresh allocation per conv call is a first-order cost. Slot 0
/// holds the forward/backward col matrix, slot 1 the dcol matrix of the
/// input-gradient pass; buffers only ever grow.
float* ConvScratch(size_t need, int slot) {
  thread_local std::vector<float> bufs[2];
  std::vector<float>& buf = bufs[slot & 1];
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

/// Lowers one image [ic, h, w] to the im2col matrix col [P, K] with
/// P = oh*ow patches and K = ic*kh*kw patch elements, zero-filling padding.
/// Column k = (c*kh + ky)*kw + kx matches the row-major layout of a
/// [oc, ic, kh, kw] weight tensor flattened to [oc, K], so the convolution
/// becomes one DotProductGemm(weight, col) per image.
void Im2col(const float* x, int64_t ic, int64_t h, int64_t w, int64_t kh,
            int64_t kw, int64_t oh, int64_t ow, int stride, int padding,
            float* col) {
  const int64_t k_len = ic * kh * kw;
  for (int64_t oy = 0; oy < oh; ++oy) {
    for (int64_t ox = 0; ox < ow; ++ox) {
      float* crow = col + (oy * ow + ox) * k_len;
      const int64_t iy0 = oy * stride - padding;
      const int64_t ix0 = ox * stride - padding;
      // Interior patches (the vast majority at the model's 3x3/pad-1
      // shapes) copy whole contiguous kw-runs; only border patches pay the
      // per-element bounds checks. The model's CNN is all 3x3 kernels, so
      // the fully-interior 3x3 case gets a branch-free unrolled body — the
      // lowering itself, not the GEMM, is what bounds small-K convs.
      const bool x_interior = ix0 >= 0 && ix0 + kw <= w;
      if (x_interior && kh == 3 && kw == 3 && iy0 >= 0 && iy0 + 3 <= h) {
        const float* xb = x + iy0 * w + ix0;
        float* cd = crow;
        for (int64_t c = 0; c < ic; ++c, xb += h * w) {
          const float* xr = xb;
          for (int64_t ky = 0; ky < 3; ++ky, xr += w, cd += 3) {
            cd[0] = xr[0];
            cd[1] = xr[1];
            cd[2] = xr[2];
          }
        }
        continue;
      }
      for (int64_t c = 0; c < ic; ++c) {
        const float* xplane = x + (c * h) * w;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = iy0 + ky;
          float* cdst = crow + (c * kh + ky) * kw;
          if (iy < 0 || iy >= h) {
            std::fill(cdst, cdst + kw, 0.0f);
            continue;
          }
          if (x_interior) {
            // Plain loop, not std::copy: kw is tiny (3 here) and a memmove
            // call per run costs more than the unrolled copies.
            const float* xsrc = xplane + iy * w + ix0;
            for (int64_t kx = 0; kx < kw; ++kx) cdst[kx] = xsrc[kx];
            continue;
          }
          for (int64_t kx = 0; kx < kw; ++kx) {
            const int64_t ix = ix0 + kx;
            cdst[kx] = (ix < 0 || ix >= w) ? 0.0f : xplane[iy * w + ix];
          }
        }
      }
    }
  }
}

/// Scatter-adds a dcol matrix [P, K] back onto the input gradient
/// [ic, h, w], skipping padding positions (their gradient has nowhere to
/// go). The adjoint of Im2col.
void Col2imAdd(const float* dcol, int64_t ic, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t oh, int64_t ow, int stride, int padding,
               float* dx) {
  const int64_t k_len = ic * kh * kw;
  for (int64_t oy = 0; oy < oh; ++oy) {
    for (int64_t ox = 0; ox < ow; ++ox) {
      const float* crow = dcol + (oy * ow + ox) * k_len;
      const int64_t iy0 = oy * stride - padding;
      const int64_t ix0 = ox * stride - padding;
      const bool x_interior = ix0 >= 0 && ix0 + kw <= w;
      for (int64_t c = 0; c < ic; ++c) {
        float* xplane = dx + (c * h) * w;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          const float* csrc = crow + (c * kh + ky) * kw;
          if (x_interior) {
            float* xdst = xplane + iy * w + ix0;
            for (int64_t kx = 0; kx < kw; ++kx) xdst[kx] += csrc[kx];
            continue;
          }
          for (int64_t kx = 0; kx < kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            xplane[iy * w + ix] += csrc[kx];
          }
        }
      }
    }
  }
}

Tensor MakeConvOp(Shape shape, std::vector<float> data, std::vector<Tensor> parents,
                  std::function<void(TensorNode&)> backward, const char* op) {
  bool track = NoGradGuard::GradEnabled();
  bool any_requires = false;
  if (track) {
    for (const Tensor& p : parents) {
      if (p.defined() && p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  Tensor out = Tensor::FromVector(shape, std::move(data), track && any_requires);
  if (track && any_requires) {
    TensorNode* node = out.node().get();
    for (const Tensor& p : parents) {
      if (p.defined()) node->parents.push_back(p.node());
    }
    node->backward = std::move(backward);
    node->op = op;
  }
  return out;
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias, int stride,
              int padding) {
  TSPN_CHECK_EQ(input.rank(), 4);
  TSPN_CHECK_EQ(weight.rank(), 4);
  TSPN_CHECK_GE(stride, 1);
  TSPN_CHECK_GE(padding, 0);
  const int64_t n = input.dim(0), ic = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t oc = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  TSPN_CHECK_EQ(weight.dim(1), ic);
  const bool has_bias = bias.defined();
  if (has_bias) {
    TSPN_CHECK_EQ(bias.numel(), oc);
  }
  const int64_t oh = (h + 2 * padding - kh) / stride + 1;
  const int64_t ow = (w + 2 * padding - kw) / stride + 1;
  TSPN_CHECK_GT(oh, 0);
  TSPN_CHECK_GT(ow, 0);

  // im2col lowering: each image becomes a [P, K] patch matrix (P = oh*ow,
  // K = ic*kh*kw) and the convolution is one DotProductGemm against the
  // weight tensor viewed as [oc, K] — the same blocked AVX2/FMA kernel that
  // backs MatMul, instead of a 6-deep scalar loop.
  const int64_t k_len = ic * kh * kw;
  const int64_t patches = oh * ow;
  std::vector<float> out(static_cast<size_t>(n * oc * oh * ow));
  const float* px = input.data();
  const float* pw = weight.data();
  const float* pb = has_bias ? bias.data() : nullptr;

  // When the weight gradient will be needed, the col matrices are saved for
  // backward (activation caching) instead of being re-lowered there: the
  // dW GEMM reads exactly what the forward GEMM read. Inference and frozen
  // weights keep using the per-thread scratch and save nothing.
  const bool save_cols = NoGradGuard::GradEnabled() && weight.requires_grad();
  std::vector<float> saved_cols;
  if (save_cols) {
    saved_cols.resize(static_cast<size_t>(n * patches * k_len));
  }
  for (int64_t b = 0; b < n; ++b) {
    float* col = save_cols
                     ? saved_cols.data() + b * patches * k_len
                     : ConvScratch(static_cast<size_t>(patches * k_len), 0);
    Im2col(px + b * ic * h * w, ic, h, w, kh, kw, oh, ow, stride, padding, col);
    // out[b] [oc, P]: out[o, p] = sum_k w[o, k] * col[p, k].
    kernels::DotProductGemm(pw, col, out.data() + b * oc * patches, oc, patches,
                            k_len, /*accumulate=*/false);
  }
  if (has_bias) {
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t o = 0; o < oc; ++o) {
        float* orow = out.data() + (b * oc + o) * patches;
        const float bv = pb[o];
        for (int64_t p = 0; p < patches; ++p) orow[p] += bv;
      }
    }
  }

  auto backward = [n, ic, h, w, oc, kh, kw, oh, ow, stride, padding, k_len,
                   patches, has_bias,
                   saved_cols = std::move(saved_cols)](TensorNode& node) {
    const auto& x_node = node.parents[0];
    const auto& w_node = node.parents[1];
    TensorNode* b_node = has_bias ? node.parents[2].get() : nullptr;
    const float* g = node.grad.data();
    const float* xv = x_node->data.data();
    const float* wv = w_node->data.data();
    const bool need_x = x_node->requires_grad;
    const bool need_w = w_node->requires_grad;
    const bool need_b = b_node != nullptr && b_node->requires_grad;
    if (need_x) x_node->EnsureGrad();
    if (need_w) w_node->EnsureGrad();
    if (need_b) b_node->EnsureGrad();
    if (need_b) {
      for (int64_t b = 0; b < n; ++b) {
        for (int64_t o = 0; o < oc; ++o) {
          const float* grow = g + (b * oc + o) * patches;
          float acc = 0.0f;
          for (int64_t p = 0; p < patches; ++p) acc += grow[p];
          b_node->grad[static_cast<size_t>(o)] += acc;
        }
      }
    }
    if (!need_x && !need_w) return;
    // dW and dX ride the same GEMM kernel as the forward pass:
    //   dW[o, k] += sum_p g[o, p] * col[p, k]     -> Y = g,  Z = col^T
    //   dcol[p, k] = sum_o g[o, p] * w[o, k]      -> Y = g^T, Z = w^T
    // followed by the col2im scatter-add (the im2col adjoint) for dX.
    // w^T is shared across images, so it is built once with an owned copy;
    // col^T and g^T rotate through the two per-thread TransposeScratch slots.
    std::vector<float> wt;
    if (need_x) wt = kernels::TransposeCopy(wv, oc, k_len);
    float* dcol =
        need_x ? ConvScratch(static_cast<size_t>(patches * k_len), 1) : nullptr;
    for (int64_t b = 0; b < n; ++b) {
      const float* g_plane = g + b * oc * patches;
      if (need_w) {
        // The forward pass saved this image's col matrix (need_w implies
        // save_cols was on); re-lowering the input here would repeat work
        // the forward already did. The recompute branch only covers a
        // weight whose requires_grad flipped on after the forward pass.
        const float* col;
        if (!saved_cols.empty()) {
          col = saved_cols.data() + b * patches * k_len;
        } else {
          float* scratch = ConvScratch(static_cast<size_t>(patches * k_len), 0);
          Im2col(xv + b * ic * h * w, ic, h, w, kh, kw, oh, ow, stride,
                 padding, scratch);
          col = scratch;
        }
        const float* colt = kernels::TransposeScratch(col, patches, k_len, 0);
        kernels::DotProductGemm(g_plane, colt, w_node->grad.data(), oc, k_len,
                                patches, /*accumulate=*/true);
      }
      if (need_x) {
        const float* gt = kernels::TransposeScratch(g_plane, oc, patches, 1);
        kernels::DotProductGemm(gt, wt.data(), dcol, patches, k_len, oc,
                                /*accumulate=*/false);
        Col2imAdd(dcol, ic, h, w, kh, kw, oh, ow, stride, padding,
                  x_node->grad.data() + b * ic * h * w);
      }
    }
  };

  std::vector<Tensor> parents = {input, weight};
  if (has_bias) parents.push_back(bias);
  return MakeConvOp({n, oc, oh, ow}, std::move(out), std::move(parents), backward,
                    "conv2d");
}

Tensor MaxPool2x2(const Tensor& input) {
  TSPN_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  TSPN_CHECK_EQ(h % 2, 0);
  TSPN_CHECK_EQ(w % 2, 0);
  const int64_t oh = h / 2, ow = w / 2;
  std::vector<float> out(static_cast<size_t>(n * c * oh * ow));
  // argmax indices into the input, saved for backward. This is exactly the
  // "3/4 redundant gradients" overhead the paper attributes to pooling: the
  // pool layer must retain per-output bookkeeping plus a full-resolution
  // gradient buffer upstream.
  std::vector<int64_t> argmax(out.size());
  const float* px = input.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const int64_t base = ((b * c + ch) * h) * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          int64_t best = base + (2 * oy) * w + 2 * ox;
          float best_val = px[best];
          const int64_t candidates[3] = {base + (2 * oy) * w + 2 * ox + 1,
                                         base + (2 * oy + 1) * w + 2 * ox,
                                         base + (2 * oy + 1) * w + 2 * ox + 1};
          for (int64_t idx : candidates) {
            if (px[idx] > best_val) {
              best_val = px[idx];
              best = idx;
            }
          }
          size_t oidx = static_cast<size_t>(((b * c + ch) * oh + oy) * ow + ox);
          out[oidx] = best_val;
          argmax[oidx] = best;
        }
      }
    }
  }
  auto backward = [argmax = std::move(argmax)](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      parent->grad[static_cast<size_t>(argmax[i])] += node.grad[i];
    }
  };
  return MakeConvOp({n, c, oh, ow}, std::move(out), {input}, backward, "max_pool_2x2");
}

}  // namespace tspn::nn
