#ifndef TSPN_NN_CONV_H_
#define TSPN_NN_CONV_H_

#include "nn/tensor.h"

namespace tspn::nn {

/// 2-D convolution on NCHW input.
///   input  [N, IC, H, W]
///   weight [OC, IC, KH, KW]
///   bias   [OC] (pass an undefined Tensor for no bias)
/// Output: [N, OC, OH, OW] with OH = (H + 2p - KH)/stride + 1.
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int stride, int padding);

/// 2x2 max pooling with stride 2 on NCHW input (used by the memory-ablation
/// bench contrasting pooling with strided convolution, Sec. IV-A).
Tensor MaxPool2x2(const Tensor& input);

}  // namespace tspn::nn

#endif  // TSPN_NN_CONV_H_
