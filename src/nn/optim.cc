#include "nn/optim.h"

#include <cmath>

#include "common/check.h"

namespace tspn::nn {

Adam::Adam(std::vector<Tensor> parameters, Options options)
    : parameters_(std::move(parameters)), options_(options) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    TSPN_CHECK(p.requires_grad());
    m_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  // Optional global-norm gradient clipping.
  float scale = 1.0f;
  if (options_.grad_clip > 0.0f) {
    double sq = 0.0;
    for (Tensor& p : parameters_) {
      const float* g = p.grad();
      for (int64_t i = 0; i < p.numel(); ++i) sq += static_cast<double>(g[i]) * g[i];
    }
    double norm = std::sqrt(sq);
    if (norm > options_.grad_clip) {
      scale = options_.grad_clip / static_cast<float>(norm + 1e-12);
    }
  }
  const float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    Tensor& p = parameters_[pi];
    float* w = p.data();
    const float* g = p.grad();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (int64_t i = 0; i < p.numel(); ++i) {
      float grad = g[i] * scale + options_.weight_decay * w[i];
      m[static_cast<size_t>(i)] =
          options_.beta1 * m[static_cast<size_t>(i)] + (1.0f - options_.beta1) * grad;
      v[static_cast<size_t>(i)] = options_.beta2 * v[static_cast<size_t>(i)] +
                                  (1.0f - options_.beta2) * grad * grad;
      float m_hat = m[static_cast<size_t>(i)] / bias1;
      float v_hat = v[static_cast<size_t>(i)] / bias2;
      w[i] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

void Adam::DecayLr(float factor) { options_.lr *= factor; }

Sgd::Sgd(std::vector<Tensor> parameters, float lr)
    : parameters_(std::move(parameters)), lr_(lr) {
  for (const Tensor& p : parameters_) TSPN_CHECK(p.requires_grad());
}

void Sgd::Step() {
  for (Tensor& p : parameters_) {
    float* w = p.data();
    const float* g = p.grad();
    for (int64_t i = 0; i < p.numel(); ++i) w[i] -= lr_ * g[i];
  }
}

void Sgd::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

}  // namespace tspn::nn
