#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace tspn::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> all = parameters_;
  for (const Module* child : children_) {
    std::vector<Tensor> sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Tensor& p : Parameters()) count += p.numel();
  return count;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (Module* child : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(Tensor parameter) {
  TSPN_CHECK(parameter.defined());
  TSPN_CHECK(parameter.requires_grad());
  parameters_.push_back(parameter);
  return parameter;
}

void Module::RegisterChild(Module* child) {
  TSPN_CHECK(child != nullptr);
  children_.push_back(child);
}

namespace {
float XavierBound(int64_t fan_in, int64_t fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}
}  // namespace

Linear::Linear(int64_t in_features, int64_t out_features, common::Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(Tensor::RandomUniform(
      {out_features, in_features}, XavierBound(in_features, out_features), rng,
      /*requires_grad=*/true));
  if (with_bias) {
    bias_ = RegisterParameter(Tensor::Zeros({out_features}, /*requires_grad=*/true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  bool vector_input = x.rank() == 1;
  Tensor x2 = vector_input ? Reshape(x, {1, in_features_}) : x;
  TSPN_CHECK_EQ(x2.dim(1), in_features_);
  Tensor y = MatMul(x2, Transpose(weight_));
  if (bias_.defined()) y = Add(y, bias_);
  return vector_input ? Reshape(y, {out_features_}) : y;
}

Embedding::Embedding(int64_t vocab_size, int64_t dim, common::Rng& rng) {
  weight_ = RegisterParameter(Tensor::RandomNormal(
      {vocab_size, dim}, 1.0f / std::sqrt(static_cast<float>(dim)), rng,
      /*requires_grad=*/true));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return EmbeddingGather(weight_, indices);
}

Tensor Embedding::ForwardOne(int64_t index) const {
  return Reshape(EmbeddingGather(weight_, {index}), {dim()});
}

LayerNormLayer::LayerNormLayer(int64_t dim) {
  gamma_ = RegisterParameter(Tensor::Full({dim}, 1.0f, /*requires_grad=*/true));
  beta_ = RegisterParameter(Tensor::Zeros({dim}, /*requires_grad=*/true));
}

Tensor LayerNormLayer::Forward(const Tensor& x) const {
  return LayerNorm(x, gamma_, beta_);
}

FeedForward::FeedForward(int64_t dim, int64_t hidden, common::Rng& rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng) {
  RegisterChild(&fc1_);
  RegisterChild(&fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  return fc2_.Forward(Relu(fc1_.Forward(x)));
}

Attention::Attention(int64_t dim, common::Rng& rng)
    : dim_(dim), wq_(dim, dim, rng, /*with_bias=*/false),
      wk_(dim, dim, rng, /*with_bias=*/false), wv_(dim, dim, rng, /*with_bias=*/false) {
  RegisterChild(&wq_);
  RegisterChild(&wk_);
  RegisterChild(&wv_);
}

Tensor Attention::Forward(const Tensor& query_in, const Tensor& key_value_in,
                          bool causal) const {
  TSPN_CHECK_EQ(query_in.rank(), 2);
  TSPN_CHECK_EQ(key_value_in.rank(), 2);
  return ForwardProjected(wq_.Forward(query_in), wk_.Forward(key_value_in),
                          wv_.Forward(key_value_in), causal);
}

Tensor Attention::ForwardProjected(const Tensor& q, const Tensor& k,
                                   const Tensor& v, bool causal) const {
  TSPN_CHECK_EQ(q.rank(), 2);
  TSPN_CHECK_EQ(k.rank(), 2);
  TSPN_CHECK_EQ(v.rank(), 2);
  Tensor scores = MulScalar(MatMul(q, Transpose(k)),
                            1.0f / std::sqrt(static_cast<float>(dim_)));
  if (causal) {
    int64_t lq = q.dim(0);
    int64_t lk = k.dim(0);
    TSPN_CHECK_EQ(lq, lk) << "causal attention needs square score matrix";
    std::vector<float> mask(static_cast<size_t>(lq * lk), 0.0f);
    for (int64_t i = 0; i < lq; ++i) {
      for (int64_t j = i + 1; j < lk; ++j) {
        mask[static_cast<size_t>(i * lk + j)] = -1e9f;
      }
    }
    scores = Add(scores, Tensor::FromVector({lq, lk}, std::move(mask)));
  }
  Tensor weights = Softmax(scores);
  return MatMul(weights, v);
}

}  // namespace tspn::nn
