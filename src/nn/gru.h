#ifndef TSPN_NN_GRU_H_
#define TSPN_NN_GRU_H_

#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace tspn::nn {

/// Gated recurrent unit cell (Cho et al., 2014):
///   z = sigmoid(Wz x + Uz h + bz)
///   r = sigmoid(Wr x + Ur h + br)
///   n = tanh(Wn x + r * (Un h) + bn)
///   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, common::Rng& rng);

  /// One step: x [input_dim], h [hidden_dim] -> h' [hidden_dim].
  Tensor Step(const Tensor& x, const Tensor& h) const;

  /// Runs the cell over a sequence [L, input_dim] starting from a zero state;
  /// returns all hidden states stacked as [L, hidden_dim].
  Tensor Unroll(const Tensor& sequence) const;

  /// Inference-only batched unroll over B variable-length sequences
  /// concatenated row-wise ([total, input_dim], boundaries in `offsets`,
  /// size B+1). Runs timestep-major: at step t the still-active sequences'
  /// rows are gathered into one [A, input_dim] batch and advanced with a
  /// single Step() call, so the six gate GEMMs see A rows instead of one.
  /// Returns [total, hidden_dim] with segment b's states at rows
  /// [offsets[b], offsets[b+1]), bitwise identical to Unroll() per segment
  /// (every op inside Step is row-wise). No autograd.
  Tensor UnrollPacked(const Tensor& packed,
                      const std::vector<int64_t>& offsets) const;

  int64_t hidden_dim() const { return hidden_dim_; }

  /// A fresh zero initial state.
  Tensor InitialState() const { return Tensor::Zeros({hidden_dim_}); }

 private:
  int64_t hidden_dim_;
  Linear wz_, uz_;
  Linear wr_, ur_;
  Linear wn_, un_;
};

}  // namespace tspn::nn

#endif  // TSPN_NN_GRU_H_
