#ifndef TSPN_NN_SERIALIZE_H_
#define TSPN_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace tspn::nn {

/// Writes parameter tensors (shapes + float32 payloads) to a binary stream.
/// Format: magic, count, then per-tensor rank/dims/data.
void SaveParameters(const std::vector<Tensor>& parameters, std::ostream& out);

/// Loads values into existing parameter tensors. Shapes must match exactly.
/// Returns false on format or shape mismatch.
bool LoadParameters(std::vector<Tensor>& parameters, std::istream& in);

/// Convenience file wrappers. Save aborts on I/O failure; Load returns false.
void SaveParametersToFile(const std::vector<Tensor>& parameters,
                          const std::string& path);
bool LoadParametersFromFile(std::vector<Tensor>& parameters, const std::string& path);

}  // namespace tspn::nn

#endif  // TSPN_NN_SERIALIZE_H_
