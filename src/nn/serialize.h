#ifndef TSPN_NN_SERIALIZE_H_
#define TSPN_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace tspn::nn {

/// Writes parameter tensors (shapes + float32 payloads) to a binary stream.
/// Format: magic, count, then per-tensor rank/dims/data.
void SaveParameters(const std::vector<Tensor>& parameters, std::ostream& out);

/// Loads values into existing parameter tensors. Shapes must match exactly.
/// Returns false on format or shape mismatch. NOTE: tensors already read
/// are overwritten before a later mismatch is detected; use
/// LoadParametersAtomic when the targets are live model weights.
bool LoadParameters(std::vector<Tensor>& parameters, std::istream& in);

/// Reads a parameter payload into freshly allocated tensors shaped like
/// `like`, without touching `like` itself. False on format/shape mismatch
/// or truncation (`staged` is then unspecified). Lets callers validate a
/// whole payload before mutating any live state.
bool LoadParametersStaged(const std::vector<Tensor>& like, std::istream& in,
                          std::vector<Tensor>* staged);

/// All-or-nothing variant of LoadParameters: stages the payload first and
/// copies into `parameters` only after the whole stream validated, so a
/// corrupted or truncated payload leaves the live weights untouched.
bool LoadParametersAtomic(std::vector<Tensor>& parameters, std::istream& in);

/// Convenience file wrappers. Save aborts on I/O failure; Load returns false.
void SaveParametersToFile(const std::vector<Tensor>& parameters,
                          const std::string& path);
bool LoadParametersFromFile(std::vector<Tensor>& parameters, const std::string& path);

}  // namespace tspn::nn

#endif  // TSPN_NN_SERIALIZE_H_
