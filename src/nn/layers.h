#ifndef TSPN_NN_LAYERS_H_
#define TSPN_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace tspn::nn {

/// Base class for parameterized network modules. Subclasses register their
/// parameters (and child modules) so Parameters() can enumerate everything
/// for the optimizer / serializer.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters in this module and its children (stable order).
  std::vector<Tensor> Parameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Toggles training mode (affects dropout) recursively.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  Tensor RegisterParameter(Tensor parameter);
  void RegisterChild(Module* child);

 private:
  std::vector<Tensor> parameters_;
  std::vector<Module*> children_;
  bool training_ = true;
};

/// Affine layer: y = x W^T + b, x is [N, in] or [in].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, common::Rng& rng,
         bool with_bias = true);

  Tensor Forward(const Tensor& x) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out] (undefined when with_bias=false)
};

/// Lookup table: indices -> rows of a trainable [vocab, dim] matrix.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, common::Rng& rng);

  /// [L] indices -> [L, dim].
  Tensor Forward(const std::vector<int64_t>& indices) const;

  /// Single index -> [dim].
  Tensor ForwardOne(int64_t index) const;

  /// The whole table (e.g. for tied-weight scoring).
  const Tensor& weight() const { return weight_; }
  int64_t vocab_size() const { return weight_.dim(0); }
  int64_t dim() const { return weight_.dim(1); }

 private:
  Tensor weight_;
};

/// Layer normalization module with trainable affine parameters.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int64_t dim);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Two-layer MLP: Linear -> ReLU -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, int64_t hidden, common::Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
};

/// Single-head scaled-dot-product attention with optional causal masking.
/// Computes softmax(Q K^T / sqrt(d) + mask) V where Q = q_in Wq, etc.
class Attention : public Module {
 public:
  Attention(int64_t dim, common::Rng& rng);

  /// query_in: [Lq, D]; key_value_in: [Lk, D]. If `causal` is true, position
  /// i may attend only to positions <= i (requires Lq == Lk).
  Tensor Forward(const Tensor& query_in, const Tensor& key_value_in,
                 bool causal = false) const;

  /// The three input projections, exposed separately so a packed-batch
  /// caller can project many concatenated sequences with one GEMM each and
  /// then run the per-sequence score/softmax stage via ForwardProjected().
  Tensor ProjectQuery(const Tensor& x) const { return wq_.Forward(x); }
  Tensor ProjectKey(const Tensor& x) const { return wk_.Forward(x); }
  Tensor ProjectValue(const Tensor& x) const { return wv_.Forward(x); }

  /// Attention over already-projected q [Lq, D], k/v [Lk, D]:
  /// softmax(q k^T / sqrt(d) + mask) v. Forward() delegates here, so both
  /// entry points share one accumulation order bit for bit.
  Tensor ForwardProjected(const Tensor& q, const Tensor& k, const Tensor& v,
                          bool causal) const;

 private:
  int64_t dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
};

}  // namespace tspn::nn

#endif  // TSPN_NN_LAYERS_H_
