#ifndef TSPN_NN_KERNELS_H_
#define TSPN_NN_KERNELS_H_

#include <cstdint>
#include <vector>

namespace tspn::nn::kernels {

/// Number of worker threads for the row-parallel GEMM split. Controlled by
/// TSPN_NUM_THREADS (default 1 = single-threaded, clamped to [1, 64]); read
/// once per process.
int NumThreads();

/// The one matrix kernel behind MatMul forward and both backward passes:
///
///   C[p, q] (+)= sum_r Y[p, r] * Z[q, r]       i.e.  C = Y * Z^T
///
/// with Y [p_rows, r_len], Z [q_rows, r_len] and C [p_rows, q_rows], all
/// row-major and dense. Rows of both operands are contiguous, so the inner
/// reduction runs on SIMD FMA accumulators (AVX2/AVX-512 when compiled in),
/// and a 4x4 register tile amortizes each operand load across four partial
/// products. Blocking over q keeps the active Z rows in L1.
///
/// With `accumulate` false C is overwritten, otherwise the products are
/// added into C (the gradient-accumulation mode). When TSPN_NUM_THREADS > 1
/// and the product is large enough, rows of C are split across std::thread
/// workers.
void DotProductGemm(const float* y, const float* z, float* c, int64_t p_rows,
                    int64_t q_rows, int64_t r_len, bool accumulate);

/// Row-major transpose into a fresh buffer: src [rows, cols] -> [cols, rows].
/// O(rows*cols); used to feed DotProductGemm operands that are needed
/// column-major (B in the forward pass, A and dOut in the dB pass).
std::vector<float> TransposeCopy(const float* src, int64_t rows, int64_t cols);

/// Symmetric per-row int8 quantization: codes[i, :] = round(src[i, :] / s_i)
/// with s_i = max|src[i, :]| / 127 written to scales[i]. An all-zero row gets
/// scale 0 and all-zero codes. `codes` holds rows*cols int8, `scales` rows
/// floats. Round-half-away-from-zero, so the mapping is deterministic and
/// the codes stay in [-127, 127].
void QuantizeRowsInt8(const float* src, int64_t rows, int64_t cols,
                      int8_t* codes, float* scales);

/// Exact int8 dot product: sum_r y[r] * z[r] accumulated in int32.
int32_t Int8Dot(const int8_t* y, const int8_t* z, int64_t r_len);

/// The int8 scoring GEMM behind TSPN_QUANT_SCORING:
///
///   C[p, q] = float(sum_r Yq[p, r] * Zq[q, r]) * (y_scales[p] * z_scales[q])
///
/// with Yq [p_rows, r_len] and Zq [q_rows, r_len] int8 codes from
/// QuantizeRowsInt8. The integer accumulation is exact, so — unlike the fp32
/// kernel — the result is independent of blocking, vectorization and thread
/// count; a single Int8Dot per element reproduces it bitwise. Row-parallel
/// across TSPN_NUM_THREADS like DotProductGemm.
void Int8ScoreGemm(const int8_t* y, const float* y_scales, const int8_t* z,
                   const float* z_scales, float* c, int64_t p_rows,
                   int64_t q_rows, int64_t r_len);

/// Transpose into a reusable per-thread scratch buffer instead of a fresh
/// heap allocation: at the small sizes that dominate this model (64-128) the
/// malloc + free around every matmul is a first-order cost. `slot` selects
/// one of two independent buffers per thread so a caller may hold two
/// transposed operands at once (the dB pass needs A^T and dOut^T together).
/// The returned pointer is valid until the same slot is requested again on
/// the calling thread; buffers only ever grow.
const float* TransposeScratch(const float* src, int64_t rows, int64_t cols,
                              int slot);

}  // namespace tspn::nn::kernels

#endif  // TSPN_NN_KERNELS_H_
