#include "nn/gru.h"

#include "common/check.h"
#include "nn/ops.h"

namespace tspn::nn {

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, common::Rng& rng)
    : hidden_dim_(hidden_dim),
      wz_(input_dim, hidden_dim, rng), uz_(hidden_dim, hidden_dim, rng, false),
      wr_(input_dim, hidden_dim, rng), ur_(hidden_dim, hidden_dim, rng, false),
      wn_(input_dim, hidden_dim, rng), un_(hidden_dim, hidden_dim, rng, false) {
  RegisterChild(&wz_);
  RegisterChild(&uz_);
  RegisterChild(&wr_);
  RegisterChild(&ur_);
  RegisterChild(&wn_);
  RegisterChild(&un_);
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  Tensor z = Sigmoid(Add(wz_.Forward(x), uz_.Forward(h)));
  Tensor r = Sigmoid(Add(wr_.Forward(x), ur_.Forward(h)));
  Tensor n = Tanh(Add(wn_.Forward(x), Mul(r, un_.Forward(h))));
  Tensor one_minus_z = AddScalar(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

Tensor GruCell::Unroll(const Tensor& sequence) const {
  TSPN_CHECK_EQ(sequence.rank(), 2);
  int64_t length = sequence.dim(0);
  Tensor h = InitialState();
  std::vector<Tensor> states;
  states.reserve(static_cast<size_t>(length));
  for (int64_t t = 0; t < length; ++t) {
    h = Step(Row(sequence, t), h);
    states.push_back(h);
  }
  return StackRows(states);
}

Tensor GruCell::UnrollPacked(const Tensor& packed,
                             const std::vector<int64_t>& offsets) const {
  TSPN_CHECK_EQ(packed.rank(), 2);
  TSPN_CHECK_GE(offsets.size(), 2u);
  NoGradGuard guard;
  const size_t batch = offsets.size() - 1;
  const int64_t in_dim = packed.dim(1);
  const int64_t total = packed.dim(0);
  TSPN_CHECK_EQ(offsets.back(), total);
  int64_t max_len = 0;
  for (size_t b = 0; b < batch; ++b) {
    TSPN_CHECK_LE(offsets[b], offsets[b + 1]);
    max_len = std::max(max_len, offsets[b + 1] - offsets[b]);
  }
  const float* px = packed.data();
  std::vector<float> out(static_cast<size_t>(total * hidden_dim_));
  // Per-segment carried hidden state, all starting from the zero
  // InitialState().
  std::vector<float> state(batch * static_cast<size_t>(hidden_dim_), 0.0f);
  std::vector<size_t> active;
  active.reserve(batch);
  for (int64_t t = 0; t < max_len; ++t) {
    active.clear();
    for (size_t b = 0; b < batch; ++b) {
      if (offsets[b] + t < offsets[b + 1]) active.push_back(b);
    }
    const int64_t a = static_cast<int64_t>(active.size());
    std::vector<float> xa(static_cast<size_t>(a * in_dim));
    std::vector<float> ha(static_cast<size_t>(a * hidden_dim_));
    for (int64_t i = 0; i < a; ++i) {
      const size_t b = active[static_cast<size_t>(i)];
      std::copy_n(px + (offsets[b] + t) * in_dim, in_dim,
                  xa.data() + i * in_dim);
      std::copy_n(state.data() + b * static_cast<size_t>(hidden_dim_),
                  hidden_dim_, ha.data() + i * hidden_dim_);
    }
    Tensor h_next = Step(Tensor::FromVector({a, in_dim}, std::move(xa)),
                         Tensor::FromVector({a, hidden_dim_}, std::move(ha)));
    const float* ph = h_next.data();
    for (int64_t i = 0; i < a; ++i) {
      const size_t b = active[static_cast<size_t>(i)];
      std::copy_n(ph + i * hidden_dim_, hidden_dim_,
                  state.data() + b * static_cast<size_t>(hidden_dim_));
      std::copy_n(ph + i * hidden_dim_, hidden_dim_,
                  out.data() + (offsets[b] + t) * hidden_dim_);
    }
  }
  return Tensor::FromVector({total, hidden_dim_}, std::move(out));
}

}  // namespace tspn::nn
