#include "nn/gru.h"

#include "common/check.h"
#include "nn/ops.h"

namespace tspn::nn {

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, common::Rng& rng)
    : hidden_dim_(hidden_dim),
      wz_(input_dim, hidden_dim, rng), uz_(hidden_dim, hidden_dim, rng, false),
      wr_(input_dim, hidden_dim, rng), ur_(hidden_dim, hidden_dim, rng, false),
      wn_(input_dim, hidden_dim, rng), un_(hidden_dim, hidden_dim, rng, false) {
  RegisterChild(&wz_);
  RegisterChild(&uz_);
  RegisterChild(&wr_);
  RegisterChild(&ur_);
  RegisterChild(&wn_);
  RegisterChild(&un_);
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  Tensor z = Sigmoid(Add(wz_.Forward(x), uz_.Forward(h)));
  Tensor r = Sigmoid(Add(wr_.Forward(x), ur_.Forward(h)));
  Tensor n = Tanh(Add(wn_.Forward(x), Mul(r, un_.Forward(h))));
  Tensor one_minus_z = AddScalar(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

Tensor GruCell::Unroll(const Tensor& sequence) const {
  TSPN_CHECK_EQ(sequence.rank(), 2);
  int64_t length = sequence.dim(0);
  Tensor h = InitialState();
  std::vector<Tensor> states;
  states.reserve(static_cast<size_t>(length));
  for (int64_t t = 0; t < length; ++t) {
    h = Step(Row(sequence, t), h);
    states.push_back(h);
  }
  return StackRows(states);
}

}  // namespace tspn::nn
