#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/env.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define TSPN_KERNELS_AVX2 1
#endif

namespace tspn::nn::kernels {

namespace {

// Z rows kept hot in L1 per stripe: kBlockQ * r_len floats. 64 rows of a
// 64-wide operand is 16 KB, half a typical L1d.
constexpr int64_t kBlockQ = 64;

// Below this many multiply-adds the std::thread spawn costs more than the
// kernel itself.
constexpr int64_t kMinFlopsPerThread = 1 << 20;

#ifdef TSPN_KERNELS_AVX2

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

/// 4x4 register tile: 16 vector accumulators, each operand load shared by
/// four FMAs. The r loop is unrolled x2 to thin out loop overhead.
inline void DotTile4x4(const float* y0, const float* y1, const float* y2,
                       const float* y3, const float* z0, const float* z1,
                       const float* z2, const float* z3, int64_t r_len,
                       float out[4][4]) {
  __m256 a00 = _mm256_setzero_ps(), a01 = a00, a02 = a00, a03 = a00;
  __m256 a10 = a00, a11 = a00, a12 = a00, a13 = a00;
  __m256 a20 = a00, a21 = a00, a22 = a00, a23 = a00;
  __m256 a30 = a00, a31 = a00, a32 = a00, a33 = a00;
  int64_t r = 0;
  for (; r + 16 <= r_len; r += 16) {
    for (int64_t half = r; half < r + 16; half += 8) {
      __m256 w0 = _mm256_loadu_ps(z0 + half);
      __m256 w1 = _mm256_loadu_ps(z1 + half);
      __m256 w2 = _mm256_loadu_ps(z2 + half);
      __m256 w3 = _mm256_loadu_ps(z3 + half);
      __m256 v = _mm256_loadu_ps(y0 + half);
      a00 = _mm256_fmadd_ps(v, w0, a00);
      a01 = _mm256_fmadd_ps(v, w1, a01);
      a02 = _mm256_fmadd_ps(v, w2, a02);
      a03 = _mm256_fmadd_ps(v, w3, a03);
      v = _mm256_loadu_ps(y1 + half);
      a10 = _mm256_fmadd_ps(v, w0, a10);
      a11 = _mm256_fmadd_ps(v, w1, a11);
      a12 = _mm256_fmadd_ps(v, w2, a12);
      a13 = _mm256_fmadd_ps(v, w3, a13);
      v = _mm256_loadu_ps(y2 + half);
      a20 = _mm256_fmadd_ps(v, w0, a20);
      a21 = _mm256_fmadd_ps(v, w1, a21);
      a22 = _mm256_fmadd_ps(v, w2, a22);
      a23 = _mm256_fmadd_ps(v, w3, a23);
      v = _mm256_loadu_ps(y3 + half);
      a30 = _mm256_fmadd_ps(v, w0, a30);
      a31 = _mm256_fmadd_ps(v, w1, a31);
      a32 = _mm256_fmadd_ps(v, w2, a32);
      a33 = _mm256_fmadd_ps(v, w3, a33);
    }
  }
  for (; r + 8 <= r_len; r += 8) {
    __m256 w0 = _mm256_loadu_ps(z0 + r);
    __m256 w1 = _mm256_loadu_ps(z1 + r);
    __m256 w2 = _mm256_loadu_ps(z2 + r);
    __m256 w3 = _mm256_loadu_ps(z3 + r);
    __m256 v = _mm256_loadu_ps(y0 + r);
    a00 = _mm256_fmadd_ps(v, w0, a00);
    a01 = _mm256_fmadd_ps(v, w1, a01);
    a02 = _mm256_fmadd_ps(v, w2, a02);
    a03 = _mm256_fmadd_ps(v, w3, a03);
    v = _mm256_loadu_ps(y1 + r);
    a10 = _mm256_fmadd_ps(v, w0, a10);
    a11 = _mm256_fmadd_ps(v, w1, a11);
    a12 = _mm256_fmadd_ps(v, w2, a12);
    a13 = _mm256_fmadd_ps(v, w3, a13);
    v = _mm256_loadu_ps(y2 + r);
    a20 = _mm256_fmadd_ps(v, w0, a20);
    a21 = _mm256_fmadd_ps(v, w1, a21);
    a22 = _mm256_fmadd_ps(v, w2, a22);
    a23 = _mm256_fmadd_ps(v, w3, a23);
    v = _mm256_loadu_ps(y3 + r);
    a30 = _mm256_fmadd_ps(v, w0, a30);
    a31 = _mm256_fmadd_ps(v, w1, a31);
    a32 = _mm256_fmadd_ps(v, w2, a32);
    a33 = _mm256_fmadd_ps(v, w3, a33);
  }
  out[0][0] = HorizontalSum(a00);
  out[0][1] = HorizontalSum(a01);
  out[0][2] = HorizontalSum(a02);
  out[0][3] = HorizontalSum(a03);
  out[1][0] = HorizontalSum(a10);
  out[1][1] = HorizontalSum(a11);
  out[1][2] = HorizontalSum(a12);
  out[1][3] = HorizontalSum(a13);
  out[2][0] = HorizontalSum(a20);
  out[2][1] = HorizontalSum(a21);
  out[2][2] = HorizontalSum(a22);
  out[2][3] = HorizontalSum(a23);
  out[3][0] = HorizontalSum(a30);
  out[3][1] = HorizontalSum(a31);
  out[3][2] = HorizontalSum(a32);
  out[3][3] = HorizontalSum(a33);
  for (; r < r_len; ++r) {
    const float w[4] = {z0[r], z1[r], z2[r], z3[r]};
    const float v[4] = {y0[r], y1[r], y2[r], y3[r]};
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) out[i][j] += v[i] * w[j];
    }
  }
}

inline float DotRow(const float* y, const float* z, int64_t r_len) {
  __m256 acc = _mm256_setzero_ps();
  int64_t r = 0;
  for (; r + 8 <= r_len; r += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(y + r), _mm256_loadu_ps(z + r), acc);
  }
  float s = HorizontalSum(acc);
  for (; r < r_len; ++r) s += y[r] * z[r];
  return s;
}

#else  // portable fallback

inline void DotTile4x4(const float* y0, const float* y1, const float* y2,
                       const float* y3, const float* z0, const float* z1,
                       const float* z2, const float* z3, int64_t r_len,
                       float out[4][4]) {
  const float* ys[4] = {y0, y1, y2, y3};
  const float* zs[4] = {z0, z1, z2, z3};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      float s = 0.0f;
      for (int64_t r = 0; r < r_len; ++r) s += ys[i][r] * zs[j][r];
      out[i][j] = s;
    }
  }
}

inline float DotRow(const float* y, const float* z, int64_t r_len) {
  float s = 0.0f;
  for (int64_t r = 0; r < r_len; ++r) s += y[r] * z[r];
  return s;
}

#endif  // TSPN_KERNELS_AVX2

/// The single-threaded kernel over a [p_begin, p_end) row range of C.
void DotProductGemmRange(const float* y, const float* z, float* c,
                         int64_t p_begin, int64_t p_end, int64_t q_rows,
                         int64_t r_len, bool accumulate) {
  for (int64_t qb = 0; qb < q_rows; qb += kBlockQ) {
    const int64_t qe = std::min(qb + kBlockQ, q_rows);
    int64_t p = p_begin;
    for (; p + 4 <= p_end; p += 4) {
      const float* y0 = y + p * r_len;
      const float* y1 = y0 + r_len;
      const float* y2 = y1 + r_len;
      const float* y3 = y2 + r_len;
      int64_t q = qb;
      for (; q + 4 <= qe; q += 4) {
        const float* z0 = z + q * r_len;
        float tile[4][4];
        DotTile4x4(y0, y1, y2, y3, z0, z0 + r_len, z0 + 2 * r_len,
                   z0 + 3 * r_len, r_len, tile);
        for (int i = 0; i < 4; ++i) {
          float* dst = c + (p + i) * q_rows + q;
          if (accumulate) {
            for (int j = 0; j < 4; ++j) dst[j] += tile[i][j];
          } else {
            for (int j = 0; j < 4; ++j) dst[j] = tile[i][j];
          }
        }
      }
      for (; q < qe; ++q) {
        const float* zq = z + q * r_len;
        const float* ys[4] = {y0, y1, y2, y3};
        for (int i = 0; i < 4; ++i) {
          float s = DotRow(ys[i], zq, r_len);
          float* dst = c + (p + i) * q_rows + q;
          if (accumulate) {
            *dst += s;
          } else {
            *dst = s;
          }
        }
      }
    }
    for (; p < p_end; ++p) {
      const float* yp = y + p * r_len;
      for (int64_t q = qb; q < qe; ++q) {
        float s = DotRow(yp, z + q * r_len, r_len);
        float* dst = c + p * q_rows + q;
        if (accumulate) {
          *dst += s;
        } else {
          *dst = s;
        }
      }
    }
  }
}

}  // namespace

int NumThreads() {
  static int threads = static_cast<int>(
      std::clamp<int64_t>(common::EnvInt("TSPN_NUM_THREADS", 1), 1, 64));
  return threads;
}

void DotProductGemm(const float* y, const float* z, float* c, int64_t p_rows,
                    int64_t q_rows, int64_t r_len, bool accumulate) {
  if (p_rows <= 0 || q_rows <= 0) return;
  if (r_len <= 0) {
    if (!accumulate) std::fill(c, c + p_rows * q_rows, 0.0f);
    return;
  }
  const int64_t flops = p_rows * q_rows * r_len;
  int threads = NumThreads();
  if (threads > 1) {
    threads = static_cast<int>(std::min<int64_t>(
        threads, std::max<int64_t>(1, flops / kMinFlopsPerThread)));
  }
  if (threads <= 1) {
    DotProductGemmRange(y, z, c, 0, p_rows, q_rows, r_len, accumulate);
    return;
  }
  // Row-parallel split; chunks rounded to the 4-row tile so only the last
  // worker runs tail rows.
  const int64_t chunk = ((p_rows + threads - 1) / threads + 3) / 4 * 4;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int64_t begin = 0; begin < p_rows; begin += chunk) {
    const int64_t end = std::min(begin + chunk, p_rows);
    workers.emplace_back(DotProductGemmRange, y, z, c, begin, end, q_rows,
                         r_len, accumulate);
  }
  for (std::thread& t : workers) t.join();
}

void QuantizeRowsInt8(const float* src, int64_t rows, int64_t cols,
                      int8_t* codes, float* scales) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = src + r * cols;
    int8_t* q = codes + r * cols;
    float max_abs = 0.0f;
    for (int64_t c = 0; c < cols; ++c) max_abs = std::max(max_abs, std::fabs(x[c]));
    if (max_abs == 0.0f) {
      scales[r] = 0.0f;
      std::fill(q, q + cols, static_cast<int8_t>(0));
      continue;
    }
    const float scale = max_abs / 127.0f;
    scales[r] = scale;
    for (int64_t c = 0; c < cols; ++c) {
      long v = std::lround(x[c] / scale);
      q[c] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
    }
  }
}

namespace {

#ifdef TSPN_KERNELS_AVX2

inline int32_t Int8DotImpl(const int8_t* y, const int8_t* z, int64_t r_len) {
  __m256i acc = _mm256_setzero_si256();
  int64_t r = 0;
  for (; r + 16 <= r_len; r += 16) {
    __m256i y16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + r)));
    __m256i z16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(z + r)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(y16, z16));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_hadd_epi32(lo, lo);
  lo = _mm_hadd_epi32(lo, lo);
  int32_t s = _mm_cvtsi128_si32(lo);
  for (; r < r_len; ++r) s += static_cast<int32_t>(y[r]) * z[r];
  return s;
}

#else  // portable fallback

inline int32_t Int8DotImpl(const int8_t* y, const int8_t* z, int64_t r_len) {
  int32_t s = 0;
  for (int64_t r = 0; r < r_len; ++r) s += static_cast<int32_t>(y[r]) * z[r];
  return s;
}

#endif  // TSPN_KERNELS_AVX2

/// Single-threaded int8 scoring kernel over a [p_begin, p_end) row range.
/// Blocking over q keeps the active Z code rows in L1, mirroring the fp32
/// kernel; because the accumulation is exact integer math, the blocking has
/// no effect on the result.
void Int8ScoreGemmRange(const int8_t* y, const float* y_scales, const int8_t* z,
                        const float* z_scales, float* c, int64_t p_begin,
                        int64_t p_end, int64_t q_rows, int64_t r_len) {
  for (int64_t qb = 0; qb < q_rows; qb += kBlockQ) {
    const int64_t qe = std::min(qb + kBlockQ, q_rows);
    for (int64_t p = p_begin; p < p_end; ++p) {
      const int8_t* yp = y + p * r_len;
      const float sy = y_scales[p];
      float* dst = c + p * q_rows;
      for (int64_t q = qb; q < qe; ++q) {
        const int32_t acc = Int8DotImpl(yp, z + q * r_len, r_len);
        dst[q] = static_cast<float>(acc) * (sy * z_scales[q]);
      }
    }
  }
}

}  // namespace

int32_t Int8Dot(const int8_t* y, const int8_t* z, int64_t r_len) {
  return Int8DotImpl(y, z, r_len);
}

void Int8ScoreGemm(const int8_t* y, const float* y_scales, const int8_t* z,
                   const float* z_scales, float* c, int64_t p_rows,
                   int64_t q_rows, int64_t r_len) {
  if (p_rows <= 0 || q_rows <= 0) return;
  if (r_len <= 0) {
    std::fill(c, c + p_rows * q_rows, 0.0f);
    return;
  }
  const int64_t flops = p_rows * q_rows * r_len;
  int threads = NumThreads();
  if (threads > 1) {
    threads = static_cast<int>(std::min<int64_t>(
        threads, std::max<int64_t>(1, flops / kMinFlopsPerThread)));
  }
  if (threads <= 1) {
    Int8ScoreGemmRange(y, y_scales, z, z_scales, c, 0, p_rows, q_rows, r_len);
    return;
  }
  const int64_t chunk = (p_rows + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int64_t begin = 0; begin < p_rows; begin += chunk) {
    const int64_t end = std::min(begin + chunk, p_rows);
    workers.emplace_back(Int8ScoreGemmRange, y, y_scales, z, z_scales, c,
                         begin, end, q_rows, r_len);
  }
  for (std::thread& t : workers) t.join();
}

namespace {

void TransposeInto(const float* src, int64_t rows, int64_t cols, float* dst) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* srow = src + i * cols;
    for (int64_t j = 0; j < cols; ++j) {
      dst[j * rows + i] = srow[j];
    }
  }
}

}  // namespace

std::vector<float> TransposeCopy(const float* src, int64_t rows, int64_t cols) {
  std::vector<float> out(static_cast<size_t>(rows * cols));
  TransposeInto(src, rows, cols, out.data());
  return out;
}

const float* TransposeScratch(const float* src, int64_t rows, int64_t cols,
                              int slot) {
  thread_local std::vector<float> scratch[2];
  std::vector<float>& buf = scratch[slot & 1];
  const size_t need = static_cast<size_t>(rows * cols);
  if (buf.size() < need) buf.resize(need);
  TransposeInto(src, rows, cols, buf.data());
  return buf.data();
}

}  // namespace tspn::nn::kernels
