#include "nn/serialize.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>

#include "common/check.h"

namespace tspn::nn {

namespace {
constexpr uint32_t kMagic = 0x54535056;  // "TSPV"
}  // namespace

void SaveParameters(const std::vector<Tensor>& parameters, std::ostream& out) {
  uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  uint32_t count = static_cast<uint32_t>(parameters.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : parameters) {
    uint32_t rank = static_cast<uint32_t>(p.rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : p.shape()) {
      int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  TSPN_CHECK(out.good()) << "parameter serialization failed";
}

bool LoadParameters(std::vector<Tensor>& parameters, std::istream& in) {
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in.good() || magic != kMagic) return false;
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || count != parameters.size()) return false;
  for (Tensor& p : parameters) {
    uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in.good() || rank != static_cast<uint32_t>(p.rank())) return false;
    for (int64_t expected : p.shape()) {
      int64_t dim = 0;
      in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (!in.good() || dim != expected) return false;
    }
    in.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!in.good()) return false;
  }
  return true;
}

bool LoadParametersStaged(const std::vector<Tensor>& like, std::istream& in,
                          std::vector<Tensor>* staged) {
  staged->clear();
  staged->reserve(like.size());
  for (const Tensor& p : like) {
    staged->push_back(Tensor::Zeros(p.shape()));
  }
  return LoadParameters(*staged, in);
}

bool LoadParametersAtomic(std::vector<Tensor>& parameters, std::istream& in) {
  std::vector<Tensor> staged;
  if (!LoadParametersStaged(parameters, in, &staged)) return false;
  for (size_t i = 0; i < parameters.size(); ++i) {
    std::copy_n(staged[i].data(), staged[i].numel(), parameters[i].data());
  }
  return true;
}

void SaveParametersToFile(const std::vector<Tensor>& parameters,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  TSPN_CHECK(out.is_open()) << "cannot open " << path;
  SaveParameters(parameters, out);
}

bool LoadParametersFromFile(std::vector<Tensor>& parameters, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  return LoadParameters(parameters, in);
}

}  // namespace tspn::nn
