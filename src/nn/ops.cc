#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/check.h"

namespace tspn::nn {

namespace {

using internal::TensorNode;

/// Creates an op-result tensor. If autograd is enabled and any parent
/// requires grad, the node records its parents and backward closure.
Tensor MakeOp(Shape shape, std::vector<float> data, std::vector<Tensor> parents,
              std::function<void(TensorNode&)> backward, const char* op) {
  bool track = NoGradGuard::GradEnabled();
  bool any_requires = false;
  if (track) {
    for (const Tensor& p : parents) {
      if (p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  Tensor out = Tensor::FromVector(shape, std::move(data), track && any_requires);
  if (track && any_requires) {
    TensorNode* node = out.node().get();
    node->parents.reserve(parents.size());
    for (const Tensor& p : parents) node->parents.push_back(p.node());
    node->backward = std::move(backward);
    node->op = op;
  }
  return out;
}

/// Accumulates `value` into parent's grad at `index` if the parent wants it.
inline void AccumulateInto(const std::shared_ptr<TensorNode>& parent, int64_t index,
                           float value) {
  if (!parent->requires_grad) return;
  parent->EnsureGrad();
  parent->grad[static_cast<size_t>(index)] += value;
}

// --- Broadcasting machinery -------------------------------------------------

constexpr int kMaxRank = 4;

struct BroadcastPlan {
  Shape out_shape;
  int64_t out_numel = 0;
  int rank = 0;
  int64_t out_dims[kMaxRank];
  int64_t a_strides[kMaxRank];
  int64_t b_strides[kMaxRank];
};

BroadcastPlan MakeBroadcastPlan(const Shape& a, const Shape& b) {
  TSPN_CHECK_LE(a.size(), static_cast<size_t>(kMaxRank));
  TSPN_CHECK_LE(b.size(), static_cast<size_t>(kMaxRank));
  BroadcastPlan plan;
  plan.rank = static_cast<int>(std::max(a.size(), b.size()));
  // Right-align shapes.
  int64_t a_dims[kMaxRank], b_dims[kMaxRank];
  for (int i = 0; i < plan.rank; ++i) {
    int ai = static_cast<int>(a.size()) - plan.rank + i;
    int bi = static_cast<int>(b.size()) - plan.rank + i;
    a_dims[i] = ai >= 0 ? a[static_cast<size_t>(ai)] : 1;
    b_dims[i] = bi >= 0 ? b[static_cast<size_t>(bi)] : 1;
    TSPN_CHECK(a_dims[i] == b_dims[i] || a_dims[i] == 1 || b_dims[i] == 1)
        << "incompatible broadcast " << ShapeToString(a) << " vs " << ShapeToString(b);
    plan.out_dims[i] = std::max(a_dims[i], b_dims[i]);
  }
  // Row-major strides with 0 on broadcast axes.
  int64_t a_stride = 1, b_stride = 1;
  for (int i = plan.rank - 1; i >= 0; --i) {
    plan.a_strides[i] = (a_dims[i] == 1 && plan.out_dims[i] != 1) ? 0 : a_stride;
    plan.b_strides[i] = (b_dims[i] == 1 && plan.out_dims[i] != 1) ? 0 : b_stride;
    a_stride *= a_dims[i];
    b_stride *= b_dims[i];
  }
  plan.out_shape.assign(plan.out_dims, plan.out_dims + plan.rank);
  plan.out_numel = NumElements(plan.out_shape);
  return plan;
}

/// Iterates the broadcast output space calling fn(out_index, a_index, b_index).
template <typename Fn>
void ForEachBroadcast(const BroadcastPlan& plan, Fn&& fn) {
  int64_t counters[kMaxRank] = {0, 0, 0, 0};
  int64_t ai = 0, bi = 0;
  for (int64_t out = 0; out < plan.out_numel; ++out) {
    fn(out, ai, bi);
    for (int d = plan.rank - 1; d >= 0; --d) {
      ++counters[d];
      ai += plan.a_strides[d];
      bi += plan.b_strides[d];
      if (counters[d] < plan.out_dims[d]) break;
      ai -= plan.a_strides[d] * plan.out_dims[d];
      bi -= plan.b_strides[d] * plan.out_dims[d];
      counters[d] = 0;
    }
  }
}

enum class BinaryKind { kAdd, kSub, kMul, kDiv };

Tensor BroadcastBinary(const Tensor& a, const Tensor& b, BinaryKind kind,
                       const char* name) {
  BroadcastPlan plan = MakeBroadcastPlan(a.shape(), b.shape());
  std::vector<float> out(static_cast<size_t>(plan.out_numel));
  const float* pa = a.data();
  const float* pb = b.data();
  switch (kind) {
    case BinaryKind::kAdd:
      ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
        out[static_cast<size_t>(o)] = pa[i] + pb[j];
      });
      break;
    case BinaryKind::kSub:
      ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
        out[static_cast<size_t>(o)] = pa[i] - pb[j];
      });
      break;
    case BinaryKind::kMul:
      ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
        out[static_cast<size_t>(o)] = pa[i] * pb[j];
      });
      break;
    case BinaryKind::kDiv:
      ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
        out[static_cast<size_t>(o)] = pa[i] / pb[j];
      });
      break;
  }
  auto backward = [plan, kind](TensorNode& node) {
    const auto& pa_node = node.parents[0];
    const auto& pb_node = node.parents[1];
    const float* g = node.grad.data();
    const float* av = pa_node->data.data();
    const float* bv = pb_node->data.data();
    ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
      float go = g[o];
      switch (kind) {
        case BinaryKind::kAdd:
          AccumulateInto(pa_node, i, go);
          AccumulateInto(pb_node, j, go);
          break;
        case BinaryKind::kSub:
          AccumulateInto(pa_node, i, go);
          AccumulateInto(pb_node, j, -go);
          break;
        case BinaryKind::kMul:
          AccumulateInto(pa_node, i, go * bv[j]);
          AccumulateInto(pb_node, j, go * av[i]);
          break;
        case BinaryKind::kDiv:
          AccumulateInto(pa_node, i, go / bv[j]);
          AccumulateInto(pb_node, j, -go * av[i] / (bv[j] * bv[j]));
          break;
      }
    });
  };
  return MakeOp(plan.out_shape, std::move(out), {a, b}, backward, name);
}

/// Unary op helper: fn computes value, dfn computes d(out)/d(in) given (x, y).
Tensor UnaryOp(const Tensor& a, std::function<float(float)> fn,
               std::function<float(float, float)> dfn, const char* name) {
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = fn(pa[i]);
  std::vector<float> saved = out;
  auto backward = [saved = std::move(saved), dfn](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      parent->grad[i] += node.grad[i] * dfn(parent->data[i], saved[i]);
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward, name);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, BinaryKind::kAdd, "add");
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, BinaryKind::kSub, "sub");
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, BinaryKind::kMul, "mul");
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, BinaryKind::kDiv, "div");
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; },
      "add_scalar");
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; }, "mul_scalar");
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); }, [](float, float y) { return y; }, "exp");
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); }, [](float x, float) { return 1.0f / x; },
      "log");
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); }, "sqrt");
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp(
      a, [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) { return x > 0.0f ? 1.0f : negative_slope; },
      "leaky_relu");
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; }, "elu");
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); }, "sigmoid");
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "tanh");
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  TSPN_CHECK_EQ(NumElements(shape), a.numel());
  auto backward = [](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) parent->grad[i] += node.grad[i];
  };
  return MakeOp(shape, a.ToVector(), {a}, backward, "reshape");
}

Tensor Transpose(const Tensor& a) {
  TSPN_CHECK_EQ(a.rank(), 2);
  int64_t m = a.dim(0), n = a.dim(1);
  std::vector<float> out(static_cast<size_t>(m * n));
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[static_cast<size_t>(j * m + i)] = pa[i * n + j];
  }
  auto backward = [m, n](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        parent->grad[static_cast<size_t>(i * n + j)] +=
            node.grad[static_cast<size_t>(j * m + i)];
      }
    }
  };
  return MakeOp({n, m}, std::move(out), {a}, backward, "transpose");
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  TSPN_CHECK(!parts.empty());
  Shape shape = parts[0].shape();
  int64_t total_rows = 0;
  int64_t row_size = parts[0].numel() / std::max<int64_t>(shape[0], 1);
  for (const Tensor& p : parts) {
    TSPN_CHECK_EQ(p.rank(), static_cast<int>(shape.size()));
    for (size_t d = 1; d < shape.size(); ++d) TSPN_CHECK_EQ(p.shape()[d], shape[d]);
    total_rows += p.dim(0);
  }
  shape[0] = total_rows;
  std::vector<float> out;
  out.reserve(static_cast<size_t>(total_rows * row_size));
  for (const Tensor& p : parts) {
    const float* pp = p.data();
    out.insert(out.end(), pp, pp + p.numel());
  }
  auto backward = [](TensorNode& node) {
    size_t offset = 0;
    for (const auto& parent : node.parents) {
      size_t count = parent->data.size();
      if (parent->requires_grad) {
        parent->EnsureGrad();
        for (size_t i = 0; i < count; ++i) parent->grad[i] += node.grad[offset + i];
      }
      offset += count;
    }
  };
  return MakeOp(shape, std::move(out), parts, backward, "concat_rows");
}

Tensor ConcatLast(const std::vector<Tensor>& parts) {
  TSPN_CHECK(!parts.empty());
  int rank = parts[0].rank();
  TSPN_CHECK(rank == 1 || rank == 2);
  int64_t rows = rank == 1 ? 1 : parts[0].dim(0);
  int64_t total_cols = 0;
  std::vector<int64_t> cols(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    TSPN_CHECK_EQ(parts[i].rank(), rank);
    if (rank == 2) {
      TSPN_CHECK_EQ(parts[i].dim(0), rows);
    }
    cols[i] = rank == 1 ? parts[i].dim(0) : parts[i].dim(1);
    total_cols += cols[i];
  }
  std::vector<float> out(static_cast<size_t>(rows * total_cols));
  int64_t col_offset = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    const float* pp = parts[i].data();
    for (int64_t r = 0; r < rows; ++r) {
      std::memcpy(&out[static_cast<size_t>(r * total_cols + col_offset)],
                  pp + r * cols[i], static_cast<size_t>(cols[i]) * sizeof(float));
    }
    col_offset += cols[i];
  }
  Shape shape = rank == 1 ? Shape{total_cols} : Shape{rows, total_cols};
  auto backward = [rows, total_cols, cols](TensorNode& node) {
    int64_t offset = 0;
    for (size_t i = 0; i < node.parents.size(); ++i) {
      const auto& parent = node.parents[i];
      if (parent->requires_grad) {
        parent->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols[i]; ++c) {
            parent->grad[static_cast<size_t>(r * cols[i] + c)] +=
                node.grad[static_cast<size_t>(r * total_cols + offset + c)];
          }
        }
      }
      offset += cols[i];
    }
  };
  return MakeOp(shape, std::move(out), parts, backward, "concat_last");
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  TSPN_CHECK(!rows.empty());
  int64_t d = rows[0].numel();
  std::vector<float> out;
  out.reserve(rows.size() * static_cast<size_t>(d));
  for (const Tensor& r : rows) {
    TSPN_CHECK_EQ(r.numel(), d);
    const float* pr = r.data();
    out.insert(out.end(), pr, pr + d);
  }
  auto backward = [d](TensorNode& node) {
    for (size_t i = 0; i < node.parents.size(); ++i) {
      const auto& parent = node.parents[i];
      if (!parent->requires_grad) continue;
      parent->EnsureGrad();
      for (int64_t j = 0; j < d; ++j) {
        parent->grad[static_cast<size_t>(j)] +=
            node.grad[i * static_cast<size_t>(d) + static_cast<size_t>(j)];
      }
    }
  };
  return MakeOp({static_cast<int64_t>(rows.size()), d}, std::move(out), rows, backward,
                "stack_rows");
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t length) {
  TSPN_CHECK_EQ(a.rank(), 2);
  TSPN_CHECK_GE(start, 0);
  TSPN_CHECK_LE(start + length, a.dim(0));
  int64_t d = a.dim(1);
  std::vector<float> out(static_cast<size_t>(length * d));
  std::memcpy(out.data(), a.data() + start * d,
              static_cast<size_t>(length * d) * sizeof(float));
  auto backward = [start, length, d](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (int64_t i = 0; i < length * d; ++i) {
      parent->grad[static_cast<size_t>(start * d + i)] +=
          node.grad[static_cast<size_t>(i)];
    }
  };
  return MakeOp({length, d}, std::move(out), {a}, backward, "slice_rows");
}

Tensor Row(const Tensor& a, int64_t index) {
  Tensor sliced = SliceRows(a, index, 1);
  return Reshape(sliced, {a.dim(1)});
}

Tensor SumAll(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) total += pa[i];
  auto backward = [](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    float g = node.grad[0];
    for (size_t i = 0; i < parent->grad.size(); ++i) parent->grad[i] += g;
  };
  return MakeOp({1}, {static_cast<float>(total)}, {a}, backward, "sum_all");
}

Tensor MeanAll(const Tensor& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumRows(const Tensor& a) {
  TSPN_CHECK_EQ(a.rank(), 2);
  int64_t n = a.dim(0), d = a.dim(1);
  std::vector<float> out(static_cast<size_t>(d), 0.0f);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[static_cast<size_t>(j)] += pa[i * d + j];
  }
  auto backward = [n, d](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        parent->grad[static_cast<size_t>(i * d + j)] +=
            node.grad[static_cast<size_t>(j)];
      }
    }
  };
  return MakeOp({d}, std::move(out), {a}, backward, "sum_rows");
}

Tensor MeanRows(const Tensor& a) {
  TSPN_CHECK_EQ(a.rank(), 2);
  return MulScalar(SumRows(a), 1.0f / static_cast<float>(a.dim(0)));
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TSPN_CHECK_EQ(a.rank(), 2);
  TSPN_CHECK_EQ(b.rank(), 2);
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  TSPN_CHECK_EQ(b.dim(0), k) << "matmul inner dims";
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = out.data() + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  auto backward = [m, k, n](TensorNode& node) {
    const auto& pa_node = node.parents[0];
    const auto& pb_node = node.parents[1];
    const float* g = node.grad.data();
    if (pa_node->requires_grad) {
      pa_node->EnsureGrad();
      const float* bv = pb_node->data.data();
      // dA = dOut * B^T
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
          float acc = 0.0f;
          const float* grow = g + i * n;
          const float* brow = bv + kk * n;
          for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
          pa_node->grad[static_cast<size_t>(i * k + kk)] += acc;
        }
      }
    }
    if (pb_node->requires_grad) {
      pb_node->EnsureGrad();
      const float* av = pa_node->data.data();
      // dB = A^T * dOut
      for (int64_t kk = 0; kk < k; ++kk) {
        for (int64_t i = 0; i < m; ++i) {
          float a_ik = av[i * k + kk];
          if (a_ik == 0.0f) continue;
          const float* grow = g + i * n;
          float* brow = pb_node->grad.data() + kk * n;
          for (int64_t j = 0; j < n; ++j) brow[j] += a_ik * grow[j];
        }
      }
    }
  };
  return MakeOp({m, n}, std::move(out), {a, b}, backward, "matmul");
}

Tensor MatVec(const Tensor& a, const Tensor& v) {
  TSPN_CHECK_EQ(a.rank(), 2);
  TSPN_CHECK_EQ(v.rank(), 1);
  Tensor v2 = Reshape(v, {v.dim(0), 1});
  Tensor out = MatMul(a, v2);
  return Reshape(out, {a.dim(0)});
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  TSPN_CHECK_EQ(a.rank(), 1);
  TSPN_CHECK_EQ(b.rank(), 1);
  return SumAll(Mul(a, b));
}

namespace {

/// Shared softmax/log-softmax implementation over the last axis.
Tensor SoftmaxImpl(const Tensor& a, bool log_space) {
  TSPN_CHECK(a.rank() == 1 || a.rank() == 2);
  int64_t rows = a.rank() == 1 ? 1 : a.dim(0);
  int64_t cols = a.rank() == 1 ? a.dim(0) : a.dim(1);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa + r * cols;
    float* y = out.data() + r * cols;
    float mx = x[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) denom += std::exp(static_cast<double>(x[c] - mx));
    float log_denom = static_cast<float>(std::log(denom));
    for (int64_t c = 0; c < cols; ++c) {
      float logit = x[c] - mx - log_denom;
      y[c] = log_space ? logit : std::exp(logit);
    }
  }
  std::vector<float> saved = out;
  auto backward = [rows, cols, log_space, saved = std::move(saved)](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (int64_t r = 0; r < rows; ++r) {
      const float* y = saved.data() + r * cols;
      const float* g = node.grad.data() + r * cols;
      float* px = parent->grad.data() + r * cols;
      if (log_space) {
        // d log_softmax: dx = g - softmax * sum(g)
        double gsum = 0.0;
        for (int64_t c = 0; c < cols; ++c) gsum += g[c];
        for (int64_t c = 0; c < cols; ++c) {
          px[c] += g[c] - std::exp(y[c]) * static_cast<float>(gsum);
        }
      } else {
        // d softmax: dx = y * (g - sum(g*y))
        double dot = 0.0;
        for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(g[c]) * y[c];
        for (int64_t c = 0; c < cols; ++c) {
          px[c] += y[c] * (g[c] - static_cast<float>(dot));
        }
      }
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward,
                log_space ? "log_softmax" : "softmax");
}

}  // namespace

Tensor Softmax(const Tensor& a) { return SoftmaxImpl(a, /*log_space=*/false); }
Tensor LogSoftmax(const Tensor& a) { return SoftmaxImpl(a, /*log_space=*/true); }

Tensor L2Normalize(const Tensor& a, float eps) {
  TSPN_CHECK(a.rank() == 1 || a.rank() == 2);
  int64_t rows = a.rank() == 1 ? 1 : a.dim(0);
  int64_t cols = a.rank() == 1 ? a.dim(0) : a.dim(1);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  std::vector<float> norms(static_cast<size_t>(rows));
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa + r * cols;
    double sq = 0.0;
    for (int64_t c = 0; c < cols; ++c) sq += static_cast<double>(x[c]) * x[c];
    float norm = std::max(static_cast<float>(std::sqrt(sq)), eps);
    norms[static_cast<size_t>(r)] = norm;
    for (int64_t c = 0; c < cols; ++c) out[static_cast<size_t>(r * cols + c)] = x[c] / norm;
  }
  auto backward = [rows, cols, norms = std::move(norms)](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (int64_t r = 0; r < rows; ++r) {
      const float* x = parent->data.data() + r * cols;
      const float* g = node.grad.data() + r * cols;
      float* px = parent->grad.data() + r * cols;
      float norm = norms[static_cast<size_t>(r)];
      double dot = 0.0;  // g . x
      for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(g[c]) * x[c];
      float inv = 1.0f / norm;
      float inv3 = inv * inv * inv;
      for (int64_t c = 0; c < cols; ++c) {
        px[c] += g[c] * inv - static_cast<float>(dot) * x[c] * inv3;
      }
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward, "l2_normalize");
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps) {
  TSPN_CHECK(x.rank() == 1 || x.rank() == 2);
  int64_t rows = x.rank() == 1 ? 1 : x.dim(0);
  int64_t cols = x.rank() == 1 ? x.dim(0) : x.dim(1);
  TSPN_CHECK_EQ(gamma.numel(), cols);
  TSPN_CHECK_EQ(beta.numel(), cols);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  std::vector<float> xhat(static_cast<size_t>(rows * cols));
  std::vector<float> inv_std(static_cast<size_t>(rows));
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * cols;
    double mean = 0.0;
    for (int64_t c = 0; c < cols; ++c) mean += xr[c];
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      double d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    float istd = 1.0f / static_cast<float>(std::sqrt(var + eps));
    inv_std[static_cast<size_t>(r)] = istd;
    for (int64_t c = 0; c < cols; ++c) {
      float h = (xr[c] - static_cast<float>(mean)) * istd;
      xhat[static_cast<size_t>(r * cols + c)] = h;
      out[static_cast<size_t>(r * cols + c)] = h * pg[c] + pb[c];
    }
  }
  auto backward = [rows, cols, xhat = std::move(xhat),
                   inv_std = std::move(inv_std)](TensorNode& node) {
    const auto& x_node = node.parents[0];
    const auto& g_node = node.parents[1];
    const auto& b_node = node.parents[2];
    const float* g = node.grad.data();
    const float* gamma = g_node->data.data();
    if (g_node->requires_grad) g_node->EnsureGrad();
    if (b_node->requires_grad) b_node->EnsureGrad();
    if (x_node->requires_grad) x_node->EnsureGrad();
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * cols;
      const float* hr = xhat.data() + r * cols;
      float istd = inv_std[static_cast<size_t>(r)];
      if (g_node->requires_grad || b_node->requires_grad) {
        for (int64_t c = 0; c < cols; ++c) {
          if (g_node->requires_grad) {
            g_node->grad[static_cast<size_t>(c)] += gr[c] * hr[c];
          }
          if (b_node->requires_grad) b_node->grad[static_cast<size_t>(c)] += gr[c];
        }
      }
      if (x_node->requires_grad) {
        // dxhat = g * gamma; dx = (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)) * istd
        double sum_dh = 0.0, sum_dh_h = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
          float dh = gr[c] * gamma[c];
          sum_dh += dh;
          sum_dh_h += static_cast<double>(dh) * hr[c];
        }
        float mean_dh = static_cast<float>(sum_dh / static_cast<double>(cols));
        float mean_dh_h = static_cast<float>(sum_dh_h / static_cast<double>(cols));
        for (int64_t c = 0; c < cols; ++c) {
          float dh = gr[c] * gamma[c];
          x_node->grad[static_cast<size_t>(r * cols + c)] +=
              (dh - mean_dh - hr[c] * mean_dh_h) * istd;
        }
      }
    }
  };
  return MakeOp(x.shape(), std::move(out), {x, gamma, beta}, backward, "layer_norm");
}

Tensor Dropout(const Tensor& a, float p, common::Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  TSPN_CHECK_LT(p, 1.0f);
  float keep = 1.0f - p;
  std::vector<float> mask(static_cast<size_t>(a.numel()));
  for (float& m : mask) m = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = pa[i] * mask[i];
  auto backward = [mask = std::move(mask)](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      parent->grad[i] += node.grad[i] * mask[i];
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward, "dropout");
}

Tensor EmbeddingGather(const Tensor& weight, const std::vector<int64_t>& indices) {
  TSPN_CHECK_EQ(weight.rank(), 2);
  int64_t v = weight.dim(0), d = weight.dim(1);
  int64_t l = static_cast<int64_t>(indices.size());
  std::vector<float> out(static_cast<size_t>(l * d));
  const float* pw = weight.data();
  for (int64_t i = 0; i < l; ++i) {
    int64_t idx = indices[static_cast<size_t>(i)];
    TSPN_CHECK_GE(idx, 0);
    TSPN_CHECK_LT(idx, v);
    std::memcpy(&out[static_cast<size_t>(i * d)], pw + idx * d,
                static_cast<size_t>(d) * sizeof(float));
  }
  auto backward = [indices, d](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (size_t i = 0; i < indices.size(); ++i) {
      int64_t idx = indices[i];
      for (int64_t j = 0; j < d; ++j) {
        parent->grad[static_cast<size_t>(idx * d + j)] +=
            node.grad[i * static_cast<size_t>(d) + static_cast<size_t>(j)];
      }
    }
  };
  return MakeOp({l, d}, std::move(out), {weight}, backward, "embedding_gather");
}

Tensor CrossEntropyWithLogits(const Tensor& logits, int64_t target) {
  TSPN_CHECK_EQ(logits.rank(), 1);
  TSPN_CHECK_GE(target, 0);
  TSPN_CHECK_LT(target, logits.dim(0));
  Tensor log_probs = LogSoftmax(logits);
  // Select the target entry via slice: reshape to [N,1] rows then SliceRows.
  Tensor as_rows = Reshape(log_probs, {logits.dim(0), 1});
  Tensor picked = SliceRows(as_rows, target, 1);
  return Neg(Reshape(picked, {1}));
}

Tensor ArcFaceLogits(const Tensor& cosines, int64_t target, float scale, float margin) {
  TSPN_CHECK_EQ(cosines.rank(), 1);
  int64_t n = cosines.dim(0);
  TSPN_CHECK_GE(target, 0);
  TSPN_CHECK_LT(target, n);
  const float cos_m = std::cos(margin);
  const float sin_m = std::sin(margin);
  std::vector<float> out(static_cast<size_t>(n));
  const float* pc = cosines.data();
  for (int64_t i = 0; i < n; ++i) {
    float c = std::clamp(pc[i], -1.0f, 1.0f);
    if (i == target) {
      float s = std::sqrt(std::max(0.0f, 1.0f - c * c));
      out[static_cast<size_t>(i)] = scale * (c * cos_m - s * sin_m);
    } else {
      out[static_cast<size_t>(i)] = scale * c;
    }
  }
  auto backward = [n, target, scale, cos_m, sin_m](TensorNode& node) {
    const auto& parent = node.parents[0];
    if (!parent->requires_grad) return;
    parent->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) {
      float g = node.grad[static_cast<size_t>(i)];
      if (i == target) {
        float c = std::clamp(parent->data[static_cast<size_t>(i)], -1.0f, 1.0f);
        float s = std::sqrt(std::max(1e-6f, 1.0f - c * c));
        // d/dc [c*cos_m - sqrt(1-c^2)*sin_m] = cos_m + c/sqrt(1-c^2) * sin_m
        parent->grad[static_cast<size_t>(i)] += g * scale * (cos_m + (c / s) * sin_m);
      } else {
        parent->grad[static_cast<size_t>(i)] += g * scale;
      }
    }
  };
  return MakeOp({n}, std::move(out), {cosines}, backward, "arcface_logits");
}

}  // namespace tspn::nn
