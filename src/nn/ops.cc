#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/check.h"
#include "nn/kernels.h"

namespace tspn::nn {

namespace {

using internal::TensorNode;

/// Creates an op-result tensor. If autograd is enabled and any parent
/// requires grad, the node records its parents and backward closure.
Tensor MakeOp(Shape shape, std::vector<float> data, std::vector<Tensor> parents,
              std::function<void(TensorNode&)> backward, const char* op) {
  bool track = NoGradGuard::GradEnabled();
  bool any_requires = false;
  if (track) {
    for (const Tensor& p : parents) {
      if (p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  Tensor out = Tensor::FromVector(shape, std::move(data), track && any_requires);
  if (track && any_requires) {
    TensorNode* node = out.node().get();
    node->parents.reserve(parents.size());
    for (const Tensor& p : parents) node->parents.push_back(p.node());
    node->backward = std::move(backward);
    node->op = op;
  }
  return out;
}

/// Raw gradient pointer of `parent` (allocating on first use), or nullptr if
/// the parent does not participate in the backward pass. Lets backward inner
/// loops run on raw pointers with the requires_grad/EnsureGrad check hoisted
/// out entirely.
inline float* GradPtr(const std::shared_ptr<TensorNode>& parent) {
  if (!parent->requires_grad) return nullptr;
  parent->EnsureGrad();
  return parent->grad.data();
}

// --- Broadcasting machinery -------------------------------------------------

constexpr int kMaxRank = 4;

struct BroadcastPlan {
  Shape out_shape;
  int64_t out_numel = 0;
  int rank = 0;
  int64_t out_dims[kMaxRank];
  int64_t a_strides[kMaxRank];
  int64_t b_strides[kMaxRank];
};

BroadcastPlan MakeBroadcastPlan(const Shape& a, const Shape& b) {
  TSPN_CHECK_LE(a.size(), static_cast<size_t>(kMaxRank));
  TSPN_CHECK_LE(b.size(), static_cast<size_t>(kMaxRank));
  BroadcastPlan plan;
  plan.rank = static_cast<int>(std::max(a.size(), b.size()));
  // Right-align shapes.
  int64_t a_dims[kMaxRank], b_dims[kMaxRank];
  for (int i = 0; i < plan.rank; ++i) {
    int ai = static_cast<int>(a.size()) - plan.rank + i;
    int bi = static_cast<int>(b.size()) - plan.rank + i;
    a_dims[i] = ai >= 0 ? a[static_cast<size_t>(ai)] : 1;
    b_dims[i] = bi >= 0 ? b[static_cast<size_t>(bi)] : 1;
    TSPN_CHECK(a_dims[i] == b_dims[i] || a_dims[i] == 1 || b_dims[i] == 1)
        << "incompatible broadcast " << ShapeToString(a) << " vs " << ShapeToString(b);
    plan.out_dims[i] = std::max(a_dims[i], b_dims[i]);
  }
  // Row-major strides with 0 on broadcast axes.
  int64_t a_stride = 1, b_stride = 1;
  for (int i = plan.rank - 1; i >= 0; --i) {
    plan.a_strides[i] = (a_dims[i] == 1 && plan.out_dims[i] != 1) ? 0 : a_stride;
    plan.b_strides[i] = (b_dims[i] == 1 && plan.out_dims[i] != 1) ? 0 : b_stride;
    a_stride *= a_dims[i];
    b_stride *= b_dims[i];
  }
  plan.out_shape.assign(plan.out_dims, plan.out_dims + plan.rank);
  plan.out_numel = NumElements(plan.out_shape);
  return plan;
}

/// Iterates the broadcast output space calling fn(out_index, a_index, b_index).
template <typename Fn>
void ForEachBroadcast(const BroadcastPlan& plan, Fn&& fn) {
  int64_t counters[kMaxRank] = {0, 0, 0, 0};
  int64_t ai = 0, bi = 0;
  for (int64_t out = 0; out < plan.out_numel; ++out) {
    fn(out, ai, bi);
    for (int d = plan.rank - 1; d >= 0; --d) {
      ++counters[d];
      ai += plan.a_strides[d];
      bi += plan.b_strides[d];
      if (counters[d] < plan.out_dims[d]) break;
      ai -= plan.a_strides[d] * plan.out_dims[d];
      bi -= plan.b_strides[d] * plan.out_dims[d];
      counters[d] = 0;
    }
  }
}

enum class BinaryKind { kAdd, kSub, kMul, kDiv };

template <BinaryKind kKind>
inline float BinaryApply(float x, float y) {
  if constexpr (kKind == BinaryKind::kAdd) return x + y;
  if constexpr (kKind == BinaryKind::kSub) return x - y;
  if constexpr (kKind == BinaryKind::kMul) return x * y;
  return x / y;
}

/// Memory layout of a binary op's operands relative to its output. Everything
/// except kGeneric runs on flat contiguous loops with no odometer dispatch.
enum class BinaryLayout { kSameShape, kScalarLhs, kScalarRhs, kGeneric };

BinaryLayout ClassifyBinaryLayout(const BroadcastPlan& plan, int64_t a_numel,
                                  int64_t b_numel) {
  // An operand whose numel matches the output cannot have a broadcast axis,
  // so its traversal is contiguous row-major even if ranks differ.
  if (a_numel == plan.out_numel && b_numel == plan.out_numel) {
    return BinaryLayout::kSameShape;
  }
  if (a_numel == 1) return BinaryLayout::kScalarLhs;
  if (b_numel == 1) return BinaryLayout::kScalarRhs;
  return BinaryLayout::kGeneric;
}

template <BinaryKind kKind>
void BinaryForwardFill(BinaryLayout layout, const BroadcastPlan& plan,
                       const float* pa, const float* pb, float* out) {
  const int64_t n = plan.out_numel;
  switch (layout) {
    case BinaryLayout::kSameShape:
      for (int64_t i = 0; i < n; ++i) out[i] = BinaryApply<kKind>(pa[i], pb[i]);
      break;
    case BinaryLayout::kScalarLhs: {
      const float a0 = pa[0];
      for (int64_t i = 0; i < n; ++i) out[i] = BinaryApply<kKind>(a0, pb[i]);
      break;
    }
    case BinaryLayout::kScalarRhs: {
      const float b0 = pb[0];
      for (int64_t i = 0; i < n; ++i) out[i] = BinaryApply<kKind>(pa[i], b0);
      break;
    }
    case BinaryLayout::kGeneric:
      ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
        out[o] = BinaryApply<kKind>(pa[i], pb[j]);
      });
      break;
  }
}

/// d(out)/da and d(out)/db of one output element.
template <BinaryKind kKind>
inline float BinaryGradA(float go, float /*av*/, float bv) {
  if constexpr (kKind == BinaryKind::kAdd) return go;
  if constexpr (kKind == BinaryKind::kSub) return go;
  if constexpr (kKind == BinaryKind::kMul) return go * bv;
  return go / bv;
}

template <BinaryKind kKind>
inline float BinaryGradB(float go, float av, float bv) {
  if constexpr (kKind == BinaryKind::kAdd) return go;
  if constexpr (kKind == BinaryKind::kSub) return -go;
  if constexpr (kKind == BinaryKind::kMul) return go * av;
  return -go * av / (bv * bv);
}

template <BinaryKind kKind>
void BinaryBackward(BinaryLayout layout, const BroadcastPlan& plan,
                    TensorNode& node) {
  const auto& pa_node = node.parents[0];
  const auto& pb_node = node.parents[1];
  float* ga = GradPtr(pa_node);
  float* gb = GradPtr(pb_node);
  if (ga == nullptr && gb == nullptr) return;
  const float* g = node.grad.data();
  const float* av = pa_node->data.data();
  const float* bv = pb_node->data.data();
  const int64_t n = plan.out_numel;
  switch (layout) {
    case BinaryLayout::kSameShape:
      if (ga != nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          ga[i] += BinaryGradA<kKind>(g[i], av[i], bv[i]);
        }
      }
      if (gb != nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          gb[i] += BinaryGradB<kKind>(g[i], av[i], bv[i]);
        }
      }
      break;
    case BinaryLayout::kScalarLhs: {
      const float a0 = av[0];
      if (ga != nullptr) {
        double acc = 0.0;  // scalar side reduces over the whole output
        for (int64_t i = 0; i < n; ++i) acc += BinaryGradA<kKind>(g[i], a0, bv[i]);
        ga[0] += static_cast<float>(acc);
      }
      if (gb != nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          gb[i] += BinaryGradB<kKind>(g[i], a0, bv[i]);
        }
      }
      break;
    }
    case BinaryLayout::kScalarRhs: {
      const float b0 = bv[0];
      if (ga != nullptr) {
        for (int64_t i = 0; i < n; ++i) {
          ga[i] += BinaryGradA<kKind>(g[i], av[i], b0);
        }
      }
      if (gb != nullptr) {
        double acc = 0.0;
        for (int64_t i = 0; i < n; ++i) acc += BinaryGradB<kKind>(g[i], av[i], b0);
        gb[0] += static_cast<float>(acc);
      }
      break;
    }
    case BinaryLayout::kGeneric:
      ForEachBroadcast(plan, [&](int64_t o, int64_t i, int64_t j) {
        const float go = g[o];
        if (ga != nullptr) ga[i] += BinaryGradA<kKind>(go, av[i], bv[j]);
        if (gb != nullptr) gb[j] += BinaryGradB<kKind>(go, av[i], bv[j]);
      });
      break;
  }
}

template <BinaryKind kKind>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, const char* name) {
  BroadcastPlan plan = MakeBroadcastPlan(a.shape(), b.shape());
  BinaryLayout layout = ClassifyBinaryLayout(plan, a.numel(), b.numel());
  std::vector<float> out(static_cast<size_t>(plan.out_numel));
  BinaryForwardFill<kKind>(layout, plan, a.data(), b.data(), out.data());
  auto backward = [plan, layout](TensorNode& node) {
    BinaryBackward<kKind>(layout, plan, node);
  };
  return MakeOp(plan.out_shape, std::move(out), {a, b}, std::move(backward), name);
}

/// Unary op helper: `fn(x)` computes the value, `dfn(x, y)` computes
/// d(out)/d(in) from the input and (when kSaveOutput) the saved output.
/// Both are compile-time functors, so the per-element dispatch of the old
/// std::function implementation inlines away.
template <bool kSaveOutput, typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fn, Bwd dfn, const char* name) {
  const int64_t n = a.numel();
  std::vector<float> out(static_cast<size_t>(n));
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) out[static_cast<size_t>(i)] = fn(pa[i]);
  const bool track = NoGradGuard::GradEnabled() && a.requires_grad();
  std::vector<float> saved;
  if (kSaveOutput && track) saved = out;
  auto backward = [saved = std::move(saved), dfn](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    const float* x = parent->data.data();
    const int64_t count = static_cast<int64_t>(node.grad.size());
    for (int64_t i = 0; i < count; ++i) {
      if constexpr (kSaveOutput) {
        pg[i] += g[i] * dfn(x[i], saved[static_cast<size_t>(i)]);
      } else {
        pg[i] += g[i] * dfn(x[i], 0.0f);
      }
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, std::move(backward), name);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary<BinaryKind::kAdd>(a, b, "add");
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary<BinaryKind::kSub>(a, b, "sub");
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary<BinaryKind::kMul>(a, b, "mul");
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary<BinaryKind::kDiv>(a, b, "div");
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp<false>(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; },
      "add_scalar");
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp<false>(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; }, "mul_scalar");
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  return UnaryOp<true>(
      a, [](float x) { return std::exp(x); }, [](float, float y) { return y; }, "exp");
}

Tensor Log(const Tensor& a) {
  return UnaryOp<false>(
      a, [](float x) { return std::log(x); }, [](float x, float) { return 1.0f / x; },
      "log");
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp<true>(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); }, "sqrt");
}

Tensor Relu(const Tensor& a) {
  return UnaryOp<false>(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp<false>(
      a, [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) { return x > 0.0f ? 1.0f : negative_slope; },
      "leaky_relu");
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp<true>(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; }, "elu");
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp<true>(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); }, "sigmoid");
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp<true>(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "tanh");
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  TSPN_CHECK_EQ(NumElements(shape), a.numel());
  // Aliasing view: the output node shares the input's storage, so no element
  // is copied. Mutating either tensor's data is visible through both.
  const bool track = NoGradGuard::GradEnabled() && a.requires_grad();
  auto node = std::make_shared<TensorNode>(shape, a.node()->storage, track);
  if (track) {
    node->parents.push_back(a.node());
    node->backward = [](TensorNode& self) {
      const auto& parent = self.parents[0];
      float* pg = GradPtr(parent);
      if (pg == nullptr) return;
      const float* g = self.grad.data();
      const int64_t count = static_cast<int64_t>(self.grad.size());
      for (int64_t i = 0; i < count; ++i) pg[i] += g[i];
    };
    node->op = "reshape";
  }
  return Tensor(std::move(node));
}

Tensor Transpose(const Tensor& a) {
  TSPN_CHECK_EQ(a.rank(), 2);
  int64_t m = a.dim(0), n = a.dim(1);
  std::vector<float> out(static_cast<size_t>(m * n));
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[static_cast<size_t>(j * m + i)] = pa[i * n + j];
  }
  auto backward = [m, n](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) pg[i * n + j] += g[j * m + i];
    }
  };
  return MakeOp({n, m}, std::move(out), {a}, backward, "transpose");
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  TSPN_CHECK(!parts.empty());
  Shape shape = parts[0].shape();
  int64_t total_rows = 0;
  // Row size comes from the trailing dims: numel()/dim(0) is wrong when the
  // first part has zero rows.
  int64_t row_size = 1;
  for (size_t d = 1; d < shape.size(); ++d) row_size *= shape[d];
  for (const Tensor& p : parts) {
    TSPN_CHECK_EQ(p.rank(), static_cast<int>(shape.size()));
    for (size_t d = 1; d < shape.size(); ++d) TSPN_CHECK_EQ(p.shape()[d], shape[d]);
    total_rows += p.dim(0);
  }
  shape[0] = total_rows;
  std::vector<float> out;
  out.reserve(static_cast<size_t>(total_rows * row_size));
  for (const Tensor& p : parts) {
    const float* pp = p.data();
    out.insert(out.end(), pp, pp + p.numel());
  }
  auto backward = [](TensorNode& node) {
    const float* g = node.grad.data();
    size_t offset = 0;
    for (const auto& parent : node.parents) {
      size_t count = parent->data.size();
      if (float* pg = GradPtr(parent)) {
        for (size_t i = 0; i < count; ++i) pg[i] += g[offset + i];
      }
      offset += count;
    }
  };
  return MakeOp(shape, std::move(out), parts, backward, "concat_rows");
}

Tensor ConcatLast(const std::vector<Tensor>& parts) {
  TSPN_CHECK(!parts.empty());
  int rank = parts[0].rank();
  TSPN_CHECK(rank == 1 || rank == 2);
  int64_t rows = rank == 1 ? 1 : parts[0].dim(0);
  int64_t total_cols = 0;
  std::vector<int64_t> cols(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    TSPN_CHECK_EQ(parts[i].rank(), rank);
    if (rank == 2) {
      TSPN_CHECK_EQ(parts[i].dim(0), rows);
    }
    cols[i] = rank == 1 ? parts[i].dim(0) : parts[i].dim(1);
    total_cols += cols[i];
  }
  std::vector<float> out(static_cast<size_t>(rows * total_cols));
  int64_t col_offset = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    const float* pp = parts[i].data();
    for (int64_t r = 0; r < rows; ++r) {
      std::memcpy(&out[static_cast<size_t>(r * total_cols + col_offset)],
                  pp + r * cols[i], static_cast<size_t>(cols[i]) * sizeof(float));
    }
    col_offset += cols[i];
  }
  Shape shape = rank == 1 ? Shape{total_cols} : Shape{rows, total_cols};
  auto backward = [rows, total_cols, cols](TensorNode& node) {
    const float* g = node.grad.data();
    int64_t offset = 0;
    for (size_t i = 0; i < node.parents.size(); ++i) {
      if (float* pg = GradPtr(node.parents[i])) {
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols[i]; ++c) {
            pg[r * cols[i] + c] += g[r * total_cols + offset + c];
          }
        }
      }
      offset += cols[i];
    }
  };
  return MakeOp(shape, std::move(out), parts, backward, "concat_last");
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  TSPN_CHECK(!rows.empty());
  int64_t d = rows[0].numel();
  std::vector<float> out;
  out.reserve(rows.size() * static_cast<size_t>(d));
  for (const Tensor& r : rows) {
    TSPN_CHECK_EQ(r.numel(), d);
    const float* pr = r.data();
    out.insert(out.end(), pr, pr + d);
  }
  auto backward = [d](TensorNode& node) {
    const float* g = node.grad.data();
    for (size_t i = 0; i < node.parents.size(); ++i) {
      float* pg = GradPtr(node.parents[i]);
      if (pg == nullptr) continue;
      const float* grow = g + i * static_cast<size_t>(d);
      for (int64_t j = 0; j < d; ++j) pg[j] += grow[j];
    }
  };
  return MakeOp({static_cast<int64_t>(rows.size()), d}, std::move(out), rows, backward,
                "stack_rows");
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t length) {
  TSPN_CHECK_EQ(a.rank(), 2);
  TSPN_CHECK_GE(start, 0);
  TSPN_CHECK_LE(start + length, a.dim(0));
  int64_t d = a.dim(1);
  std::vector<float> out(static_cast<size_t>(length * d));
  std::memcpy(out.data(), a.data() + start * d,
              static_cast<size_t>(length * d) * sizeof(float));
  auto backward = [start, d](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    const int64_t count = static_cast<int64_t>(node.grad.size());
    pg += start * d;
    for (int64_t i = 0; i < count; ++i) pg[i] += g[i];
  };
  return MakeOp({length, d}, std::move(out), {a}, backward, "slice_rows");
}

Tensor Row(const Tensor& a, int64_t index) {
  Tensor sliced = SliceRows(a, index, 1);
  return Reshape(sliced, {a.dim(1)});
}

Tensor SumAll(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) total += pa[i];
  auto backward = [](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float g = node.grad[0];
    const int64_t count = static_cast<int64_t>(parent->grad.size());
    for (int64_t i = 0; i < count; ++i) pg[i] += g;
  };
  return MakeOp({1}, {static_cast<float>(total)}, {a}, backward, "sum_all");
}

Tensor MeanAll(const Tensor& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumRows(const Tensor& a) {
  TSPN_CHECK_EQ(a.rank(), 2);
  int64_t n = a.dim(0), d = a.dim(1);
  std::vector<float> out(static_cast<size_t>(d), 0.0f);
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[static_cast<size_t>(j)] += pa[i * d + j];
  }
  auto backward = [n, d](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    for (int64_t i = 0; i < n; ++i) {
      float* prow = pg + i * d;
      for (int64_t j = 0; j < d; ++j) prow[j] += g[j];
    }
  };
  return MakeOp({d}, std::move(out), {a}, backward, "sum_rows");
}

Tensor MeanRows(const Tensor& a) {
  TSPN_CHECK_EQ(a.rank(), 2);
  return MulScalar(SumRows(a), 1.0f / static_cast<float>(a.dim(0)));
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TSPN_CHECK_EQ(a.rank(), 2);
  TSPN_CHECK_EQ(b.rank(), 2);
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  TSPN_CHECK_EQ(b.dim(0), k) << "matmul inner dims";
  // Forward, dA and dB all run through the same blocked dot-product kernel
  // C = Y * Z^T (kernels::DotProductGemm); only the operands differ:
  //   forward: out = A * (B^T)^T      -> Y = A,   Z = B^T (one transpose)
  //   dA      = dOut * B^T            -> Y = dOut, Z = B  (no transpose)
  //   dB      = A^T * dOut            -> Y = A^T, Z = dOut^T
  std::vector<float> out(static_cast<size_t>(m * n));
  {
    const float* bt = kernels::TransposeScratch(b.data(), k, n, 0);
    kernels::DotProductGemm(a.data(), bt, out.data(), m, n, k,
                            /*accumulate=*/false);
  }
  auto backward = [m, k, n](TensorNode& node) {
    const auto& pa_node = node.parents[0];
    const auto& pb_node = node.parents[1];
    const float* g = node.grad.data();
    if (float* ga = GradPtr(pa_node)) {
      kernels::DotProductGemm(g, pb_node->data.data(), ga, m, k, n,
                              /*accumulate=*/true);
    }
    if (float* gb = GradPtr(pb_node)) {
      const float* at = kernels::TransposeScratch(pa_node->data.data(), m, k, 0);
      const float* gt = kernels::TransposeScratch(g, m, n, 1);
      kernels::DotProductGemm(at, gt, gb, k, n, m,
                              /*accumulate=*/true);
    }
  };
  return MakeOp({m, n}, std::move(out), {a, b}, std::move(backward), "matmul");
}

Tensor MatVec(const Tensor& a, const Tensor& v) {
  TSPN_CHECK_EQ(a.rank(), 2);
  TSPN_CHECK_EQ(v.rank(), 1);
  Tensor v2 = Reshape(v, {v.dim(0), 1});
  Tensor out = MatMul(a, v2);
  return Reshape(out, {a.dim(0)});
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  TSPN_CHECK_EQ(a.rank(), 1);
  TSPN_CHECK_EQ(b.rank(), 1);
  return SumAll(Mul(a, b));
}

namespace {

/// Shared softmax/log-softmax implementation over the last axis.
Tensor SoftmaxImpl(const Tensor& a, bool log_space) {
  TSPN_CHECK(a.rank() == 1 || a.rank() == 2);
  int64_t rows = a.rank() == 1 ? 1 : a.dim(0);
  int64_t cols = a.rank() == 1 ? a.dim(0) : a.dim(1);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa + r * cols;
    float* y = out.data() + r * cols;
    float mx = x[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) denom += std::exp(static_cast<double>(x[c] - mx));
    float log_denom = static_cast<float>(std::log(denom));
    for (int64_t c = 0; c < cols; ++c) {
      float logit = x[c] - mx - log_denom;
      y[c] = log_space ? logit : std::exp(logit);
    }
  }
  std::vector<float> saved = out;
  auto backward = [rows, cols, log_space, saved = std::move(saved)](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    for (int64_t r = 0; r < rows; ++r) {
      const float* y = saved.data() + r * cols;
      const float* g = node.grad.data() + r * cols;
      float* px = pg + r * cols;
      if (log_space) {
        // d log_softmax: dx = g - softmax * sum(g)
        double gsum = 0.0;
        for (int64_t c = 0; c < cols; ++c) gsum += g[c];
        for (int64_t c = 0; c < cols; ++c) {
          px[c] += g[c] - std::exp(y[c]) * static_cast<float>(gsum);
        }
      } else {
        // d softmax: dx = y * (g - sum(g*y))
        double dot = 0.0;
        for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(g[c]) * y[c];
        for (int64_t c = 0; c < cols; ++c) {
          px[c] += y[c] * (g[c] - static_cast<float>(dot));
        }
      }
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward,
                log_space ? "log_softmax" : "softmax");
}

}  // namespace

Tensor Softmax(const Tensor& a) { return SoftmaxImpl(a, /*log_space=*/false); }
Tensor LogSoftmax(const Tensor& a) { return SoftmaxImpl(a, /*log_space=*/true); }

Tensor L2Normalize(const Tensor& a, float eps) {
  TSPN_CHECK(a.rank() == 1 || a.rank() == 2);
  int64_t rows = a.rank() == 1 ? 1 : a.dim(0);
  int64_t cols = a.rank() == 1 ? a.dim(0) : a.dim(1);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  std::vector<float> norms(static_cast<size_t>(rows));
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = pa + r * cols;
    double sq = 0.0;
    for (int64_t c = 0; c < cols; ++c) sq += static_cast<double>(x[c]) * x[c];
    float norm = std::max(static_cast<float>(std::sqrt(sq)), eps);
    norms[static_cast<size_t>(r)] = norm;
    for (int64_t c = 0; c < cols; ++c) out[static_cast<size_t>(r * cols + c)] = x[c] / norm;
  }
  auto backward = [rows, cols, norms = std::move(norms)](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    for (int64_t r = 0; r < rows; ++r) {
      const float* x = parent->data.data() + r * cols;
      const float* g = node.grad.data() + r * cols;
      float* px = pg + r * cols;
      float norm = norms[static_cast<size_t>(r)];
      double dot = 0.0;  // g . x
      for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(g[c]) * x[c];
      float inv = 1.0f / norm;
      float inv3 = inv * inv * inv;
      for (int64_t c = 0; c < cols; ++c) {
        px[c] += g[c] * inv - static_cast<float>(dot) * x[c] * inv3;
      }
    }
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward, "l2_normalize");
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps) {
  TSPN_CHECK(x.rank() == 1 || x.rank() == 2);
  int64_t rows = x.rank() == 1 ? 1 : x.dim(0);
  int64_t cols = x.rank() == 1 ? x.dim(0) : x.dim(1);
  TSPN_CHECK_EQ(gamma.numel(), cols);
  TSPN_CHECK_EQ(beta.numel(), cols);
  std::vector<float> out(static_cast<size_t>(rows * cols));
  std::vector<float> xhat(static_cast<size_t>(rows * cols));
  std::vector<float> inv_std(static_cast<size_t>(rows));
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * cols;
    double mean = 0.0;
    for (int64_t c = 0; c < cols; ++c) mean += xr[c];
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      double d = xr[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    float istd = 1.0f / static_cast<float>(std::sqrt(var + eps));
    inv_std[static_cast<size_t>(r)] = istd;
    for (int64_t c = 0; c < cols; ++c) {
      float h = (xr[c] - static_cast<float>(mean)) * istd;
      xhat[static_cast<size_t>(r * cols + c)] = h;
      out[static_cast<size_t>(r * cols + c)] = h * pg[c] + pb[c];
    }
  }
  auto backward = [rows, cols, xhat = std::move(xhat),
                   inv_std = std::move(inv_std)](TensorNode& node) {
    const auto& x_node = node.parents[0];
    const auto& g_node = node.parents[1];
    const auto& b_node = node.parents[2];
    const float* g = node.grad.data();
    const float* gamma = g_node->data.data();
    float* gg = GradPtr(g_node);
    float* gb = GradPtr(b_node);
    float* gx = GradPtr(x_node);
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * cols;
      const float* hr = xhat.data() + r * cols;
      float istd = inv_std[static_cast<size_t>(r)];
      if (gg != nullptr) {
        for (int64_t c = 0; c < cols; ++c) gg[c] += gr[c] * hr[c];
      }
      if (gb != nullptr) {
        for (int64_t c = 0; c < cols; ++c) gb[c] += gr[c];
      }
      if (gx != nullptr) {
        // dxhat = g * gamma; dx = (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)) * istd
        double sum_dh = 0.0, sum_dh_h = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
          float dh = gr[c] * gamma[c];
          sum_dh += dh;
          sum_dh_h += static_cast<double>(dh) * hr[c];
        }
        float mean_dh = static_cast<float>(sum_dh / static_cast<double>(cols));
        float mean_dh_h = static_cast<float>(sum_dh_h / static_cast<double>(cols));
        float* gxr = gx + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          float dh = gr[c] * gamma[c];
          gxr[c] += (dh - mean_dh - hr[c] * mean_dh_h) * istd;
        }
      }
    }
  };
  return MakeOp(x.shape(), std::move(out), {x, gamma, beta}, backward, "layer_norm");
}

Tensor Dropout(const Tensor& a, float p, common::Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  TSPN_CHECK_LT(p, 1.0f);
  float keep = 1.0f - p;
  std::vector<float> mask(static_cast<size_t>(a.numel()));
  for (float& m : mask) m = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = pa[i] * mask[i];
  auto backward = [mask = std::move(mask)](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    const int64_t count = static_cast<int64_t>(node.grad.size());
    for (int64_t i = 0; i < count; ++i) pg[i] += g[i] * mask[static_cast<size_t>(i)];
  };
  return MakeOp(a.shape(), std::move(out), {a}, backward, "dropout");
}

Tensor EmbeddingGather(const Tensor& weight, const std::vector<int64_t>& indices) {
  TSPN_CHECK_EQ(weight.rank(), 2);
  int64_t v = weight.dim(0), d = weight.dim(1);
  int64_t l = static_cast<int64_t>(indices.size());
  std::vector<float> out(static_cast<size_t>(l * d));
  const float* pw = weight.data();
  for (int64_t i = 0; i < l; ++i) {
    int64_t idx = indices[static_cast<size_t>(i)];
    TSPN_CHECK_GE(idx, 0);
    TSPN_CHECK_LT(idx, v);
    std::memcpy(&out[static_cast<size_t>(i * d)], pw + idx * d,
                static_cast<size_t>(d) * sizeof(float));
  }
  auto backward = [indices, d](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    for (size_t i = 0; i < indices.size(); ++i) {
      float* prow = pg + indices[i] * d;
      const float* grow = g + i * static_cast<size_t>(d);
      for (int64_t j = 0; j < d; ++j) prow[j] += grow[j];
    }
  };
  return MakeOp({l, d}, std::move(out), {weight}, backward, "embedding_gather");
}

Tensor CrossEntropyWithLogits(const Tensor& logits, int64_t target) {
  TSPN_CHECK_EQ(logits.rank(), 1);
  TSPN_CHECK_GE(target, 0);
  TSPN_CHECK_LT(target, logits.dim(0));
  Tensor log_probs = LogSoftmax(logits);
  // Select the target entry via slice: reshape to [N,1] rows then SliceRows.
  Tensor as_rows = Reshape(log_probs, {logits.dim(0), 1});
  Tensor picked = SliceRows(as_rows, target, 1);
  return Neg(Reshape(picked, {1}));
}

Tensor ArcFaceLogits(const Tensor& cosines, int64_t target, float scale, float margin) {
  TSPN_CHECK_EQ(cosines.rank(), 1);
  int64_t n = cosines.dim(0);
  TSPN_CHECK_GE(target, 0);
  TSPN_CHECK_LT(target, n);
  const float cos_m = std::cos(margin);
  const float sin_m = std::sin(margin);
  std::vector<float> out(static_cast<size_t>(n));
  const float* pc = cosines.data();
  for (int64_t i = 0; i < n; ++i) {
    float c = std::clamp(pc[i], -1.0f, 1.0f);
    if (i == target) {
      float s = std::sqrt(std::max(0.0f, 1.0f - c * c));
      out[static_cast<size_t>(i)] = scale * (c * cos_m - s * sin_m);
    } else {
      out[static_cast<size_t>(i)] = scale * c;
    }
  }
  auto backward = [n, target, scale, cos_m, sin_m](TensorNode& node) {
    const auto& parent = node.parents[0];
    float* pg = GradPtr(parent);
    if (pg == nullptr) return;
    const float* g = node.grad.data();
    for (int64_t i = 0; i < n; ++i) {
      if (i == target) {
        float c = std::clamp(parent->data[static_cast<size_t>(i)], -1.0f, 1.0f);
        float s = std::sqrt(std::max(1e-6f, 1.0f - c * c));
        // d/dc [c*cos_m - sqrt(1-c^2)*sin_m] = cos_m + c/sqrt(1-c^2) * sin_m
        pg[i] += g[i] * scale * (cos_m + (c / s) * sin_m);
      } else {
        pg[i] += g[i] * scale;
      }
    }
  };
  return MakeOp({n}, std::move(out), {cosines}, backward, "arcface_logits");
}

}  // namespace tspn::nn
