#ifndef TSPN_NN_OPS_H_
#define TSPN_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace tspn::nn {

// ---------------------------------------------------------------------------
// Elementwise binary ops with NumPy-style broadcasting (any ranks <= 4).
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Scalar / unary ops.
// ---------------------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  ///< natural log; input must be positive
Tensor Sqrt(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
Tensor Elu(const Tensor& a, float alpha = 1.0f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

// ---------------------------------------------------------------------------
// Shape ops.
// ---------------------------------------------------------------------------

/// Reshape preserving element count. The result is an aliasing view: it
/// shares the input's storage (no copy), so in-place writes through either
/// tensor are visible in both.
Tensor Reshape(const Tensor& a, const Shape& shape);

/// 2-D transpose: [M, N] -> [N, M].
Tensor Transpose(const Tensor& a);

/// Concatenation along axis 0 of same-rank tensors.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Concatenation along the last axis of rank-1 or rank-2 tensors.
Tensor ConcatLast(const std::vector<Tensor>& parts);

/// Stacks L rank-1 tensors of size D into [L, D].
Tensor StackRows(const std::vector<Tensor>& rows);

/// Slice of rows [start, start+length) of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t length);

/// Single row of a rank-2 tensor as a rank-1 tensor.
Tensor Row(const Tensor& a, int64_t index);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

Tensor SumAll(const Tensor& a);   ///< scalar sum of all elements
Tensor MeanAll(const Tensor& a);  ///< scalar mean of all elements
Tensor MeanRows(const Tensor& a); ///< [N, D] -> [D], mean over rows
Tensor SumRows(const Tensor& a);  ///< [N, D] -> [D], sum over rows

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// Matrix product of [M, K] x [K, N] -> [M, N].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// [N, D] x [D] -> [N].
Tensor MatVec(const Tensor& a, const Tensor& v);

/// Dot product of two rank-1 tensors -> scalar.
Tensor Dot(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Normalization / probability.
// ---------------------------------------------------------------------------

/// Softmax over the last axis of a rank-1 or rank-2 tensor.
Tensor Softmax(const Tensor& a);

/// Log-softmax over the last axis (numerically stable).
Tensor LogSoftmax(const Tensor& a);

/// Rows scaled to unit L2 norm: x / max(|x|, eps). Works on rank-1 (the
/// whole vector) and rank-2 (each row).
Tensor L2Normalize(const Tensor& a, float eps = 1e-8f);

/// Layer normalization over the last axis with affine parameters.
/// gamma/beta have shape [D] where D is the last axis extent.
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// Inverted dropout. Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, common::Rng& rng, bool training);

// ---------------------------------------------------------------------------
// Embedding / gather.
// ---------------------------------------------------------------------------

/// Gathers rows of `weight` ([V, D]) at `indices` -> [L, D]. Gradient is
/// scatter-added into the embedding matrix.
Tensor EmbeddingGather(const Tensor& weight, const std::vector<int64_t>& indices);

// ---------------------------------------------------------------------------
// Losses / classification heads.
// ---------------------------------------------------------------------------

/// -log softmax(logits)[target] for a rank-1 logits vector.
Tensor CrossEntropyWithLogits(const Tensor& logits, int64_t target);

/// ArcFace-style margin injection (Deng et al., CVPR'19; Eq. 8 of the paper).
/// Given cosines [N] between an output vector and N candidate embeddings,
/// produces logits where the target entry is s*cos(theta_t + m) and all other
/// entries are s*cos(theta_j).
Tensor ArcFaceLogits(const Tensor& cosines, int64_t target, float scale, float margin);

}  // namespace tspn::nn

#endif  // TSPN_NN_OPS_H_
