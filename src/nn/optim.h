#ifndef TSPN_NN_OPTIM_H_
#define TSPN_NN_OPTIM_H_

#include <vector>

#include "nn/tensor.h"

namespace tspn::nn {

/// Adam optimizer (Kingma & Ba, 2015) with optional multiplicative learning
/// rate decay per epoch (the paper uses lr=2e-5 with 0.95 decay).
class Adam {
 public:
  struct Options {
    float lr = 2e-4f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    float grad_clip = 5.0f;  ///< max global L2 norm; <= 0 disables clipping
  };

  Adam(std::vector<Tensor> parameters, Options options);

  /// Applies one update from accumulated gradients, then leaves grads intact
  /// (call ZeroGrad() to clear).
  void Step();

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Multiplies the learning rate (e.g. 0.95 per-epoch decay).
  void DecayLr(float factor);

  float lr() const { return options_.lr; }

 private:
  std::vector<Tensor> parameters_;
  Options options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  int64_t step_count_ = 0;
};

/// Plain SGD, used by a few baselines and tests.
class Sgd {
 public:
  Sgd(std::vector<Tensor> parameters, float lr);

  void Step();
  void ZeroGrad();

 private:
  std::vector<Tensor> parameters_;
  float lr_;
};

}  // namespace tspn::nn

#endif  // TSPN_NN_OPTIM_H_
