#include "nn/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace tspn::nn {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TSPN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

namespace internal {

MemoryStats& GetMemoryStats() {
  static MemoryStats stats;
  return stats;
}

void TrackAlloc(int64_t bytes) {
  MemoryStats& stats = GetMemoryStats();
  int64_t live = stats.live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = stats.peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !stats.peak_bytes.compare_exchange_weak(peak, live,
                                                 std::memory_order_relaxed)) {
  }
  stats.total_allocations.fetch_add(1, std::memory_order_relaxed);
}

void TrackFree(int64_t bytes) {
  GetMemoryStats().live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

Storage::Storage(std::vector<float> v) : values(std::move(v)) {
  TrackAlloc(static_cast<int64_t>(values.size() * sizeof(float)));
}

Storage::~Storage() {
  TrackFree(static_cast<int64_t>(values.size() * sizeof(float)));
}

TensorNode::TensorNode(Shape s, std::vector<float> values, bool rg)
    : shape(std::move(s)),
      storage(std::make_shared<Storage>(std::move(values))),
      data(storage->values),
      requires_grad(rg) {
  TSPN_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()));
}

TensorNode::TensorNode(Shape s, std::shared_ptr<Storage> existing, bool rg)
    : shape(std::move(s)),
      storage(std::move(existing)),
      data(storage->values),
      requires_grad(rg) {
  TSPN_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()));
}

TensorNode::~TensorNode() {
  TrackFree(static_cast<int64_t>(grad.size() * sizeof(float)));
}

void TensorNode::EnsureGrad() {
  if (grad.empty()) {
    grad.assign(data.size(), 0.0f);
    TrackAlloc(static_cast<int64_t>(grad.size() * sizeof(float)));
  }
}

}  // namespace internal

void ResetMemoryStats() {
  internal::MemoryStats& stats = internal::GetMemoryStats();
  stats.live_bytes.store(0, std::memory_order_relaxed);
  stats.peak_bytes.store(0, std::memory_order_relaxed);
  stats.total_allocations.store(0, std::memory_order_relaxed);
}

int64_t LiveTensorBytes() {
  return internal::GetMemoryStats().live_bytes.load(std::memory_order_relaxed);
}
int64_t PeakTensorBytes() {
  return internal::GetMemoryStats().peak_bytes.load(std::memory_order_relaxed);
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  std::vector<float> values(static_cast<size_t>(NumElements(shape)), value);
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  auto node =
      std::make_shared<internal::TensorNode>(shape, std::move(values), requires_grad);
  return Tensor(std::move(node));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::RandomUniform(const Shape& shape, float bound, common::Rng& rng,
                             bool requires_grad) {
  std::vector<float> values(static_cast<size_t>(NumElements(shape)));
  for (float& v : values) v = static_cast<float>(rng.Uniform(-bound, bound));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::RandomNormal(const Shape& shape, float stddev, common::Rng& rng,
                            bool requires_grad) {
  std::vector<float> values(static_cast<size_t>(NumElements(shape)));
  for (float& v : values) v = static_cast<float>(rng.Gaussian(0.0, stddev));
  return FromVector(shape, std::move(values), requires_grad);
}

const Shape& Tensor::shape() const {
  TSPN_CHECK(defined());
  return node_->shape;
}

int64_t Tensor::dim(int i) const {
  TSPN_CHECK(defined());
  TSPN_CHECK_LT(static_cast<size_t>(i), node_->shape.size());
  return node_->shape[static_cast<size_t>(i)];
}

int Tensor::rank() const { return static_cast<int>(shape().size()); }

int64_t Tensor::numel() const {
  TSPN_CHECK(defined());
  return static_cast<int64_t>(node_->data.size());
}

bool Tensor::requires_grad() const {
  TSPN_CHECK(defined());
  return node_->requires_grad;
}

float* Tensor::data() {
  TSPN_CHECK(defined());
  return node_->data.data();
}

const float* Tensor::data() const {
  TSPN_CHECK(defined());
  return node_->data.data();
}

std::vector<float> Tensor::ToVector() const {
  TSPN_CHECK(defined());
  return node_->data;
}

float Tensor::item() const {
  TSPN_CHECK(defined());
  TSPN_CHECK_EQ(numel(), 1);
  return node_->data[0];
}

float Tensor::at(int64_t flat_index) const {
  TSPN_CHECK(defined());
  TSPN_CHECK_GE(flat_index, 0);
  TSPN_CHECK_LT(flat_index, numel());
  return node_->data[static_cast<size_t>(flat_index)];
}

float* Tensor::grad() {
  TSPN_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad.data();
}

const float* Tensor::grad() const {
  TSPN_CHECK(defined());
  TSPN_CHECK(!node_->grad.empty()) << "gradient not allocated";
  return node_->grad.data();
}

std::vector<float> Tensor::GradToVector() const {
  TSPN_CHECK(defined());
  if (node_->grad.empty()) return std::vector<float>(node_->data.size(), 0.0f);
  return node_->grad;
}

void Tensor::ZeroGrad() {
  TSPN_CHECK(defined());
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void Tensor::Backward() {
  TSPN_CHECK(defined());
  TSPN_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";

  // Topological order via iterative post-order DFS over parents.
  std::vector<internal::TensorNode*> order;
  std::unordered_set<internal::TensorNode*> visited;
  std::vector<std::pair<internal::TensorNode*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      internal::TensorNode* parent = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is post-order: parents before children; reverse for backprop.
  node_->EnsureGrad();
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorNode* node = *it;
    if (node->backward && !node->grad.empty()) node->backward(*node);
  }
}

Tensor Tensor::Detach() const {
  TSPN_CHECK(defined());
  return FromVector(node_->shape, node_->data, /*requires_grad=*/false);
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }
bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

}  // namespace tspn::nn
