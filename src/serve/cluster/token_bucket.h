#ifndef TSPN_SERVE_CLUSTER_TOKEN_BUCKET_H_
#define TSPN_SERVE_CLUSTER_TOKEN_BUCKET_H_

#include <chrono>
#include <mutex>

namespace tspn::serve::cluster {

/// Classic token bucket: `rate_per_s` tokens drip in continuously up to a
/// cap of `burst`, and each admitted request takes one. Starts full, so a
/// cold endpoint can absorb one full burst instantly. Refill is computed
/// lazily on acquire from the elapsed time — no timer thread.
///
/// Thread-safe; the router keeps one per endpoint for kRateLimited
/// admission control.
class TokenBucket {
 public:
  /// rate_per_s <= 0 disables limiting (TryAcquire always succeeds).
  TokenBucket(double rate_per_s, double burst);

  /// Takes `tokens` if available; false (no partial take) otherwise.
  bool TryAcquire(double tokens = 1.0);

  /// Tokens currently available (after refill), for tests/telemetry.
  double available();

 private:
  using Clock = std::chrono::steady_clock;

  void RefillLocked();

  const double rate_per_s_;
  const double burst_;
  std::mutex mutex_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace tspn::serve::cluster

#endif  // TSPN_SERVE_CLUSTER_TOKEN_BUCKET_H_
