#include "serve/cluster/token_bucket.h"

#include <algorithm>

namespace tspn::serve::cluster {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s),
      burst_(std::max(1.0, burst)),
      tokens_(burst_),
      last_refill_(Clock::now()) {}

void TokenBucket::RefillLocked() {
  const Clock::time_point now = Clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_s_);
}

bool TokenBucket::TryAcquire(double tokens) {
  if (rate_per_s_ <= 0.0) return true;  // limiting disabled
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefillLocked();
  return tokens_;
}

}  // namespace tspn::serve::cluster
