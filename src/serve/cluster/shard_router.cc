#include "serve/cluster/shard_router.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/env.h"

namespace tspn::serve::cluster {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Encodes an error at the requester's wire version: v2+ requesters get the
/// typed code; v1 requesters get the message-only layout they can decode.
std::vector<uint8_t> ErrorAt(uint32_t wire_version, const std::string& message,
                             ErrorCode code) {
  if (wire_version >= 2) return EncodeErrorFrame(message, code);
  return EncodeErrorFrame(message);
}

}  // namespace

std::string RoutingKey(const std::string& endpoint, int32_t user) {
  return endpoint + "|" + std::to_string(user);
}

RouterOptions RouterOptions::FromEnv() {
  RouterOptions o;
  o.virtual_nodes = static_cast<int>(
      std::clamp<int64_t>(common::EnvInt("TSPN_CLUSTER_VNODES", o.virtual_nodes),
                          1, 1024));
  o.replication = static_cast<int>(std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_REPLICATION", o.replication), 1, 16));
  o.worker_threads = static_cast<int>(std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_WORKERS", o.worker_threads), 1, 64));
  o.queue_depth = std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_QUEUE_DEPTH", o.queue_depth), 1, 1 << 16);
  o.ping_interval_ms = std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_PING_MS", o.ping_interval_ms), 0, 60000);
  o.call_timeout_ms = std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_TIMEOUT_MS", o.call_timeout_ms), 10,
      600000);
  o.pool_size_per_shard = std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_POOL_SIZE", o.pool_size_per_shard), 1, 64);
  o.breaker.failure_threshold = static_cast<int>(std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_BREAKER_FAILURES",
                     o.breaker.failure_threshold),
      1, 100));
  o.breaker.open_cooldown_ms = std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_BREAKER_COOLDOWN_MS",
                     o.breaker.open_cooldown_ms),
      10, 600000);
  o.rate_limit_qps =
      common::EnvDouble("TSPN_CLUSTER_RATE_QPS", o.rate_limit_qps);
  o.rate_limit_burst = std::clamp(
      common::EnvDouble("TSPN_CLUSTER_RATE_BURST", o.rate_limit_burst), 1.0,
      1e6);
  o.reconnect_attempts = static_cast<int>(std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_RECONNECT_ATTEMPTS", o.reconnect_attempts),
      0, 10));
  o.reconnect_backoff_ms = std::clamp<int64_t>(
      common::EnvInt("TSPN_CLUSTER_RECONNECT_BACKOFF_MS",
                     o.reconnect_backoff_ms),
      1, 10000);
  return o;
}

ShardRouter::ShardRouter(RouterOptions options)
    : options_(std::move(options)),
      ring_(std::max(1, options_.virtual_nodes)) {}

ShardRouter::~ShardRouter() { Stop(); }

bool ShardRouter::Start(std::string* error) {
  if (running_.load()) {
    if (error) *error = "router already started";
    return false;
  }
  if (options_.shards.empty()) {
    if (error) *error = "router needs at least one shard";
    return false;
  }
  for (const ShardConfig& config : options_.shards) {
    if (config.id.empty()) {
      if (error) *error = "shard id may not be empty";
      return false;
    }
    if (shards_by_id_.count(config.id) != 0) {
      if (error) *error = "duplicate shard id: " + config.id;
      return false;
    }
    auto shard = std::make_unique<Shard>(config, options_.breaker);
    shards_by_id_[config.id] = shard.get();
    shards_.push_back(std::move(shard));
    ring_.AddShard(config.id);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = false;
  }
  running_.store(true);
  const int workers = std::clamp(options_.worker_threads, 1, 64);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { RunWorker(); });
  }
  if (options_.ping_interval_ms > 0) {
    pinger_ = std::thread([this] { RunPinger(); });
  }
  return true;
}

void ShardRouter::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  pinger_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (pinger_.joinable()) pinger_.join();

  // Anything still queued gets a definitive answer — no caller may hang on
  // a frame the workers will never pick up.
  std::deque<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (Job& job : orphans) {
    router_errors_.fetch_add(1);
    job.done(EncodeErrorFrame("router stopping", ErrorCode::kShardUnavailable));
  }

  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->pool_mutex);
    shard->idle.clear();
  }
}

void ShardRouter::HandleFrameAsync(const std::vector<uint8_t>& frame,
                                   FrameCallback done) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_ && running_.load() &&
        static_cast<int64_t>(queue_.size()) < options_.queue_depth) {
      queue_.push_back(Job{frame, std::move(done)});
      queue_cv_.notify_one();
      return;
    }
  }
  if (!running_.load()) {
    router_errors_.fetch_add(1);
    done(EncodeErrorFrame("router is stopped", ErrorCode::kShardUnavailable));
    return;
  }
  router_errors_.fetch_add(1);
  done(EncodeErrorFrame("router queue full", ErrorCode::kShedCapacity));
}

void ShardRouter::RunWorker() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.done(Route(job.frame));
  }
}

std::vector<uint8_t> ShardRouter::Route(const std::vector<uint8_t>& frame) {
  FrameType type = FrameType::kRequest;
  if (PeekFrameType(frame, &type) != DecodeStatus::kOk) {
    router_errors_.fetch_add(1);
    return EncodeErrorFrame("malformed frame", ErrorCode::kBadFrame);
  }

  // Control frames the router answers itself.
  if (type == FrameType::kPing) {
    uint64_t nonce = 0;
    if (DecodePingFrame(frame, &nonce) != DecodeStatus::kOk) {
      router_errors_.fetch_add(1);
      return EncodeErrorFrame("malformed ping frame", ErrorCode::kBadFrame);
    }
    return EncodePongFrame(nonce);
  }
  if (type == FrameType::kStatsRequest) {
    if (DecodeStatsRequest(frame) != DecodeStatus::kOk) {
      router_errors_.fetch_add(1);
      return EncodeErrorFrame("malformed stats frame", ErrorCode::kBadFrame);
    }
    WireStatsSnapshot rollup;
    rollup.endpoints = Snapshot().endpoints;
    return EncodeStatsResponse(rollup);
  }
  if (type == FrameType::kItineraryRequest) {
    // v4 itinerary queries route exactly like recommendations: same
    // (endpoint, user) key — a user's plans land on the shard that holds
    // their cache — same rate limit, same breaker/failover walk. No
    // deadline to rewrite, so the frame always forwards verbatim.
    std::string endpoint;
    plan::ItineraryRequest request;
    uint32_t wire_version = kWireVersion;
    const DecodeStatus status =
        DecodeItineraryRequest(frame, &endpoint, &request, &wire_version);
    if (status != DecodeStatus::kOk) {
      router_errors_.fetch_add(1);
      return EncodeErrorFrame(std::string("itinerary frame rejected: ") +
                                  DecodeStatusName(status),
                              ErrorCode::kBadFrame);
    }
    frames_routed_.fetch_add(1);
    if (!BucketFor(endpoint).TryAcquire()) {
      rate_limited_.fetch_add(1);
      router_errors_.fetch_add(1);
      return ErrorAt(wire_version, "rate limited: endpoint '" + endpoint + "'",
                     ErrorCode::kRateLimited);
    }
    return ForwardWithFailover(frame, endpoint,
                               RoutingKey(endpoint, request.start.user),
                               wire_version, /*deadline_ms=*/0,
                               /*rewrite=*/nullptr);
  }

  if (type != FrameType::kRequest) {
    router_errors_.fetch_add(1);
    return EncodeErrorFrame("frame type not servable by this endpoint",
                            ErrorCode::kBadFrame);
  }

  std::string endpoint;
  eval::RecommendRequest request;
  AdmissionClass admission;
  uint32_t wire_version = 1;
  const DecodeStatus status = DecodeRecommendRequest(
      frame, &endpoint, &request, &admission, &wire_version);
  if (status != DecodeStatus::kOk) {
    router_errors_.fetch_add(1);
    return EncodeErrorFrame(std::string("request frame rejected: ") +
                                DecodeStatusName(status),
                            ErrorCode::kBadFrame);
  }

  frames_routed_.fetch_add(1);

  if (!BucketFor(endpoint).TryAcquire()) {
    rate_limited_.fetch_add(1);
    router_errors_.fetch_add(1);
    return ErrorAt(wire_version, "rate limited: endpoint '" + endpoint + "'",
                   ErrorCode::kRateLimited);
  }

  return RouteRequest(frame, endpoint, request, admission, wire_version);
}

std::vector<uint8_t> ShardRouter::RouteRequest(
    const std::vector<uint8_t>& frame, const std::string& endpoint,
    const eval::RecommendRequest& request, const AdmissionClass& admission,
    uint32_t wire_version) {
  // Key on (endpoint, user): every request of a user hits the same shard,
  // keeping its inference cache hot there.
  const std::string key = RoutingKey(endpoint, request.sample.user);
  const bool has_deadline = wire_version >= 2 && admission.deadline_ms > 0;
  std::function<std::vector<uint8_t>(int64_t)> rewrite;
  if (has_deadline) {
    // A deadline must be rewritten to the REMAINING budget so the shard
    // never believes it has time the router already spent.
    rewrite = [&endpoint, &request, &admission](int64_t remaining) {
      AdmissionClass forwarded = admission;
      forwarded.deadline_ms = remaining;
      return EncodeRecommendRequest(endpoint, request, forwarded);
    };
  }
  return ForwardWithFailover(frame, endpoint, key, wire_version,
                             has_deadline ? admission.deadline_ms : 0, rewrite);
}

std::vector<uint8_t> ShardRouter::ForwardWithFailover(
    const std::vector<uint8_t>& frame, const std::string& endpoint,
    const std::string& key, uint32_t wire_version, int64_t deadline_ms,
    const std::function<std::vector<uint8_t>(int64_t)>& rewrite) {
  const std::vector<std::string> replicas =
      ring_.ShardsFor(key, ReplicationFor(endpoint));
  if (replicas.empty()) {
    shard_unavailable_.fetch_add(1);
    router_errors_.fetch_add(1);
    return ErrorAt(wire_version, "no shards configured",
                   ErrorCode::kShardUnavailable);
  }

  const Clock::time_point start = Clock::now();
  const bool has_deadline = deadline_ms > 0;
  std::string last_error = "no replica attempted";
  bool attempted = false;

  for (const std::string& replica_id : replicas) {
    Shard& shard = *shards_by_id_.at(replica_id);

    int64_t remaining = options_.call_timeout_ms;
    if (has_deadline) {
      remaining = deadline_ms - ElapsedMs(start);
      if (remaining <= 0) {
        deadline_exhausted_.fetch_add(1);
        router_errors_.fetch_add(1);
        return ErrorAt(wire_version,
                       "deadline exhausted at router after failover",
                       ErrorCode::kShedDeadline);
      }
      remaining = std::min(remaining, options_.call_timeout_ms);
    }

    if (!shard.breaker.Allow()) {
      last_error = "shard '" + replica_id + "' circuit open";
      continue;
    }
    if (attempted) failovers_.fetch_add(1);
    attempted = true;

    std::unique_ptr<FrameClient> client = Checkout(shard);
    if (!client) {
      shard.breaker.RecordFailure();
      shard.requests_failed.fetch_add(1);
      last_error = "shard '" + replica_id + "' unreachable";
      continue;
    }

    // Forward the original bytes verbatim whenever the frame carries no
    // deadline — bit-identical to direct shard access.
    const std::vector<uint8_t>* forward = &frame;
    std::vector<uint8_t> rewritten;
    if (has_deadline) {
      rewritten = rewrite(remaining);
      forward = &rewritten;
    }

    client->set_recv_timeout_ms(std::max<int64_t>(1, remaining));
    FrameClient::Reply reply = client->CallTyped(*forward);
    switch (reply.kind) {
      case FrameClient::Reply::Kind::kResponse:
        shard.breaker.RecordSuccess();
        shard.requests_ok.fetch_add(1);
        Checkin(shard, std::move(client));
        responses_ok_.fetch_add(1);
        return std::move(reply.frame);
      case FrameClient::Reply::Kind::kServerError:
        // The shard ANSWERED — its admission decision (shed, unknown
        // endpoint, ...) passes through verbatim and is never failed over:
        // retrying a deliberate shed elsewhere would defeat load shedding.
        shard.breaker.RecordSuccess();
        shard.requests_ok.fetch_add(1);
        Checkin(shard, std::move(client));
        shard_errors_.fetch_add(1);
        return std::move(reply.frame);
      case FrameClient::Reply::Kind::kTimeout:
        // The reply may still arrive later and would desync the pooled
        // connection's request/reply pairing — drop it, don't check in.
        client->Close();
        shard.breaker.RecordFailure();
        shard.requests_failed.fetch_add(1);
        last_error = "shard '" + replica_id + "' timed out";
        continue;
      case FrameClient::Reply::Kind::kTransport:
        shard.breaker.RecordFailure();
        shard.requests_failed.fetch_add(1);
        last_error = "shard '" + replica_id + "' transport failure";
        continue;
    }
  }

  shard_unavailable_.fetch_add(1);
  router_errors_.fetch_add(1);
  return ErrorAt(wire_version,
                 "all replicas unavailable for endpoint '" + endpoint +
                     "': " + last_error,
                 ErrorCode::kShardUnavailable);
}

std::unique_ptr<FrameClient> ShardRouter::Checkout(Shard& shard) {
  {
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    while (!shard.idle.empty()) {
      std::unique_ptr<FrameClient> client = std::move(shard.idle.back());
      shard.idle.pop_back();
      if (client->connected()) return client;
    }
  }
  auto client = std::make_unique<FrameClient>();
  client->set_auto_reconnect(options_.reconnect_attempts,
                             options_.reconnect_backoff_ms);
  if (!client->Connect(shard.config.address)) return nullptr;
  return client;
}

void ShardRouter::Checkin(Shard& shard, std::unique_ptr<FrameClient> client) {
  if (!client || !client->connected()) return;
  std::lock_guard<std::mutex> lock(shard.pool_mutex);
  if (static_cast<int64_t>(shard.idle.size()) < options_.pool_size_per_shard) {
    shard.idle.push_back(std::move(client));
  }
}

bool ShardRouter::PingShard(Shard& shard) {
  std::unique_ptr<FrameClient> client = Checkout(shard);
  if (!client) {
    shard.breaker.RecordFailure();
    shard.pings_failed.fetch_add(1);
    return false;
  }
  const uint64_t nonce = ping_nonce_.fetch_add(1);
  client->set_recv_timeout_ms(
      std::max<int64_t>(1, std::min(options_.call_timeout_ms,
                                    std::max<int64_t>(
                                        options_.ping_interval_ms, 1))));
  bool ok = client->SendFrame(EncodePingFrame(nonce));
  if (ok) {
    std::vector<uint8_t> reply;
    uint64_t echoed = 0;
    ok = client->RecvFrameTimed(&reply) == FrameClient::RecvStatus::kOk &&
         DecodePongFrame(reply, &echoed) == DecodeStatus::kOk &&
         echoed == nonce;
  }
  if (ok) {
    shard.breaker.RecordSuccess();
    shard.pings_ok.fetch_add(1);
    Checkin(shard, std::move(client));
  } else {
    client->Close();  // a late pong must not desync a pooled connection
    shard.breaker.RecordFailure();
    shard.pings_failed.fetch_add(1);
  }
  return ok;
}

void ShardRouter::RunPinger() {
  while (running_.load()) {
    for (auto& shard : shards_) {
      if (!running_.load()) return;
      // The probe rides the breaker like traffic does: an open breaker
      // refuses until its cooldown, then the ping IS the half-open probe.
      if (!shard->breaker.Allow()) continue;
      PingShard(*shard);
    }
    std::unique_lock<std::mutex> lock(pinger_mutex_);
    pinger_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.ping_interval_ms),
                        [this] { return !running_.load(); });
  }
}

bool ShardRouter::PollShardStats(Shard& shard, WireStatsSnapshot* out) {
  if (!shard.breaker.Allow()) return false;
  std::unique_ptr<FrameClient> client = Checkout(shard);
  if (!client) {
    shard.breaker.RecordFailure();
    return false;
  }
  client->set_recv_timeout_ms(std::max<int64_t>(1, options_.call_timeout_ms));
  bool ok = client->SendFrame(EncodeStatsRequest());
  if (ok) {
    std::vector<uint8_t> reply;
    ok = client->RecvFrameTimed(&reply) == FrameClient::RecvStatus::kOk &&
         DecodeStatsResponse(reply, out) == DecodeStatus::kOk;
  }
  if (ok) {
    shard.breaker.RecordSuccess();
    Checkin(shard, std::move(client));
  } else {
    client->Close();
    shard.breaker.RecordFailure();
  }
  return ok;
}

ClusterStats ShardRouter::Snapshot() {
  ClusterStats stats;
  stats.frames_routed = frames_routed_.load();
  stats.responses_ok = responses_ok_.load();
  stats.shard_errors = shard_errors_.load();
  stats.router_errors = router_errors_.load();
  stats.failovers = failovers_.load();
  stats.rate_limited = rate_limited_.load();
  stats.shard_unavailable = shard_unavailable_.load();
  stats.deadline_exhausted = deadline_exhausted_.load();

  // Endpoint roll-up: sum counters and qps across shards; take the max of
  // the percentiles (the conservative "worst shard" cluster latency).
  std::unordered_map<std::string, size_t> row_index;
  for (auto& shard : shards_) {
    ShardHealth health;
    health.id = shard->config.id;
    health.address = shard->config.address.ToString();
    health.breaker = shard->breaker.state();
    health.breaker_trips = shard->breaker.trips();
    health.requests_ok = shard->requests_ok.load();
    health.requests_failed = shard->requests_failed.load();
    health.pings_ok = shard->pings_ok.load();
    health.pings_failed = shard->pings_failed.load();
    stats.shards.push_back(std::move(health));

    WireStatsSnapshot snapshot;
    if (!PollShardStats(*shard, &snapshot)) continue;
    for (const WireEndpointStats& row : snapshot.endpoints) {
      auto [it, inserted] =
          row_index.emplace(row.endpoint, stats.endpoints.size());
      if (inserted) {
        stats.endpoints.push_back(row);
        continue;
      }
      WireEndpointStats& merged = stats.endpoints[it->second];
      merged.queue_depth += row.queue_depth;
      merged.lifetime_submitted += row.lifetime_submitted;
      merged.lifetime_completed += row.lifetime_completed;
      merged.lifetime_rejected += row.lifetime_rejected;
      merged.shed_deadline += row.shed_deadline;
      merged.shed_capacity += row.shed_capacity;
      merged.expired_in_queue += row.expired_in_queue;
      merged.degraded += row.degraded;
      merged.swaps += row.swaps;
      merged.degraded_now = merged.degraded_now || row.degraded_now;
      merged.qps += row.qps;
      merged.p50_latency_ms = std::max(merged.p50_latency_ms, row.p50_latency_ms);
      merged.p95_latency_ms = std::max(merged.p95_latency_ms, row.p95_latency_ms);
    }
  }
  return stats;
}

int ShardRouter::ReplicationFor(const std::string& endpoint) const {
  auto it = options_.endpoint_replication.find(endpoint);
  const int replicas =
      it != options_.endpoint_replication.end() ? it->second
                                                : options_.replication;
  return std::max(1, replicas);
}

TokenBucket& ShardRouter::BucketFor(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(buckets_mutex_);
  auto it = buckets_.find(endpoint);
  if (it == buckets_.end()) {
    double rate = options_.rate_limit_qps;
    auto override_it = options_.endpoint_rate_qps.find(endpoint);
    if (override_it != options_.endpoint_rate_qps.end()) {
      rate = override_it->second;
    }
    it = buckets_
             .emplace(endpoint, std::make_unique<TokenBucket>(
                                    rate, options_.rate_limit_burst))
             .first;
  }
  return *it->second;
}

}  // namespace tspn::serve::cluster
