#ifndef TSPN_SERVE_CLUSTER_HASH_RING_H_
#define TSPN_SERVE_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tspn::serve::cluster {

/// Stable 64-bit FNV-1a over the key bytes — deterministic across builds
/// and processes, so a driver can predict which shard owns a key without
/// asking the router (cluster_demo uses exactly that to verify parity).
uint64_t StableHash64(const std::string& key);

/// Consistent-hash ring with virtual nodes: each shard is hashed onto the
/// ring `virtual_nodes` times ("shard#0", "shard#1", ...), a key is owned
/// by the first vnode clockwise from its hash, and replicas are the next
/// DISTINCT shards continuing clockwise. Virtual nodes smooth the key
/// distribution (more vnodes, lower variance) and spread a removed shard's
/// keyspace across the survivors instead of dumping it on one neighbour.
///
/// Not thread-safe by itself; ShardRouter builds the ring once at Start and
/// only reads it afterwards.
class HashRing {
 public:
  explicit HashRing(int virtual_nodes = 64);

  /// Adds a shard's vnodes. Duplicate ids are a no-op.
  void AddShard(const std::string& shard_id);

  /// Removes a shard's vnodes; false when the shard was never added.
  bool RemoveShard(const std::string& shard_id);

  size_t shard_count() const { return shards_; }
  bool empty() const { return ring_.empty(); }

  /// The key's owner plus the next `replicas - 1` distinct shards clockwise
  /// — the failover order for this key. Fewer than `replicas` entries when
  /// the ring has fewer shards; empty on an empty ring.
  std::vector<std::string> ShardsFor(const std::string& key,
                                     size_t replicas) const;

 private:
  int virtual_nodes_;
  size_t shards_ = 0;
  /// vnode position -> shard id, ordered — lower_bound is the clockwise walk.
  std::map<uint64_t, std::string> ring_;
};

}  // namespace tspn::serve::cluster

#endif  // TSPN_SERVE_CLUSTER_HASH_RING_H_
