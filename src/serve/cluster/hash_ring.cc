#include "serve/cluster/hash_ring.h"

#include <algorithm>

namespace tspn::serve::cluster {

uint64_t StableHash64(const std::string& key) {
  // FNV-1a 64, then a splitmix64 finalizer: FNV alone clusters similar
  // keys ("shard0#1" vs "shard0#2") on the ring; the finalizer shears the
  // low-entropy tails apart.
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

HashRing::HashRing(int virtual_nodes)
    : virtual_nodes_(std::max(1, virtual_nodes)) {}

void HashRing::AddShard(const std::string& shard_id) {
  // Probe one vnode to spot a duplicate add: every vnode of a shard is
  // keyed off the id, so vnode 0 present means they all are.
  if (ring_.count(StableHash64(shard_id + "#0")) != 0) return;
  for (int i = 0; i < virtual_nodes_; ++i) {
    ring_.emplace(StableHash64(shard_id + "#" + std::to_string(i)), shard_id);
  }
  ++shards_;
}

bool HashRing::RemoveShard(const std::string& shard_id) {
  bool removed = false;
  for (int i = 0; i < virtual_nodes_; ++i) {
    removed |=
        ring_.erase(StableHash64(shard_id + "#" + std::to_string(i))) > 0;
  }
  if (removed) --shards_;
  return removed;
}

std::vector<std::string> HashRing::ShardsFor(const std::string& key,
                                             size_t replicas) const {
  std::vector<std::string> owners;
  if (ring_.empty() || replicas == 0) return owners;
  owners.reserve(std::min(replicas, shards_));
  auto it = ring_.lower_bound(StableHash64(key));
  // Clockwise walk with wraparound, collecting distinct shards; one full
  // lap visits every vnode, so the loop always terminates.
  for (size_t steps = 0; steps < ring_.size() && owners.size() < replicas;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(owners.begin(), owners.end(), it->second) == owners.end()) {
      owners.push_back(it->second);
    }
  }
  return owners;
}

}  // namespace tspn::serve::cluster
