#ifndef TSPN_SERVE_CLUSTER_CIRCUIT_BREAKER_H_
#define TSPN_SERVE_CLUSTER_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

namespace tspn::serve::cluster {

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;

  /// How long an open breaker blocks traffic before it admits one
  /// half-open probe.
  int64_t open_cooldown_ms = 1000;
};

/// Per-shard circuit breaker: closed -> open -> half-open.
///
///  * closed: traffic flows; `failure_threshold` consecutive failures trip
///    it open (a success resets the streak);
///  * open: Allow() refuses instantly — no connect timeouts burned on a
///    shard known to be down — until `open_cooldown_ms` elapses;
///  * half-open: the first Allow() after the cooldown admits exactly ONE
///    probe; its success closes the breaker, its failure re-opens it for
///    another cooldown. Other callers keep being refused while the probe
///    is out, so a recovering shard is never stampeded.
///
/// Thread-safe; every transition happens under the mutex.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(
      CircuitBreakerOptions options = CircuitBreakerOptions());

  /// Whether a caller may attempt the shard right now. May transition
  /// open -> half-open (and then admits only that one probe).
  bool Allow();

  /// Reports the attempt's outcome. Success closes from any state;
  /// failure counts toward the threshold (closed) or re-opens (half-open).
  void RecordSuccess();
  void RecordFailure();

  State state() const;

  /// Times the breaker tripped open (closed/half-open -> open).
  int64_t trips() const;

  static const char* StateName(State state);

 private:
  using Clock = std::chrono::steady_clock;

  const CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  int64_t trips_ = 0;
  Clock::time_point opened_at_{};
};

}  // namespace tspn::serve::cluster

#endif  // TSPN_SERVE_CLUSTER_CIRCUIT_BREAKER_H_
