#include "serve/cluster/circuit_breaker.h"

#include <algorithm>

namespace tspn::serve::cluster {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_{std::max(1, options.failure_threshold),
               std::max<int64_t>(0, options.open_cooldown_ms)} {}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const auto cooldown = std::chrono::milliseconds(options_.open_cooldown_ms);
      if (Clock::now() - opened_at_ < cooldown) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;  // this caller is the probe
    }
    case State::kHalfOpen:
      // One probe at a time: admit a new one only if no probe is out
      // (its owner died without reporting — don't wedge forever).
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    // The recovery probe failed: back to a full cooldown.
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    probe_in_flight_ = false;
    ++trips_;
    return;
  }
  if (state_ == State::kOpen) return;  // already open; nothing to count
  if (++consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    consecutive_failures_ = 0;
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace tspn::serve::cluster
