#ifndef TSPN_SERVE_CLUSTER_SHARD_ROUTER_H_
#define TSPN_SERVE_CLUSTER_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/net.h"
#include "serve/cluster/circuit_breaker.h"
#include "serve/cluster/hash_ring.h"
#include "serve/cluster/token_bucket.h"
#include "serve/codec.h"
#include "serve/frame_client.h"
#include "serve/frame_handler.h"

namespace tspn::serve::cluster {

/// The ring key the router hashes for a request: "endpoint|user". Exposed
/// so drivers (tests, cluster_demo) can predict which shard owns a key —
/// e.g. to kill exactly the owner and assert failover — via a HashRing
/// built with the same shard ids and virtual-node count.
std::string RoutingKey(const std::string& endpoint, int32_t user);

/// One shard process the router forwards to: a stable id (its position on
/// the hash ring — renaming a shard remaps its keyspace) and the address
/// its FrameServer listens on (TCP or the unix-domain fast path).
struct ShardConfig {
  std::string id;
  common::SocketAddress address;
};

/// Router tuning. Environment overrides (FromEnv, TSPN_CLUSTER_*):
///
///   TSPN_CLUSTER_VNODES            virtual nodes per shard          (64)
///   TSPN_CLUSTER_REPLICATION       default replicas per key         (1)
///   TSPN_CLUSTER_WORKERS           routing worker threads           (4)
///   TSPN_CLUSTER_QUEUE_DEPTH      bounded routing queue            (256)
///   TSPN_CLUSTER_PING_MS           health ping interval; 0 disables (250)
///   TSPN_CLUSTER_TIMEOUT_MS        per-shard call timeout when the
///                                  request carries no deadline      (2000)
///   TSPN_CLUSTER_POOL_SIZE         pooled connections per shard     (2)
///   TSPN_CLUSTER_BREAKER_FAILURES  failures tripping a breaker      (3)
///   TSPN_CLUSTER_BREAKER_COOLDOWN_MS  open-state cooldown           (1000)
///   TSPN_CLUSTER_RATE_QPS          per-endpoint token rate; 0 = off (0)
///   TSPN_CLUSTER_RATE_BURST        per-endpoint burst capacity      (16)
///   TSPN_CLUSTER_RECONNECT_ATTEMPTS   FrameClient redials           (2)
///   TSPN_CLUSTER_RECONNECT_BACKOFF_MS initial redial backoff        (20)
struct RouterOptions {
  std::vector<ShardConfig> shards;

  int virtual_nodes = 64;

  /// Replicas per key: 1 routes each key to exactly its owner; N lets hot
  /// endpoints fan reads out across the N distinct shards clockwise from
  /// the key, and gives failover somewhere to go.
  int replication = 1;

  /// Per-endpoint replication overrides (hot endpoints fan out harder).
  std::map<std::string, int> endpoint_replication;

  int worker_threads = 4;
  int64_t queue_depth = 256;
  int64_t ping_interval_ms = 250;
  int64_t call_timeout_ms = 2000;
  int64_t pool_size_per_shard = 2;
  CircuitBreakerOptions breaker;

  /// Per-endpoint token-bucket rate limit; <= 0 disables. Every endpoint
  /// gets its own bucket at this rate unless endpoint_rate_qps overrides.
  double rate_limit_qps = 0.0;
  double rate_limit_burst = 16.0;
  std::map<std::string, double> endpoint_rate_qps;

  /// FrameClient auto-reconnect budget for pooled shard connections.
  int reconnect_attempts = 2;
  int64_t reconnect_backoff_ms = 20;

  static RouterOptions FromEnv();
};

/// Health + traffic counters for one shard, as seen from the router.
struct ShardHealth {
  std::string id;
  std::string address;
  CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
  int64_t breaker_trips = 0;
  int64_t requests_ok = 0;      ///< forwarded calls answered with a frame
  int64_t requests_failed = 0;  ///< connect/transport/timeout failures
  int64_t pings_ok = 0;
  int64_t pings_failed = 0;
};

/// The cluster roll-up: router-side counters, per-shard health, and the
/// per-endpoint stats rows aggregated across every reachable shard
/// (summed counters/qps; max percentiles — the conservative cluster view).
struct ClusterStats {
  int64_t frames_routed = 0;       ///< request frames accepted for routing
  int64_t responses_ok = 0;        ///< forwarded and answered with a response
  int64_t shard_errors = 0;        ///< shard-produced error frames passed through
  int64_t router_errors = 0;       ///< error frames the router itself produced
  int64_t failovers = 0;           ///< attempts routed past a failed replica
  int64_t rate_limited = 0;        ///< kRateLimited refusals
  int64_t shard_unavailable = 0;   ///< kShardUnavailable refusals
  int64_t deadline_exhausted = 0;  ///< budget ran out before/between attempts
  std::vector<ShardHealth> shards;
  std::vector<WireEndpointStats> endpoints;
};

/// The router tier: a FrameHandler that forwards TSWP request frames to
/// shard processes over serve::FrameClient connections, so a FrameServer
/// constructed over a ShardRouter IS the cluster front-end.
///
/// Routing: a request's key is (endpoint, user_id) — every trajectory of a
/// user lands on the same shard, keeping its inference caches hot — mapped
/// through a consistent-hash ring to `replication` distinct shards. The
/// primary is tried first; on connect failure, transport error or timeout
/// the router fails over to the next replica, honouring the request's
/// remaining deadline_ms budget (each hop forwards only what is left; a
/// v1/no-deadline request gets call_timeout_ms per hop). A shard-produced
/// error frame (shed, unknown endpoint, ...) is a VALID reply — it is
/// passed through verbatim, never failed over, so shard admission control
/// stays end-to-end visible. When every replica is down the caller gets a
/// typed kShardUnavailable error; when the per-endpoint token bucket is
/// empty, kRateLimited — both at the requester's wire version (v1
/// requesters get the message-only layout).
///
/// Health: a pinger thread probes every shard each ping_interval_ms with a
/// kPing frame through the same circuit breaker traffic uses; the breaker
/// (closed -> open -> half-open) makes a dead shard cost nothing after
/// `failure_threshold` failures and auto-recovers via single probes.
///
/// Threading: HandleFrameAsync enqueues into a bounded queue drained by
/// `worker_threads` routing workers (a full queue sheds with
/// kShedCapacity, mirroring engine admission). Forwarding is synchronous
/// inside a worker — bounded by the deadline/timeout — so one slow shard
/// can stall at most `worker_threads` frames, not the IO loops.
class ShardRouter : public FrameHandler {
 public:
  explicit ShardRouter(RouterOptions options);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Builds the ring, spawns workers + the health pinger. False with
  /// *error set on empty/duplicate shard config. Does NOT require shards
  /// to be up — the breaker discovers liveness.
  bool Start(std::string* error = nullptr);

  /// Refuses new frames, completes everything queued with a typed error,
  /// joins workers/pinger, closes every pooled connection. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

  /// FrameHandler: enqueue for the routing workers; `done` runs exactly
  /// once (synchronously only when shedding or stopped).
  void HandleFrameAsync(const std::vector<uint8_t>& frame,
                        FrameCallback done) override;

  /// Synchronous routing core (what the workers run): request frames are
  /// forwarded with failover, pings answered locally, stats requests
  /// answered with the aggregated cluster view. Blocking — bounded by the
  /// deadline budget / call timeout; callers wanting the async path go
  /// through HandleFrameAsync.
  std::vector<uint8_t> Route(const std::vector<uint8_t>& frame);

  /// Router counters + shard health (cheap, local) plus the per-endpoint
  /// roll-up polled from every reachable shard (one stats call each).
  ClusterStats Snapshot();

  const RouterOptions& options() const { return options_; }

 private:
  /// Everything the router keeps per shard. The connection pool hands out
  /// exclusive FrameClients (they are not thread-safe); a client is
  /// returned only when still connected, so the pool never caches a
  /// poisoned connection.
  struct Shard {
    ShardConfig config;
    CircuitBreaker breaker;
    std::mutex pool_mutex;
    std::vector<std::unique_ptr<FrameClient>> idle;
    std::atomic<int64_t> requests_ok{0};
    std::atomic<int64_t> requests_failed{0};
    std::atomic<int64_t> pings_ok{0};
    std::atomic<int64_t> pings_failed{0};

    explicit Shard(ShardConfig c, const CircuitBreakerOptions& b)
        : config(std::move(c)), breaker(b) {}
  };

  struct Job {
    std::vector<uint8_t> frame;
    FrameCallback done;
  };

  std::unique_ptr<FrameClient> Checkout(Shard& shard);
  void Checkin(Shard& shard, std::unique_ptr<FrameClient> client);

  /// One forwarded request with ring lookup, budget accounting, breaker
  /// checks and replica failover.
  std::vector<uint8_t> RouteRequest(const std::vector<uint8_t>& frame,
                                    const std::string& endpoint,
                                    const eval::RecommendRequest& request,
                                    const AdmissionClass& admission,
                                    uint32_t wire_version);

  /// The shared forwarding core under RouteRequest and the v4 itinerary
  /// path: walks `key`'s replicas on the ring (breaker gate, pooled
  /// checkout, timed call), passing shard answers — responses AND error
  /// frames — through verbatim, failing over only on timeout/transport
  /// trouble. `deadline_ms > 0` budgets the walk and `rewrite(remaining)`
  /// re-encodes the frame with the remaining budget before each send;
  /// `deadline_ms <= 0` forwards the original bytes verbatim (`rewrite`
  /// may be null then).
  std::vector<uint8_t> ForwardWithFailover(
      const std::vector<uint8_t>& frame, const std::string& endpoint,
      const std::string& key, uint32_t wire_version, int64_t deadline_ms,
      const std::function<std::vector<uint8_t>(int64_t)>& rewrite);

  /// Sends one ping on a pooled connection; updates breaker + counters.
  bool PingShard(Shard& shard);

  /// Polls one shard's stats; false when unreachable.
  bool PollShardStats(Shard& shard, WireStatsSnapshot* out);

  int ReplicationFor(const std::string& endpoint) const;
  TokenBucket& BucketFor(const std::string& endpoint);

  void RunWorker();
  void RunPinger();

  const RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, Shard*> shards_by_id_;

  std::mutex buckets_mutex_;
  std::map<std::string, std::unique_ptr<TokenBucket>> buckets_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;

  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::thread pinger_;
  std::mutex pinger_mutex_;
  std::condition_variable pinger_cv_;

  std::atomic<uint64_t> ping_nonce_{1};
  std::atomic<int64_t> frames_routed_{0};
  std::atomic<int64_t> responses_ok_{0};
  std::atomic<int64_t> shard_errors_{0};
  std::atomic<int64_t> router_errors_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> rate_limited_{0};
  std::atomic<int64_t> shard_unavailable_{0};
  std::atomic<int64_t> deadline_exhausted_{0};
};

}  // namespace tspn::serve::cluster

#endif  // TSPN_SERVE_CLUSTER_SHARD_ROUTER_H_
