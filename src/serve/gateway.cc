#include "serve/gateway.h"

#include <stdexcept>
#include <tuple>
#include <utility>

#include "serve/codec.h"

namespace tspn::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::future<eval::RecommendResponse> BrokenFuture(const std::string& message) {
  std::promise<eval::RecommendResponse> broken;
  broken.set_exception(std::make_exception_ptr(std::runtime_error(message)));
  return broken.get_future();
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Guards the serving threads against out-of-range requests: dataset
/// accessors bounds-check with TSPN_CHECK, which aborts the process — a
/// wire frame with a bogus sample index must come back as a failed future
/// (ServeFrame turns it into an error frame), never kill the gateway.
/// Returns an empty string when the request is servable.
std::string ValidateRequest(const data::CityDataset& dataset,
                            const eval::RecommendRequest& request) {
  if (request.top_n < 0) return "top_n must be non-negative";
  const auto& users = dataset.users();
  if (request.sample.user < 0 ||
      static_cast<size_t>(request.sample.user) >= users.size()) {
    return "sample.user out of range";
  }
  const auto& trajectories =
      users[static_cast<size_t>(request.sample.user)].trajectories;
  if (request.sample.traj < 0 ||
      static_cast<size_t>(request.sample.traj) >= trajectories.size()) {
    return "sample.traj out of range";
  }
  const auto& checkins =
      trajectories[static_cast<size_t>(request.sample.traj)].checkins;
  // prefix_len check-ins observed, checkins[prefix_len] is the target: a
  // servable sample needs at least one observed check-in and a target slot.
  if (request.sample.prefix_len < 1 ||
      static_cast<size_t>(request.sample.prefix_len) >= checkins.size()) {
    return "sample.prefix_len out of range";
  }
  return "";
}

}  // namespace

Gateway::Deployment::~Deployment() {
  // Drain before teardown: Shutdown() serves everything already queued and
  // joins the workers, so no accepted request's future is ever dropped.
  if (engine != nullptr) engine->Shutdown();
}

std::shared_ptr<Gateway::Deployment> Gateway::BuildDeployment(
    const DeployConfig& config, std::string* error) {
  if (config.dataset == nullptr) {
    SetError(error, "deploy config has no dataset");
    return nullptr;
  }
  eval::ModelOptions options;
  std::string option_error;
  if (!eval::ModelOptions::FromKeyValues(config.model_options, &options,
                                         &option_error)) {
    SetError(error, "bad model options: " + option_error);
    return nullptr;
  }
  std::unique_ptr<eval::NextPoiModel> model =
      eval::ModelRegistry::Global().Create(config.model_name, config.dataset,
                                           options);
  if (model == nullptr) {
    SetError(error, "unknown model '" + config.model_name + "' (registered: " +
                        [] {
                          std::string names;
                          for (const std::string& n :
                               eval::ModelRegistry::Global().Names()) {
                            if (!names.empty()) names += ", ";
                            names += n;
                          }
                          return names;
                        }() +
                        ")");
    return nullptr;
  }
  if (!config.checkpoint_path.empty() &&
      !model->LoadCheckpoint(config.checkpoint_path)) {
    SetError(error, "checkpoint '" + config.checkpoint_path +
                        "' failed to load into model '" + config.model_name +
                        "'");
    return nullptr;
  }
  auto deployment = std::make_shared<Deployment>();
  deployment->config = config;
  deployment->model = std::move(model);
  deployment->engine = std::make_unique<InferenceEngine>(
      *deployment->model, config.engine_options);
  deployment->live_since = Clock::now();
  return deployment;
}

bool Gateway::Deploy(const std::string& endpoint, const DeployConfig& config,
                     std::string* error) {
  if (endpoint.empty()) {
    SetError(error, "endpoint name must be non-empty");
    return false;
  }
  if (endpoint.size() > kMaxEndpointNameLen) {
    // The wire decoder caps endpoint names; a longer name would deploy an
    // endpoint that ServeFrame could never address.
    SetError(error, "endpoint name exceeds " +
                        std::to_string(kMaxEndpointNameLen) + " bytes");
    return false;
  }
  // Cheap duplicate pre-check before the expensive build; the authoritative
  // recheck under the lock below still handles a racing deploy.
  if (Has(endpoint)) {
    SetError(error, "endpoint '" + endpoint +
                        "' is already deployed (use Swap to hot-reload)");
    return false;
  }
  // Built outside the lock: model construction + checkpoint restore can be
  // slow, and other endpoints must keep serving meanwhile.
  std::shared_ptr<Deployment> deployment = BuildDeployment(config, error);
  if (deployment == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = endpoints_.try_emplace(endpoint);
    if (!inserted) {
      SetError(error, "endpoint '" + endpoint +
                          "' is already deployed (use Swap to hot-reload)");
      return false;
    }
    it->second.current = std::move(deployment);
  }
  return true;
}

bool Gateway::Swap(const std::string& endpoint,
                   const std::string& checkpoint_path, std::string* error) {
  // Snapshot the endpoint's deployment, build the replacement outside the
  // lock (zero downtime: the old deployment keeps serving during the build).
  std::shared_ptr<Deployment> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    snapshot = it->second.current;
  }
  DeployConfig config = snapshot->config;
  config.checkpoint_path = checkpoint_path;
  std::shared_ptr<Deployment> fresh = BuildDeployment(config, error);
  if (fresh == nullptr) return false;

  std::shared_ptr<Deployment> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    // The swap only lands on the generation it snapshotted: if the endpoint
    // was undeployed — or undeployed and redeployed as something else —
    // while we were building, installing `fresh` would silently revert that
    // lifecycle change, so the swap aborts and discards the build instead
    // (it never accepted a request).
    if (it == endpoints_.end() || it->second.current != snapshot) {
      SetError(error, "endpoint '" + endpoint + "' changed during swap");
      return false;
    }
    old = std::move(it->second.current);
    it->second.current = std::move(fresh);
    ++it->second.swaps;
  }
  // `old` dies here (or when the last in-flight submitter releases it):
  // its engine drains every queued request against the old weights first.
  return true;
}

bool Gateway::Undeploy(const std::string& endpoint, std::string* error) {
  std::shared_ptr<Deployment> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    removed = std::move(it->second.current);
    endpoints_.erase(it);
  }
  // Drain outside the lock so teardown of one endpoint cannot stall the
  // others' submits.
  removed.reset();
  return true;
}

std::shared_ptr<Gateway::Deployment> Gateway::CurrentDeployment(
    const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return nullptr;
  return it->second.current;
}

std::future<eval::RecommendResponse> Gateway::Submit(
    const std::string& endpoint, const eval::RecommendRequest& request) {
  // The copied shared_ptr pins this deployment generation for the duration
  // of the call: a concurrent Swap/Undeploy cannot destroy the engine
  // while it is accepting this request.
  std::shared_ptr<Deployment> deployment = CurrentDeployment(endpoint);
  if (deployment == nullptr) {
    return BrokenFuture("no endpoint '" + endpoint + "' is deployed");
  }
  const std::string invalid =
      ValidateRequest(*deployment->config.dataset, request);
  if (!invalid.empty()) {
    return BrokenFuture("invalid request for endpoint '" + endpoint +
                        "': " + invalid);
  }
  return deployment->engine->Submit(request);
}

std::vector<uint8_t> Gateway::ServeFrame(const std::vector<uint8_t>& request_frame) {
  std::string endpoint;
  eval::RecommendRequest request;
  const DecodeStatus status =
      DecodeRecommendRequest(request_frame, &endpoint, &request);
  if (status != DecodeStatus::kOk) {
    return EncodeErrorFrame(std::string("bad request frame: ") +
                            DecodeStatusName(status));
  }
  try {
    return EncodeRecommendResponse(Submit(endpoint, request).get());
  } catch (const std::exception& e) {
    return EncodeErrorFrame(e.what());
  } catch (...) {
    return EncodeErrorFrame("request failed");
  }
}

bool Gateway::Has(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.count(endpoint) > 0;
}

std::vector<std::string> Gateway::Endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, unused] : endpoints_) names.push_back(name);
  return names;
}

EndpointStats Gateway::StatsOf(const std::string& name,
                               const std::shared_ptr<Deployment>& deployment,
                               int64_t swaps) {
  EndpointStats stats;
  stats.endpoint = name;
  stats.model_name = deployment->config.model_name;
  stats.checkpoint_path = deployment->config.checkpoint_path;
  stats.swaps = swaps;
  stats.queue_depth = deployment->engine->QueueDepth();
  stats.engine = deployment->engine->GetStats();
  stats.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - deployment->live_since)
          .count();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.engine.completed) /
                        stats.uptime_seconds
                  : 0.0;
  return stats;
}

bool Gateway::GetEndpointStats(const std::string& endpoint,
                               EndpointStats* out) const {
  std::shared_ptr<Deployment> deployment;
  int64_t swaps = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) return false;
    deployment = it->second.current;
    swaps = it->second.swaps;
  }
  // Engine-stats queries (their own mutex, percentile computation) run with
  // the gateway mutex released so they never stall request routing.
  *out = StatsOf(endpoint, deployment, swaps);
  return true;
}

GatewayStats Gateway::Snapshot() const {
  // Copy the endpoint table under the lock, compute per-endpoint stats off
  // it: a monitoring scrape must not block Submit/ServeFrame on any
  // endpoint while engines sort their latency rings. The shared_ptrs pin
  // each deployment exactly like an in-flight submit does.
  std::vector<std::tuple<std::string, std::shared_ptr<Deployment>, int64_t>>
      entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(endpoints_.size());
    for (const auto& [name, ep] : endpoints_) {
      entries.emplace_back(name, ep.current, ep.swaps);
    }
  }
  GatewayStats snapshot;
  snapshot.endpoints = static_cast<int64_t>(entries.size());
  snapshot.per_endpoint.reserve(entries.size());
  for (const auto& [name, deployment, swaps] : entries) {
    EndpointStats stats = StatsOf(name, deployment, swaps);
    snapshot.total_submitted += stats.engine.submitted;
    snapshot.total_completed += stats.engine.completed;
    snapshot.total_rejected += stats.engine.rejected;
    snapshot.total_swaps += stats.swaps;
    snapshot.total_qps += stats.qps;
    snapshot.per_endpoint.push_back(std::move(stats));
  }
  return snapshot;
}

Gateway::~Gateway() {
  std::map<std::string, Endpoint> endpoints;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    endpoints = std::move(endpoints_);
    endpoints_.clear();
  }
  // Deployment destructors drain each endpoint's queue.
  endpoints.clear();
}

}  // namespace tspn::serve
