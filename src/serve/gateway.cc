#include "serve/gateway.h"

#include <stdexcept>
#include <tuple>
#include <utility>

#include "serve/codec.h"

namespace tspn::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::future<eval::RecommendResponse> BrokenFuture(const std::string& message) {
  std::promise<eval::RecommendResponse> broken;
  broken.set_exception(std::make_exception_ptr(std::runtime_error(message)));
  return broken.get_future();
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Guards the serving threads against out-of-range requests: dataset
/// accessors bounds-check with TSPN_CHECK, which aborts the process — a
/// wire frame with a bogus sample index must come back as a failed future
/// (ServeFrame turns it into an error frame), never kill the gateway.
/// Returns an empty string when the request is servable.
std::string ValidateRequest(const data::CityDataset& dataset,
                            const eval::RecommendRequest& request) {
  if (request.top_n < 0) return "top_n must be non-negative";
  const auto& users = dataset.users();
  if (request.sample.user < 0 ||
      static_cast<size_t>(request.sample.user) >= users.size()) {
    return "sample.user out of range";
  }
  const auto& trajectories =
      users[static_cast<size_t>(request.sample.user)].trajectories;
  if (request.sample.traj < 0 ||
      static_cast<size_t>(request.sample.traj) >= trajectories.size()) {
    return "sample.traj out of range";
  }
  const auto& checkins =
      trajectories[static_cast<size_t>(request.sample.traj)].checkins;
  // prefix_len check-ins observed, checkins[prefix_len] is the target: a
  // servable sample needs at least one observed check-in and a target slot.
  if (request.sample.prefix_len < 1 ||
      static_cast<size_t>(request.sample.prefix_len) >= checkins.size()) {
    return "sample.prefix_len out of range";
  }
  return "";
}

}  // namespace

const char* DeployStateName(DeployState state) {
  switch (state) {
    case DeployState::kNone: return "kNone";
    case DeployState::kBuilding: return "kBuilding";
    case DeployState::kLive: return "kLive";
    case DeployState::kFailed: return "kFailed";
  }
  return "kUnknown";
}

Gateway::Deployment::~Deployment() {
  // Drain before teardown: Shutdown() serves everything already queued and
  // joins the workers, so no accepted request's future is ever dropped.
  if (engine != nullptr) {
    engine->Shutdown();
    // Fold this generation's final counters into the endpoint's lifetime
    // totals. Running after the drain means every request this deployment
    // ever accepted is in these numbers — the reason the fold lives here
    // and not at swap time, when stragglers may still be in flight.
    if (cumulative != nullptr) {
      const EngineStats final_stats = engine->GetStats();
      cumulative->submitted.fetch_add(final_stats.submitted);
      cumulative->completed.fetch_add(final_stats.completed);
      cumulative->rejected.fetch_add(final_stats.rejected);
      cumulative->batches.fetch_add(final_stats.batches);
    }
  }
}

void Gateway::InstallLocked(Endpoint& entry,
                           std::shared_ptr<Deployment> deployment) {
  if (entry.cumulative == nullptr) {
    // First generation for this endpoint name: the lifetime clock and
    // counters start here. Later generations inherit both across swaps.
    entry.cumulative = std::make_shared<CumulativeCounters>();
    entry.first_live = deployment->live_since;
  }
  deployment->cumulative = entry.cumulative;
  entry.current = std::move(deployment);
}

std::shared_ptr<Gateway::Deployment> Gateway::BuildDeployment(
    const DeployConfig& config, std::string* error) {
  if (config.dataset == nullptr) {
    SetError(error, "deploy config has no dataset");
    return nullptr;
  }
  eval::ModelOptions options;
  std::string option_error;
  if (!eval::ModelOptions::FromKeyValues(config.model_options, &options,
                                         &option_error)) {
    SetError(error, "bad model options: " + option_error);
    return nullptr;
  }
  std::unique_ptr<eval::NextPoiModel> model =
      eval::ModelRegistry::Global().Create(config.model_name, config.dataset,
                                           options);
  if (model == nullptr) {
    SetError(error, "unknown model '" + config.model_name + "' (registered: " +
                        [] {
                          std::string names;
                          for (const std::string& n :
                               eval::ModelRegistry::Global().Names()) {
                            if (!names.empty()) names += ", ";
                            names += n;
                          }
                          return names;
                        }() +
                        ")");
    return nullptr;
  }
  if (!config.checkpoint_path.empty() &&
      !model->LoadCheckpoint(config.checkpoint_path)) {
    SetError(error, "checkpoint '" + config.checkpoint_path +
                        "' failed to load into model '" + config.model_name +
                        "'");
    return nullptr;
  }
  auto deployment = std::make_shared<Deployment>();
  deployment->config = config;
  deployment->model = std::move(model);
  deployment->engine = std::make_unique<InferenceEngine>(
      *deployment->model, config.engine_options);
  deployment->live_since = Clock::now();
  return deployment;
}

bool Gateway::Deploy(const std::string& endpoint, const DeployConfig& config,
                     std::string* error) {
  if (endpoint.empty()) {
    SetError(error, "endpoint name must be non-empty");
    return false;
  }
  if (endpoint.size() > kMaxEndpointNameLen) {
    // The wire decoder caps endpoint names; a longer name would deploy an
    // endpoint that ServeFrame could never address.
    SetError(error, "endpoint name exceeds " +
                        std::to_string(kMaxEndpointNameLen) + " bytes");
    return false;
  }
  // Cheap duplicate pre-check before the expensive build; the authoritative
  // recheck under the lock below still handles a racing deploy.
  if (Has(endpoint)) {
    SetError(error, "endpoint '" + endpoint +
                        "' is already deployed (use Swap to hot-reload)");
    return false;
  }
  // Built outside the lock: model construction + checkpoint restore can be
  // slow, and other endpoints must keep serving meanwhile.
  std::shared_ptr<Deployment> deployment = BuildDeployment(config, error);
  if (deployment == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = endpoints_.try_emplace(endpoint);
    if (!inserted) {
      SetError(error, it->second.current == nullptr
                          ? "endpoint '" + endpoint +
                                "' is still deploying asynchronously"
                          : "endpoint '" + endpoint +
                                "' is already deployed (use Swap to "
                                "hot-reload)");
      return false;
    }
    InstallLocked(it->second, std::move(deployment));
    async_status_.erase(endpoint);  // sync success supersedes async history
  }
  return true;
}

bool Gateway::DeployAsync(const std::string& endpoint,
                          const DeployConfig& config, std::string* error) {
  if (endpoint.empty()) {
    SetError(error, "endpoint name must be non-empty");
    return false;
  }
  if (endpoint.size() > kMaxEndpointNameLen) {
    SetError(error, "endpoint name exceeds " +
                        std::to_string(kMaxEndpointNameLen) + " bytes");
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Reserve the name with a placeholder entry (null current): duplicate
    // deploys fail instantly, submits are rejected until the build lands.
    auto [it, inserted] = endpoints_.try_emplace(endpoint);
    if (!inserted) {
      SetError(error, it->second.current == nullptr
                          ? "endpoint '" + endpoint +
                                "' is still deploying asynchronously"
                          : "endpoint '" + endpoint + "' is already deployed");
      return false;
    }
    async_status_[endpoint] = {DeployState::kBuilding, ""};
  }
  StartAsyncOp([this, endpoint, config] {
    std::string build_error;
    std::shared_ptr<Deployment> deployment =
        BuildDeployment(config, &build_error);
    // `discarded` (if any) is released after the lock: its engine teardown
    // must never run under the gateway mutex.
    std::shared_ptr<Deployment> discarded;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    const bool reserved =
        it != endpoints_.end() && it->second.current == nullptr;
    if (deployment == nullptr) {
      // Release the reservation so the name can be deployed again; the
      // failure stays pollable until then.
      if (reserved) endpoints_.erase(it);
      async_status_[endpoint] = {DeployState::kFailed, build_error};
      return;
    }
    if (!reserved) {
      // The placeholder vanished or was replaced while building (a
      // lifecycle race only the gateway destructor can cause today, since
      // Undeploy refuses placeholders). Discard the build: it never
      // accepted a request.
      discarded = std::move(deployment);
      async_status_[endpoint] = {DeployState::kFailed,
                                 "endpoint '" + endpoint +
                                     "' changed during async deploy"};
      return;
    }
    InstallLocked(it->second, std::move(deployment));
    async_status_[endpoint] = {DeployState::kLive, ""};
  });
  return true;
}

bool Gateway::Swap(const std::string& endpoint,
                   const std::string& checkpoint_path, std::string* error) {
  // Snapshot the endpoint's deployment, build the replacement outside the
  // lock (zero downtime: the old deployment keeps serving during the build).
  std::shared_ptr<Deployment> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || it->second.current == nullptr) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    snapshot = it->second.current;
  }
  DeployConfig config = snapshot->config;
  config.checkpoint_path = checkpoint_path;
  std::shared_ptr<Deployment> fresh = BuildDeployment(config, error);
  if (fresh == nullptr) return false;

  std::shared_ptr<Deployment> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    // The swap only lands on the generation it snapshotted: if the endpoint
    // was undeployed — or undeployed and redeployed as something else —
    // while we were building, installing `fresh` would silently revert that
    // lifecycle change, so the swap aborts and discards the build instead
    // (it never accepted a request).
    if (it == endpoints_.end() || it->second.current != snapshot) {
      SetError(error, "endpoint '" + endpoint + "' changed during swap");
      return false;
    }
    old = std::move(it->second.current);
    InstallLocked(it->second, std::move(fresh));
    ++it->second.swaps;
    async_status_.erase(endpoint);  // sync success supersedes async history
  }
  // `old` dies here (or when the last in-flight submitter releases it):
  // its engine drains every queued request against the old weights first,
  // then folds its counters into the endpoint's lifetime totals.
  return true;
}

bool Gateway::SwapAsync(const std::string& endpoint,
                        const std::string& checkpoint_path,
                        std::string* error) {
  std::shared_ptr<Deployment> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || it->second.current == nullptr) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    auto status = async_status_.find(endpoint);
    if (status != async_status_.end() &&
        status->second.state == DeployState::kBuilding) {
      SetError(error, "endpoint '" + endpoint +
                          "' already has an async operation in progress");
      return false;
    }
    snapshot = it->second.current;
    async_status_[endpoint] = {DeployState::kBuilding, ""};
  }
  // Mutable so the op can drop its `snapshot` pin before it finishes: the
  // retiring generation must drain on THIS builder thread (or an in-flight
  // submitter), never on whoever later joins the builder.
  StartAsyncOp([this, endpoint, checkpoint_path, snapshot]() mutable {
    DeployConfig config = snapshot->config;
    config.checkpoint_path = checkpoint_path;
    std::string build_error;
    std::shared_ptr<Deployment> fresh = BuildDeployment(config, &build_error);
    if (fresh == nullptr) {
      SetAsyncStatus(endpoint, DeployState::kFailed, build_error);
      return;
    }
    {
      // Same install rules as the synchronous Swap: the build only lands
      // on the generation it snapshotted. `old`/`discarded` drain outside
      // the lock (reverse destruction order: the lock_guard dies first).
      std::shared_ptr<Deployment> old;
      std::shared_ptr<Deployment> discarded;
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = endpoints_.find(endpoint);
      if (it == endpoints_.end()) {
        // Undeployed while we were building: the name's async history
        // ended with it — recording a failure here would leave a phantom
        // kFailed status on a nonexistent endpoint forever.
        discarded = std::move(fresh);
        async_status_.erase(endpoint);
      } else if (it->second.current != snapshot) {
        discarded = std::move(fresh);
        async_status_[endpoint] = {
            DeployState::kFailed,
            "endpoint '" + endpoint + "' changed during async swap"};
      } else {
        old = std::move(it->second.current);
        InstallLocked(it->second, std::move(fresh));
        ++it->second.swaps;
        async_status_[endpoint] = {DeployState::kLive, ""};
      }
    }
    // Release the capture's pin on the old generation here, inside the op:
    // if this was the last reference, the drain runs now on the builder
    // thread — before the done flag — so a later join never inherits it.
    snapshot.reset();
  });
  return true;
}

DeployStatus Gateway::GetDeployStatus(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The async record is authoritative while it exists — in particular a
  // failed SwapAsync must stay visible even though the endpoint keeps
  // serving the old weights. Successful synchronous lifecycle operations
  // erase the record, so pure-sync users simply see kLive/kNone.
  auto status = async_status_.find(endpoint);
  if (status != async_status_.end()) return status->second;
  auto it = endpoints_.find(endpoint);
  if (it != endpoints_.end() && it->second.current != nullptr) {
    return {DeployState::kLive, ""};
  }
  return {};
}

void Gateway::SetAsyncStatus(const std::string& endpoint, DeployState state,
                             const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  async_status_[endpoint] = {state, error};
}

void Gateway::StartAsyncOp(std::function<void()> op) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread thread([op = std::move(op), done] {
    op();
    done->store(true);
  });
  // Reap builders that already finished, so the worker list stays bounded
  // by the number of genuinely concurrent builds. The joins run with the
  // gateway mutex RELEASED: a finished builder's epilogue is trivial, but
  // holding mutex_ across any join would stall every Submit/ServeFrame on
  // every endpoint if that ever stopped being true.
  std::vector<AsyncWorker> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = async_workers_.begin(); it != async_workers_.end();) {
      if (it->done->load()) {
        finished.push_back(std::move(*it));
        it = async_workers_.erase(it);
      } else {
        ++it;
      }
    }
    async_workers_.push_back({std::move(thread), std::move(done)});
  }
  for (AsyncWorker& worker : finished) {
    if (worker.thread.joinable()) worker.thread.join();
  }
}

bool Gateway::Undeploy(const std::string& endpoint, std::string* error) {
  std::shared_ptr<Deployment> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    if (it->second.current == nullptr) {
      // A DeployAsync build is reserving this name; there is nothing to
      // drain yet and erasing the placeholder would race the installer.
      SetError(error, "endpoint '" + endpoint +
                          "' is still deploying asynchronously");
      return false;
    }
    removed = std::move(it->second.current);
    endpoints_.erase(it);
    async_status_.erase(endpoint);  // the name's async history ends with it
  }
  // Drain outside the lock so teardown of one endpoint cannot stall the
  // others' submits.
  removed.reset();
  return true;
}

std::shared_ptr<Gateway::Deployment> Gateway::CurrentDeployment(
    const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return nullptr;
  return it->second.current;
}

std::future<eval::RecommendResponse> Gateway::Submit(
    const std::string& endpoint, const eval::RecommendRequest& request) {
  // The copied shared_ptr pins this deployment generation for the duration
  // of the call: a concurrent Swap/Undeploy cannot destroy the engine
  // while it is accepting this request.
  std::shared_ptr<Deployment> deployment = CurrentDeployment(endpoint);
  if (deployment == nullptr) {
    return BrokenFuture("no endpoint '" + endpoint + "' is deployed");
  }
  const std::string invalid =
      ValidateRequest(*deployment->config.dataset, request);
  if (!invalid.empty()) {
    return BrokenFuture("invalid request for endpoint '" + endpoint +
                        "': " + invalid);
  }
  return deployment->engine->Submit(request);
}

std::vector<uint8_t> Gateway::ServeFrame(const std::vector<uint8_t>& request_frame) {
  std::string endpoint;
  eval::RecommendRequest request;
  const DecodeStatus status =
      DecodeRecommendRequest(request_frame, &endpoint, &request);
  if (status != DecodeStatus::kOk) {
    return EncodeErrorFrame(std::string("bad request frame: ") +
                            DecodeStatusName(status));
  }
  try {
    return EncodeRecommendResponse(Submit(endpoint, request).get());
  } catch (const std::exception& e) {
    return EncodeErrorFrame(e.what());
  } catch (...) {
    return EncodeErrorFrame("request failed");
  }
}

void Gateway::ServeFrameAsync(const std::vector<uint8_t>& request_frame,
                              FrameCallback done) {
  std::string endpoint;
  eval::RecommendRequest request;
  const DecodeStatus status =
      DecodeRecommendRequest(request_frame, &endpoint, &request);
  if (status != DecodeStatus::kOk) {
    done(EncodeErrorFrame(std::string("bad request frame: ") +
                          DecodeStatusName(status)));
    return;
  }
  std::shared_ptr<Deployment> deployment = CurrentDeployment(endpoint);
  if (deployment == nullptr) {
    done(EncodeErrorFrame("no endpoint '" + endpoint + "' is deployed"));
    return;
  }
  const std::string invalid =
      ValidateRequest(*deployment->config.dataset, request);
  if (!invalid.empty()) {
    done(EncodeErrorFrame("invalid request for endpoint '" + endpoint +
                          "': " + invalid));
    return;
  }
  // The continuation deliberately does NOT capture the deployment: it does
  // not need it (the response is fully computed before the callback runs,
  // and ~Deployment's drain guarantees every queued continuation runs
  // before the engine/model die — the same contract the future-based
  // Submit relies on), and owning it would be a self-join hazard — the
  // callback runs on the deployment's own engine worker, so dropping the
  // last reference there would make the worker join itself in Shutdown.
  // `done` is copied (not moved) into the continuation because a rejected
  // submit never runs it — the overload error below still needs the
  // original.
  const bool accepted = deployment->engine->TrySubmitAsync(
      request, [done](eval::RecommendResponse response,
                      std::exception_ptr error) {
        if (error != nullptr) {
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            done(EncodeErrorFrame(e.what()));
          } catch (...) {
            done(EncodeErrorFrame("request failed"));
          }
          return;
        }
        done(EncodeRecommendResponse(response));
      });
  if (!accepted) {
    done(EncodeErrorFrame("endpoint '" + endpoint +
                          "' is overloaded (request queue full)"));
  }
}

bool Gateway::Has(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(endpoint);
  // A placeholder reserved by DeployAsync is not serving yet.
  return it != endpoints_.end() && it->second.current != nullptr;
}

std::vector<std::string> Gateway::Endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) {
    if (ep.current != nullptr) names.push_back(name);
  }
  return names;
}

EndpointStats Gateway::StatsOf(const EndpointSnapshot& snapshot) {
  const auto now = Clock::now();
  const std::shared_ptr<Deployment>& deployment = snapshot.deployment;
  EndpointStats stats;
  stats.endpoint = snapshot.name;
  stats.model_name = deployment->config.model_name;
  stats.checkpoint_path = deployment->config.checkpoint_path;
  stats.swaps = snapshot.swaps;

  // Window: the current deployment's engine and uptime.
  stats.queue_depth = deployment->engine->QueueDepth();
  stats.engine = deployment->engine->GetStats();
  stats.window_uptime_seconds =
      std::chrono::duration<double>(now - deployment->live_since).count();
  stats.window_qps = stats.window_uptime_seconds > 0.0
                         ? static_cast<double>(stats.engine.completed) /
                               stats.window_uptime_seconds
                         : 0.0;

  // Lifetime: counters retired deployments folded in, plus the live window.
  int64_t retired_submitted = 0, retired_completed = 0, retired_rejected = 0,
          retired_batches = 0;
  if (snapshot.cumulative != nullptr) {
    retired_submitted = snapshot.cumulative->submitted.load();
    retired_completed = snapshot.cumulative->completed.load();
    retired_rejected = snapshot.cumulative->rejected.load();
    retired_batches = snapshot.cumulative->batches.load();
  }
  stats.lifetime_submitted = retired_submitted + stats.engine.submitted;
  stats.lifetime_completed = retired_completed + stats.engine.completed;
  stats.lifetime_rejected = retired_rejected + stats.engine.rejected;
  stats.lifetime_batches = retired_batches + stats.engine.batches;
  stats.uptime_seconds =
      std::chrono::duration<double>(now - snapshot.first_live).count();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.lifetime_completed) /
                        stats.uptime_seconds
                  : 0.0;
  return stats;
}

bool Gateway::GetEndpointStats(const std::string& endpoint,
                               EndpointStats* out) const {
  EndpointSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || it->second.current == nullptr) return false;
    snapshot = {endpoint, it->second.current, it->second.swaps,
                it->second.cumulative, it->second.first_live};
  }
  // Engine-stats queries (their own mutex, percentile computation) run with
  // the gateway mutex released so they never stall request routing.
  *out = StatsOf(snapshot);
  return true;
}

GatewayStats Gateway::Snapshot() const {
  // Copy the endpoint table under the lock, compute per-endpoint stats off
  // it: a monitoring scrape must not block Submit/ServeFrame on any
  // endpoint while engines sort their latency rings. The shared_ptrs pin
  // each deployment exactly like an in-flight submit does.
  std::vector<EndpointSnapshot> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(endpoints_.size());
    for (const auto& [name, ep] : endpoints_) {
      if (ep.current == nullptr) continue;  // DeployAsync placeholder
      entries.push_back({name, ep.current, ep.swaps, ep.cumulative,
                         ep.first_live});
    }
  }
  GatewayStats snapshot;
  snapshot.endpoints = static_cast<int64_t>(entries.size());
  snapshot.per_endpoint.reserve(entries.size());
  for (const EndpointSnapshot& entry : entries) {
    EndpointStats stats = StatsOf(entry);
    snapshot.total_submitted += stats.lifetime_submitted;
    snapshot.total_completed += stats.lifetime_completed;
    snapshot.total_rejected += stats.lifetime_rejected;
    snapshot.total_swaps += stats.swaps;
    snapshot.total_qps += stats.qps;
    snapshot.per_endpoint.push_back(std::move(stats));
  }
  return snapshot;
}

Gateway::~Gateway() {
  // Background builders first: joining them before the endpoint teardown
  // guarantees no installer runs against a half-destroyed gateway.
  std::vector<AsyncWorker> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers = std::move(async_workers_);
    async_workers_.clear();
  }
  for (AsyncWorker& worker : workers) {
    if (worker.thread.joinable()) worker.thread.join();
  }
  std::map<std::string, Endpoint> endpoints;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    endpoints = std::move(endpoints_);
    endpoints_.clear();
  }
  // Deployment destructors drain each endpoint's queue.
  endpoints.clear();
}

}  // namespace tspn::serve
