#include "serve/gateway.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "common/env.h"
#include "serve/codec.h"

namespace tspn::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Maps an engine shed reason to the wire classification.
ErrorCode CodeForShed(ShedReason reason) {
  switch (reason) {
    case ShedReason::kDeadlineUnmeetable: return ErrorCode::kShedDeadline;
    case ShedReason::kExpired: return ErrorCode::kExpired;
    case ShedReason::kCapacity:
    case ShedReason::kEvicted:
    case ShedReason::kShutdown: return ErrorCode::kShedCapacity;
    case ShedReason::kNone: break;
  }
  return ErrorCode::kGeneric;
}

/// Error frames are encoded at the requester's wire version: a v2 requester
/// gets the machine-readable code, a v1 requester gets the bit-identical
/// v1 layout it can decode (the message still names the reason).
std::vector<uint8_t> ErrorFrameFor(uint32_t wire_version,
                                   const std::string& message,
                                   ErrorCode code) {
  return wire_version >= 2 ? EncodeErrorFrame(message, code)
                           : EncodeErrorFrame(message);
}

std::future<eval::RecommendResponse> BrokenFuture(const std::string& message) {
  std::promise<eval::RecommendResponse> broken;
  broken.set_exception(std::make_exception_ptr(std::runtime_error(message)));
  return broken.get_future();
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Guards the serving threads against out-of-range requests: dataset
/// accessors bounds-check with TSPN_CHECK, which aborts the process — a
/// wire frame with a bogus sample index must come back as a failed future
/// (ServeFrame turns it into an error frame), never kill the gateway.
/// Returns an empty string when the request is servable.
std::string ValidateRequest(const data::CityDataset& dataset,
                            const eval::RecommendRequest& request) {
  if (request.top_n < 0) return "top_n must be non-negative";
  const auto& users = dataset.users();
  if (request.sample.user < 0 ||
      static_cast<size_t>(request.sample.user) >= users.size()) {
    return "sample.user out of range";
  }
  const auto& trajectories =
      users[static_cast<size_t>(request.sample.user)].trajectories;
  if (request.sample.traj < 0 ||
      static_cast<size_t>(request.sample.traj) >= trajectories.size()) {
    return "sample.traj out of range";
  }
  const auto& checkins =
      trajectories[static_cast<size_t>(request.sample.traj)].checkins;
  // prefix_len check-ins observed, checkins[prefix_len] is the target: a
  // servable sample needs at least one observed check-in and a target slot.
  if (request.sample.prefix_len < 1 ||
      static_cast<size_t>(request.sample.prefix_len) >= checkins.size()) {
    return "sample.prefix_len out of range";
  }
  return "";
}

}  // namespace

const char* DeployStateName(DeployState state) {
  switch (state) {
    case DeployState::kNone: return "kNone";
    case DeployState::kBuilding: return "kBuilding";
    case DeployState::kLive: return "kLive";
    case DeployState::kFailed: return "kFailed";
  }
  return "kUnknown";
}

OverloadPolicy OverloadPolicy::FromEnv() {
  auto clamp = [](int64_t value, int64_t lo, int64_t hi) {
    return std::max(lo, std::min(hi, value));
  };
  OverloadPolicy policy;
  policy.degrade_high_pct =
      clamp(common::EnvInt("TSPN_SERVE_DEGRADE_HIGH_PCT",
                           policy.degrade_high_pct), 1, 100);
  policy.degrade_low_pct =
      clamp(common::EnvInt("TSPN_SERVE_DEGRADE_LOW_PCT",
                           policy.degrade_low_pct), 0, 100);
  // The hysteresis gap must stay a gap: a low threshold at or above the
  // high one would re-enter degradation on the very request that left it.
  if (policy.degrade_low_pct >= policy.degrade_high_pct) {
    policy.degrade_low_pct = policy.degrade_high_pct - 1;
  }
  policy.degraded_top_n = clamp(
      common::EnvInt("TSPN_SERVE_DEGRADED_TOP_N", policy.degraded_top_n), 0,
      1 << 20);
  policy.degraded_max_tiles =
      clamp(common::EnvInt("TSPN_SERVE_DEGRADED_MAX_TILES",
                           policy.degraded_max_tiles), 0, 1 << 30);
  policy.shed_priority_at_or_below =
      clamp(common::EnvInt("TSPN_SERVE_SHED_PRIORITY",
                           policy.shed_priority_at_or_below), -1, kMaxPriority);
  return policy;
}

void Gateway::Deployment::FoldCounters() {
  if (engine == nullptr || cumulative == nullptr) return;
  // Incremental fold: add only what previous folds have not contributed.
  // fold_mutex_ makes the read-delta-update atomic against a concurrent
  // folder (eager swap fold racing the destructor's final fold).
  std::lock_guard<std::mutex> lock(fold_mutex_);
  const EngineStats now = engine->GetStats();
  cumulative->submitted.fetch_add(now.submitted - already_folded_.submitted);
  cumulative->completed.fetch_add(now.completed - already_folded_.completed);
  cumulative->rejected.fetch_add(now.rejected - already_folded_.rejected);
  cumulative->batches.fetch_add(now.batches - already_folded_.batches);
  cumulative->shed_deadline.fetch_add(now.shed_deadline -
                                      already_folded_.shed_deadline);
  cumulative->shed_capacity.fetch_add(now.shed_capacity -
                                      already_folded_.shed_capacity);
  cumulative->expired_in_queue.fetch_add(now.expired_in_queue -
                                         already_folded_.expired_in_queue);
  already_folded_ = now;
  // Gateway-side counters fold the same way. Class sheds are capacity sheds
  // in the lifetime ledger: the request was refused because the endpoint
  // had no room for its class.
  const int64_t degraded_now = degraded_served.load();
  const int64_t class_shed_now = class_shed.load();
  cumulative->degraded.fetch_add(degraded_now - degraded_folded_);
  cumulative->shed_capacity.fetch_add(class_shed_now - class_shed_folded_);
  cumulative->rejected.fetch_add(class_shed_now - class_shed_folded_);
  degraded_folded_ = degraded_now;
  class_shed_folded_ = class_shed_now;
}

Gateway::Deployment::LifetimeTotals Gateway::Deployment::GetLifetimeTotals() {
  std::lock_guard<std::mutex> lock(fold_mutex_);
  LifetimeTotals totals;
  // Holding fold_mutex_ freezes already_folded_ AND this generation's
  // contributions to `cumulative`, so adding (now - already_folded_) on top
  // of the cumulative read is exact no matter when a swap's eager fold
  // lands. Other (retired) generations' folds only ever grow cumulative by
  // their own deltas — no overlap with ours.
  if (engine != nullptr) {
    const EngineStats now = engine->GetStats();
    totals.submitted = now.submitted - already_folded_.submitted;
    totals.completed = now.completed - already_folded_.completed;
    totals.rejected = now.rejected - already_folded_.rejected;
    totals.batches = now.batches - already_folded_.batches;
    totals.shed_deadline = now.shed_deadline - already_folded_.shed_deadline;
    totals.shed_capacity = now.shed_capacity - already_folded_.shed_capacity;
    totals.expired_in_queue =
        now.expired_in_queue - already_folded_.expired_in_queue;
  }
  const int64_t class_shed_delta = class_shed.load() - class_shed_folded_;
  totals.degraded = degraded_served.load() - degraded_folded_;
  totals.shed_capacity += class_shed_delta;
  totals.rejected += class_shed_delta;
  if (cumulative != nullptr) {
    totals.submitted += cumulative->submitted.load();
    totals.completed += cumulative->completed.load();
    totals.rejected += cumulative->rejected.load();
    totals.batches += cumulative->batches.load();
    totals.shed_deadline += cumulative->shed_deadline.load();
    totals.shed_capacity += cumulative->shed_capacity.load();
    totals.expired_in_queue += cumulative->expired_in_queue.load();
    totals.degraded += cumulative->degraded.load();
  }
  return totals;
}

Gateway::Deployment::~Deployment() {
  // Drain before teardown: Shutdown() serves everything already queued and
  // joins the workers, so no accepted request's future is ever dropped.
  if (engine != nullptr) {
    engine->Shutdown();
    // Final fold, after the drain: the eager fold at swap time already
    // contributed this generation's history, so only the post-swap
    // stragglers' delta lands here — every request counted exactly once.
    FoldCounters();
  }
}

void Gateway::InstallLocked(Endpoint& entry,
                           std::shared_ptr<Deployment> deployment) {
  if (entry.cumulative == nullptr) {
    // First generation for this endpoint name: the lifetime clock and
    // counters start here. Later generations inherit both across swaps.
    entry.cumulative = std::make_shared<CumulativeCounters>();
    entry.first_live = deployment->live_since;
  }
  deployment->cumulative = entry.cumulative;
  entry.current = std::move(deployment);
}

std::shared_ptr<Gateway::Deployment> Gateway::BuildDeployment(
    const DeployConfig& config, std::string* error) {
  if (config.dataset == nullptr) {
    SetError(error, "deploy config has no dataset");
    return nullptr;
  }
  eval::ModelOptions options;
  std::string option_error;
  if (!eval::ModelOptions::FromKeyValues(config.model_options, &options,
                                         &option_error)) {
    SetError(error, "bad model options: " + option_error);
    return nullptr;
  }
  std::unique_ptr<eval::NextPoiModel> model =
      eval::ModelRegistry::Global().Create(config.model_name, config.dataset,
                                           options);
  if (model == nullptr) {
    SetError(error, "unknown model '" + config.model_name + "' (registered: " +
                        [] {
                          std::string names;
                          for (const std::string& n :
                               eval::ModelRegistry::Global().Names()) {
                            if (!names.empty()) names += ", ";
                            names += n;
                          }
                          return names;
                        }() +
                        ")");
    return nullptr;
  }
  if (!config.checkpoint_path.empty() &&
      !model->LoadCheckpoint(config.checkpoint_path)) {
    SetError(error, "checkpoint '" + config.checkpoint_path +
                        "' failed to load into model '" + config.model_name +
                        "'");
    return nullptr;
  }
  auto deployment = std::make_shared<Deployment>();
  deployment->config = config;
  deployment->model = std::move(model);
  deployment->engine = std::make_unique<InferenceEngine>(
      *deployment->model, config.engine_options);
  deployment->planner = std::make_unique<plan::ItineraryPlanner>(
      *deployment->model, config.dataset);
  // The planner's rollout waves ride this generation's engine: the whole
  // frontier is submitted before any future is collected, so the engine's
  // coalescer turns each wave into one RecommendBatch call and plan traffic
  // shares the queue (and its backpressure) with live recommendations. The
  // raw pointer is safe: the deployment owns both, planner declared after
  // engine.
  deployment->planner->set_scorer(
      [engine = deployment->engine.get()](
          common::Span<eval::RecommendRequest> requests) {
        std::vector<std::future<eval::RecommendResponse>> futures;
        futures.reserve(requests.size());
        for (size_t i = 0; i < requests.size(); ++i) {
          futures.push_back(engine->Submit(requests[i]));
        }
        std::vector<eval::RecommendResponse> responses;
        responses.reserve(futures.size());
        for (auto& future : futures) responses.push_back(future.get());
        return responses;
      });
  deployment->live_since = Clock::now();
  return deployment;
}

bool Gateway::Deploy(const std::string& endpoint, const DeployConfig& config,
                     std::string* error) {
  if (endpoint.empty()) {
    SetError(error, "endpoint name must be non-empty");
    return false;
  }
  if (endpoint.size() > kMaxEndpointNameLen) {
    // The wire decoder caps endpoint names; a longer name would deploy an
    // endpoint that ServeFrame could never address.
    SetError(error, "endpoint name exceeds " +
                        std::to_string(kMaxEndpointNameLen) + " bytes");
    return false;
  }
  // Cheap duplicate pre-check before the expensive build; the authoritative
  // recheck under the lock below still handles a racing deploy.
  if (Has(endpoint)) {
    SetError(error, "endpoint '" + endpoint +
                        "' is already deployed (use Swap to hot-reload)");
    return false;
  }
  // Built outside the lock: model construction + checkpoint restore can be
  // slow, and other endpoints must keep serving meanwhile.
  std::shared_ptr<Deployment> deployment = BuildDeployment(config, error);
  if (deployment == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = endpoints_.try_emplace(endpoint);
    if (!inserted) {
      SetError(error, it->second.current == nullptr
                          ? "endpoint '" + endpoint +
                                "' is still deploying asynchronously"
                          : "endpoint '" + endpoint +
                                "' is already deployed (use Swap to "
                                "hot-reload)");
      return false;
    }
    InstallLocked(it->second, std::move(deployment));
    async_status_.erase(endpoint);  // sync success supersedes async history
  }
  return true;
}

bool Gateway::DeployAsync(const std::string& endpoint,
                          const DeployConfig& config, std::string* error) {
  if (endpoint.empty()) {
    SetError(error, "endpoint name must be non-empty");
    return false;
  }
  if (endpoint.size() > kMaxEndpointNameLen) {
    SetError(error, "endpoint name exceeds " +
                        std::to_string(kMaxEndpointNameLen) + " bytes");
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Reserve the name with a placeholder entry (null current): duplicate
    // deploys fail instantly, submits are rejected until the build lands.
    auto [it, inserted] = endpoints_.try_emplace(endpoint);
    if (!inserted) {
      SetError(error, it->second.current == nullptr
                          ? "endpoint '" + endpoint +
                                "' is still deploying asynchronously"
                          : "endpoint '" + endpoint + "' is already deployed");
      return false;
    }
    async_status_[endpoint] = {DeployState::kBuilding, ""};
  }
  StartAsyncOp([this, endpoint, config] {
    std::string build_error;
    std::shared_ptr<Deployment> deployment =
        BuildDeployment(config, &build_error);
    // `discarded` (if any) is released after the lock: its engine teardown
    // must never run under the gateway mutex.
    std::shared_ptr<Deployment> discarded;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    const bool reserved =
        it != endpoints_.end() && it->second.current == nullptr;
    if (deployment == nullptr) {
      // Release the reservation so the name can be deployed again; the
      // failure stays pollable until then.
      if (reserved) endpoints_.erase(it);
      async_status_[endpoint] = {DeployState::kFailed, build_error};
      return;
    }
    if (!reserved) {
      // The placeholder vanished or was replaced while building (a
      // lifecycle race only the gateway destructor can cause today, since
      // Undeploy refuses placeholders). Discard the build: it never
      // accepted a request.
      discarded = std::move(deployment);
      async_status_[endpoint] = {DeployState::kFailed,
                                 "endpoint '" + endpoint +
                                     "' changed during async deploy"};
      return;
    }
    InstallLocked(it->second, std::move(deployment));
    async_status_[endpoint] = {DeployState::kLive, ""};
  });
  return true;
}

bool Gateway::Swap(const std::string& endpoint,
                   const std::string& checkpoint_path, std::string* error) {
  // Snapshot the endpoint's deployment, build the replacement outside the
  // lock (zero downtime: the old deployment keeps serving during the build).
  std::shared_ptr<Deployment> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || it->second.current == nullptr) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    snapshot = it->second.current;
  }
  DeployConfig config = snapshot->config;
  config.checkpoint_path = checkpoint_path;
  std::shared_ptr<Deployment> fresh = BuildDeployment(config, error);
  if (fresh == nullptr) return false;

  std::shared_ptr<Deployment> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    // The swap only lands on the generation it snapshotted: if the endpoint
    // was undeployed — or undeployed and redeployed as something else —
    // while we were building, installing `fresh` would silently revert that
    // lifecycle change, so the swap aborts and discards the build instead
    // (it never accepted a request).
    if (it == endpoints_.end() || it->second.current != snapshot) {
      SetError(error, "endpoint '" + endpoint + "' changed during swap");
      return false;
    }
    old = std::move(it->second.current);
    InstallLocked(it->second, std::move(fresh));
    ++it->second.swaps;
    async_status_.erase(endpoint);  // sync success supersedes async history
  }
  // Eager partial fold, outside the gateway mutex: the retiring
  // generation's history lands in the lifetime totals NOW, so a stats
  // scrape right after the swap sees at most the still-in-flight
  // stragglers' lag — not a whole generation's worth.
  old->FoldCounters();
  // `old` dies here (or when the last in-flight submitter releases it):
  // its engine drains every queued request against the old weights first,
  // then folds the remaining delta into the endpoint's lifetime totals.
  return true;
}

bool Gateway::SwapAsync(const std::string& endpoint,
                        const std::string& checkpoint_path,
                        std::string* error) {
  std::shared_ptr<Deployment> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || it->second.current == nullptr) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    auto status = async_status_.find(endpoint);
    if (status != async_status_.end() &&
        status->second.state == DeployState::kBuilding) {
      SetError(error, "endpoint '" + endpoint +
                          "' already has an async operation in progress");
      return false;
    }
    snapshot = it->second.current;
    async_status_[endpoint] = {DeployState::kBuilding, ""};
  }
  // Mutable so the op can drop its `snapshot` pin before it finishes: the
  // retiring generation must drain on THIS builder thread (or an in-flight
  // submitter), never on whoever later joins the builder.
  StartAsyncOp([this, endpoint, checkpoint_path, snapshot]() mutable {
    DeployConfig config = snapshot->config;
    config.checkpoint_path = checkpoint_path;
    std::string build_error;
    std::shared_ptr<Deployment> fresh = BuildDeployment(config, &build_error);
    if (fresh == nullptr) {
      SetAsyncStatus(endpoint, DeployState::kFailed, build_error);
      return;
    }
    // Same install rules as the synchronous Swap: the build only lands
    // on the generation it snapshotted. `old`/`discarded` drain outside
    // the lock (declared before the scoped lock_guard below).
    std::shared_ptr<Deployment> old;
    std::shared_ptr<Deployment> discarded;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = endpoints_.find(endpoint);
      if (it == endpoints_.end()) {
        // Undeployed while we were building: the name's async history
        // ended with it — recording a failure here would leave a phantom
        // kFailed status on a nonexistent endpoint forever.
        discarded = std::move(fresh);
        async_status_.erase(endpoint);
      } else if (it->second.current != snapshot) {
        discarded = std::move(fresh);
        async_status_[endpoint] = {
            DeployState::kFailed,
            "endpoint '" + endpoint + "' changed during async swap"};
      } else {
        old = std::move(it->second.current);
        InstallLocked(it->second, std::move(fresh));
        ++it->second.swaps;
        async_status_[endpoint] = {DeployState::kLive, ""};
      }
    }
    // Same eager partial fold as the synchronous Swap, after the lock.
    if (old != nullptr) old->FoldCounters();
    // Release the capture's pin on the old generation here, inside the op:
    // if this was the last reference, the drain runs now on the builder
    // thread — before the done flag — so a later join never inherits it.
    snapshot.reset();
  });
  return true;
}

DeployStatus Gateway::GetDeployStatus(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The async record is authoritative while it exists — in particular a
  // failed SwapAsync must stay visible even though the endpoint keeps
  // serving the old weights. Successful synchronous lifecycle operations
  // erase the record, so pure-sync users simply see kLive/kNone.
  auto status = async_status_.find(endpoint);
  if (status != async_status_.end()) return status->second;
  auto it = endpoints_.find(endpoint);
  if (it != endpoints_.end() && it->second.current != nullptr) {
    return {DeployState::kLive, ""};
  }
  return {};
}

void Gateway::SetAsyncStatus(const std::string& endpoint, DeployState state,
                             const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  async_status_[endpoint] = {state, error};
}

void Gateway::StartAsyncOp(std::function<void()> op) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread thread([op = std::move(op), done] {
    op();
    done->store(true);
  });
  // Reap builders that already finished, so the worker list stays bounded
  // by the number of genuinely concurrent builds. The joins run with the
  // gateway mutex RELEASED: a finished builder's epilogue is trivial, but
  // holding mutex_ across any join would stall every Submit/ServeFrame on
  // every endpoint if that ever stopped being true.
  std::vector<AsyncWorker> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = async_workers_.begin(); it != async_workers_.end();) {
      if (it->done->load()) {
        finished.push_back(std::move(*it));
        it = async_workers_.erase(it);
      } else {
        ++it;
      }
    }
    async_workers_.push_back({std::move(thread), std::move(done)});
  }
  for (AsyncWorker& worker : finished) {
    if (worker.thread.joinable()) worker.thread.join();
  }
}

bool Gateway::Undeploy(const std::string& endpoint, std::string* error) {
  std::shared_ptr<Deployment> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      SetError(error, "endpoint '" + endpoint + "' is not deployed");
      return false;
    }
    if (it->second.current == nullptr) {
      // A DeployAsync build is reserving this name; there is nothing to
      // drain yet and erasing the placeholder would race the installer.
      SetError(error, "endpoint '" + endpoint +
                          "' is still deploying asynchronously");
      return false;
    }
    removed = std::move(it->second.current);
    endpoints_.erase(it);
    async_status_.erase(endpoint);  // the name's async history ends with it
  }
  // Drain outside the lock so teardown of one endpoint cannot stall the
  // others' submits.
  removed.reset();
  return true;
}

std::shared_ptr<Gateway::Deployment> Gateway::CurrentDeployment(
    const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return nullptr;
  return it->second.current;
}

bool Gateway::ShapeForOverload(Deployment& deployment,
                               eval::RecommendRequest* request,
                               Priority priority) {
  const OverloadPolicy& policy = deployment.config.overload;
  const int64_t capacity = deployment.config.engine_options.max_queue_depth;
  const int64_t depth = deployment.engine->QueueDepth();
  // Hysteresis: enter at high-water, leave at low-water. The atomic races
  // with concurrent submitters benignly — the worst case is two requests
  // near a threshold disagreeing about the state by one transition.
  bool degraded = deployment.degraded.load(std::memory_order_relaxed);
  if (!degraded) {
    if (capacity > 0 && depth * 100 >= capacity * policy.degrade_high_pct) {
      degraded = true;
      deployment.degraded.store(true, std::memory_order_relaxed);
    }
  } else if (capacity <= 0 ||
             depth * 100 <= capacity * policy.degrade_low_pct) {
    degraded = false;
    deployment.degraded.store(false, std::memory_order_relaxed);
  }
  if (!degraded) return true;
  if (policy.shed_priority_at_or_below >= 0 &&
      static_cast<int64_t>(static_cast<uint8_t>(priority)) <=
          policy.shed_priority_at_or_below) {
    deployment.class_shed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Serve shallower instead of shedding: clamp the ranking depth and cap
  // the stage-1 screen so each degraded request costs a bounded slice of
  // the tile scan (core/tspn_ra.h GatherAllowedCandidates).
  if (policy.degraded_top_n > 0 && request->top_n > policy.degraded_top_n) {
    request->top_n = policy.degraded_top_n;
  }
  if (policy.degraded_max_tiles > 0) {
    request->max_tiles_screened = policy.degraded_max_tiles;
  }
  deployment.degraded_served.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::future<eval::RecommendResponse> Gateway::Submit(
    const std::string& endpoint, const eval::RecommendRequest& request) {
  return Submit(endpoint, request, AdmissionClass{});
}

std::future<eval::RecommendResponse> Gateway::Submit(
    const std::string& endpoint, const eval::RecommendRequest& request,
    const AdmissionClass& admission) {
  // The copied shared_ptr pins this deployment generation for the duration
  // of the call: a concurrent Swap/Undeploy cannot destroy the engine
  // while it is accepting this request.
  std::shared_ptr<Deployment> deployment = CurrentDeployment(endpoint);
  if (deployment == nullptr) {
    return BrokenFuture("no endpoint '" + endpoint + "' is deployed");
  }
  const std::string invalid =
      ValidateRequest(*deployment->config.dataset, request);
  if (!invalid.empty()) {
    return BrokenFuture("invalid request for endpoint '" + endpoint +
                        "': " + invalid);
  }
  eval::RecommendRequest shaped = request;
  if (!ShapeForOverload(*deployment, &shaped, admission.priority)) {
    std::promise<eval::RecommendResponse> shed;
    shed.set_exception(std::make_exception_ptr(ShedError(
        ShedReason::kCapacity,
        "request shed (kCapacity): endpoint '" + endpoint +
            "' is degraded and sheds " +
            std::string(PriorityName(admission.priority)) + " traffic")));
    return shed.get_future();
  }
  return deployment->engine->Submit(shaped, admission);
}

bool Gateway::PlanItinerary(const std::string& endpoint,
                            const plan::ItineraryRequest& request,
                            plan::ItineraryResponse* out, std::string* error) {
  // Pinning the generation keeps model + engine + planner alive for the
  // whole (blocking) search, exactly like Submit does for one request.
  std::shared_ptr<Deployment> deployment = CurrentDeployment(endpoint);
  if (deployment == nullptr) {
    SetError(error, "no endpoint '" + endpoint + "' is deployed");
    return false;
  }
  return deployment->planner->Plan(request, out, error);
}

std::vector<uint8_t> Gateway::ServeItineraryFrame(
    const std::vector<uint8_t>& frame) {
  std::string endpoint;
  plan::ItineraryRequest request;
  const DecodeStatus status = DecodeItineraryRequest(frame, &endpoint, &request);
  if (status != DecodeStatus::kOk) {
    // Unlike recommend requests, an itinerary frame only decodes at v4+,
    // so the requester understands every error layout and code.
    return EncodeErrorFrame(std::string("bad itinerary request frame: ") +
                                DecodeStatusName(status),
                            ErrorCode::kBadFrame);
  }
  try {
    plan::ItineraryResponse response;
    std::string error;
    if (!PlanItinerary(endpoint, request, &response, &error)) {
      ErrorCode code = ErrorCode::kModelFailure;
      if (error.rfind("no endpoint", 0) == 0) {
        code = ErrorCode::kUnknownEndpoint;
      } else if (error.rfind("invalid request", 0) == 0) {
        code = ErrorCode::kInvalidRequest;
      }
      return EncodeErrorFrame(error, code);
    }
    return EncodeItineraryResponse(response);
  } catch (const ShedError& e) {
    // A rollout wave can be refused by the endpoint's admission control —
    // the plan inherits the shed, like any other rejected workload.
    return EncodeErrorFrame(e.what(), CodeForShed(e.reason()));
  } catch (const std::exception& e) {
    return EncodeErrorFrame(e.what(), ErrorCode::kModelFailure);
  } catch (...) {
    return EncodeErrorFrame("itinerary request failed", ErrorCode::kGeneric);
  }
}

std::vector<uint8_t> Gateway::ServeControlFrame(
    FrameType type, const std::vector<uint8_t>& frame) {
  if (type == FrameType::kPing) {
    uint64_t nonce = 0;
    if (DecodePingFrame(frame, &nonce) != DecodeStatus::kOk) {
      return EncodeErrorFrame("bad ping frame", ErrorCode::kBadFrame);
    }
    return EncodePongFrame(nonce);
  }
  if (type == FrameType::kStatsRequest) {
    if (DecodeStatsRequest(frame) != DecodeStatus::kOk) {
      return EncodeErrorFrame("bad stats request frame", ErrorCode::kBadFrame);
    }
    return EncodeStatsResponse(WireSnapshot());
  }
  // A well-formed frame of a type a server never accepts (a response, an
  // error, a pong, a stats response) — the peer has the protocol backwards.
  return EncodeErrorFrame("frame type not servable by this endpoint",
                          ErrorCode::kBadFrame);
}

std::vector<uint8_t> Gateway::ServeFrame(const std::vector<uint8_t>& request_frame) {
  FrameType frame_type = FrameType::kRequest;
  if (PeekFrameType(request_frame, &frame_type) == DecodeStatus::kOk &&
      frame_type != FrameType::kRequest) {
    if (frame_type == FrameType::kItineraryRequest) {
      return ServeItineraryFrame(request_frame);
    }
    return ServeControlFrame(frame_type, request_frame);
  }
  std::string endpoint;
  eval::RecommendRequest request;
  AdmissionClass admission;
  uint32_t wire_version = 1;
  const DecodeStatus status = DecodeRecommendRequest(
      request_frame, &endpoint, &request, &admission, &wire_version);
  if (status != DecodeStatus::kOk) {
    // The requester's version is unknowable from a frame that failed to
    // decode, so the reply uses the universally decodable v1 layout.
    return EncodeErrorFrame(std::string("bad request frame: ") +
                            DecodeStatusName(status));
  }
  try {
    return EncodeRecommendResponse(
        Submit(endpoint, request, admission).get());
  } catch (const ShedError& e) {
    return ErrorFrameFor(wire_version, e.what(), CodeForShed(e.reason()));
  } catch (const std::exception& e) {
    // BrokenFuture routes (unknown endpoint, invalid request) and model
    // failures land here; classify by message prefix so v2 requesters get
    // a useful code without a parallel error-plumbing channel.
    const std::string what = e.what();
    ErrorCode code = ErrorCode::kModelFailure;
    if (what.rfind("no endpoint", 0) == 0) {
      code = ErrorCode::kUnknownEndpoint;
    } else if (what.rfind("invalid request", 0) == 0) {
      code = ErrorCode::kInvalidRequest;
    }
    return ErrorFrameFor(wire_version, what, code);
  } catch (...) {
    return ErrorFrameFor(wire_version, "request failed", ErrorCode::kGeneric);
  }
}

void Gateway::ServeFrameAsync(const std::vector<uint8_t>& request_frame,
                              FrameCallback done) {
  FrameType frame_type = FrameType::kRequest;
  if (PeekFrameType(request_frame, &frame_type) == DecodeStatus::kOk &&
      frame_type != FrameType::kRequest) {
    if (frame_type == FrameType::kItineraryRequest) {
      // A plan blocks across several rollout waves — far too heavy for the
      // transport thread. A reaped background worker runs it (itineraries
      // are low-QPS by construction); the gateway destructor joins every
      // worker, so `done` always fires.
      StartAsyncOp([this, frame = request_frame, done = std::move(done)] {
        done(ServeItineraryFrame(frame));
      });
      return;
    }
    // Control frames are cheap (a nonce echo, a stats scrape) — answering
    // synchronously keeps health probes immune to engine-queue pressure.
    done(ServeControlFrame(frame_type, request_frame));
    return;
  }
  std::string endpoint;
  eval::RecommendRequest request;
  AdmissionClass admission;
  uint32_t wire_version = 1;
  const DecodeStatus status = DecodeRecommendRequest(
      request_frame, &endpoint, &request, &admission, &wire_version);
  if (status != DecodeStatus::kOk) {
    done(EncodeErrorFrame(std::string("bad request frame: ") +
                          DecodeStatusName(status)));
    return;
  }
  std::shared_ptr<Deployment> deployment = CurrentDeployment(endpoint);
  if (deployment == nullptr) {
    done(ErrorFrameFor(wire_version,
                       "no endpoint '" + endpoint + "' is deployed",
                       ErrorCode::kUnknownEndpoint));
    return;
  }
  const std::string invalid =
      ValidateRequest(*deployment->config.dataset, request);
  if (!invalid.empty()) {
    done(ErrorFrameFor(wire_version,
                       "invalid request for endpoint '" + endpoint +
                           "': " + invalid,
                       ErrorCode::kInvalidRequest));
    return;
  }
  if (!ShapeForOverload(*deployment, &request, admission.priority)) {
    done(ErrorFrameFor(wire_version,
                       "request shed (kCapacity): endpoint '" + endpoint +
                           "' is degraded and sheds " +
                           std::string(PriorityName(admission.priority)) +
                           " traffic",
                       ErrorCode::kShedCapacity));
    return;
  }
  // The continuation deliberately does NOT capture the deployment: it does
  // not need it (the response is fully computed before the callback runs,
  // and ~Deployment's drain guarantees every queued continuation runs
  // before the engine/model die — the same contract the future-based
  // Submit relies on), and owning it would be a self-join hazard — the
  // callback runs on the deployment's own engine worker, so dropping the
  // last reference there would make the worker join itself in Shutdown.
  // `done` is copied (not moved) into the continuation because a rejected
  // submit never runs it — the overload error below still needs the
  // original.
  ShedReason shed_reason = ShedReason::kNone;
  const bool accepted = deployment->engine->TrySubmitAsync(
      request, admission,
      [done, wire_version](eval::RecommendResponse response,
                           std::exception_ptr error) {
        if (error != nullptr) {
          try {
            std::rethrow_exception(error);
          } catch (const ShedError& e) {
            done(ErrorFrameFor(wire_version, e.what(),
                               CodeForShed(e.reason())));
          } catch (const std::exception& e) {
            done(ErrorFrameFor(wire_version, e.what(),
                               ErrorCode::kModelFailure));
          } catch (...) {
            done(ErrorFrameFor(wire_version, "request failed",
                               ErrorCode::kGeneric));
          }
          return;
        }
        done(EncodeRecommendResponse(response));
      },
      &shed_reason);
  if (!accepted) {
    done(ErrorFrameFor(
        wire_version,
        "request shed (" + std::string(ShedReasonName(shed_reason)) +
            "): endpoint '" + endpoint + "' is overloaded",
        CodeForShed(shed_reason)));
  }
}

bool Gateway::Has(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = endpoints_.find(endpoint);
  // A placeholder reserved by DeployAsync is not serving yet.
  return it != endpoints_.end() && it->second.current != nullptr;
}

std::vector<std::string> Gateway::Endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) {
    if (ep.current != nullptr) names.push_back(name);
  }
  return names;
}

EndpointStats Gateway::StatsOf(const EndpointSnapshot& snapshot) {
  const auto now = Clock::now();
  const std::shared_ptr<Deployment>& deployment = snapshot.deployment;
  EndpointStats stats;
  stats.endpoint = snapshot.name;
  stats.model_name = deployment->config.model_name;
  stats.checkpoint_path = deployment->config.checkpoint_path;
  stats.swaps = snapshot.swaps;

  // Window: the current deployment's engine and uptime.
  stats.queue_depth = deployment->engine->QueueDepth();
  stats.engine = deployment->engine->GetStats();
  stats.window_uptime_seconds =
      std::chrono::duration<double>(now - deployment->live_since).count();
  stats.window_qps = stats.window_uptime_seconds > 0.0
                         ? static_cast<double>(stats.engine.completed) /
                               stats.window_uptime_seconds
                         : 0.0;

  // Lifetime: counters retired deployments folded in, plus the live
  // generation's unfolded delta — computed together under the fold mutex
  // so a racing swap's eager fold cannot double-count the live window.
  const Deployment::LifetimeTotals lifetime = deployment->GetLifetimeTotals();
  stats.lifetime_submitted = lifetime.submitted;
  stats.lifetime_completed = lifetime.completed;
  stats.lifetime_rejected = lifetime.rejected;
  stats.lifetime_batches = lifetime.batches;
  stats.shed_deadline = lifetime.shed_deadline;
  stats.shed_capacity = lifetime.shed_capacity;
  stats.expired_in_queue = lifetime.expired_in_queue;
  stats.degraded = lifetime.degraded;
  stats.degraded_now = deployment->degraded.load(std::memory_order_relaxed);
  stats.uptime_seconds =
      std::chrono::duration<double>(now - snapshot.first_live).count();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.lifetime_completed) /
                        stats.uptime_seconds
                  : 0.0;
  return stats;
}

void Gateway::AttachTrainer(const std::string& endpoint,
                            TrainerTelemetryFn provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  trainer_providers_[endpoint] = std::move(provider);
}

void Gateway::DetachTrainer(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  trainer_providers_.erase(endpoint);
}

TrainerTelemetryFn Gateway::TrainerProviderOf(
    const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = trainer_providers_.find(endpoint);
  return it == trainer_providers_.end() ? nullptr : it->second;
}

bool Gateway::GetEndpointStats(const std::string& endpoint,
                               EndpointStats* out) const {
  EndpointSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || it->second.current == nullptr) return false;
    snapshot = {endpoint, it->second.current, it->second.swaps,
                it->second.cumulative, it->second.first_live};
  }
  // Engine-stats queries (their own mutex, percentile computation) run with
  // the gateway mutex released so they never stall request routing.
  *out = StatsOf(snapshot);
  if (TrainerTelemetryFn provider = TrainerProviderOf(endpoint)) {
    out->trainer = provider();
  }
  return true;
}

GatewayStats Gateway::Snapshot() const {
  // Copy the endpoint table under the lock, compute per-endpoint stats off
  // it: a monitoring scrape must not block Submit/ServeFrame on any
  // endpoint while engines sort their latency rings. The shared_ptrs pin
  // each deployment exactly like an in-flight submit does.
  std::vector<EndpointSnapshot> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(endpoints_.size());
    for (const auto& [name, ep] : endpoints_) {
      if (ep.current == nullptr) continue;  // DeployAsync placeholder
      entries.push_back({name, ep.current, ep.swaps, ep.cumulative,
                         ep.first_live});
    }
  }
  GatewayStats snapshot;
  snapshot.endpoints = static_cast<int64_t>(entries.size());
  snapshot.per_endpoint.reserve(entries.size());
  for (const EndpointSnapshot& entry : entries) {
    EndpointStats stats = StatsOf(entry);
    if (TrainerTelemetryFn provider = TrainerProviderOf(entry.name)) {
      stats.trainer = provider();
    }
    snapshot.total_submitted += stats.lifetime_submitted;
    snapshot.total_completed += stats.lifetime_completed;
    snapshot.total_rejected += stats.lifetime_rejected;
    snapshot.total_swaps += stats.swaps;
    snapshot.total_shed_deadline += stats.shed_deadline;
    snapshot.total_shed_capacity += stats.shed_capacity;
    snapshot.total_expired_in_queue += stats.expired_in_queue;
    snapshot.total_degraded += stats.degraded;
    snapshot.total_qps += stats.qps;
    snapshot.per_endpoint.push_back(std::move(stats));
  }
  return snapshot;
}

WireStatsSnapshot Gateway::WireSnapshot() const {
  const GatewayStats full = Snapshot();
  WireStatsSnapshot wire;
  wire.endpoints.reserve(full.per_endpoint.size());
  for (const EndpointStats& stats : full.per_endpoint) {
    WireEndpointStats row;
    row.endpoint = stats.endpoint;
    row.model_name = stats.model_name;
    row.queue_depth = stats.queue_depth;
    row.lifetime_submitted = stats.lifetime_submitted;
    row.lifetime_completed = stats.lifetime_completed;
    row.lifetime_rejected = stats.lifetime_rejected;
    row.shed_deadline = stats.shed_deadline;
    row.shed_capacity = stats.shed_capacity;
    row.expired_in_queue = stats.expired_in_queue;
    row.degraded = stats.degraded;
    row.swaps = stats.swaps;
    row.degraded_now = stats.degraded_now;
    row.qps = stats.qps;
    row.p50_latency_ms = stats.engine.p50_latency_ms;
    row.p95_latency_ms = stats.engine.p95_latency_ms;
    wire.endpoints.push_back(std::move(row));
  }
  return wire;
}

Gateway::~Gateway() {
  // Background builders first: joining them before the endpoint teardown
  // guarantees no installer runs against a half-destroyed gateway.
  std::vector<AsyncWorker> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers = std::move(async_workers_);
    async_workers_.clear();
  }
  for (AsyncWorker& worker : workers) {
    if (worker.thread.joinable()) worker.thread.join();
  }
  std::map<std::string, Endpoint> endpoints;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    endpoints = std::move(endpoints_);
    endpoints_.clear();
  }
  // Deployment destructors drain each endpoint's queue.
  endpoints.clear();
}

}  // namespace tspn::serve
