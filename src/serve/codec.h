#ifndef TSPN_SERVE_CODEC_H_
#define TSPN_SERVE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/recommend.h"
#include "plan/itinerary.h"
#include "serve/admission.h"

namespace tspn::serve {

/// Versioned binary wire protocol for recommendation traffic — the seam a
/// socket front-end will plug into. Every frame is
///
///   uint32  magic          "TSWP" (0x50575354)
///   uint32  wire version   1 or 2 (see below)
///   uint8   frame type     FrameType
///   uint32  payload bytes  (exactly what follows; nothing may trail it)
///   ...     payload        POD fields via common::ByteWriter/ByteReader
///
/// Decoders are strict: truncated buffers, wrong magic, versions newer than
/// this build, unknown frame types, payload-length mismatches and trailing
/// garbage are all rejected with a specific DecodeStatus instead of a crash
/// or a partially filled struct (outputs are untouched on failure).
///
/// Version 2 adds optional overload-control fields:
///   * request frames gain a trailing int64 deadline_ms + uint8 priority
///     (serve/admission.h) — a v2 frame must carry both, a v1 frame neither;
///   * error frames gain a trailing uint8 ErrorCode.
/// Decoders accept versions 1..kWireVersion, filling defaults for absent v2
/// fields (interactive priority, no deadline, kGeneric code) and rejecting
/// any mixture strictly. Encoders emit the LOWEST version that can represent
/// the frame: responses carry no v2 fields and stay version 1 on the wire,
/// so a v1-only client is served bit-identically by this build.
///
/// Version 3 (this build) adds the cluster-control surface:
///   * four new frame types — kPing/kPong (health probes, an echoed uint64
///     nonce) and kStatsRequest/kStatsResponse (a gateway stats snapshot a
///     router rolls up into its cluster view). These frames always travel
///     at version 3; a v2-era decoder rejects the unknown type as
///     malformed, which is exactly the strictness contract.
///   * two new ErrorCode values, kShardUnavailable and kRateLimited,
///     emitted by the router tier. An error frame carrying a code above
///     kMaxErrorCodeV2 is encoded at version 3 (codes 0..8 keep the v2
///     layout); a v3 error frame may carry any code up to kMaxErrorCode.
///
/// Version 4 (this build) adds the itinerary-planning workload:
///   * two new frame types — kItineraryRequest (endpoint name + a
///     plan::ItineraryRequest) and kItineraryResponse (a
///     plan::ItineraryResponse of feasible plans). Both always travel at
///     version 4 (no earlier version can represent them); a v1–v3 frame
///     claiming either type is malformed, and every pre-v4 frame this
///     build emits is bit-identical to what a v3 build emits.
inline constexpr uint32_t kWireMagic = 0x50575354;  // "TSWP"
inline constexpr uint32_t kWireVersion = 4;

/// Longest endpoint name a request frame may carry. Gateway::Deploy
/// enforces the same cap, so every deployable endpoint is addressable over
/// the wire.
inline constexpr uint32_t kMaxEndpointNameLen = 256;

enum class FrameType : uint8_t {
  kRequest = 1,        ///< endpoint name + eval::RecommendRequest [+ admission]
  kResponse = 2,       ///< eval::RecommendResponse
  kError = 3,          ///< human-readable error message [+ ErrorCode]
  kPing = 4,           ///< health probe: uint64 nonce (v3+)
  kPong = 5,           ///< ping reply: the echoed nonce (v3+)
  kStatsRequest = 6,   ///< empty payload: ask for a stats snapshot (v3+)
  kStatsResponse = 7,  ///< WireStatsSnapshot payload (v3+)
  kItineraryRequest = 8,   ///< endpoint name + plan::ItineraryRequest (v4+)
  kItineraryResponse = 9,  ///< plan::ItineraryResponse payload (v4+)
};

enum class DecodeStatus : uint8_t {
  kOk = 0,
  kTruncated,        ///< buffer ends before the header or payload does
  kBadMagic,         ///< first word is not kWireMagic
  kFutureVersion,    ///< frame written by a newer wire version
  kWrongFrameType,   ///< well-formed frame of a different FrameType
  kMalformedPayload, ///< payload fields inconsistent or over their limits
  kTrailingGarbage,  ///< bytes remain after the declared payload
};

/// Human-readable status name ("kOk", "kTruncated", ...), for logs/errors.
const char* DecodeStatusName(DecodeStatus status);

/// Machine-readable error classification carried by v2 error frames, so
/// clients can tell a shed (retry later, lower the rate) from a caller bug
/// (fix the request) without parsing message text. v1 error frames decode
/// as kGeneric.
enum class ErrorCode : uint8_t {
  kGeneric = 0,          ///< unclassified (every v1-era error)
  kBadFrame = 1,         ///< request frame failed to decode
  kUnknownEndpoint = 2,  ///< no such endpoint deployed
  kInvalidRequest = 3,   ///< decoded fine, but unservable (bad sample index)
  kShedCapacity = 4,     ///< queue full / evicted / degraded-class shed
  kShedDeadline = 5,     ///< deadline cannot plausibly be met; not enqueued
  kExpired = 6,          ///< accepted, but the deadline passed in the queue
  kModelFailure = 7,     ///< the model threw while serving the batch
  kTransport = 8,        ///< transport-level framing violation
  kShardUnavailable = 9, ///< router: every replica for the key is down (v3+)
  kRateLimited = 10,     ///< router: endpoint token bucket empty (v3+)
};

/// Highest ErrorCode a version-2 error frame may carry; 9+ requires a v3
/// frame (the encoder picks the version accordingly).
inline constexpr uint8_t kMaxErrorCodeV2 = 8;

/// Highest valid ErrorCode value; anything above it is malformed on the wire.
inline constexpr uint8_t kMaxErrorCode = 10;

const char* ErrorCodeName(ErrorCode code);

/// Peeks at a well-formed frame's type without decoding the payload.
/// Returns kOk and sets *type when the header is valid and the payload
/// length matches the buffer.
DecodeStatus PeekFrameType(const std::vector<uint8_t>& frame, FrameType* type);

// --- Request frames ----------------------------------------------------------

/// Encodes `request` addressed to the named gateway endpoint as a version-1
/// frame (no admission fields — bit-identical to what pre-v2 builds
/// emitted). The name must respect kMaxEndpointNameLen — the encoder does
/// not truncate, so a longer name produces a frame the strict decoder
/// rejects (Gateway::Deploy enforces the same cap, so no deployable
/// endpoint can hit this).
std::vector<uint8_t> EncodeRecommendRequest(const std::string& endpoint,
                                            const eval::RecommendRequest& request);

/// Version-2 encode: the same payload plus the trailing admission fields
/// (deadline_ms, priority). admission.deadline_ms must be non-negative.
std::vector<uint8_t> EncodeRecommendRequest(const std::string& endpoint,
                                            const eval::RecommendRequest& request,
                                            const AdmissionClass& admission);

/// Strict inverse of both encoders. On kOk, *endpoint and *request hold
/// exactly what was encoded (bit-identical constraints included).
DecodeStatus DecodeRecommendRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    eval::RecommendRequest* request);

/// Admission-aware decode: a v2 frame fills *admission from its trailing
/// fields (negative deadlines and out-of-range priorities are malformed); a
/// v1 frame yields the AdmissionClass defaults. When non-null,
/// *wire_version reports the frame's version so a server can reply in kind.
DecodeStatus DecodeRecommendRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    eval::RecommendRequest* request,
                                    AdmissionClass* admission,
                                    uint32_t* wire_version = nullptr);

// --- Response frames ---------------------------------------------------------

std::vector<uint8_t> EncodeRecommendResponse(const eval::RecommendResponse& response);

DecodeStatus DecodeRecommendResponse(const std::vector<uint8_t>& frame,
                                     eval::RecommendResponse* response);

// --- Error frames ------------------------------------------------------------

/// What the gateway returns instead of a response when the request frame is
/// invalid or the endpoint/model fails. This overload encodes a version-1
/// frame (no code — bit-identical to pre-v2 builds), for replies to v1
/// requesters.
std::vector<uint8_t> EncodeErrorFrame(const std::string& message);

/// Version-2 encode with the machine-readable classification appended.
std::vector<uint8_t> EncodeErrorFrame(const std::string& message,
                                      ErrorCode code);

DecodeStatus DecodeErrorFrame(const std::vector<uint8_t>& frame,
                              std::string* message);

/// Code-aware decode: v2+ frames fill *code from the trailing byte
/// (out-of-range values are malformed — a v2 frame above kMaxErrorCodeV2,
/// any frame above kMaxErrorCode); v1 frames yield kGeneric.
DecodeStatus DecodeErrorFrame(const std::vector<uint8_t>& frame,
                              std::string* message, ErrorCode* code);

// --- Ping frames (v3) --------------------------------------------------------

/// Health probe and its reply. The nonce is chosen by the prober and echoed
/// verbatim, so a pipelining health checker can match pongs to pings.
std::vector<uint8_t> EncodePingFrame(uint64_t nonce);
DecodeStatus DecodePingFrame(const std::vector<uint8_t>& frame,
                             uint64_t* nonce);
std::vector<uint8_t> EncodePongFrame(uint64_t nonce);
DecodeStatus DecodePongFrame(const std::vector<uint8_t>& frame,
                             uint64_t* nonce);

// --- Stats frames (v3) -------------------------------------------------------

/// One endpoint's stats row as it travels on the wire — the subset of
/// serve::EndpointStats a router can aggregate across shards without
/// coupling the codec to the gateway's full stats surface.
struct WireEndpointStats {
  std::string endpoint;
  std::string model_name;
  int64_t queue_depth = 0;
  int64_t lifetime_submitted = 0;
  int64_t lifetime_completed = 0;
  int64_t lifetime_rejected = 0;
  int64_t shed_deadline = 0;
  int64_t shed_capacity = 0;
  int64_t expired_in_queue = 0;
  int64_t degraded = 0;
  int64_t swaps = 0;
  bool degraded_now = false;
  double qps = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
};

/// What a kStatsResponse frame carries: one row per deployed endpoint.
struct WireStatsSnapshot {
  std::vector<WireEndpointStats> endpoints;
};

/// An empty-payload stats probe.
std::vector<uint8_t> EncodeStatsRequest();
DecodeStatus DecodeStatsRequest(const std::vector<uint8_t>& frame);

std::vector<uint8_t> EncodeStatsResponse(const WireStatsSnapshot& snapshot);
DecodeStatus DecodeStatsResponse(const std::vector<uint8_t>& frame,
                                 WireStatsSnapshot* snapshot);

// --- Itinerary frames (v4) ---------------------------------------------------

/// Decode caps for itinerary frames: a response may carry at most
/// kMaxItineraryPlans plans of at most plan::kMaxItineraryStops stops each
/// (the planner's own k_stops cap), so a corrupt count can never allocate
/// unboundedly.
inline constexpr uint32_t kMaxItineraryPlans = 64;

/// Encodes a k-stop trip-planning request addressed to the named gateway
/// endpoint, always as a version-4 frame (the lowest version that can
/// represent it). The endpoint cap is kMaxEndpointNameLen, as for
/// recommendation requests.
std::vector<uint8_t> EncodeItineraryRequest(
    const std::string& endpoint, const plan::ItineraryRequest& request);

/// Strict inverse: on kOk, *endpoint and *request hold exactly what was
/// encoded. Out-of-range flag bytes, an unknown search mode, a k_stops
/// outside [0, plan::kMaxItineraryStops] and every header violation are
/// rejected with the usual statuses. When non-null, *wire_version reports
/// the frame's version (always 4 today), mirroring the request decoder.
DecodeStatus DecodeItineraryRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    plan::ItineraryRequest* request,
                                    uint32_t* wire_version = nullptr);

std::vector<uint8_t> EncodeItineraryResponse(
    const plan::ItineraryResponse& response);

DecodeStatus DecodeItineraryResponse(const std::vector<uint8_t>& frame,
                                     plan::ItineraryResponse* response);

}  // namespace tspn::serve

#endif  // TSPN_SERVE_CODEC_H_
