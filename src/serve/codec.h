#ifndef TSPN_SERVE_CODEC_H_
#define TSPN_SERVE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/recommend.h"

namespace tspn::serve {

/// Versioned binary wire protocol for recommendation traffic — the seam a
/// socket front-end will plug into. Every frame is
///
///   uint32  magic          "TSWP" (0x50575354)
///   uint32  wire version   kWireVersion
///   uint8   frame type     FrameType
///   uint32  payload bytes  (exactly what follows; nothing may trail it)
///   ...     payload        POD fields via common::ByteWriter/ByteReader
///
/// Decoders are strict: truncated buffers, wrong magic, versions newer than
/// this build, unknown frame types, payload-length mismatches and trailing
/// garbage are all rejected with a specific DecodeStatus instead of a crash
/// or a partially filled struct (outputs are untouched on failure).
inline constexpr uint32_t kWireMagic = 0x50575354;  // "TSWP"
inline constexpr uint32_t kWireVersion = 1;

/// Longest endpoint name a request frame may carry. Gateway::Deploy
/// enforces the same cap, so every deployable endpoint is addressable over
/// the wire.
inline constexpr uint32_t kMaxEndpointNameLen = 256;

enum class FrameType : uint8_t {
  kRequest = 1,   ///< endpoint name + eval::RecommendRequest
  kResponse = 2,  ///< eval::RecommendResponse
  kError = 3,     ///< human-readable error message
};

enum class DecodeStatus : uint8_t {
  kOk = 0,
  kTruncated,        ///< buffer ends before the header or payload does
  kBadMagic,         ///< first word is not kWireMagic
  kFutureVersion,    ///< frame written by a newer wire version
  kWrongFrameType,   ///< well-formed frame of a different FrameType
  kMalformedPayload, ///< payload fields inconsistent or over their limits
  kTrailingGarbage,  ///< bytes remain after the declared payload
};

/// Human-readable status name ("kOk", "kTruncated", ...), for logs/errors.
const char* DecodeStatusName(DecodeStatus status);

/// Peeks at a well-formed frame's type without decoding the payload.
/// Returns kOk and sets *type when the header is valid and the payload
/// length matches the buffer.
DecodeStatus PeekFrameType(const std::vector<uint8_t>& frame, FrameType* type);

// --- Request frames ----------------------------------------------------------

/// Encodes `request` addressed to the named gateway endpoint. The name must
/// respect kMaxEndpointNameLen — the encoder does not truncate, so a longer
/// name produces a frame the strict decoder rejects (Gateway::Deploy
/// enforces the same cap, so no deployable endpoint can hit this).
std::vector<uint8_t> EncodeRecommendRequest(const std::string& endpoint,
                                            const eval::RecommendRequest& request);

/// Strict inverse of EncodeRecommendRequest. On kOk, *endpoint and *request
/// hold exactly what was encoded (bit-identical constraints included).
DecodeStatus DecodeRecommendRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    eval::RecommendRequest* request);

// --- Response frames ---------------------------------------------------------

std::vector<uint8_t> EncodeRecommendResponse(const eval::RecommendResponse& response);

DecodeStatus DecodeRecommendResponse(const std::vector<uint8_t>& frame,
                                     eval::RecommendResponse* response);

// --- Error frames ------------------------------------------------------------

/// What Gateway::ServeFrame returns instead of a response when the request
/// frame is invalid or the endpoint/model fails.
std::vector<uint8_t> EncodeErrorFrame(const std::string& message);

DecodeStatus DecodeErrorFrame(const std::vector<uint8_t>& frame,
                              std::string* message);

}  // namespace tspn::serve

#endif  // TSPN_SERVE_CODEC_H_
