#include "serve/codec.h"

#include "common/binary_io.h"

namespace tspn::serve {

namespace {

/// Sanity caps on variable-length payload fields, so a corrupt count can
/// never turn into a multi-gigabyte allocation. (The endpoint-name cap is
/// kMaxEndpointNameLen in the header — Gateway::Deploy enforces it too.)
constexpr uint32_t kMaxCategories = 1u << 20;
constexpr uint32_t kMaxItems = 1u << 20;
constexpr uint32_t kMaxErrorLen = 4096;
constexpr uint32_t kMaxStatsEndpoints = 4096;

/// Starts a frame at the given wire version, returning the offset of the
/// payload-length field so FinishFrame can back-patch it once the payload
/// size is known. Encoders pass the lowest version that can represent the
/// frame (header comment), which is why the version is a parameter and not
/// always kWireVersion.
size_t BeginFrame(common::ByteWriter& w, FrameType type, uint32_t version) {
  w.Pod(kWireMagic);
  w.Pod(version);
  w.Pod(static_cast<uint8_t>(type));
  const size_t length_offset = w.size();
  w.Pod(static_cast<uint32_t>(0));  // patched by FinishFrame
  return length_offset;
}

void FinishFrame(common::ByteWriter& w, size_t length_offset) {
  w.PatchPod(length_offset,
             static_cast<uint32_t>(w.size() - length_offset - sizeof(uint32_t)));
}

/// Validates the frame header against `want` and leaves `reader` positioned
/// at the payload. On kOk the payload occupies exactly the rest of the
/// buffer (trailing bytes after the declared payload are rejected here;
/// under-consumption within the payload is caught by the callers). When
/// non-null, *version_out reports the frame's wire version so payload
/// decoders know which optional fields to expect.
DecodeStatus OpenFrame(common::ByteReader& reader, FrameType want,
                       uint32_t* version_out = nullptr) {
  uint32_t magic = 0;
  if (!reader.Pod(&magic)) return DecodeStatus::kTruncated;
  if (magic != kWireMagic) return DecodeStatus::kBadMagic;
  uint32_t version = 0;
  if (!reader.Pod(&version)) return DecodeStatus::kTruncated;
  if (version > kWireVersion) return DecodeStatus::kFutureVersion;
  if (version < 1) return DecodeStatus::kMalformedPayload;
  uint8_t type = 0;
  if (!reader.Pod(&type)) return DecodeStatus::kTruncated;
  uint32_t payload_len = 0;
  if (!reader.Pod(&payload_len)) return DecodeStatus::kTruncated;
  if (reader.Remaining() < payload_len) return DecodeStatus::kTruncated;
  if (reader.Remaining() > payload_len) return DecodeStatus::kTrailingGarbage;
  const bool known_v1 = type == static_cast<uint8_t>(FrameType::kRequest) ||
                        type == static_cast<uint8_t>(FrameType::kResponse) ||
                        type == static_cast<uint8_t>(FrameType::kError);
  // The v3 control frames may only appear in v3+ frames: a v1/v2 frame
  // claiming one is malformed, exactly as a v2-era decoder would judge it.
  const bool known_v3 = type == static_cast<uint8_t>(FrameType::kPing) ||
                        type == static_cast<uint8_t>(FrameType::kPong) ||
                        type == static_cast<uint8_t>(FrameType::kStatsRequest) ||
                        type == static_cast<uint8_t>(FrameType::kStatsResponse);
  // Likewise the v4 itinerary frames: a v1–v3 frame claiming one is
  // malformed, exactly as a v3-era decoder would judge it.
  const bool known_v4 =
      type == static_cast<uint8_t>(FrameType::kItineraryRequest) ||
      type == static_cast<uint8_t>(FrameType::kItineraryResponse);
  if (!known_v1 && !(known_v3 && version >= 3) && !(known_v4 && version >= 4)) {
    return DecodeStatus::kMalformedPayload;
  }
  if (type != static_cast<uint8_t>(want)) return DecodeStatus::kWrongFrameType;
  if (version_out != nullptr) *version_out = version;
  return DecodeStatus::kOk;
}

bool ReadCategoryList(common::ByteReader& reader, std::vector<int32_t>* out) {
  uint32_t count = 0;
  if (!reader.Pod(&count) || count > kMaxCategories) return false;
  // A corrupt count must fail before it allocates: the payload cannot hold
  // more entries than it has bytes left.
  if (static_cast<size_t>(count) * sizeof(int32_t) > reader.Remaining()) {
    return false;
  }
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.Pod(&(*out)[i])) return false;
  }
  return true;
}

void WriteCategoryList(common::ByteWriter& w, const std::vector<int32_t>& list) {
  w.Pod(static_cast<uint32_t>(list.size()));
  for (int32_t cat : list) w.Pod(cat);
}

/// Shared body of both request encoders: `admission` non-null appends the
/// v2 trailing fields.
std::vector<uint8_t> EncodeRequestImpl(const std::string& endpoint,
                                       const eval::RecommendRequest& request,
                                       const AdmissionClass* admission) {
  common::ByteWriter w;
  const size_t length_offset =
      BeginFrame(w, FrameType::kRequest, admission != nullptr ? 2u : 1u);
  w.String(endpoint);
  w.Pod(request.sample.user);
  w.Pod(request.sample.traj);
  w.Pod(request.sample.prefix_len);
  w.Pod(request.top_n);
  const eval::CandidateConstraints& c = request.constraints;
  w.Pod(c.geo_center.lat);
  w.Pod(c.geo_center.lon);
  w.Pod(c.geo_radius_km);
  WriteCategoryList(w, c.allowed_categories);
  WriteCategoryList(w, c.blocked_categories);
  w.Pod(static_cast<uint8_t>(c.exclude_visited ? 1 : 0));
  w.Pod(c.open_at);
  w.Pod(c.min_open_weight);
  if (admission != nullptr) {
    w.Pod(admission->deadline_ms);
    w.Pod(static_cast<uint8_t>(admission->priority));
  }
  FinishFrame(w, length_offset);
  return w.Take();
}

}  // namespace

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "kOk";
    case DecodeStatus::kTruncated: return "kTruncated";
    case DecodeStatus::kBadMagic: return "kBadMagic";
    case DecodeStatus::kFutureVersion: return "kFutureVersion";
    case DecodeStatus::kWrongFrameType: return "kWrongFrameType";
    case DecodeStatus::kMalformedPayload: return "kMalformedPayload";
    case DecodeStatus::kTrailingGarbage: return "kTrailingGarbage";
  }
  return "kUnknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "kGeneric";
    case ErrorCode::kBadFrame: return "kBadFrame";
    case ErrorCode::kUnknownEndpoint: return "kUnknownEndpoint";
    case ErrorCode::kInvalidRequest: return "kInvalidRequest";
    case ErrorCode::kShedCapacity: return "kShedCapacity";
    case ErrorCode::kShedDeadline: return "kShedDeadline";
    case ErrorCode::kExpired: return "kExpired";
    case ErrorCode::kModelFailure: return "kModelFailure";
    case ErrorCode::kTransport: return "kTransport";
    case ErrorCode::kShardUnavailable: return "kShardUnavailable";
    case ErrorCode::kRateLimited: return "kRateLimited";
  }
  return "kUnknown";
}

DecodeStatus PeekFrameType(const std::vector<uint8_t>& frame, FrameType* type) {
  // OpenFrame with each type in turn: the first non-kWrongFrameType result
  // is the header's verdict; kWrongFrameType against kRequest means the
  // header is valid but of another type, so retry identifies it.
  for (FrameType candidate :
       {FrameType::kRequest, FrameType::kResponse, FrameType::kError,
        FrameType::kPing, FrameType::kPong, FrameType::kStatsRequest,
        FrameType::kStatsResponse, FrameType::kItineraryRequest,
        FrameType::kItineraryResponse}) {
    common::ByteReader r(frame);
    const DecodeStatus status = OpenFrame(r, candidate);
    if (status == DecodeStatus::kOk) {
      *type = candidate;
      return DecodeStatus::kOk;
    }
    if (status != DecodeStatus::kWrongFrameType) return status;
  }
  return DecodeStatus::kMalformedPayload;
}

std::vector<uint8_t> EncodeRecommendRequest(const std::string& endpoint,
                                            const eval::RecommendRequest& request) {
  return EncodeRequestImpl(endpoint, request, nullptr);
}

std::vector<uint8_t> EncodeRecommendRequest(const std::string& endpoint,
                                            const eval::RecommendRequest& request,
                                            const AdmissionClass& admission) {
  return EncodeRequestImpl(endpoint, request, &admission);
}

DecodeStatus DecodeRecommendRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    eval::RecommendRequest* request) {
  return DecodeRecommendRequest(frame, endpoint, request, nullptr, nullptr);
}

DecodeStatus DecodeRecommendRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    eval::RecommendRequest* request,
                                    AdmissionClass* admission,
                                    uint32_t* wire_version) {
  common::ByteReader reader(frame);
  uint32_t version = 0;
  const DecodeStatus header = OpenFrame(reader, FrameType::kRequest, &version);
  if (header != DecodeStatus::kOk) return header;

  std::string name;
  eval::RecommendRequest decoded;
  if (!reader.String(&name, kMaxEndpointNameLen)) {
    return DecodeStatus::kMalformedPayload;
  }
  eval::CandidateConstraints& c = decoded.constraints;
  uint8_t exclude_visited = 0;
  const bool ok = reader.Pod(&decoded.sample.user) &&
                  reader.Pod(&decoded.sample.traj) &&
                  reader.Pod(&decoded.sample.prefix_len) &&
                  reader.Pod(&decoded.top_n) && reader.Pod(&c.geo_center.lat) &&
                  reader.Pod(&c.geo_center.lon) && reader.Pod(&c.geo_radius_km) &&
                  ReadCategoryList(reader, &c.allowed_categories) &&
                  ReadCategoryList(reader, &c.blocked_categories) &&
                  reader.Pod(&exclude_visited) && reader.Pod(&c.open_at) &&
                  reader.Pod(&c.min_open_weight);
  if (!ok) return DecodeStatus::kMalformedPayload;
  if (exclude_visited > 1) return DecodeStatus::kMalformedPayload;
  c.exclude_visited = exclude_visited == 1;
  // Strictly versioned tail: a v2 frame must carry both admission fields
  // (valid), a v1 frame must carry neither. Either way nothing may remain.
  AdmissionClass decoded_admission;
  if (version >= 2) {
    uint8_t priority = 0;
    if (!reader.Pod(&decoded_admission.deadline_ms) || !reader.Pod(&priority)) {
      return DecodeStatus::kMalformedPayload;
    }
    if (decoded_admission.deadline_ms < 0 || priority > kMaxPriority) {
      return DecodeStatus::kMalformedPayload;
    }
    decoded_admission.priority = static_cast<Priority>(priority);
  }
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;

  *endpoint = std::move(name);
  *request = std::move(decoded);
  if (admission != nullptr) *admission = decoded_admission;
  if (wire_version != nullptr) *wire_version = version;
  return DecodeStatus::kOk;
}

std::vector<uint8_t> EncodeRecommendResponse(const eval::RecommendResponse& response) {
  common::ByteWriter w;
  // Response payloads gained nothing in v2, so responses stay version 1 on
  // the wire — the lowest-representable-version rule that keeps replies to
  // v1 clients bit-identical across the protocol bump.
  const size_t length_offset = BeginFrame(w, FrameType::kResponse, 1);
  w.Pod(static_cast<uint32_t>(response.items.size()));
  for (const eval::ScoredPoi& item : response.items) {
    w.Pod(item.poi_id);
    w.Pod(item.score);
    w.Pod(item.tile_index);
  }
  w.Pod(response.stages_used);
  w.Pod(response.tiles_screened);
  FinishFrame(w, length_offset);
  return w.Take();
}

DecodeStatus DecodeRecommendResponse(const std::vector<uint8_t>& frame,
                                     eval::RecommendResponse* response) {
  common::ByteReader reader(frame);
  const DecodeStatus header = OpenFrame(reader, FrameType::kResponse);
  if (header != DecodeStatus::kOk) return header;

  eval::RecommendResponse decoded;
  uint32_t count = 0;
  if (!reader.Pod(&count) || count > kMaxItems) {
    return DecodeStatus::kMalformedPayload;
  }
  // Bytes-remaining check before the allocation, so a corrupt count in a
  // tiny frame cannot trigger a multi-megabyte resize.
  constexpr size_t kItemBytes =
      sizeof(int64_t) + sizeof(float) + sizeof(int64_t);
  if (static_cast<size_t>(count) * kItemBytes > reader.Remaining()) {
    return DecodeStatus::kMalformedPayload;
  }
  decoded.items.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    eval::ScoredPoi& item = decoded.items[i];
    if (!reader.Pod(&item.poi_id) || !reader.Pod(&item.score) ||
        !reader.Pod(&item.tile_index)) {
      return DecodeStatus::kMalformedPayload;
    }
  }
  if (!reader.Pod(&decoded.stages_used) || !reader.Pod(&decoded.tiles_screened)) {
    return DecodeStatus::kMalformedPayload;
  }
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;

  *response = std::move(decoded);
  return DecodeStatus::kOk;
}

std::vector<uint8_t> EncodeErrorFrame(const std::string& message) {
  common::ByteWriter w;
  const size_t length_offset = BeginFrame(w, FrameType::kError, 1);
  w.String(message.size() > kMaxErrorLen ? message.substr(0, kMaxErrorLen)
                                         : message);
  FinishFrame(w, length_offset);
  return w.Take();
}

std::vector<uint8_t> EncodeErrorFrame(const std::string& message,
                                      ErrorCode code) {
  common::ByteWriter w;
  // Codes 0..8 keep the v2 layout a v2-era client decodes; the router-tier
  // codes (9+) did not exist in v2 and must travel at v3 — the lowest
  // version that can represent them.
  const uint32_t version =
      static_cast<uint8_t>(code) > kMaxErrorCodeV2 ? 3u : 2u;
  const size_t length_offset = BeginFrame(w, FrameType::kError, version);
  w.String(message.size() > kMaxErrorLen ? message.substr(0, kMaxErrorLen)
                                         : message);
  w.Pod(static_cast<uint8_t>(code));
  FinishFrame(w, length_offset);
  return w.Take();
}

DecodeStatus DecodeErrorFrame(const std::vector<uint8_t>& frame,
                              std::string* message) {
  return DecodeErrorFrame(frame, message, nullptr);
}

DecodeStatus DecodeErrorFrame(const std::vector<uint8_t>& frame,
                              std::string* message, ErrorCode* code) {
  common::ByteReader reader(frame);
  uint32_t version = 0;
  const DecodeStatus header = OpenFrame(reader, FrameType::kError, &version);
  if (header != DecodeStatus::kOk) return header;
  std::string decoded;
  if (!reader.String(&decoded, kMaxErrorLen)) {
    return DecodeStatus::kMalformedPayload;
  }
  ErrorCode decoded_code = ErrorCode::kGeneric;
  if (version >= 2) {
    uint8_t raw = 0;
    // A v2 frame may not smuggle a v3-era code: the cap is per-version.
    const uint8_t cap = version >= 3 ? kMaxErrorCode : kMaxErrorCodeV2;
    if (!reader.Pod(&raw) || raw > cap) {
      return DecodeStatus::kMalformedPayload;
    }
    decoded_code = static_cast<ErrorCode>(raw);
  }
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;
  *message = std::move(decoded);
  if (code != nullptr) *code = decoded_code;
  return DecodeStatus::kOk;
}

namespace {

/// Shared body of the two nonce-echo frames.
std::vector<uint8_t> EncodeNonceFrame(FrameType type, uint64_t nonce) {
  common::ByteWriter w;
  const size_t length_offset = BeginFrame(w, type, 3);
  w.Pod(nonce);
  FinishFrame(w, length_offset);
  return w.Take();
}

DecodeStatus DecodeNonceFrame(const std::vector<uint8_t>& frame,
                              FrameType want, uint64_t* nonce) {
  common::ByteReader reader(frame);
  const DecodeStatus header = OpenFrame(reader, want);
  if (header != DecodeStatus::kOk) return header;
  uint64_t decoded = 0;
  if (!reader.Pod(&decoded)) return DecodeStatus::kMalformedPayload;
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;
  *nonce = decoded;
  return DecodeStatus::kOk;
}

}  // namespace

std::vector<uint8_t> EncodePingFrame(uint64_t nonce) {
  return EncodeNonceFrame(FrameType::kPing, nonce);
}

DecodeStatus DecodePingFrame(const std::vector<uint8_t>& frame,
                             uint64_t* nonce) {
  return DecodeNonceFrame(frame, FrameType::kPing, nonce);
}

std::vector<uint8_t> EncodePongFrame(uint64_t nonce) {
  return EncodeNonceFrame(FrameType::kPong, nonce);
}

DecodeStatus DecodePongFrame(const std::vector<uint8_t>& frame,
                             uint64_t* nonce) {
  return DecodeNonceFrame(frame, FrameType::kPong, nonce);
}

std::vector<uint8_t> EncodeStatsRequest() {
  common::ByteWriter w;
  const size_t length_offset = BeginFrame(w, FrameType::kStatsRequest, 3);
  FinishFrame(w, length_offset);
  return w.Take();
}

DecodeStatus DecodeStatsRequest(const std::vector<uint8_t>& frame) {
  common::ByteReader reader(frame);
  const DecodeStatus header = OpenFrame(reader, FrameType::kStatsRequest);
  if (header != DecodeStatus::kOk) return header;
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;
  return DecodeStatus::kOk;
}

std::vector<uint8_t> EncodeStatsResponse(const WireStatsSnapshot& snapshot) {
  common::ByteWriter w;
  const size_t length_offset = BeginFrame(w, FrameType::kStatsResponse, 3);
  w.Pod(static_cast<uint32_t>(snapshot.endpoints.size()));
  for (const WireEndpointStats& e : snapshot.endpoints) {
    w.String(e.endpoint);
    w.String(e.model_name);
    w.Pod(e.queue_depth);
    w.Pod(e.lifetime_submitted);
    w.Pod(e.lifetime_completed);
    w.Pod(e.lifetime_rejected);
    w.Pod(e.shed_deadline);
    w.Pod(e.shed_capacity);
    w.Pod(e.expired_in_queue);
    w.Pod(e.degraded);
    w.Pod(e.swaps);
    w.Pod(static_cast<uint8_t>(e.degraded_now ? 1 : 0));
    w.Pod(e.qps);
    w.Pod(e.p50_latency_ms);
    w.Pod(e.p95_latency_ms);
  }
  FinishFrame(w, length_offset);
  return w.Take();
}

std::vector<uint8_t> EncodeItineraryRequest(
    const std::string& endpoint, const plan::ItineraryRequest& request) {
  common::ByteWriter w;
  // Itinerary frames did not exist before v4, so v4 is the lowest version
  // that can represent them — they always travel at 4.
  const size_t length_offset = BeginFrame(w, FrameType::kItineraryRequest, 4);
  w.String(endpoint);
  w.Pod(request.start.user);
  w.Pod(request.start.traj);
  w.Pod(request.start.prefix_len);
  w.Pod(request.k_stops);
  w.Pod(request.time_budget_hours);
  w.Pod(request.travel_speed_kmh);
  w.Pod(request.dwell_hours);
  w.Pod(request.start_time);
  w.Pod(static_cast<uint8_t>(request.return_to_start ? 1 : 0));
  w.Pod(request.max_stops_per_category);
  w.Pod(static_cast<uint8_t>(request.enforce_open_hours ? 1 : 0));
  w.Pod(static_cast<uint8_t>(request.mode));
  const eval::CandidateConstraints& c = request.constraints;
  w.Pod(c.geo_center.lat);
  w.Pod(c.geo_center.lon);
  w.Pod(c.geo_radius_km);
  WriteCategoryList(w, c.allowed_categories);
  WriteCategoryList(w, c.blocked_categories);
  w.Pod(static_cast<uint8_t>(c.exclude_visited ? 1 : 0));
  w.Pod(c.open_at);
  w.Pod(c.min_open_weight);
  FinishFrame(w, length_offset);
  return w.Take();
}

DecodeStatus DecodeItineraryRequest(const std::vector<uint8_t>& frame,
                                    std::string* endpoint,
                                    plan::ItineraryRequest* request,
                                    uint32_t* wire_version) {
  common::ByteReader reader(frame);
  uint32_t version = 0;
  const DecodeStatus header =
      OpenFrame(reader, FrameType::kItineraryRequest, &version);
  if (header != DecodeStatus::kOk) return header;

  std::string name;
  plan::ItineraryRequest decoded;
  if (!reader.String(&name, kMaxEndpointNameLen)) {
    return DecodeStatus::kMalformedPayload;
  }
  eval::CandidateConstraints& c = decoded.constraints;
  uint8_t return_to_start = 0;
  uint8_t enforce_open_hours = 0;
  uint8_t mode = 0;
  uint8_t exclude_visited = 0;
  const bool ok =
      reader.Pod(&decoded.start.user) && reader.Pod(&decoded.start.traj) &&
      reader.Pod(&decoded.start.prefix_len) && reader.Pod(&decoded.k_stops) &&
      reader.Pod(&decoded.time_budget_hours) &&
      reader.Pod(&decoded.travel_speed_kmh) &&
      reader.Pod(&decoded.dwell_hours) && reader.Pod(&decoded.start_time) &&
      reader.Pod(&return_to_start) &&
      reader.Pod(&decoded.max_stops_per_category) &&
      reader.Pod(&enforce_open_hours) && reader.Pod(&mode) &&
      reader.Pod(&c.geo_center.lat) && reader.Pod(&c.geo_center.lon) &&
      reader.Pod(&c.geo_radius_km) &&
      ReadCategoryList(reader, &c.allowed_categories) &&
      ReadCategoryList(reader, &c.blocked_categories) &&
      reader.Pod(&exclude_visited) && reader.Pod(&c.open_at) &&
      reader.Pod(&c.min_open_weight);
  if (!ok) return DecodeStatus::kMalformedPayload;
  if (return_to_start > 1 || enforce_open_hours > 1 || exclude_visited > 1 ||
      mode > static_cast<uint8_t>(plan::SearchMode::kMcts)) {
    return DecodeStatus::kMalformedPayload;
  }
  // The planner's own stop cap doubles as the wire cap, so no well-formed
  // frame can make a decoder-side server search an unbounded tree.
  if (decoded.k_stops < 0 || decoded.k_stops > plan::kMaxItineraryStops) {
    return DecodeStatus::kMalformedPayload;
  }
  decoded.return_to_start = return_to_start == 1;
  decoded.enforce_open_hours = enforce_open_hours == 1;
  decoded.mode = static_cast<plan::SearchMode>(mode);
  c.exclude_visited = exclude_visited == 1;
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;

  *endpoint = std::move(name);
  *request = std::move(decoded);
  if (wire_version != nullptr) *wire_version = version;
  return DecodeStatus::kOk;
}

std::vector<uint8_t> EncodeItineraryResponse(
    const plan::ItineraryResponse& response) {
  common::ByteWriter w;
  const size_t length_offset = BeginFrame(w, FrameType::kItineraryResponse, 4);
  w.Pod(static_cast<uint32_t>(response.plans.size()));
  for (const plan::ItineraryPlan& plan : response.plans) {
    w.Pod(static_cast<uint32_t>(plan.stops.size()));
    for (const plan::ItineraryStop& stop : plan.stops) {
      w.Pod(stop.poi_id);
      w.Pod(stop.model_score);
      w.Pod(stop.arrive_hours);
      w.Pod(stop.depart_hours);
      w.Pod(stop.travel_km);
    }
    w.Pod(plan.total_score);
    w.Pod(plan.total_hours);
    w.Pod(plan.total_km);
  }
  w.Pod(response.expansions);
  w.Pod(response.rollouts_scored);
  FinishFrame(w, length_offset);
  return w.Take();
}

DecodeStatus DecodeItineraryResponse(const std::vector<uint8_t>& frame,
                                     plan::ItineraryResponse* response) {
  common::ByteReader reader(frame);
  const DecodeStatus header = OpenFrame(reader, FrameType::kItineraryResponse);
  if (header != DecodeStatus::kOk) return header;

  plan::ItineraryResponse decoded;
  uint32_t plan_count = 0;
  if (!reader.Pod(&plan_count) || plan_count > kMaxItineraryPlans) {
    return DecodeStatus::kMalformedPayload;
  }
  decoded.plans.resize(plan_count);
  constexpr size_t kStopBytes =
      sizeof(int64_t) + sizeof(float) + 3 * sizeof(double);
  for (uint32_t p = 0; p < plan_count; ++p) {
    plan::ItineraryPlan& plan = decoded.plans[p];
    uint32_t stop_count = 0;
    if (!reader.Pod(&stop_count) ||
        stop_count > static_cast<uint32_t>(plan::kMaxItineraryStops)) {
      return DecodeStatus::kMalformedPayload;
    }
    // Bytes-remaining check before the allocation, as for response items.
    if (static_cast<size_t>(stop_count) * kStopBytes > reader.Remaining()) {
      return DecodeStatus::kMalformedPayload;
    }
    plan.stops.resize(stop_count);
    for (uint32_t s = 0; s < stop_count; ++s) {
      plan::ItineraryStop& stop = plan.stops[s];
      if (!reader.Pod(&stop.poi_id) || !reader.Pod(&stop.model_score) ||
          !reader.Pod(&stop.arrive_hours) || !reader.Pod(&stop.depart_hours) ||
          !reader.Pod(&stop.travel_km)) {
        return DecodeStatus::kMalformedPayload;
      }
    }
    if (!reader.Pod(&plan.total_score) || !reader.Pod(&plan.total_hours) ||
        !reader.Pod(&plan.total_km)) {
      return DecodeStatus::kMalformedPayload;
    }
  }
  if (!reader.Pod(&decoded.expansions) ||
      !reader.Pod(&decoded.rollouts_scored)) {
    return DecodeStatus::kMalformedPayload;
  }
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;

  *response = std::move(decoded);
  return DecodeStatus::kOk;
}

DecodeStatus DecodeStatsResponse(const std::vector<uint8_t>& frame,
                                 WireStatsSnapshot* snapshot) {
  common::ByteReader reader(frame);
  const DecodeStatus header = OpenFrame(reader, FrameType::kStatsResponse);
  if (header != DecodeStatus::kOk) return header;
  uint32_t count = 0;
  if (!reader.Pod(&count) || count > kMaxStatsEndpoints) {
    return DecodeStatus::kMalformedPayload;
  }
  WireStatsSnapshot decoded;
  decoded.endpoints.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireEndpointStats& e = decoded.endpoints[i];
    uint8_t degraded_now = 0;
    const bool ok = reader.String(&e.endpoint, kMaxEndpointNameLen) &&
                    reader.String(&e.model_name, kMaxEndpointNameLen) &&
                    reader.Pod(&e.queue_depth) &&
                    reader.Pod(&e.lifetime_submitted) &&
                    reader.Pod(&e.lifetime_completed) &&
                    reader.Pod(&e.lifetime_rejected) &&
                    reader.Pod(&e.shed_deadline) &&
                    reader.Pod(&e.shed_capacity) &&
                    reader.Pod(&e.expired_in_queue) &&
                    reader.Pod(&e.degraded) && reader.Pod(&e.swaps) &&
                    reader.Pod(&degraded_now) && reader.Pod(&e.qps) &&
                    reader.Pod(&e.p50_latency_ms) &&
                    reader.Pod(&e.p95_latency_ms);
    if (!ok || degraded_now > 1) return DecodeStatus::kMalformedPayload;
    e.degraded_now = degraded_now == 1;
  }
  if (reader.Remaining() != 0) return DecodeStatus::kTrailingGarbage;
  *snapshot = std::move(decoded);
  return DecodeStatus::kOk;
}

}  // namespace tspn::serve
