#ifndef TSPN_SERVE_GATEWAY_H_
#define TSPN_SERVE_GATEWAY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"
#include "eval/model_registry.h"
#include "eval/recommend.h"
#include "plan/itinerary.h"
#include "serve/admission.h"
#include "serve/codec.h"
#include "serve/frame_handler.h"
#include "serve/inference_engine.h"

namespace tspn::serve {

/// Hysteresis-guarded graceful-degradation policy, evaluated per endpoint
/// against its engine's queue depth (docs/serving.md "Graceful
/// degradation"). The endpoint enters the degraded state when depth rises
/// to `degrade_high_pct` percent of the queue capacity and leaves it only
/// once depth falls back to `degrade_low_pct` percent — the gap prevents
/// flapping at the threshold. While degraded, requests are served shallower
/// (top_n clamped, stage-1 screen widening capped) and the lowest classes
/// are shed outright. Environment overrides (FromEnv):
///
///   TSPN_SERVE_DEGRADE_HIGH_PCT   enter degraded at this % of queue depth (75)
///   TSPN_SERVE_DEGRADE_LOW_PCT    leave degraded at this % of queue depth (25)
///   TSPN_SERVE_DEGRADED_TOP_N     top_n cap while degraded; 0 = no cap    (5)
///   TSPN_SERVE_DEGRADED_MAX_TILES stage-1 screen cap while degraded;
///                                 0 = no cap                              (64)
///   TSPN_SERVE_SHED_PRIORITY      while degraded, shed classes <= this
///                                 value; -1 = never shed by class         (0)
struct OverloadPolicy {
  int64_t degrade_high_pct = 75;
  int64_t degrade_low_pct = 25;
  int64_t degraded_top_n = 5;
  int64_t degraded_max_tiles = 64;
  /// Numeric Priority threshold (serve/admission.h): 0 sheds background
  /// traffic while degraded, 1 also sheds bulk, -1 sheds nothing by class.
  int64_t shed_priority_at_or_below = 0;

  static OverloadPolicy FromEnv();
};

/// Everything needed to stand up one named endpoint: which registry model
/// to build, over which dataset, from which checkpoint, with which knobs.
struct DeployConfig {
  /// eval::ModelRegistry name ("TSPN-RA", "MC", ...). Unknown names fail
  /// the deploy.
  std::string model_name;

  /// Dataset the model is constructed over; shared so many endpoints (and
  /// the caller) can serve the same city without copies.
  std::shared_ptr<const data::CityDataset> dataset;

  /// Checkpoint restored into the freshly built model. Empty deploys the
  /// model untrained (useful for tests); a non-empty path that fails to
  /// load fails the deploy — a gateway must never silently serve garbage
  /// weights.
  std::string checkpoint_path;

  /// eval::ModelOptions as string knobs ("dm", "seed", "image_resolution"),
  /// parsed by ModelOptions::FromKeyValues — unknown keys fail the deploy
  /// loudly rather than falling back to defaults.
  std::map<std::string, std::string> model_options;

  /// Per-endpoint InferenceEngine sizing (workers, queue depth, coalescing).
  EngineOptions engine_options = EngineOptions::FromEnv();

  /// Per-endpoint overload-degradation policy (thresholds, degraded caps,
  /// class shedding).
  OverloadPolicy overload = OverloadPolicy::FromEnv();
};

/// Counters of the continual-training pipeline feeding an endpoint
/// (src/train/continual_trainer.h), surfaced through EndpointStats so one
/// stats scrape answers both "how is serving" and "is the trainer alive and
/// promoting". The serve layer does not depend on train/: a trainer
/// registers a telemetry provider callback via Gateway::AttachTrainer and
/// the gateway polls it at snapshot time.
struct TrainerTelemetry {
  bool attached = false;          ///< a trainer is registered on the endpoint
  int64_t events_consumed = 0;    ///< stream events drained
  int64_t samples_trained = 0;    ///< online samples the model stepped on
  int64_t samples_skipped = 0;    ///< cold-start / unresolvable samples
  int64_t checkpoints = 0;        ///< candidate checkpoints written
  int64_t gate_passes = 0;
  int64_t gate_rejects = 0;
  int64_t promotions = 0;         ///< gate pass + SwapAsync confirmed kLive
  int64_t promote_failures = 0;   ///< swap failed or timed out after a pass
  std::string last_checkpoint;    ///< newest candidate checkpoint path
};

using TrainerTelemetryFn = std::function<TrainerTelemetry()>;

/// Point-in-time serving counters for one endpoint, split into two scopes
/// (docs/serving.md "Window vs lifetime" spells out the semantics):
///
///  * the *window* — the current deployment only; resets on every swap
///    (engine counters, window_uptime_seconds, window_qps);
///  * the *lifetime* — cumulative since the endpoint's first Deploy,
///    carried across swaps (lifetime_* fields and the headline `qps`).
///
/// A retiring deployment's counters are folded into the lifetime totals
/// eagerly at swap time, then topped up with the post-swap drain's delta
/// when the old generation finishes tearing down — so right after a swap
/// the lifetime counters lag by at most the old generation's still-in-
/// flight requests, never by its whole history. Undeploy ends the
/// lifetime; a later Deploy of the same name starts a fresh one.
struct EndpointStats {
  std::string endpoint;
  std::string model_name;
  std::string checkpoint_path;  ///< checkpoint currently serving
  int64_t swaps = 0;            ///< hot swaps since Deploy

  // -- window: the current deployment --
  int64_t queue_depth = 0;      ///< requests queued, not yet being served
  double window_uptime_seconds = 0.0;  ///< since this deployment went live
  double window_qps = 0.0;      ///< completed / uptime of current deployment
  EngineStats engine;           ///< queue/batch/latency counters (window)

  // -- lifetime: cumulative across swaps --
  double uptime_seconds = 0.0;  ///< since the endpoint's first Deploy
  double qps = 0.0;             ///< lifetime_completed / uptime_seconds —
                                ///< does NOT reset on swap
  int64_t lifetime_submitted = 0;
  int64_t lifetime_completed = 0;
  int64_t lifetime_rejected = 0;
  int64_t lifetime_batches = 0;

  // -- overload robustness (lifetime scope) --
  int64_t shed_deadline = 0;     ///< refused: deadline not plausibly meetable
  int64_t shed_capacity = 0;     ///< refused/evicted at capacity + class sheds
  int64_t expired_in_queue = 0;  ///< accepted, expired before a batch slot
  int64_t degraded = 0;          ///< requests served with degraded shaping
  bool degraded_now = false;     ///< endpoint currently in the degraded state

  /// Continual-trainer counters; attached == false when no trainer is
  /// registered on the endpoint.
  TrainerTelemetry trainer;
};

/// Observable deployment state of an endpoint name, polled via
/// Gateway::GetDeployStatus. The record of the most recent async operation
/// is authoritative while one exists: kBuilding during the background
/// build, then kLive or kFailed — a failed SwapAsync stays visible as
/// kFailed even though the endpoint keeps serving the old weights.
/// Successful synchronous Deploy/Swap/Undeploy calls supersede (erase) the
/// async record, after which a live endpoint reports kLive and anything
/// else kNone.
enum class DeployState : uint8_t {
  kNone = 0,
  kBuilding,
  kLive,
  kFailed,
};

struct DeployStatus {
  DeployState state = DeployState::kNone;
  std::string error;  ///< non-empty exactly when state == kFailed
};

const char* DeployStateName(DeployState state);

/// Aggregate gateway snapshot: fleet totals plus one row per endpoint.
/// Totals are lifetime-scoped (they no longer dip when an endpoint swaps).
struct GatewayStats {
  int64_t endpoints = 0;
  int64_t total_submitted = 0;
  int64_t total_completed = 0;
  int64_t total_rejected = 0;
  int64_t total_swaps = 0;
  int64_t total_shed_deadline = 0;
  int64_t total_shed_capacity = 0;
  int64_t total_expired_in_queue = 0;
  int64_t total_degraded = 0;
  double total_qps = 0.0;  ///< sum of per-endpoint lifetime qps
  std::vector<EndpointStats> per_endpoint;  ///< sorted by endpoint name
};

/// Multi-tenant serving gateway: a thread-safe router from endpoint names
/// to {model, InferenceEngine} deployments, so several models — different
/// cities, TSPN-RA next to baselines, A/B candidates — serve side by side
/// in one process.
///
/// Lifecycle: Deploy() builds the model through eval::ModelRegistry,
/// restores the checkpoint, and stands up a dedicated engine; Swap()
/// hot-reloads a new checkpoint with zero downtime; Undeploy() drains and
/// tears down. Submit() routes a structured request to the endpoint's
/// engine; ServeFrame() does the same for a wire-encoded frame
/// (serve/codec.h) — the seam a socket front-end plugs into.
///
/// Hot-swap semantics (epoch via shared_ptr): each endpoint holds its
/// current deployment behind a shared_ptr that submitters copy under the
/// gateway mutex. Swap() builds the replacement *outside* the lock, then
/// publishes it with one pointer swap — new submits instantly land on the
/// new model while in-flight requests finish on the old deployment, which
/// is destroyed (draining its queue first, so no future is ever dropped)
/// when the last submitter releases it. A swap to the same checkpoint is
/// response-bit-identical: the registry rebuilds the same weights from the
/// same options and checkpoint bytes.
class Gateway : public FrameHandler {
 public:
  Gateway() = default;
  ~Gateway() override;

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Creates the named endpoint. Fails (false, *error set) on a duplicate
  /// endpoint name, unknown model name, bad model option, missing dataset,
  /// or a checkpoint that does not load cleanly.
  bool Deploy(const std::string& endpoint, const DeployConfig& config,
              std::string* error = nullptr);

  /// Hot-reloads the endpoint onto `checkpoint_path` (same model, dataset
  /// and knobs as the original Deploy). In-flight requests finish on the
  /// old weights; requests submitted after Swap returns see the new ones.
  bool Swap(const std::string& endpoint, const std::string& checkpoint_path,
            std::string* error = nullptr);

  /// Non-blocking Deploy: argument errors (empty/over-long/duplicate name)
  /// fail immediately, then the model build + checkpoint restore runs on a
  /// background thread while the caller keeps going. Until the build lands,
  /// the endpoint name is reserved (a second Deploy/DeployAsync fails) but
  /// not serving: submits are rejected and GetDeployStatus reports
  /// kBuilding. On success the endpoint goes live exactly as if Deploy had
  /// returned; on failure the name is released and GetDeployStatus reports
  /// kFailed with the builder's error until the name is deployed again.
  bool DeployAsync(const std::string& endpoint, const DeployConfig& config,
                   std::string* error = nullptr);

  /// Non-blocking Swap: the replacement builds on a background thread while
  /// the endpoint keeps serving the old weights (GetDeployStatus reports
  /// kBuilding meanwhile). The handoff rules are Swap's: the install aborts
  /// (kFailed) if the endpoint was undeployed or re-deployed during the
  /// build. One async operation per endpoint at a time.
  bool SwapAsync(const std::string& endpoint,
                 const std::string& checkpoint_path,
                 std::string* error = nullptr);

  /// Polls the endpoint name's deployment state (see DeployState). The
  /// caller loop for async ops is: DeployAsync/SwapAsync, then poll until
  /// the state leaves kBuilding.
  DeployStatus GetDeployStatus(const std::string& endpoint) const;

  /// Removes the endpoint, serving everything already queued before the
  /// teardown completes. Subsequent submits to the name fail.
  bool Undeploy(const std::string& endpoint, std::string* error = nullptr);

  /// Routes the request to the endpoint's engine at the default admission
  /// class. Unknown endpoints yield a future holding std::runtime_error
  /// (never a crash).
  std::future<eval::RecommendResponse> Submit(
      const std::string& endpoint, const eval::RecommendRequest& request);

  /// Class-aware submit: applies the endpoint's overload policy (degraded
  /// shaping, class shedding) and the engine's admission control. Shed
  /// requests yield a future holding ShedError.
  std::future<eval::RecommendResponse> Submit(
      const std::string& endpoint, const eval::RecommendRequest& request,
      const AdmissionClass& admission);

  /// Plans a constrained k-stop itinerary on the endpoint's model
  /// (docs/itinerary.md). Blocking — each beam/MCTS expansion wave rides
  /// the endpoint's engine, so rollouts coalesce with live traffic and
  /// respect its backpressure. False with *error set on an unknown
  /// endpoint or an invalid request ("invalid request: ..." prefix).
  bool PlanItinerary(const std::string& endpoint,
                     const plan::ItineraryRequest& request,
                     plan::ItineraryResponse* out,
                     std::string* error = nullptr);

  /// Wire entry point: decodes a request frame (which names its endpoint),
  /// serves it, and returns an encoded response frame — or an encoded
  /// error frame for malformed/unknown/failed requests. Ping frames come
  /// back as pongs and stats requests as a stats snapshot (v3 control
  /// surface), so a shard process answers health and telemetry probes on
  /// the same connection that serves traffic. Never throws.
  ///
  /// DEPRECATED for network front-ends: this call parks the calling thread
  /// on the response future (one blocked thread per in-flight frame). New
  /// socket-facing code should route frames through serve::FrameServer
  /// (src/serve/frame_server.h), which rides ServeFrameAsync instead; this
  /// synchronous form remains for tests and parity baselines.
  std::vector<uint8_t> ServeFrame(const std::vector<uint8_t>& request_frame);

  /// A reply frame handed to the continuation of ServeFrameAsync: a
  /// response frame on success, an error frame otherwise.
  using FrameCallback = FrameHandler::FrameCallback;

  /// Non-blocking wire entry point — what FrameServer drives. Decodes and
  /// validates on the calling thread, then submits through the endpoint
  /// engine's callback hook; `done` is invoked exactly once with the reply
  /// frame, either synchronously (decode error, unknown endpoint, invalid
  /// request, overloaded queue — all encoded as error frames) or later on a
  /// serving worker thread. A concurrent Swap/Undeploy cannot strand the
  /// request: a deployment drains its queue — running every accepted
  /// continuation — before it is torn down. Never throws, never blocks.
  void ServeFrameAsync(const std::vector<uint8_t>& request_frame,
                       FrameCallback done);

  /// FrameHandler: a gateway fronted by a FrameServer serves frames
  /// directly (the single-process deployment shape).
  void HandleFrameAsync(const std::vector<uint8_t>& frame,
                        FrameCallback done) override {
    ServeFrameAsync(frame, std::move(done));
  }

  bool Has(const std::string& endpoint) const;

  /// Deployed endpoint names, sorted.
  std::vector<std::string> Endpoints() const;

  /// Registers a continual trainer's telemetry provider on an endpoint; the
  /// callback is polled (outside the gateway mutex) whenever stats are
  /// snapshotted, so trainer counters ride the existing stats surface. One
  /// provider per endpoint; a second Attach replaces the first. The
  /// callback must be thread-safe and must outlive the registration —
  /// detach before destroying the trainer.
  void AttachTrainer(const std::string& endpoint, TrainerTelemetryFn provider);
  void DetachTrainer(const std::string& endpoint);

  /// Stats for one endpoint; false when it is not deployed.
  bool GetEndpointStats(const std::string& endpoint, EndpointStats* out) const;

  /// Aggregate snapshot across every deployed endpoint.
  GatewayStats Snapshot() const;

  /// The Snapshot projected onto the wire stats rows a kStatsResponse
  /// frame carries — what this process reports when a router polls it.
  WireStatsSnapshot WireSnapshot() const;

 private:
  /// Per-endpoint counters that survive swaps. Shared (via shared_ptr) by
  /// the Endpoint entry and every Deployment generation. A retiring
  /// deployment folds its counters in twice: eagerly at swap time (so the
  /// lifetime totals reflect its history immediately) and finally from its
  /// destructor after the drain — FoldCounters adds only the delta since
  /// the previous fold, so no request is double-counted or lost no matter
  /// when the swap landed.
  struct CumulativeCounters {
    std::atomic<int64_t> submitted{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> rejected{0};
    std::atomic<int64_t> batches{0};
    std::atomic<int64_t> shed_deadline{0};
    std::atomic<int64_t> shed_capacity{0};
    std::atomic<int64_t> expired_in_queue{0};
    std::atomic<int64_t> degraded{0};
  };

  /// One served model generation: the engine references the model, so the
  /// member order (model first) makes ~Deployment shut the engine down —
  /// draining queued requests — before the model dies.
  struct Deployment {
    DeployConfig config;
    std::unique_ptr<eval::NextPoiModel> model;
    std::unique_ptr<InferenceEngine> engine;

    /// Itinerary planner over this generation's model. Its scorer submits
    /// every rollout wave through `engine`, so plan expansions coalesce
    /// with live recommendation traffic; declared after the engine so it
    /// is destroyed first.
    std::unique_ptr<plan::ItineraryPlanner> planner;

    std::chrono::steady_clock::time_point live_since;
    std::shared_ptr<CumulativeCounters> cumulative;

    /// Overload state (hysteresis, see OverloadPolicy) and the gateway-side
    /// counters it drives. Atomics: the submit paths race on them freely.
    std::atomic<bool> degraded{false};
    std::atomic<int64_t> degraded_served{0};  ///< shaped-and-served requests
    std::atomic<int64_t> class_shed{0};  ///< shed by class while degraded

    /// Folds this generation's counter deltas (engine + gateway-side) into
    /// the shared lifetime totals. Idempotent and incremental: fold_mutex
    /// serializes folders, and already_folded_ remembers what previous
    /// folds contributed so each request is counted exactly once. Called
    /// eagerly by Swap/SwapAsync right after the install, and finally by
    /// the destructor after the drain.
    void FoldCounters();

    /// Exact lifetime counters for the endpoint while this generation is
    /// live: the shared cumulative totals plus this generation's
    /// not-yet-folded delta, read under fold_mutex_ so a concurrent eager
    /// fold can neither double-count nor drop the delta.
    struct LifetimeTotals {
      int64_t submitted = 0;
      int64_t completed = 0;
      int64_t rejected = 0;
      int64_t batches = 0;
      int64_t shed_deadline = 0;
      int64_t shed_capacity = 0;
      int64_t expired_in_queue = 0;
      int64_t degraded = 0;
    };
    LifetimeTotals GetLifetimeTotals();

    ~Deployment();

   private:
    std::mutex fold_mutex_;
    EngineStats already_folded_;
    int64_t degraded_folded_ = 0;
    int64_t class_shed_folded_ = 0;
  };

  struct Endpoint {
    std::shared_ptr<Deployment> current;  ///< null while DeployAsync builds
    int64_t swaps = 0;
    std::shared_ptr<CumulativeCounters> cumulative;
    std::chrono::steady_clock::time_point first_live;
  };

  /// Everything StatsOf needs, snapshotted under the gateway mutex so the
  /// engine-stats queries can run with it released.
  struct EndpointSnapshot {
    std::string name;
    std::shared_ptr<Deployment> deployment;
    int64_t swaps = 0;
    std::shared_ptr<CumulativeCounters> cumulative;
    std::chrono::steady_clock::time_point first_live;
  };

  /// Builds model + engine from the config (registry create, option parse,
  /// checkpoint load). Null with *error set on any failure.
  static std::shared_ptr<Deployment> BuildDeployment(const DeployConfig& config,
                                                     std::string* error);

  /// The endpoint's current deployment, or null when not deployed.
  std::shared_ptr<Deployment> CurrentDeployment(
      const std::string& endpoint) const;

  /// Evaluates the deployment's hysteresis-guarded overload state from its
  /// queue depth, and while degraded applies the policy to the request:
  /// clamps top_n, caps the stage-1 screen, and sheds the configured low
  /// classes. Returns false when the request must be shed instead of
  /// submitted (counted in class_shed).
  static bool ShapeForOverload(Deployment& deployment,
                               eval::RecommendRequest* request,
                               Priority priority);

  /// Installs a live deployment into the endpoint entry under the mutex:
  /// first generation gets fresh cumulative counters and the first_live
  /// stamp; later generations inherit both.
  static void InstallLocked(Endpoint& entry,
                            std::shared_ptr<Deployment> deployment);

  /// Spawns a background builder thread, reaping finished predecessors.
  void StartAsyncOp(std::function<void()> op);

  /// Records the endpoint's async-op status (async_status_ under mutex_).
  void SetAsyncStatus(const std::string& endpoint, DeployState state,
                      const std::string& error);

  /// Queries one deployment's engine; called with the gateway mutex
  /// released (the shared_ptrs keep the deployment alive).
  static EndpointStats StatsOf(const EndpointSnapshot& snapshot);

  /// Serves the non-request frames ServeFrame[Async] dispatches to: pings
  /// come back as pongs, stats requests as a stats snapshot, anything else
  /// (a response/error/pong frame aimed at a server) as a kBadFrame error.
  std::vector<uint8_t> ServeControlFrame(FrameType type,
                                         const std::vector<uint8_t>& frame);

  /// Serves one v4 kItineraryRequest frame end to end (decode, validate,
  /// plan, encode): a kItineraryResponse frame on success, an error frame
  /// otherwise. Blocking — the async wire path runs it on a background
  /// worker (StartAsyncOp), never on the transport thread.
  std::vector<uint8_t> ServeItineraryFrame(const std::vector<uint8_t>& frame);

  /// The endpoint's trainer provider (copied under the mutex, invoked with
  /// it released), or null when none is attached.
  TrainerTelemetryFn TrainerProviderOf(const std::string& endpoint) const;

  mutable std::mutex mutex_;
  std::map<std::string, Endpoint> endpoints_;
  std::map<std::string, DeployStatus> async_status_;
  std::map<std::string, TrainerTelemetryFn> trainer_providers_;

  /// Background deploy/swap builders. Finished ones are reaped when the
  /// next async op starts; the destructor joins whatever remains.
  struct AsyncWorker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<AsyncWorker> async_workers_;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_GATEWAY_H_
