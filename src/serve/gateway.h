#ifndef TSPN_SERVE_GATEWAY_H_
#define TSPN_SERVE_GATEWAY_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"
#include "eval/model_registry.h"
#include "eval/recommend.h"
#include "serve/inference_engine.h"

namespace tspn::serve {

/// Everything needed to stand up one named endpoint: which registry model
/// to build, over which dataset, from which checkpoint, with which knobs.
struct DeployConfig {
  /// eval::ModelRegistry name ("TSPN-RA", "MC", ...). Unknown names fail
  /// the deploy.
  std::string model_name;

  /// Dataset the model is constructed over; shared so many endpoints (and
  /// the caller) can serve the same city without copies.
  std::shared_ptr<const data::CityDataset> dataset;

  /// Checkpoint restored into the freshly built model. Empty deploys the
  /// model untrained (useful for tests); a non-empty path that fails to
  /// load fails the deploy — a gateway must never silently serve garbage
  /// weights.
  std::string checkpoint_path;

  /// eval::ModelOptions as string knobs ("dm", "seed", "image_resolution"),
  /// parsed by ModelOptions::FromKeyValues — unknown keys fail the deploy
  /// loudly rather than falling back to defaults.
  std::map<std::string, std::string> model_options;

  /// Per-endpoint InferenceEngine sizing (workers, queue depth, coalescing).
  EngineOptions engine_options = EngineOptions::FromEnv();
};

/// Point-in-time serving counters for one endpoint.
struct EndpointStats {
  std::string endpoint;
  std::string model_name;
  std::string checkpoint_path;  ///< checkpoint currently serving
  int64_t swaps = 0;            ///< hot swaps since Deploy
  int64_t queue_depth = 0;      ///< requests queued, not yet being served
  double uptime_seconds = 0.0;  ///< since the current deployment went live
  double qps = 0.0;             ///< completed / uptime of current deployment
  EngineStats engine;           ///< queue/batch/latency counters
};

/// Aggregate gateway snapshot: fleet totals plus one row per endpoint.
struct GatewayStats {
  int64_t endpoints = 0;
  int64_t total_submitted = 0;
  int64_t total_completed = 0;
  int64_t total_rejected = 0;
  int64_t total_swaps = 0;
  double total_qps = 0.0;  ///< sum of per-endpoint qps
  std::vector<EndpointStats> per_endpoint;  ///< sorted by endpoint name
};

/// Multi-tenant serving gateway: a thread-safe router from endpoint names
/// to {model, InferenceEngine} deployments, so several models — different
/// cities, TSPN-RA next to baselines, A/B candidates — serve side by side
/// in one process.
///
/// Lifecycle: Deploy() builds the model through eval::ModelRegistry,
/// restores the checkpoint, and stands up a dedicated engine; Swap()
/// hot-reloads a new checkpoint with zero downtime; Undeploy() drains and
/// tears down. Submit() routes a structured request to the endpoint's
/// engine; ServeFrame() does the same for a wire-encoded frame
/// (serve/codec.h) — the seam a socket front-end plugs into.
///
/// Hot-swap semantics (epoch via shared_ptr): each endpoint holds its
/// current deployment behind a shared_ptr that submitters copy under the
/// gateway mutex. Swap() builds the replacement *outside* the lock, then
/// publishes it with one pointer swap — new submits instantly land on the
/// new model while in-flight requests finish on the old deployment, which
/// is destroyed (draining its queue first, so no future is ever dropped)
/// when the last submitter releases it. A swap to the same checkpoint is
/// response-bit-identical: the registry rebuilds the same weights from the
/// same options and checkpoint bytes.
class Gateway {
 public:
  Gateway() = default;
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Creates the named endpoint. Fails (false, *error set) on a duplicate
  /// endpoint name, unknown model name, bad model option, missing dataset,
  /// or a checkpoint that does not load cleanly.
  bool Deploy(const std::string& endpoint, const DeployConfig& config,
              std::string* error = nullptr);

  /// Hot-reloads the endpoint onto `checkpoint_path` (same model, dataset
  /// and knobs as the original Deploy). In-flight requests finish on the
  /// old weights; requests submitted after Swap returns see the new ones.
  bool Swap(const std::string& endpoint, const std::string& checkpoint_path,
            std::string* error = nullptr);

  /// Removes the endpoint, serving everything already queued before the
  /// teardown completes. Subsequent submits to the name fail.
  bool Undeploy(const std::string& endpoint, std::string* error = nullptr);

  /// Routes the request to the endpoint's engine. Unknown endpoints yield
  /// a future holding std::runtime_error (never a crash).
  std::future<eval::RecommendResponse> Submit(
      const std::string& endpoint, const eval::RecommendRequest& request);

  /// Wire entry point: decodes a request frame (which names its endpoint),
  /// serves it, and returns an encoded response frame — or an encoded
  /// error frame for malformed/unknown/failed requests. Never throws.
  std::vector<uint8_t> ServeFrame(const std::vector<uint8_t>& request_frame);

  bool Has(const std::string& endpoint) const;

  /// Deployed endpoint names, sorted.
  std::vector<std::string> Endpoints() const;

  /// Stats for one endpoint; false when it is not deployed.
  bool GetEndpointStats(const std::string& endpoint, EndpointStats* out) const;

  /// Aggregate snapshot across every deployed endpoint.
  GatewayStats Snapshot() const;

 private:
  /// One served model generation: the engine references the model, so the
  /// member order (model first) makes ~Deployment shut the engine down —
  /// draining queued requests — before the model dies.
  struct Deployment {
    DeployConfig config;
    std::unique_ptr<eval::NextPoiModel> model;
    std::unique_ptr<InferenceEngine> engine;
    std::chrono::steady_clock::time_point live_since;

    ~Deployment();
  };

  struct Endpoint {
    std::shared_ptr<Deployment> current;
    int64_t swaps = 0;
  };

  /// Builds model + engine from the config (registry create, option parse,
  /// checkpoint load). Null with *error set on any failure.
  static std::shared_ptr<Deployment> BuildDeployment(const DeployConfig& config,
                                                     std::string* error);

  /// The endpoint's current deployment, or null when not deployed.
  std::shared_ptr<Deployment> CurrentDeployment(
      const std::string& endpoint) const;

  /// Queries one deployment's engine; called with the gateway mutex
  /// released (the shared_ptr keeps the deployment alive).
  static EndpointStats StatsOf(const std::string& name,
                               const std::shared_ptr<Deployment>& deployment,
                               int64_t swaps);

  mutable std::mutex mutex_;
  std::map<std::string, Endpoint> endpoints_;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_GATEWAY_H_
