#ifndef TSPN_SERVE_FRAME_HANDLER_H_
#define TSPN_SERVE_FRAME_HANDLER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace tspn::serve {

/// The application seam serve::FrameServer drives: one TSWP frame in,
/// exactly one reply frame out through the callback. Gateway implements it
/// by serving the frame locally; cluster::ShardRouter implements it by
/// forwarding to the owning shard — which is what lets one FrameServer
/// front either a single process or a whole cluster without knowing the
/// difference.
///
/// Contract (what FrameServer depends on):
///  * HandleFrameAsync never blocks the calling thread on request work —
///    immediate failures (decode error, overload) may invoke `done`
///    synchronously, everything else completes later from a worker;
///  * `done` is invoked exactly once per frame, with a well-formed reply
///    frame (response, pong, stats, or error — never empty);
///  * the handler outlives the server driving it.
class FrameHandler {
 public:
  using FrameCallback = std::function<void(std::vector<uint8_t> reply_frame)>;

  virtual ~FrameHandler() = default;

  virtual void HandleFrameAsync(const std::vector<uint8_t>& frame,
                                FrameCallback done) = 0;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_FRAME_HANDLER_H_
