#include "serve/frame_client.h"

namespace tspn::serve {

bool FrameClient::Connect(const std::string& host, uint16_t port,
                          std::string* error) {
  fd_ = common::ConnectTcp(host, port, error);
  return fd_.valid();
}

bool FrameClient::SendFrame(const std::vector<uint8_t>& frame) {
  if (!fd_.valid()) return false;
  uint8_t prefix[4];
  common::StoreU32Le(static_cast<uint32_t>(frame.size()), prefix);
  if (!common::WriteAll(fd_.get(), prefix, sizeof(prefix)) ||
      !common::WriteAll(fd_.get(), frame.data(), frame.size())) {
    Close();
    return false;
  }
  return true;
}

bool FrameClient::RecvFrame(std::vector<uint8_t>* frame,
                            int64_t max_frame_bytes) {
  if (!fd_.valid()) return false;
  uint8_t prefix[4];
  if (!common::ReadAll(fd_.get(), prefix, sizeof(prefix))) {
    Close();
    return false;
  }
  const uint32_t length = common::LoadU32Le(prefix);
  if (static_cast<int64_t>(length) > max_frame_bytes) {
    Close();
    return false;
  }
  frame->resize(length);
  if (length > 0 && !common::ReadAll(fd_.get(), frame->data(), length)) {
    Close();
    return false;
  }
  return true;
}

std::vector<uint8_t> FrameClient::Call(
    const std::vector<uint8_t>& request_frame) {
  std::vector<uint8_t> reply;
  if (!SendFrame(request_frame) || !RecvFrame(&reply)) reply.clear();
  return reply;
}

}  // namespace tspn::serve
