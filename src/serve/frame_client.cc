#include "serve/frame_client.h"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <thread>

namespace tspn::serve {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

bool FrameClient::Connect(const std::string& host, uint16_t port,
                          std::string* error) {
  return Connect(common::SocketAddress::Tcp(host, port), error);
}

bool FrameClient::Connect(const common::SocketAddress& address,
                          std::string* error) {
  address_ = address;
  has_address_ = true;
  fd_ = common::ConnectTo(address_, error);
  return fd_.valid();
}

bool FrameClient::Redial(std::string* error) {
  if (!has_address_) return false;
  int64_t backoff_ms = reconnect_backoff_ms_;
  for (int attempt = 0; attempt < reconnect_attempts_; ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    fd_ = common::ConnectTo(address_, error);
    if (fd_.valid()) {
      ++reconnects_;
      return true;
    }
  }
  return false;
}

bool FrameClient::EnsureConnected(std::string* error) {
  if (fd_.valid()) return true;
  if (!has_address_) return false;
  if (reconnect_attempts_ > 0) return Redial(error);
  fd_ = common::ConnectTo(address_, error);
  return fd_.valid();
}

bool FrameClient::SendFrame(const std::vector<uint8_t>& frame) {
  // A previous transport error (or an idle server closing the connection)
  // left the client disconnected: with auto-reconnect armed, heal here
  // instead of poisoning every later call.
  if (!fd_.valid() && reconnect_attempts_ > 0 && !Redial(nullptr)) {
    return false;
  }
  if (!fd_.valid()) return false;
  uint8_t prefix[4];
  common::StoreU32Le(static_cast<uint32_t>(frame.size()), prefix);
  if (common::WriteAll(fd_.get(), prefix, sizeof(prefix)) &&
      common::WriteAll(fd_.get(), frame.data(), frame.size())) {
    return true;
  }
  Close();
  // The send failed, so the peer cannot have processed this frame; retrying
  // it whole on a fresh connection is safe. One retry only — a second
  // failure means the server is really gone.
  if (reconnect_attempts_ > 0 && Redial(nullptr)) {
    if (common::WriteAll(fd_.get(), prefix, sizeof(prefix)) &&
        common::WriteAll(fd_.get(), frame.data(), frame.size())) {
      return true;
    }
    Close();
  }
  return false;
}

FrameClient::RecvStatus FrameClient::ReadTimed(void* data, size_t size,
                                               Clock::time_point deadline,
                                               bool* any_byte) {
  uint8_t* out = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < size) {
    if (deadline != Clock::time_point::max()) {
      const auto now = Clock::now();
      if (now >= deadline) return RecvStatus::kTimeout;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      // +1 rounds up so a sub-millisecond remainder still polls, instead
      // of spinning with timeout 0 until the clock catches up.
      pollfd pfd{fd_.get(), POLLIN, 0};
      const int rc =
          ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      if (rc == 0) return RecvStatus::kTimeout;
    }
    const ssize_t n = ::recv(fd_.get(), out + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      *any_byte = true;
      continue;
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EINTR) continue;
    // Without a deadline the socket is blocking and EAGAIN cannot happen;
    // with one, poll said readable, so EAGAIN here is a spurious wakeup —
    // loop and poll again.
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return RecvStatus::kClosed;
  }
  return RecvStatus::kOk;
}

FrameClient::RecvStatus FrameClient::RecvFrameTimed(std::vector<uint8_t>* frame,
                                                    int64_t max_frame_bytes) {
  if (!fd_.valid()) return RecvStatus::kClosed;
  const Clock::time_point deadline =
      recv_timeout_ms_ > 0
          ? Clock::now() + std::chrono::milliseconds(recv_timeout_ms_)
          : Clock::time_point::max();
  bool any_byte = false;
  uint8_t prefix[4];
  RecvStatus status = ReadTimed(prefix, sizeof(prefix), deadline, &any_byte);
  if (status != RecvStatus::kOk) {
    // A timeout before the first byte leaves a framable stream: the reply
    // simply has not arrived, and a later Recv can still collect it. Any
    // other outcome loses frame alignment, so the connection closes.
    if (status == RecvStatus::kTimeout && !any_byte) return status;
    Close();
    return status;
  }
  const uint32_t length = common::LoadU32Le(prefix);
  if (static_cast<int64_t>(length) > max_frame_bytes) {
    Close();
    return RecvStatus::kClosed;
  }
  frame->resize(length);
  if (length > 0) {
    status = ReadTimed(frame->data(), length, deadline, &any_byte);
    if (status != RecvStatus::kOk) {
      Close();  // mid-frame: unrecoverable either way
      return status;
    }
  }
  return RecvStatus::kOk;
}

bool FrameClient::RecvFrame(std::vector<uint8_t>* frame,
                            int64_t max_frame_bytes) {
  return RecvFrameTimed(frame, max_frame_bytes) == RecvStatus::kOk;
}

std::vector<uint8_t> FrameClient::Call(
    const std::vector<uint8_t>& request_frame) {
  std::vector<uint8_t> reply;
  if (!SendFrame(request_frame) || !RecvFrame(&reply)) reply.clear();
  return reply;
}

FrameClient::Reply FrameClient::CallTyped(
    const std::vector<uint8_t>& request_frame) {
  if (!SendFrame(request_frame)) return Reply{};  // kTransport
  return ReceiveTyped();
}

FrameClient::Reply FrameClient::ReceiveTyped() {
  Reply reply;
  std::vector<uint8_t> frame;
  const RecvStatus status = RecvFrameTimed(&frame);
  if (status == RecvStatus::kTimeout) {
    reply.kind = Reply::Kind::kTimeout;
    return reply;
  }
  if (status != RecvStatus::kOk) return reply;  // kTransport
  FrameType type;
  if (PeekFrameType(frame, &type) != DecodeStatus::kOk) return reply;
  if (type == FrameType::kError) {
    if (DecodeErrorFrame(frame, &reply.error_message, &reply.error_code) !=
        DecodeStatus::kOk) {
      return reply;  // malformed error frame: kTransport
    }
    reply.kind = Reply::Kind::kServerError;
    reply.frame = std::move(frame);
    return reply;
  }
  // Both reply-shaped frame types are successful replies; the router's
  // failover logic must never mistake a v4 itinerary reply for transport
  // trouble.
  if (type != FrameType::kResponse && type != FrameType::kItineraryResponse) {
    return reply;
  }
  reply.kind = Reply::Kind::kResponse;
  reply.frame = std::move(frame);
  return reply;
}

}  // namespace tspn::serve
