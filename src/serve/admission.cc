#include "serve/admission.h"

namespace tspn::serve {

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kBackground: return "kBackground";
    case Priority::kBulk: return "kBulk";
    case Priority::kInteractive: return "kInteractive";
  }
  return "kUnknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "kNone";
    case ShedReason::kDeadlineUnmeetable: return "kDeadlineUnmeetable";
    case ShedReason::kCapacity: return "kCapacity";
    case ShedReason::kEvicted: return "kEvicted";
    case ShedReason::kExpired: return "kExpired";
    case ShedReason::kShutdown: return "kShutdown";
  }
  return "kUnknown";
}

}  // namespace tspn::serve
