#ifndef TSPN_SERVE_FRAME_SERVER_H_
#define TSPN_SERVE_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "serve/frame_handler.h"

namespace tspn::serve {

/// Tuning knobs for FrameServer. Environment overrides (FromEnv):
///
///   TSPN_SERVE_IO_THREADS        poll-loop IO threads            (default 2)
///   TSPN_SERVE_MAX_FRAME_BYTES   largest accepted frame          (default 1 MiB)
///   TSPN_SERVE_MAX_CONNECTIONS   concurrent connection cap       (default 256)
///   TSPN_SERVE_MAX_CONN_INFLIGHT per-connection in-flight frame
///                                cap; reads throttle above it    (default 64)
struct FrameServerOptions {
  /// Dotted-quad IPv4 listen address; defaults to loopback. Use "0.0.0.0"
  /// to accept from the network.
  std::string host = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port, readable via port() after Start.
  uint16_t port = 0;

  /// Non-empty switches the listener to a unix-domain socket at this path
  /// (host/port are then ignored) — the co-located fast path cluster shards
  /// ride. The server unlinks the path on Stop.
  std::string unix_path;

  int io_threads = 2;
  int64_t max_frame_bytes = 1 << 20;
  int64_t max_connections = 256;

  /// Most response slots one connection may hold (requests submitted or
  /// queued-for-reply). At the cap the server stops parsing new frames off
  /// that connection and drops its read interest, so a client pipelining
  /// faster than the engine serves is held back by TCP flow control instead
  /// of growing the slot queue without bound. Replies flushing below the
  /// cap resume parsing and reading on the same IO pass.
  int64_t max_inflight_per_connection = 64;

  static FrameServerOptions FromEnv();
};

/// Point-in-time FrameServer counters. `max_in_flight_observed` is the
/// high-water mark of frames decoded-and-submitted whose responses had not
/// yet been produced — with io_threads + engine workers well below it, it
/// is the observable proof that no thread is parked per in-flight request.
struct FrameServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;  ///< over max_connections
  int64_t connections_closed = 0;
  int64_t active_connections = 0;
  int64_t frames_received = 0;  ///< complete request frames parsed
  int64_t frames_sent = 0;      ///< reply frames fully written
  int64_t transport_errors = 0; ///< framing violations (oversized length)
  int64_t read_throttles = 0;   ///< connections hitting the in-flight cap
  int64_t in_flight = 0;
  int64_t max_in_flight_observed = 0;
};

/// TCP front-end for the gateway's TSWP wire protocol — the piece that
/// turns the codec from a seam into a network service.
///
/// Transport framing: each direction is a sequence of length-delimited
/// frames — a uint32 little-endian byte count, then exactly that many bytes
/// of one TSWP frame (docs/wire_protocol.md). A declared length above
/// max_frame_bytes is unrecoverable (the stream can no longer be framed):
/// the server replies with one error frame and closes the connection after
/// flushing. Anything else that goes wrong inside a well-delimited frame —
/// bad magic, unknown endpoint, overloaded queue, model failure — comes
/// back as an ordinary error frame on a healthy connection.
///
/// Threading model (docs/serving.md): one acceptor thread (blocking poll on
/// the listen socket, round-robins new connections across the IO pool) and
/// `io_threads` poll-based event-loop threads, each owning a shard of
/// connections. An IO thread reads bytes, extracts complete frames, and
/// hands each to Gateway::ServeFrameAsync — the request then lives in the
/// endpoint engine's queue and NO thread waits on it. When a serving
/// worker completes the request, its continuation deposits the encoded
/// reply into the connection's response slot and wakes the owning IO
/// thread, which writes replies back strictly in per-connection request
/// order (a completed frame waits for its elders), handling partial writes
/// across poll rounds.
///
/// Lifecycle: construct over a FrameHandler — a Gateway for the
/// single-process shape, a cluster::ShardRouter for the router tier; the
/// handler must outlive the server — then Start(), serve, Stop() —
/// idempotent, also run by the destructor. Stop closes every connection;
/// responses still in flight inside engines are discarded on completion
/// (their continuations see the closed flag).
class FrameServer {
 public:
  explicit FrameServer(FrameHandler& handler,
                       FrameServerOptions options = FrameServerOptions::FromEnv());
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens and spawns the acceptor + IO threads. False with
  /// *error set when the socket cannot be stood up (port in use, bad host).
  bool Start(std::string* error = nullptr);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent. In-flight requests keep draining inside their engines;
  /// their replies are discarded.
  void Stop();

  /// The bound port (== options().port unless that was 0 = ephemeral);
  /// 0 for a unix-domain listener. Valid after a successful Start().
  uint16_t port() const { return port_; }

  /// The bound listen address (either kind), valid after a successful
  /// Start() — what a FrameClient passes to Connect.
  const common::SocketAddress& address() const { return address_; }

  bool running() const { return running_; }

  FrameServerStats GetStats() const;

  const FrameServerOptions& options() const { return options_; }

 private:
  /// One response slot per request frame, queued in arrival order. The
  /// serving continuation fills it; the IO thread flushes slots strictly
  /// front-to-back, so responses keep per-connection request order however
  /// the engine reorders completions.
  struct Slot {
    bool ready = false;
    std::vector<uint8_t> bytes;  ///< outer length prefix + reply frame
  };

  struct IoLoop;

  /// Per-connection state. Owned by exactly one IoLoop; also pinned by
  /// in-flight serving continuations, so it outlives the socket when the
  /// peer disappears mid-request.
  struct Connection {
    common::UniqueFd fd;
    std::shared_ptr<IoLoop> loop;

    // IO-thread-only read state. saw_eof parks POLLIN interest once the
    // peer finished sending (half-close), so a drained socket cannot spin
    // the poll loop while responses are still being computed. throttled
    // tracks the in-flight-cap state so each throttle episode is counted
    // once.
    std::vector<uint8_t> inbox;
    bool saw_eof = false;
    bool throttled = false;

    std::mutex mutex;  ///< guards everything below
    std::deque<std::shared_ptr<Slot>> outbox;
    size_t front_written = 0;  ///< bytes of outbox.front() already sent
    bool close_after_flush = false;
    bool closed = false;  ///< set once the IO thread drops the connection
  };

  /// Cross-thread stats + config block. Held via shared_ptr by the server
  /// AND by every serving continuation, so a continuation completing after
  /// Stop() (or even after the server is destroyed) still has a live target.
  struct Shared {
    FrameServerOptions options;
    std::atomic<int64_t> connections_accepted{0};
    std::atomic<int64_t> connections_rejected{0};
    std::atomic<int64_t> connections_closed{0};
    std::atomic<int64_t> active_connections{0};
    std::atomic<int64_t> frames_received{0};
    std::atomic<int64_t> frames_sent{0};
    std::atomic<int64_t> transport_errors{0};
    std::atomic<int64_t> read_throttles{0};
    std::atomic<int64_t> in_flight{0};
    std::atomic<int64_t> max_in_flight{0};
  };

  void RunAcceptor();
  void RunIoLoop(const std::shared_ptr<IoLoop>& loop);

  /// Drains the socket into the inbox. Sets saw_eof when the peer finished
  /// sending; false only when the connection must be dropped (hard error).
  /// Parsing happens separately in the IO pass, so a read never submits
  /// past the in-flight cap.
  bool ReadReady(const std::shared_ptr<Connection>& conn);

  /// Parses complete length-delimited frames out of the inbox and submits
  /// them, stopping at the per-connection in-flight cap. Returns true when
  /// it stopped because of the cap (unparsed frames remain); flags
  /// close_after_flush on an unframeable stream.
  bool ParseFrames(const std::shared_ptr<Connection>& conn);

  /// Whether the connection's slot queue is at the in-flight cap (read
  /// interest must be dropped).
  bool AtCap(const std::shared_ptr<Connection>& conn) const;

  /// Decodes/submits one TSWP frame, reserving its in-order response slot.
  void SubmitFrame(const std::shared_ptr<Connection>& conn,
                   std::vector<uint8_t> frame);

  /// Flushes ready in-order slots. False when the connection must close
  /// (write error, or close_after_flush with everything flushed).
  bool WriteReady(const std::shared_ptr<Connection>& conn);

  /// Whether the front slot has unflushed bytes ready (POLLOUT interest).
  static bool HasFlushable(const std::shared_ptr<Connection>& conn);

  void MarkClosed(const std::shared_ptr<Connection>& conn);

  FrameHandler& handler_;
  const FrameServerOptions options_;
  std::shared_ptr<Shared> shared_;

  common::UniqueFd listen_fd_;
  uint16_t port_ = 0;
  common::SocketAddress address_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  common::WakePipe acceptor_wake_;
  std::thread acceptor_thread_;
  std::vector<std::shared_ptr<IoLoop>> io_loops_;
  std::vector<std::thread> io_threads_;
  size_t next_loop_ = 0;  ///< acceptor-thread-only round-robin cursor
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_FRAME_SERVER_H_
