#include "serve/frame_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "common/env.h"
#include "serve/codec.h"

namespace tspn::serve {

namespace {

/// Transport framing: uint32 little-endian frame length, then the frame
/// (common::Load/StoreU32Le are the shared byte-order definition).
constexpr size_t kLengthPrefixBytes = sizeof(uint32_t);

/// Wraps a TSWP frame with the outer length prefix, producing the exact
/// byte run the socket writes.
std::vector<uint8_t> WrapFrame(const std::vector<uint8_t>& frame) {
  std::vector<uint8_t> wrapped(kLengthPrefixBytes + frame.size());
  common::StoreU32Le(static_cast<uint32_t>(frame.size()), wrapped.data());
  std::memcpy(wrapped.data() + kLengthPrefixBytes, frame.data(),
              frame.size());
  return wrapped;
}

void BumpMax(std::atomic<int64_t>& max, int64_t candidate) {
  int64_t prev = max.load(std::memory_order_relaxed);
  while (candidate > prev &&
         !max.compare_exchange_weak(prev, candidate,
                                    std::memory_order_relaxed)) {
  }
}

}  // namespace

/// One IO thread's world: the wake pipe completions ring, the handoff
/// mailbox the acceptor feeds, and the shard of connections the poll loop
/// owns. shared_ptr-held so continuations can wake it (or discover it is
/// stopping) no matter when they complete.
struct FrameServer::IoLoop {
  common::WakePipe wake;
  std::mutex mutex;  ///< guards incoming + stopping
  std::vector<std::shared_ptr<Connection>> incoming;
  bool stopping = false;

  /// Loop-thread-only connection shard.
  std::vector<std::shared_ptr<Connection>> conns;
};

FrameServerOptions FrameServerOptions::FromEnv() {
  FrameServerOptions o;
  o.io_threads = static_cast<int>(std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_IO_THREADS", o.io_threads), 1, 16));
  o.max_frame_bytes = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_MAX_FRAME_BYTES", o.max_frame_bytes), 64,
      1 << 26);
  o.max_connections = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_MAX_CONNECTIONS", o.max_connections), 1,
      4096);
  o.max_inflight_per_connection = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_MAX_CONN_INFLIGHT",
                     o.max_inflight_per_connection),
      1, 65536);
  return o;
}

FrameServer::FrameServer(FrameHandler& handler, FrameServerOptions options)
    : handler_(handler),
      options_(options),
      shared_(std::make_shared<Shared>()) {
  shared_->options = options_;
}

FrameServer::~FrameServer() { Stop(); }

bool FrameServer::Start(std::string* error) {
  if (running_.load()) {
    if (error != nullptr) *error = "FrameServer is already running";
    return false;
  }
  stopping_.store(false);
  const common::SocketAddress want =
      options_.unix_path.empty()
          ? common::SocketAddress::Tcp(options_.host, options_.port)
          : common::SocketAddress::Unix(options_.unix_path);
  listen_fd_ = common::ListenOn(want, 128, &address_, error);
  if (!listen_fd_.valid()) return false;
  port_ = address_.kind == common::SocketAddress::Kind::kTcp ? address_.port
                                                             : 0;
  if (!acceptor_wake_.valid()) {
    if (error != nullptr) *error = "FrameServer wake pipe failed";
    return false;
  }
  io_loops_.clear();
  io_threads_.clear();
  for (int i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_shared<IoLoop>();
    if (!loop->wake.valid()) {
      if (error != nullptr) *error = "FrameServer wake pipe failed";
      io_loops_.clear();
      return false;
    }
    io_loops_.push_back(std::move(loop));
  }
  running_.store(true);
  for (const std::shared_ptr<IoLoop>& loop : io_loops_) {
    io_threads_.emplace_back(&FrameServer::RunIoLoop, this, loop);
  }
  acceptor_thread_ = std::thread(&FrameServer::RunAcceptor, this);
  return true;
}

void FrameServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  acceptor_wake_.Notify();
  if (acceptor_thread_.joinable()) acceptor_thread_.join();
  for (const std::shared_ptr<IoLoop>& loop : io_loops_) {
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      loop->stopping = true;
    }
    loop->wake.Notify();
  }
  for (std::thread& thread : io_threads_) {
    if (thread.joinable()) thread.join();
  }
  io_threads_.clear();
  io_loops_.clear();
  listen_fd_.Reset();
  // A unix listener owns its socket file; leaving it behind would make the
  // path look alive to the next prober.
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

FrameServerStats FrameServer::GetStats() const {
  FrameServerStats s;
  s.connections_accepted = shared_->connections_accepted.load();
  s.connections_rejected = shared_->connections_rejected.load();
  s.connections_closed = shared_->connections_closed.load();
  s.active_connections = shared_->active_connections.load();
  s.frames_received = shared_->frames_received.load();
  s.frames_sent = shared_->frames_sent.load();
  s.transport_errors = shared_->transport_errors.load();
  s.read_throttles = shared_->read_throttles.load();
  s.in_flight = shared_->in_flight.load();
  s.max_in_flight_observed = shared_->max_in_flight.load();
  return s;
}

void FrameServer::RunAcceptor() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_.get(), POLLIN, 0};
    fds[1] = {acceptor_wake_.read_fd(), POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (stopping_.load()) return;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) acceptor_wake_.Drain();
    if ((fds[0].revents & POLLIN) == 0) continue;
    for (;;) {
      const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: accepted everything pending
      }
      common::UniqueFd accepted(fd);
      if (shared_->active_connections.load() >= options_.max_connections) {
        shared_->connections_rejected.fetch_add(1);
        continue;  // UniqueFd closes the socket: hard reject under overload
      }
      std::string nb_error;
      if (!common::SetNonBlocking(accepted.get(), &nb_error)) {
        shared_->connections_rejected.fetch_add(1);
        continue;
      }
      if (address_.kind == common::SocketAddress::Kind::kTcp) {
        const int one = 1;
        ::setsockopt(accepted.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = std::move(accepted);
      conn->loop = io_loops_[next_loop_++ % io_loops_.size()];
      shared_->connections_accepted.fetch_add(1);
      shared_->active_connections.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(conn->loop->mutex);
        conn->loop->incoming.push_back(conn);
      }
      conn->loop->wake.Notify();
    }
  }
}

void FrameServer::RunIoLoop(const std::shared_ptr<IoLoop>& loop) {
  std::vector<pollfd> fds;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      for (std::shared_ptr<Connection>& conn : loop->incoming) {
        loop->conns.push_back(std::move(conn));
      }
      loop->incoming.clear();
      if (loop->stopping) break;
    }

    fds.clear();
    fds.push_back({loop->wake.read_fd(), POLLIN, 0});
    for (const std::shared_ptr<Connection>& conn : loop->conns) {
      short events = 0;
      // Read interest is dropped at the per-connection in-flight cap: the
      // kernel receive buffer fills and TCP flow control pushes back on
      // the pipelining peer — overload never grows the slot queue past
      // the cap. Each throttle episode is counted once.
      const bool at_cap = AtCap(conn);
      if (at_cap != conn->throttled) {
        if (at_cap) shared_->read_throttles.fetch_add(1);
        conn->throttled = at_cap;
      }
      if (!conn->saw_eof && !at_cap) events |= POLLIN;
      if (HasFlushable(conn)) events |= POLLOUT;
      // A connection with no interest (peer done sending or throttled,
      // responses still being computed) is parked with fd -1: poll ignores
      // it, and the completion's wake pipe nudge resumes it. Without this,
      // the kernel would report POLLHUP every round and spin the loop.
      fds.push_back({events != 0 ? conn->fd.get() : -1, events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) loop->wake.Drain();

    // Connections with a completed response but no poll event still get a
    // write attempt (the completion woke us via the pipe, not the socket),
    // so every pass tries to flush whatever is flushable.
    std::vector<std::shared_ptr<Connection>> survivors;
    survivors.reserve(loop->conns.size());
    for (size_t i = 0; i < loop->conns.size(); ++i) {
      const std::shared_ptr<Connection>& conn = loop->conns[i];
      const short revents = fds[i + 1].revents;
      bool alive = true;
      if ((revents & (POLLERR | POLLNVAL)) != 0) alive = false;
      // POLLHUP still allows reading buffered bytes; ReadReady sees the EOF
      // once the peer's final bytes are consumed.
      if (alive && !conn->saw_eof &&
          (revents & (POLLIN | POLLHUP)) != 0) {
        alive = ReadReady(conn);
      }
      bool capped = false;
      if (alive) capped = ParseFrames(conn);
      if (alive && HasFlushable(conn)) alive = WriteReady(conn);
      // Flushing may have freed slots below the in-flight cap: resume
      // parsing now instead of waiting for the next event.
      if (alive && capped) capped = ParseFrames(conn);
      if (alive && conn->saw_eof) {
        // The peer finished sending. Once every parseable frame has been
        // submitted (not capped), the connection owes only its pending
        // replies: condemn it so it closes when the outbox drains. A
        // capped connection keeps its unparsed frames and is resumed by
        // completion wakes.
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!capped && !conn->close_after_flush) {
          conn->inbox.clear();  // trailing partial frame can never complete
          conn->close_after_flush = true;
        }
        if (conn->close_after_flush && conn->outbox.empty()) alive = false;
      }
      if (alive) {
        survivors.push_back(conn);
      } else {
        MarkClosed(conn);
      }
    }
    loop->conns.swap(survivors);
  }
  for (const std::shared_ptr<Connection>& conn : loop->conns) {
    MarkClosed(conn);
  }
  loop->conns.clear();
}

bool FrameServer::ReadReady(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    uint8_t buffer[4096];
    const ssize_t n = ::recv(conn->fd.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->inbox.insert(conn->inbox.end(), buffer, buffer + n);
      continue;
    }
    if (n == 0) {
      // Peer finished sending (TCP half-close — a client may send
      // everything, shutdown(WR), then read). The IO pass decides when to
      // condemn the connection: buffered frames may still be waiting for
      // in-flight slots.
      conn->saw_eof = true;
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

bool FrameServer::AtCap(const std::shared_ptr<Connection>& conn) const {
  std::lock_guard<std::mutex> lock(conn->mutex);
  return conn->outbox.size() >=
         static_cast<size_t>(options_.max_inflight_per_connection);
}

bool FrameServer::ParseFrames(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->close_after_flush) {
      // The stream is already condemned (unframeable length): anything the
      // peer keeps sending is undecodable noise.
      conn->inbox.clear();
      return false;
    }
  }
  size_t offset = 0;
  bool capped = false;
  while (conn->inbox.size() - offset >= kLengthPrefixBytes) {
    if (AtCap(conn)) {
      // In-flight cap: leave the remaining frames buffered. The IO pass
      // re-parses after replies flush, and read interest stays dropped
      // until the queue is below the cap.
      capped = true;
      break;
    }
    const uint32_t length = common::LoadU32Le(conn->inbox.data() + offset);
    if (static_cast<int64_t>(length) > options_.max_frame_bytes) {
      // Unrecoverable: the declared length cannot be trusted, so no later
      // frame boundary can be found. One error frame, then close-on-flush.
      shared_->transport_errors.fetch_add(1);
      auto slot = std::make_shared<Slot>();
      slot->ready = true;
      slot->bytes = WrapFrame(EncodeErrorFrame(
          "transport: declared frame length " + std::to_string(length) +
          " exceeds limit " + std::to_string(options_.max_frame_bytes) +
          "; closing connection"));
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->outbox.push_back(std::move(slot));
      conn->close_after_flush = true;
      conn->inbox.clear();
      return false;
    }
    if (conn->inbox.size() - offset < kLengthPrefixBytes + length) break;
    std::vector<uint8_t> frame(
        conn->inbox.begin() + static_cast<ptrdiff_t>(offset +
                                                     kLengthPrefixBytes),
        conn->inbox.begin() + static_cast<ptrdiff_t>(offset +
                                                     kLengthPrefixBytes +
                                                     length));
    offset += kLengthPrefixBytes + length;
    SubmitFrame(conn, std::move(frame));
  }
  conn->inbox.erase(conn->inbox.begin(),
                    conn->inbox.begin() + static_cast<ptrdiff_t>(offset));
  return capped;
}

void FrameServer::SubmitFrame(const std::shared_ptr<Connection>& conn,
                              std::vector<uint8_t> frame) {
  auto slot = std::make_shared<Slot>();
  {
    // The slot is queued BEFORE the submit: even if the continuation runs
    // synchronously (decode error, overload), it finds its place in line.
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->outbox.push_back(slot);
  }
  shared_->frames_received.fetch_add(1);
  BumpMax(shared_->max_in_flight, shared_->in_flight.fetch_add(1) + 1);

  // The continuation owns shared_ptrs to the connection, its loop and the
  // stats block — never the server — so it stays safe to run even after
  // Stop() or ~FrameServer.
  std::shared_ptr<Shared> shared = shared_;
  std::shared_ptr<IoLoop> loop = conn->loop;
  handler_.HandleFrameAsync(
      frame, [conn, slot, loop, shared](std::vector<uint8_t> reply) {
        bool wake = false;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          slot->bytes = WrapFrame(reply);
          slot->ready = true;
          wake = !conn->closed;
        }
        shared->in_flight.fetch_sub(1);
        if (wake) loop->wake.Notify();
      });
}

bool FrameServer::HasFlushable(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  return !conn->outbox.empty() && conn->outbox.front()->ready;
}

bool FrameServer::WriteReady(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  while (!conn->outbox.empty() && conn->outbox.front()->ready) {
    const Slot& slot = *conn->outbox.front();
    while (conn->front_written < slot.bytes.size()) {
      const ssize_t n = ::send(conn->fd.get(),
                               slot.bytes.data() + conn->front_written,
                               slot.bytes.size() - conn->front_written,
                               MSG_NOSIGNAL);
      if (n > 0) {
        conn->front_written += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;  // kernel buffer full: POLLOUT resumes this slot later
      }
      return false;  // peer is gone
    }
    conn->outbox.pop_front();
    conn->front_written = 0;
    shared_->frames_sent.fetch_add(1);
  }
  return !(conn->close_after_flush && conn->outbox.empty());
}

void FrameServer::MarkClosed(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    conn->fd.Reset();
    conn->outbox.clear();
  }
  shared_->connections_closed.fetch_add(1);
  shared_->active_connections.fetch_sub(1);
}

}  // namespace tspn::serve
