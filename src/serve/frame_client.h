#ifndef TSPN_SERVE_FRAME_CLIENT_H_
#define TSPN_SERVE_FRAME_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/net.h"

namespace tspn::serve {

/// Minimal blocking TCP client for the FrameServer transport: each frame
/// travels as a uint32 little-endian length prefix followed by the TSWP
/// frame bytes (docs/wire_protocol.md). Split Send/Recv lets callers
/// pipeline — fire several requests, then collect the replies, which the
/// server returns strictly in request order per connection.
///
/// Blocking by design: this is the convenience side (tests, demos, simple
/// tools). The server side is the one that must never park a thread.
/// Not thread-safe; one FrameClient per thread.
class FrameClient {
 public:
  FrameClient() = default;

  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  bool connected() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  /// Writes one length-delimited frame. False on transport failure (the
  /// connection is closed — a half-written frame is unrecoverable).
  bool SendFrame(const std::vector<uint8_t>& frame);

  /// Blocks for the next length-delimited frame. False on EOF, transport
  /// failure, or a declared length above `max_frame_bytes`.
  bool RecvFrame(std::vector<uint8_t>* frame,
                 int64_t max_frame_bytes = 1 << 20);

  /// SendFrame + RecvFrame; empty vector on any transport failure.
  std::vector<uint8_t> Call(const std::vector<uint8_t>& request_frame);

  /// The raw socket, for tests that need to write byte dribbles or tear
  /// the connection down mid-frame.
  int fd() const { return fd_.get(); }

 private:
  common::UniqueFd fd_;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_FRAME_CLIENT_H_
