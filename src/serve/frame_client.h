#ifndef TSPN_SERVE_FRAME_CLIENT_H_
#define TSPN_SERVE_FRAME_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/net.h"
#include "serve/codec.h"

namespace tspn::serve {

/// Minimal blocking TCP client for the FrameServer transport: each frame
/// travels as a uint32 little-endian length prefix followed by the TSWP
/// frame bytes (docs/wire_protocol.md). Split Send/Recv lets callers
/// pipeline — fire several requests, then collect the replies, which the
/// server returns strictly in request order per connection.
///
/// Blocking by design: this is the convenience side (tests, demos, simple
/// tools). The server side is the one that must never park a thread. A
/// configurable receive timeout (set_recv_timeout_ms) bounds how long any
/// Recv/Call waits, so a client probing an overloaded server cannot hang.
/// Not thread-safe; one FrameClient per thread.
class FrameClient {
 public:
  FrameClient() = default;

  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);

  /// Transport-generic connect: TCP or unix-domain (the co-located-shard
  /// fast path). The address is remembered for reconnects.
  bool Connect(const common::SocketAddress& address,
               std::string* error = nullptr);

  bool connected() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  /// Arms transport-error recovery: after a send failure or a closed
  /// socket, SendFrame re-dials the remembered address up to `max_attempts`
  /// times with exponential backoff starting at `initial_backoff_ms`
  /// (doubling per attempt) and retries the frame once on the fresh
  /// connection. Replies owed on the dead connection are gone — reconnect
  /// heals the *client* (no longer poisoned), not in-flight pipelines, so
  /// pipelining callers must reconcile unanswered requests themselves.
  /// 0 attempts (the default) disables reconnection.
  void set_auto_reconnect(int max_attempts, int64_t initial_backoff_ms = 50) {
    reconnect_attempts_ = max_attempts;
    reconnect_backoff_ms_ = initial_backoff_ms;
  }

  /// Dials the remembered address if the connection is down, honouring the
  /// auto-reconnect budget (or a single attempt when disarmed). True when
  /// the client ends up connected.
  bool EnsureConnected(std::string* error = nullptr);

  /// Reconnects performed so far (successful re-dials), for tests/stats.
  int64_t reconnects() const { return reconnects_; }

  /// Bounds every subsequent receive: a reply not arriving within this many
  /// milliseconds turns into kTimeout instead of an indefinite block.
  /// <= 0 (the default) waits forever. A timeout that strikes BEFORE any
  /// byte of the frame leaves the connection usable (the reply may still
  /// arrive for a later Recv); one that strikes mid-frame closes it — the
  /// stream can no longer be framed.
  void set_recv_timeout_ms(int64_t timeout_ms) { recv_timeout_ms_ = timeout_ms; }
  int64_t recv_timeout_ms() const { return recv_timeout_ms_; }

  /// Writes one length-delimited frame. False on transport failure (the
  /// connection is closed — a half-written frame is unrecoverable).
  bool SendFrame(const std::vector<uint8_t>& frame);

  /// Blocks for the next length-delimited frame, honouring the receive
  /// timeout. False on timeout, EOF, transport failure, or a declared
  /// length above `max_frame_bytes`.
  bool RecvFrame(std::vector<uint8_t>* frame,
                 int64_t max_frame_bytes = 1 << 20);

  /// How a timed receive ended.
  enum class RecvStatus : uint8_t {
    kOk = 0,
    kTimeout,  ///< deadline struck; connection stays open iff no byte arrived
    kClosed,   ///< EOF or transport failure; connection closed
  };

  /// RecvFrame with the outcome spelled out, for callers that must tell an
  /// overloaded-but-alive server (kTimeout before any byte) from a dead
  /// connection (kClosed).
  RecvStatus RecvFrameTimed(std::vector<uint8_t>* frame,
                            int64_t max_frame_bytes = 1 << 20);

  /// SendFrame + RecvFrame; empty vector on any transport failure.
  std::vector<uint8_t> Call(const std::vector<uint8_t>& request_frame);

  /// A typed reply: what came back, decoded one level — enough for a caller
  /// to branch on shed/error/response without touching the codec.
  struct Reply {
    enum class Kind : uint8_t {
      kResponse = 0,     ///< response (or v4 itinerary-response) frame;
                         ///< `frame` holds it for decoding
      kServerError = 1,  ///< error frame; message/code filled in
      kTimeout = 2,      ///< receive timeout (server alive, reply pending)
      kTransport = 3,    ///< send/recv transport failure or malformed reply
    };
    Kind kind = Kind::kTransport;
    std::vector<uint8_t> frame;  ///< raw reply frame (kResponse/kServerError)
    std::string error_message;   ///< kServerError: the server's message
    ErrorCode error_code = ErrorCode::kGeneric;  ///< kServerError: v2 code
  };

  /// SendFrame + timed receive + frame-type dispatch: error frames come
  /// back as kServerError with the decoded message and (v2) code, so a
  /// caller can distinguish a shed from a bug from a dead socket.
  Reply CallTyped(const std::vector<uint8_t>& request_frame);

  /// The receive half of CallTyped, for pipelining callers: collects and
  /// classifies the next reply for a request already sent with SendFrame.
  Reply ReceiveTyped();

  /// The raw socket, for tests that need to write byte dribbles or tear
  /// the connection down mid-frame.
  int fd() const { return fd_.get(); }

 private:
  /// EINTR-safe full read of `size` bytes, polling against `deadline`
  /// (time_point::max() waits forever). *any_byte reports whether at least
  /// one byte landed — the open-vs-closed decision on timeout.
  RecvStatus ReadTimed(void* data, size_t size,
                       std::chrono::steady_clock::time_point deadline,
                       bool* any_byte);

  /// One reconnect pass: up to reconnect_attempts_ dials with exponential
  /// backoff. False leaves the client disconnected.
  bool Redial(std::string* error);

  common::UniqueFd fd_;
  int64_t recv_timeout_ms_ = 0;
  common::SocketAddress address_;
  bool has_address_ = false;
  int reconnect_attempts_ = 0;
  int64_t reconnect_backoff_ms_ = 50;
  int64_t reconnects_ = 0;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_FRAME_CLIENT_H_
