#include "serve/inference_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/percentile.h"
#include "common/span.h"

namespace tspn::serve {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

EngineOptions EngineOptions::FromEnv() {
  EngineOptions o;
  o.num_threads = static_cast<int>(
      std::clamp<int64_t>(common::EnvInt("TSPN_SERVE_THREADS", o.num_threads),
                          1, 64));
  o.max_queue_depth = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_QUEUE_DEPTH", o.max_queue_depth), 1, 1 << 20);
  o.max_batch = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_MAX_BATCH", o.max_batch), 1, 4096);
  o.coalesce_window_us = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_COALESCE_US", o.coalesce_window_us), 0,
      1000000);
  return o;
}

InferenceEngine::InferenceEngine(const eval::NextPoiModel& model,
                                 EngineOptions options)
    : model_(model), options_(options) {
  TSPN_CHECK_GE(options_.num_threads, 1);
  TSPN_CHECK_GE(options_.max_batch, 1);
  TSPN_CHECK_GE(options_.max_queue_depth, 1);
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back(&InferenceEngine::WorkerLoop, this);
  }
}

InferenceEngine::~InferenceEngine() { Shutdown(); }

std::future<eval::RecommendResponse> InferenceEngine::Enqueue(
    const eval::RecommendRequest& request,
    std::unique_lock<std::mutex>& lock) {
  Request entry;
  entry.request = request;
  std::future<eval::RecommendResponse> future = entry.promise.get_future();
  EnqueueEntry(std::move(entry), lock);
  return future;
}

void InferenceEngine::EnqueueEntry(Request entry,
                                   std::unique_lock<std::mutex>& lock) {
  entry.enqueue_time = Clock::now();
  // Count the submission (lock-free: the counter is atomic) before the
  // request becomes visible to workers so GetStats() never observes
  // completed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queue_.push_back(std::move(entry));
  lock.unlock();
  not_empty_.notify_one();
}

std::future<eval::RecommendResponse> InferenceEngine::Submit(
    const eval::RecommendRequest& request) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [&] {
    return stopping_ ||
           static_cast<int64_t>(queue_.size()) < options_.max_queue_depth;
  });
  if (stopping_) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::promise<eval::RecommendResponse> broken;
    broken.set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceEngine is shut down")));
    return broken.get_future();
  }
  return Enqueue(request, lock);
}

std::future<eval::RecommendResponse> InferenceEngine::Submit(
    const data::SampleRef& sample, int64_t top_n) {
  eval::RecommendRequest request;
  request.sample = sample;
  request.top_n = top_n;
  return Submit(request);
}

bool InferenceEngine::TrySubmit(const eval::RecommendRequest& request,
                                std::future<eval::RecommendResponse>* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ ||
      static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *out = Enqueue(request, lock);
  return true;
}

bool InferenceEngine::TrySubmitAsync(const eval::RecommendRequest& request,
                                     ResponseCallback callback) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ ||
      static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Request entry;
  entry.request = request;
  entry.callback = std::move(callback);
  EnqueueEntry(std::move(entry), lock);
  return true;
}

void InferenceEngine::WorkerLoop() {
  // Batch scratch lives for the worker's whole life: its vectors' heap
  // capacity is reused across every batch this worker serves.
  WorkerScratch scratch;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalesce: the batch closes when it is full or when the oldest request
    // has waited out the coalescing window, whichever comes first. A zero
    // window serves whatever is queued right now.
    const auto deadline =
        queue_.front().enqueue_time +
        std::chrono::microseconds(options_.coalesce_window_us);
    while (static_cast<int64_t>(queue_.size()) < options_.max_batch &&
           !stopping_) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    const size_t take = std::min<size_t>(
        queue_.size(), static_cast<size_t>(options_.max_batch));
    scratch.batch.clear();
    scratch.batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      scratch.batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    not_full_.notify_all();
    ServeBatch(scratch);
  }
}

void InferenceEngine::ServeBatch(WorkerScratch& scratch) {
  std::vector<Request>& batch = scratch.batch;
  if (batch.empty()) return;
  // The v2 batch contract serves every request at its own top_n with its
  // own constraints, so a heterogeneous coalesced batch needs no grouping
  // or per-request truncation.
  std::vector<eval::RecommendRequest>& requests = scratch.requests;
  requests.clear();
  requests.reserve(batch.size());
  for (Request& r : batch) {
    // Moved, not copied: the entry's request (constraint vectors included)
    // is not read again after the batch is served.
    requests.push_back(std::move(r.request));
  }
  // A throwing model must not escape the worker thread (std::terminate) or
  // strand the batch's futures; the failure is confined to these requests.
  std::vector<eval::RecommendResponse> results;
  std::exception_ptr error;
  try {
    results = model_.RecommendBatch(common::Span<eval::RecommendRequest>(requests));
  } catch (...) {
    error = std::current_exception();
  }
  const auto done = Clock::now();
  // Record the batch in the stats BEFORE fulfilling any promise: a client
  // that calls GetStats() right after future.get() must see its own request
  // counted.
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++batches_;
    completed_ += static_cast<int64_t>(batch.size());
    batch_size_sum_ += static_cast<int64_t>(batch.size());
    max_batch_observed_ =
        std::max(max_batch_observed_, static_cast<int64_t>(batch.size()));
    for (const Request& r : batch) {
      const double ms =
          std::chrono::duration<double, std::milli>(done - r.enqueue_time)
              .count();
      // Bounded ring of recent latencies: percentiles reflect recent traffic
      // and the history cannot grow with total requests served.
      if (latencies_ms_.size() < kMaxLatencySamples) {
        latencies_ms_.push_back(ms);
      } else {
        latencies_ms_[latency_next_] = ms;
      }
      latency_next_ = (latency_next_ + 1) % kMaxLatencySamples;
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].callback) {
      // Continuation path: the completion runs right here on the serving
      // worker — the whole point of TrySubmitAsync is that no other thread
      // sits parked on a future waiting for this moment.
      if (error != nullptr) {
        batch[i].callback(eval::RecommendResponse{}, error);
      } else {
        batch[i].callback(std::move(results[i]), nullptr);
      }
    } else if (error != nullptr) {
      batch[i].promise.set_exception(error);
    } else {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
  // Drop the served entries now, not at the next batch fill: a gateway
  // continuation holds a shared_ptr to its own deployment, so parking it in
  // the scratch would keep a swapped-out deployment (and these workers)
  // alive until this worker happens to serve again — a reference cycle on
  // an idle engine. clear() keeps the vector's capacity, so the scratch
  // reuse this struct exists for is unaffected.
  batch.clear();
}

void InferenceEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t InferenceEngine::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(queue_.size());
}

EngineStats InferenceEngine::GetStats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_;
  s.batches = batches_;
  s.max_batch_observed = max_batch_observed_;
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(batch_size_sum_) /
                         static_cast<double>(batches_)
                   : 0.0;
  s.p50_latency_ms = common::PercentileOf(latencies_ms_, 0.50);
  s.p95_latency_ms = common::PercentileOf(latencies_ms_, 0.95);
  return s;
}

}  // namespace tspn::serve
