#include "serve/inference_engine.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/percentile.h"
#include "common/span.h"

namespace tspn::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Map keys sort ascending, so the priority byte is stored inverted:
/// interactive (2) becomes 0 and is served first.
uint8_t InvertPriority(Priority priority) {
  return static_cast<uint8_t>(kMaxPriority - static_cast<uint8_t>(priority));
}

/// Floor for the serve margin used by deadline-aware batch formation: even
/// before the rolling batch p95 has data (cold start reports 0), closing a
/// batch this far ahead of the tightest queued deadline leaves a worker
/// realistic time to run the model.
constexpr double kMinServeMarginMs = 2.0;

}  // namespace

EngineOptions EngineOptions::FromEnv() {
  EngineOptions o;
  o.num_threads = static_cast<int>(
      std::clamp<int64_t>(common::EnvInt("TSPN_SERVE_THREADS", o.num_threads),
                          1, 64));
  o.max_queue_depth = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_QUEUE_DEPTH", o.max_queue_depth), 1, 1 << 20);
  o.max_batch = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_MAX_BATCH", o.max_batch), 1, 4096);
  o.coalesce_window_us = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_COALESCE_US", o.coalesce_window_us), 0,
      1000000);
  o.default_deadline_ms = std::clamp<int64_t>(
      common::EnvInt("TSPN_SERVE_DEADLINE_MS", o.default_deadline_ms), 0,
      3600000);
  return o;
}

InferenceEngine::InferenceEngine(const eval::NextPoiModel& model,
                                 EngineOptions options)
    : model_(model), options_(options) {
  TSPN_CHECK_GE(options_.num_threads, 1);
  TSPN_CHECK_GE(options_.max_batch, 1);
  TSPN_CHECK_GE(options_.max_queue_depth, 1);
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back(&InferenceEngine::WorkerLoop, this);
  }
}

InferenceEngine::~InferenceEngine() { Shutdown(); }

double InferenceEngine::EstimatedWaitMsLocked() const {
  const double p95_batch_ms = batch_p95_ms_.load(std::memory_order_relaxed);
  if (p95_batch_ms <= 0.0) return 0.0;  // cold start: no evidence to shed on
  const int64_t batches_ahead =
      static_cast<int64_t>(queue_.size()) / options_.max_batch + 1;
  return p95_batch_ms * static_cast<double>(batches_ahead) /
         static_cast<double>(options_.num_threads);
}

InferenceEngine::Clock::time_point InferenceEngine::BatchCloseTimeLocked()
    const {
  auto close = queue_.begin()->second.enqueue_time +
               std::chrono::microseconds(options_.coalesce_window_us);
  // Deadline-aware cap: the batch must close early enough that the
  // tightest-deadline queued request is still served within its budget —
  // otherwise a long coalesce window turns feasible deadlines into
  // kExpired drops at dequeue. Within a priority class the map is
  // deadline-ascending, so each class head carries that class's earliest
  // deadline; lower_bound jumps visit one entry per class (at most
  // kMaxPriority+1 of them) instead of scanning the queue.
  Clock::time_point tightest = Clock::time_point::max();
  auto it = queue_.begin();
  while (it != queue_.end()) {
    tightest = std::min(tightest, it->second.deadline);
    const uint8_t cls = std::get<0>(it->first);
    it = queue_.lower_bound(QueueKey{static_cast<uint8_t>(cls + 1),
                                     Clock::time_point::min(), 0});
  }
  if (tightest == Clock::time_point::max()) return close;  // no deadlines
  const double margin_ms = std::max(
      batch_p95_ms_.load(std::memory_order_relaxed), kMinServeMarginMs);
  const auto margin =
      std::chrono::microseconds(static_cast<int64_t>(margin_ms * 1000.0));
  // A cap already in the past simply means "serve right now".
  return std::min(close, tightest - margin);
}

InferenceEngine::Queue::iterator InferenceEngine::EvictableLocked(
    Priority incoming) {
  if (queue_.empty()) return queue_.end();
  // rbegin() is the lowest queued class (inverted priority sorts it last);
  // the victim is that class's FIRST entry — its nearest deadline — but
  // only an arrival of a strictly higher class may displace it.
  const uint8_t lowest_class = std::get<0>(std::prev(queue_.end())->first);
  if (lowest_class <= InvertPriority(incoming)) return queue_.end();
  return queue_.lower_bound(
      QueueKey{lowest_class, Clock::time_point::min(), 0});
}

void InferenceEngine::CompleteShed(Request&& entry, ShedReason reason) {
  auto error = std::make_exception_ptr(
      ShedError(reason, std::string("request shed (") +
                            ShedReasonName(reason) + ")"));
  if (entry.callback) {
    entry.callback(eval::RecommendResponse{}, error);
  } else {
    entry.promise.set_exception(error);
  }
}

ShedReason InferenceEngine::EnqueueEntry(Request& entry,
                                         const AdmissionClass& admission,
                                         std::unique_lock<std::mutex>& lock) {
  entry.enqueue_time = Clock::now();
  entry.priority = admission.priority;
  const int64_t deadline_ms = admission.deadline_ms > 0
                                  ? admission.deadline_ms
                                  : options_.default_deadline_ms;
  entry.deadline = deadline_ms > 0
                       ? entry.enqueue_time +
                             std::chrono::milliseconds(deadline_ms)
                       : Clock::time_point::max();

  // Deadline feasibility: refusing now is strictly better than queueing a
  // request that will expire before a worker reaches it — the caller learns
  // immediately and the queue slot goes to work that can still succeed.
  if (deadline_ms > 0 &&
      static_cast<double>(deadline_ms) < EstimatedWaitMsLocked()) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    return ShedReason::kDeadlineUnmeetable;
  }

  std::optional<Request> victim;
  if (static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
    auto it = EvictableLocked(entry.priority);
    if (it == queue_.end()) {
      lock.unlock();
      rejected_.fetch_add(1, std::memory_order_relaxed);
      shed_capacity_.fetch_add(1, std::memory_order_relaxed);
      return ShedReason::kCapacity;
    }
    victim = std::move(it->second);
    queue_.erase(it);
    // The victim WAS submitted; it is a capacity shed, not a rejection.
    shed_capacity_.fetch_add(1, std::memory_order_relaxed);
  }

  // Count the submission (lock-free: the counter is atomic) before the
  // request becomes visible to workers so GetStats() never observes
  // completed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queue_.emplace(QueueKey{InvertPriority(entry.priority), entry.deadline,
                          next_seq_++},
                 std::move(entry));
  lock.unlock();
  not_empty_.notify_one();
  // The victim's continuation runs here on the submitter thread, outside
  // every engine lock (it may itself be slow or re-entrant).
  if (victim.has_value()) {
    CompleteShed(std::move(*victim), ShedReason::kEvicted);
  }
  return ShedReason::kNone;
}

std::future<eval::RecommendResponse> InferenceEngine::Submit(
    const eval::RecommendRequest& request) {
  return Submit(request, AdmissionClass{});
}

std::future<eval::RecommendResponse> InferenceEngine::Submit(
    const eval::RecommendRequest& request, const AdmissionClass& admission) {
  Request entry;
  entry.request = request;
  std::future<eval::RecommendResponse> future = entry.promise.get_future();
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [&] {
    return stopping_ ||
           static_cast<int64_t>(queue_.size()) < options_.max_queue_depth ||
           EvictableLocked(admission.priority) != queue_.end();
  });
  if (stopping_) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    entry.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceEngine is shut down")));
    return future;
  }
  const ShedReason reason = EnqueueEntry(entry, admission, lock);
  if (reason != ShedReason::kNone) {
    entry.promise.set_exception(std::make_exception_ptr(ShedError(
        reason,
        std::string("request shed (") + ShedReasonName(reason) + ")")));
  }
  return future;
}

std::future<eval::RecommendResponse> InferenceEngine::Submit(
    const data::SampleRef& sample, int64_t top_n) {
  eval::RecommendRequest request;
  request.sample = sample;
  request.top_n = top_n;
  return Submit(request);
}

bool InferenceEngine::TrySubmit(const eval::RecommendRequest& request,
                                std::future<eval::RecommendResponse>* out) {
  Request entry;
  entry.request = request;
  std::future<eval::RecommendResponse> future = entry.promise.get_future();
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (EnqueueEntry(entry, AdmissionClass{}, lock) != ShedReason::kNone) {
    return false;
  }
  *out = std::move(future);
  return true;
}

bool InferenceEngine::TrySubmitAsync(const eval::RecommendRequest& request,
                                     ResponseCallback callback) {
  return TrySubmitAsync(request, AdmissionClass{}, std::move(callback),
                        nullptr);
}

bool InferenceEngine::TrySubmitAsync(const eval::RecommendRequest& request,
                                     const AdmissionClass& admission,
                                     ResponseCallback callback,
                                     ShedReason* shed_reason) {
  Request entry;
  entry.request = request;
  entry.callback = std::move(callback);
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (shed_reason != nullptr) *shed_reason = ShedReason::kShutdown;
    return false;
  }
  const ShedReason reason = EnqueueEntry(entry, admission, lock);
  if (reason != ShedReason::kNone) {
    // Contract: the callback is NOT invoked on refusal — the caller turns
    // the reason into its own immediate error reply.
    if (shed_reason != nullptr) *shed_reason = reason;
    return false;
  }
  return true;
}

void InferenceEngine::WorkerLoop() {
  // Batch scratch lives for the worker's whole life: its vectors' heap
  // capacity is reused across every batch this worker serves.
  WorkerScratch scratch;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalesce: the batch closes when it is full, when the next-to-serve
    // request has waited out the coalescing window, or when waiting any
    // longer would push the tightest queued deadline past its serve margin
    // — whichever comes first. A zero window serves whatever is queued
    // right now. The close time is recomputed after every wakeup because
    // an arrival may carry a deadline tighter than anything seen so far.
    while (static_cast<int64_t>(queue_.size()) < options_.max_batch &&
           !stopping_) {
      if (queue_.empty()) break;  // another worker drained it while we slept
      const auto wait_deadline = BatchCloseTimeLocked();
      if (Clock::now() >= wait_deadline) break;
      if (not_empty_.wait_until(lock, wait_deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    // Form the batch from the queue head (highest priority, earliest
    // deadline first). Entries whose deadline already passed are set aside
    // instead of taking a batch slot — the slot goes to work that can
    // still make its deadline.
    const auto now = Clock::now();
    scratch.batch.clear();
    scratch.expired.clear();
    while (!queue_.empty() &&
           static_cast<int64_t>(scratch.batch.size()) < options_.max_batch) {
      auto it = queue_.begin();
      Request entry = std::move(it->second);
      queue_.erase(it);
      if (entry.deadline <= now) {
        scratch.expired.push_back(std::move(entry));
      } else {
        scratch.batch.push_back(std::move(entry));
      }
    }
    lock.unlock();
    not_full_.notify_all();
    if (!scratch.expired.empty()) {
      expired_in_queue_.fetch_add(
          static_cast<int64_t>(scratch.expired.size()),
          std::memory_order_relaxed);
      for (Request& entry : scratch.expired) {
        CompleteShed(std::move(entry), ShedReason::kExpired);
      }
      scratch.expired.clear();
    }
    ServeBatch(scratch);
  }
}

void InferenceEngine::ServeBatch(WorkerScratch& scratch) {
  std::vector<Request>& batch = scratch.batch;
  if (batch.empty()) return;
  // The v2 batch contract serves every request at its own top_n with its
  // own constraints, so a heterogeneous coalesced batch needs no grouping
  // or per-request truncation.
  std::vector<eval::RecommendRequest>& requests = scratch.requests;
  requests.clear();
  requests.reserve(batch.size());
  for (Request& r : batch) {
    // Moved, not copied: the entry's request (constraint vectors included)
    // is not read again after the batch is served.
    requests.push_back(std::move(r.request));
  }
  // A throwing model must not escape the worker thread (std::terminate) or
  // strand the batch's futures; the failure is confined to these requests.
  const auto serve_start = Clock::now();
  std::vector<eval::RecommendResponse> results;
  std::exception_ptr error;
  try {
    results = model_.RecommendBatch(common::Span<eval::RecommendRequest>(requests));
  } catch (...) {
    error = std::current_exception();
  }
  const auto done = Clock::now();
  // Record the batch in the stats BEFORE fulfilling any promise: a client
  // that calls GetStats() right after future.get() must see its own request
  // counted.
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++batches_;
    completed_ += static_cast<int64_t>(batch.size());
    batch_size_sum_ += static_cast<int64_t>(batch.size());
    max_batch_observed_ =
        std::max(max_batch_observed_, static_cast<int64_t>(batch.size()));
    for (const Request& r : batch) {
      const double ms =
          std::chrono::duration<double, std::milli>(done - r.enqueue_time)
              .count();
      // Bounded ring of recent latencies: percentiles reflect recent traffic
      // and the history cannot grow with total requests served.
      if (latencies_ms_.size() < kMaxLatencySamples) {
        latencies_ms_.push_back(ms);
      } else {
        latencies_ms_[latency_next_] = ms;
      }
      latency_next_ = (latency_next_ + 1) % kMaxLatencySamples;
    }
    // Batch service time feeds the admission estimate: a bounded ring keeps
    // the p95 tracking the current load, and the cached atomic lets the
    // submit path read it without touching this mutex.
    const double batch_ms =
        std::chrono::duration<double, std::milli>(done - serve_start).count();
    if (batch_ms_.size() < kMaxBatchSamples) {
      batch_ms_.push_back(batch_ms);
    } else {
      batch_ms_[batch_ms_next_] = batch_ms;
    }
    batch_ms_next_ = (batch_ms_next_ + 1) % kMaxBatchSamples;
    batch_p95_ms_.store(common::PercentileOf(batch_ms_, 0.95),
                        std::memory_order_relaxed);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].callback) {
      // Continuation path: the completion runs right here on the serving
      // worker — the whole point of TrySubmitAsync is that no other thread
      // sits parked on a future waiting for this moment.
      if (error != nullptr) {
        batch[i].callback(eval::RecommendResponse{}, error);
      } else {
        batch[i].callback(std::move(results[i]), nullptr);
      }
    } else if (error != nullptr) {
      batch[i].promise.set_exception(error);
    } else {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
  // Drop the served entries now, not at the next batch fill: a gateway
  // continuation holds a shared_ptr to its own deployment, so parking it in
  // the scratch would keep a swapped-out deployment (and these workers)
  // alive until this worker happens to serve again — a reference cycle on
  // an idle engine. clear() keeps the vector's capacity, so the scratch
  // reuse this struct exists for is unaffected.
  batch.clear();
}

void InferenceEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t InferenceEngine::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(queue_.size());
}

EngineStats InferenceEngine::GetStats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_capacity = shed_capacity_.load(std::memory_order_relaxed);
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.completed = completed_;
  s.batches = batches_;
  s.max_batch_observed = max_batch_observed_;
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(batch_size_sum_) /
                         static_cast<double>(batches_)
                   : 0.0;
  s.p50_latency_ms = common::PercentileOf(latencies_ms_, 0.50);
  s.p95_latency_ms = common::PercentileOf(latencies_ms_, 0.95);
  return s;
}

}  // namespace tspn::serve
