#ifndef TSPN_SERVE_INFERENCE_ENGINE_H_
#define TSPN_SERVE_INFERENCE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "data/trajectory.h"
#include "eval/model_api.h"
#include "eval/recommend.h"
#include "serve/admission.h"

namespace tspn::serve {

/// Tuning knobs for InferenceEngine. Every field has an environment-variable
/// override read by FromEnv() so deployments can be tuned without a rebuild:
///
///   TSPN_SERVE_THREADS      worker threads draining the queue   (default 2)
///   TSPN_SERVE_QUEUE_DEPTH  bounded request-queue capacity      (default 1024)
///   TSPN_SERVE_MAX_BATCH    max requests coalesced per batch    (default 32)
///   TSPN_SERVE_COALESCE_US  max micro-seconds a worker waits for
///                           the batch to fill before serving it (default 200)
///   TSPN_SERVE_DEADLINE_MS  deadline applied to requests that carry none;
///                           0 disables (default 0)
struct EngineOptions {
  int num_threads = 2;
  int64_t max_queue_depth = 1024;
  int64_t max_batch = 32;
  int64_t coalesce_window_us = 200;

  /// Default completion budget for requests whose AdmissionClass carries no
  /// deadline (v1 traffic included). 0 = such requests never expire.
  int64_t default_deadline_ms = 0;

  /// Defaults above overridden from the environment, clamped to sane ranges.
  static EngineOptions FromEnv();
};

/// Aggregate serving counters; returned by InferenceEngine::GetStats().
/// Invariant: submitted = completed + shed(evicted) + expired_in_queue +
/// still-queued — every accepted request ends in exactly one bucket, and
/// rejected requests were never accepted at all.
struct EngineStats {
  int64_t submitted = 0;   ///< accepted requests
  int64_t rejected = 0;    ///< submit-time refusals (full, infeasible, shutdown)
  int64_t completed = 0;   ///< promises fulfilled by serving a batch
  int64_t batches = 0;     ///< RecommendBatch invocations
  int64_t max_batch_observed = 0;
  double mean_batch_size = 0.0;
  double p50_latency_ms = 0.0;  ///< submit-to-completion, per request
  double p95_latency_ms = 0.0;

  /// Submit-time refusals because the deadline could not plausibly be met
  /// (subset of `rejected`).
  int64_t shed_deadline = 0;
  /// Capacity sheds: submit-time refusals with the queue full (subset of
  /// `rejected`) plus queued requests evicted by higher-priority arrivals
  /// (subset of `submitted`).
  int64_t shed_capacity = 0;
  /// Accepted requests dropped at dequeue because their deadline had
  /// already passed — they never occupied a batch slot (subset of
  /// `submitted`).
  int64_t expired_in_queue = 0;
};

/// Multi-threaded batching inference front-end over any NextPoiModel: a
/// bounded deadline/priority-aware admission queue, a pool of worker
/// threads, and time/size-based request coalescing. A worker that pops a
/// request keeps collecting until the batch reaches `max_batch`, the
/// next-to-serve request has waited `coalesce_window_us`, or waiting any
/// longer would run the tightest queued deadline out of serving time
/// (deadline-aware batch formation: the window is capped at that deadline
/// minus the rolling p95 batch service time), then serves the whole batch
/// with one RecommendBatch() call — with TSPN-RA that turns the
/// queue's concurrent single queries into shared GEMMs against the cached
/// tile/POI matrices.
///
/// Admission control (docs/serving.md "Admission control"): the queue is
/// ordered by (priority desc, deadline asc, arrival) — earliest-deadline-
/// first within each class. At submit, a request whose deadline is below
/// the estimated queue wait (rolling p95 batch service time x batches
/// ahead / workers) is refused immediately rather than queued to die. When
/// the queue is full, an arrival of a strictly higher class evicts the
/// nearest-deadline entry of the lowest queued class; otherwise the arrival
/// is refused. At dequeue, entries whose deadline has already passed are
/// dropped without occupying a batch slot. Every shed path completes the
/// request's future/continuation with a ShedError carrying the reason — no
/// caller ever hangs.
///
/// Requests are structured eval::RecommendRequests, and a coalesced batch
/// may mix top_n values and constraints freely: the v2 model contract
/// serves every request in a batch at its own top_n with its own
/// constraints (filter-before-top-k), so nothing is served at "batch max
/// then truncated" anymore — the pre-v2 scheme, which per-request
/// constraints made unsound (a truncated shared ranking cannot fill a
/// filtered request's top_n). Compatibility grouping is therefore
/// unnecessary; batches stay maximal.
///
/// The model must be trained (or checkpoint-loaded) before submissions
/// start and must honour the NextPoiModel concurrency contract
/// (model_api.h).
class InferenceEngine {
 public:
  explicit InferenceEngine(const eval::NextPoiModel& model,
                           EngineOptions options = EngineOptions::FromEnv());
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues a structured request at the default admission class
  /// (interactive, no explicit deadline), blocking while the queue is at
  /// capacity (backpressure). After Shutdown() the returned future holds a
  /// std::runtime_error.
  std::future<eval::RecommendResponse> Submit(
      const eval::RecommendRequest& request);

  /// Class-aware blocking submit. The returned future holds a ShedError
  /// when the request is refused (infeasible deadline, full queue with
  /// nothing evictable), evicted, or expires in the queue.
  std::future<eval::RecommendResponse> Submit(
      const eval::RecommendRequest& request, const AdmissionClass& admission);

  /// Convenience overload for unconstrained queries.
  std::future<eval::RecommendResponse> Submit(const data::SampleRef& sample,
                                              int64_t top_n);

  /// Non-blocking variant: returns false (and counts a rejection) when the
  /// queue is full or the engine is shut down.
  bool TrySubmit(const eval::RecommendRequest& request,
                 std::future<eval::RecommendResponse>* out);

  /// Completion continuation for the callback submit path. Invoked exactly
  /// once per accepted request: with the response and a null error on
  /// success, or with a default-constructed response and an exception on
  /// failure (the model's, or a ShedError for evicted/expired requests).
  /// Runs on the worker thread that served (or expired) the batch — except
  /// for eviction, which runs it on the submitter thread whose arrival
  /// displaced the request.
  using ResponseCallback =
      std::function<void(eval::RecommendResponse response,
                         std::exception_ptr error)>;

  /// Continuation-style submit — the async front-end hook. Instead of
  /// parking a thread on a future, the caller hands over a callback that
  /// runs after the batch completes; no thread is ever blocked per
  /// in-flight request. Returns false (counting a rejection, callback NOT
  /// invoked) when the request is refused at submit, so an event loop can
  /// convert overload into an immediate error reply. The callback must be
  /// quick and must not throw: it runs on a serving worker, so heavy work
  /// in it stalls batch formation.
  bool TrySubmitAsync(const eval::RecommendRequest& request,
                      ResponseCallback callback);

  /// Class-aware continuation submit. On refusal, *shed_reason (when
  /// non-null) reports why — kDeadlineUnmeetable, kCapacity or kShutdown —
  /// so the gateway can emit a typed error frame.
  bool TrySubmitAsync(const eval::RecommendRequest& request,
                      const AdmissionClass& admission,
                      ResponseCallback callback,
                      ShedReason* shed_reason = nullptr);

  /// Stops accepting requests, serves everything already queued, and joins
  /// the workers. Idempotent; also run by the destructor. Queued requests
  /// whose deadline passes before their batch forms still complete — with
  /// a ShedError(kExpired), not a response.
  void Shutdown();

  EngineStats GetStats() const;

  /// Requests queued but not yet claimed by a worker — the gateway's
  /// per-endpoint queue-depth signal.
  int64_t QueueDepth() const;

  const EngineOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    eval::RecommendRequest request;
    /// Exactly one completion channel is armed per request: the promise for
    /// the future-returning submits, the callback for TrySubmitAsync.
    std::promise<eval::RecommendResponse> promise;
    ResponseCallback callback;
    Clock::time_point enqueue_time;
    /// Absolute completion deadline; time_point::max() when none applies.
    Clock::time_point deadline = Clock::time_point::max();
    Priority priority = Priority::kInteractive;
  };

  /// Queue order: priority desc (stored inverted so map order serves the
  /// highest class first), deadline asc (EDF; no-deadline entries sort
  /// after every deadline), then arrival sequence for FIFO stability.
  /// begin() is the next request to serve; the eviction victim is the
  /// FIRST entry of the LAST priority class present (nearest deadline of
  /// the lowest class).
  using QueueKey = std::tuple<uint8_t, Clock::time_point, uint64_t>;
  using Queue = std::map<QueueKey, Request>;

  /// Per-worker reusable scratch: batch entries and the flattened request
  /// view keep their heap capacity across batches, so steady-state serving
  /// stops paying two vector growths per batch on the hot path.
  struct WorkerScratch {
    std::vector<Request> batch;
    std::vector<Request> expired;  ///< dequeued past-deadline entries
    std::vector<eval::RecommendRequest> requests;
  };

  /// Shared tail of every submit: stamps the entry's times and class, runs
  /// admission, and on success publishes it and wakes a worker (releasing
  /// `lock`, which must hold mutex_ on entry — it is released on every
  /// path). On refusal the entry is left untouched for the caller to
  /// complete; an evicted victim is completed here, after the unlock. The
  /// caller must have checked stopping_ already.
  ShedReason EnqueueEntry(Request& entry, const AdmissionClass& admission,
                          std::unique_lock<std::mutex>& lock);

  /// Expected queue wait for a new arrival: rolling p95 batch service time
  /// x full batches ahead of it / worker threads. Zero until the first
  /// batch completes (cold start admits everything).
  double EstimatedWaitMsLocked() const;

  /// When the forming batch must close: the coalesce window measured from
  /// the next-to-serve request's arrival, capped at the tightest queued
  /// deadline minus a serve margin (rolling p95 batch time, floored at a
  /// small constant) so coalescing never expires a feasible request.
  /// Requires mutex_ held and a non-empty queue.
  Clock::time_point BatchCloseTimeLocked() const;

  /// The eviction victim for an arrival of class `incoming`: the
  /// nearest-deadline entry of the lowest queued class, provided that class
  /// is strictly below `incoming`; queue_.end() when nothing is evictable.
  Queue::iterator EvictableLocked(Priority incoming);

  /// Completes a shed request outside the queue lock: the future/callback
  /// receives a ShedError carrying `reason`.
  static void CompleteShed(Request&& entry, ShedReason reason);

  void WorkerLoop();
  void ServeBatch(WorkerScratch& scratch);

  const eval::NextPoiModel& model_;
  const EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  Queue queue_;
  uint64_t next_seq_ = 0;
  bool stopping_ = false;

  /// Latency percentiles come from a bounded ring of the most recent
  /// samples, so a long-lived engine's stats memory stays constant.
  static constexpr size_t kMaxLatencySamples = 4096;

  /// Rolling window of batch service durations backing the admission
  /// estimate; small so the p95 tracks load shifts quickly.
  static constexpr size_t kMaxBatchSamples = 64;

  /// Submit-path counters are atomics, not stats_mutex_-guarded: Submit and
  /// TrySubmit touch no lock beyond the queue mutex they already hold.
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> shed_capacity_{0};
  std::atomic<int64_t> expired_in_queue_{0};

  /// Rolling p95 batch service time in ms, written by workers after each
  /// batch, read lock-free by the admission estimate.
  std::atomic<double> batch_p95_ms_{0.0};

  mutable std::mutex stats_mutex_;
  int64_t completed_ = 0;
  int64_t batches_ = 0;
  int64_t batch_size_sum_ = 0;
  int64_t max_batch_observed_ = 0;
  std::vector<double> latencies_ms_;  // ring buffer, see kMaxLatencySamples
  size_t latency_next_ = 0;
  std::vector<double> batch_ms_;      // ring buffer, see kMaxBatchSamples
  size_t batch_ms_next_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_INFERENCE_ENGINE_H_
