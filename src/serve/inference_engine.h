#ifndef TSPN_SERVE_INFERENCE_ENGINE_H_
#define TSPN_SERVE_INFERENCE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "data/trajectory.h"
#include "eval/model_api.h"
#include "eval/recommend.h"

namespace tspn::serve {

/// Tuning knobs for InferenceEngine. Every field has an environment-variable
/// override read by FromEnv() so deployments can be tuned without a rebuild:
///
///   TSPN_SERVE_THREADS      worker threads draining the queue   (default 2)
///   TSPN_SERVE_QUEUE_DEPTH  bounded request-queue capacity      (default 1024)
///   TSPN_SERVE_MAX_BATCH    max requests coalesced per batch    (default 32)
///   TSPN_SERVE_COALESCE_US  max micro-seconds a worker waits for
///                           the batch to fill before serving it (default 200)
struct EngineOptions {
  int num_threads = 2;
  int64_t max_queue_depth = 1024;
  int64_t max_batch = 32;
  int64_t coalesce_window_us = 200;

  /// Defaults above overridden from the environment, clamped to sane ranges.
  static EngineOptions FromEnv();
};

/// Aggregate serving counters; returned by InferenceEngine::GetStats().
struct EngineStats {
  int64_t submitted = 0;   ///< accepted requests
  int64_t rejected = 0;    ///< TrySubmit refusals (queue full) + post-shutdown
  int64_t completed = 0;   ///< promises fulfilled
  int64_t batches = 0;     ///< RecommendBatch invocations
  int64_t max_batch_observed = 0;
  double mean_batch_size = 0.0;
  double p50_latency_ms = 0.0;  ///< submit-to-completion, per request
  double p95_latency_ms = 0.0;
};

/// Multi-threaded batching inference front-end over any NextPoiModel: a
/// bounded request queue, a pool of worker threads, and time/size-based
/// request coalescing. A worker that pops a request keeps collecting until
/// the batch reaches `max_batch` or the oldest request has waited
/// `coalesce_window_us`, then serves the whole batch with one
/// RecommendBatch() call — with TSPN-RA that turns the queue's concurrent
/// single queries into shared GEMMs against the cached tile/POI matrices.
///
/// Requests are structured eval::RecommendRequests, and a coalesced batch
/// may mix top_n values and constraints freely: the v2 model contract
/// serves every request in a batch at its own top_n with its own
/// constraints (filter-before-top-k), so nothing is served at "batch max
/// then truncated" anymore — the pre-v2 scheme, which per-request
/// constraints made unsound (a truncated shared ranking cannot fill a
/// filtered request's top_n). Compatibility grouping is therefore
/// unnecessary; batches stay maximal.
///
/// The model must be trained (or checkpoint-loaded) before submissions
/// start and must honour the NextPoiModel concurrency contract
/// (model_api.h).
class InferenceEngine {
 public:
  explicit InferenceEngine(const eval::NextPoiModel& model,
                           EngineOptions options = EngineOptions::FromEnv());
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues a structured request, blocking while the queue is at capacity
  /// (backpressure). After Shutdown() the returned future holds a
  /// std::runtime_error.
  std::future<eval::RecommendResponse> Submit(
      const eval::RecommendRequest& request);

  /// Convenience overload for unconstrained queries.
  std::future<eval::RecommendResponse> Submit(const data::SampleRef& sample,
                                              int64_t top_n);

  /// Non-blocking variant: returns false (and counts a rejection) when the
  /// queue is full or the engine is shut down.
  bool TrySubmit(const eval::RecommendRequest& request,
                 std::future<eval::RecommendResponse>* out);

  /// Completion continuation for the callback submit path. Invoked exactly
  /// once per accepted request, on the worker thread that served its batch:
  /// with the response and a null error on success, or with a
  /// default-constructed response and the model's exception on failure.
  using ResponseCallback =
      std::function<void(eval::RecommendResponse response,
                         std::exception_ptr error)>;

  /// Continuation-style submit — the async front-end hook. Instead of
  /// parking a thread on a future, the caller hands over a callback that the
  /// serving worker runs after the batch completes; no thread is ever
  /// blocked per in-flight request. Returns false (counting a rejection,
  /// callback NOT invoked) when the queue is full or the engine is shut
  /// down, so an event loop can convert overload into an immediate error
  /// reply. The callback must be quick and must not throw: it runs on a
  /// serving worker, so heavy work in it stalls batch formation.
  bool TrySubmitAsync(const eval::RecommendRequest& request,
                      ResponseCallback callback);

  /// Stops accepting requests, serves everything already queued, and joins
  /// the workers. Idempotent; also run by the destructor.
  void Shutdown();

  EngineStats GetStats() const;

  /// Requests queued but not yet claimed by a worker — the gateway's
  /// per-endpoint queue-depth signal.
  int64_t QueueDepth() const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Request {
    eval::RecommendRequest request;
    /// Exactly one completion channel is armed per request: the promise for
    /// the future-returning submits, the callback for TrySubmitAsync.
    std::promise<eval::RecommendResponse> promise;
    ResponseCallback callback;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  /// Per-worker reusable scratch: batch entries and the flattened request
  /// view keep their heap capacity across batches, so steady-state serving
  /// stops paying two vector growths per batch on the hot path.
  struct WorkerScratch {
    std::vector<Request> batch;
    std::vector<eval::RecommendRequest> requests;
  };

  std::future<eval::RecommendResponse> Enqueue(
      const eval::RecommendRequest& request,
      std::unique_lock<std::mutex>& lock);
  /// Shared tail of every accepted submit: stamps the enqueue time, counts
  /// the submission, publishes the entry and wakes a worker. `lock` must
  /// hold mutex_ on entry and is released before the notify.
  void EnqueueEntry(Request entry, std::unique_lock<std::mutex>& lock);
  void WorkerLoop();
  void ServeBatch(WorkerScratch& scratch);

  const eval::NextPoiModel& model_;
  const EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  /// Latency percentiles come from a bounded ring of the most recent
  /// samples, so a long-lived engine's stats memory stays constant.
  static constexpr size_t kMaxLatencySamples = 4096;

  /// Submit-path counters are atomics, not stats_mutex_-guarded: Submit and
  /// TrySubmit touch no lock beyond the queue mutex they already hold.
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};

  mutable std::mutex stats_mutex_;
  int64_t completed_ = 0;
  int64_t batches_ = 0;
  int64_t batch_size_sum_ = 0;
  int64_t max_batch_observed_ = 0;
  std::vector<double> latencies_ms_;  // ring buffer, see kMaxLatencySamples
  size_t latency_next_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_INFERENCE_ENGINE_H_
