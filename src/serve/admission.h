#ifndef TSPN_SERVE_ADMISSION_H_
#define TSPN_SERVE_ADMISSION_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tspn::serve {

/// Request priority classes, ordered: a higher value is served first and may
/// evict queued work of a strictly lower class under overload. The wire
/// encoding (serve/codec.h) carries the raw uint8 value, so the numeric
/// assignments are part of the v2 wire contract and must never be reordered.
enum class Priority : uint8_t {
  kBackground = 0,  ///< best-effort (backfills, cache warmers)
  kBulk = 1,        ///< throughput-oriented batch traffic
  kInteractive = 2, ///< user-facing; the default for v1 frames and callers
};

/// Highest valid Priority value; anything above it is malformed on the wire.
inline constexpr uint8_t kMaxPriority = 2;

/// Human-readable class name ("kInteractive", ...), for logs and errors.
const char* PriorityName(Priority priority);

/// Per-request admission parameters, carried by v2 request frames and by the
/// class-aware submit overloads. The defaults reproduce v1 behavior exactly:
/// interactive class, no deadline.
struct AdmissionClass {
  /// Relative completion budget in milliseconds, measured from submit.
  /// 0 disables the deadline (the engine may still impose
  /// EngineOptions::default_deadline_ms).
  int64_t deadline_ms = 0;

  Priority priority = Priority::kInteractive;
};

/// Why an accepted-or-offered request was shed instead of served.
enum class ShedReason : uint8_t {
  kNone = 0,
  kDeadlineUnmeetable,  ///< refused at submit: estimated wait exceeds budget
  kCapacity,            ///< refused at submit: queue full, nothing evictable
  kEvicted,             ///< was queued, displaced by higher-priority work
  kExpired,             ///< was queued, deadline passed before a batch slot
  kShutdown,            ///< refused at submit: engine is shutting down
};

const char* ShedReasonName(ShedReason reason);

/// The distinct completion status of a shed request: futures hold it,
/// continuations receive it as their exception_ptr. Callers that care which
/// overload action fired (deadline vs capacity vs expiry) read reason().
class ShedError : public std::runtime_error {
 public:
  ShedError(ShedReason reason, const std::string& message)
      : std::runtime_error(message), reason_(reason) {}

  ShedReason reason() const { return reason_; }

 private:
  ShedReason reason_;
};

}  // namespace tspn::serve

#endif  // TSPN_SERVE_ADMISSION_H_
