#ifndef TSPN_BASELINES_HMT_GRN_H_
#define TSPN_BASELINES_HMT_GRN_H_

#include <memory>

#include "baselines/base.h"
#include "nn/gru.h"
#include "spatial/grid_index.h"

namespace tspn::baselines {

/// HMT-GRN baseline (Lim et al. 2022): hierarchical multi-task learning.
/// A recurrent encoder feeds three heads — coarse grid region, fine grid
/// region and POI — trained jointly; inference runs a hierarchical beam
/// search over region levels before scoring POIs, which is what makes its
/// inference slow in Table V (and imprecise when beams miss, Sec. VI-B).
class HmtGrn : public SequenceModelBase {
 public:
  HmtGrn(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
         uint64_t seed);

  std::string name() const override { return "HMT-GRN"; }

 protected:
  /// Hierarchical beam search (not the base's all-POI ranking); constraints
  /// filter beam candidates and the global back-fill before top-n selection,
  /// so constrained queries still fill top_n. Reads only trained weights and
  /// per-call locals, so concurrent calls are safe (NextPoiModel contract).
  eval::RecommendResponse RecommendImpl(
      const eval::RecommendRequest& request) const override;

  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Tensor SampleLoss(const Prefix& prefix, common::Rng& rng) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  static constexpr int32_t kCoarseCells = 6;
  static constexpr int32_t kFineCells = 12;
  static constexpr int64_t kBeamCoarse = 4;
  static constexpr int64_t kBeamFine = 10;

  nn::Tensor EncodeState(const Prefix& prefix) const;

  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), slot_embedding(48, dm, rng),
          gru(dm, dm, rng), out(dm, dm, rng),
          coarse_head(dm, kCoarseCells * kCoarseCells, rng),
          fine_head(dm, kFineCells * kFineCells, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&slot_embedding);
      RegisterChild(&gru);
      RegisterChild(&out);
      RegisterChild(&coarse_head);
      RegisterChild(&fine_head);
    }
    nn::Embedding poi_embedding;
    nn::Embedding slot_embedding;
    nn::GruCell gru;
    nn::Linear out;
    nn::Linear coarse_head;
    nn::Linear fine_head;
  };
  std::unique_ptr<Net> net_;
  spatial::GridIndex coarse_grid_;
  spatial::GridIndex fine_grid_;
  std::vector<std::vector<int64_t>> pois_per_fine_cell_;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_HMT_GRN_H_
