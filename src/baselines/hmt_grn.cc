#include "baselines/hmt_grn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "eval/constraints.h"

namespace tspn::baselines {

HmtGrn::HmtGrn(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
               uint64_t seed)
    : SequenceModelBase(std::move(dataset)),
      coarse_grid_(dataset_->profile().bbox, kCoarseCells),
      fine_grid_(dataset_->profile().bbox, kFineCells) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
  pois_per_fine_cell_.assign(static_cast<size_t>(fine_grid_.NumTiles()), {});
  for (const data::Poi& poi : dataset_->pois()) {
    pois_per_fine_cell_[static_cast<size_t>(fine_grid_.TileOf(poi.loc))].push_back(
        poi.id);
  }
}

nn::Tensor HmtGrn::EncodeState(const Prefix& prefix) const {
  nn::Tensor x = nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
                         net_->slot_embedding.Forward(prefix.time_slots));
  nn::Tensor states = net_->gru.Unroll(x);
  return nn::Row(states, states.dim(0) - 1);
}

nn::Tensor HmtGrn::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor h = EncodeState(prefix);
  return nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h));
}

nn::Tensor HmtGrn::SampleLoss(const Prefix& prefix, common::Rng& rng) const {
  (void)rng;
  nn::Tensor h = EncodeState(prefix);
  const data::Poi& target = dataset_->poi(prefix.target_poi);
  nn::Tensor poi_loss = nn::CrossEntropyWithLogits(
      nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h)),
      prefix.target_poi);
  nn::Tensor coarse_loss = nn::CrossEntropyWithLogits(
      net_->coarse_head.Forward(h), coarse_grid_.TileOf(target.loc));
  nn::Tensor fine_loss = nn::CrossEntropyWithLogits(
      net_->fine_head.Forward(h), fine_grid_.TileOf(target.loc));
  return nn::Add(poi_loss, nn::Add(coarse_loss, fine_loss));
}

eval::RecommendResponse HmtGrn::RecommendImpl(
    const eval::RecommendRequest& request) const {
  nn::NoGradGuard guard;
  const int64_t top_n = request.top_n;
  std::unique_ptr<eval::ConstraintEvaluator> filter =
      eval::MakeConstraintFilter(*dataset_, request);
  auto allows = [&](int64_t pid) {
    return filter == nullptr || filter->Allows(pid);
  };
  Prefix prefix = ExtractPrefix(request.sample, max_seq_len_);
  nn::Tensor h = EncodeState(prefix);
  nn::Tensor poi_logits =
      nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h));
  nn::Tensor coarse_lp = nn::LogSoftmax(net_->coarse_head.Forward(h));
  nn::Tensor fine_lp = nn::LogSoftmax(net_->fine_head.Forward(h));
  nn::Tensor poi_lp = nn::LogSoftmax(poi_logits);

  // Hierarchical beam search: top coarse cells -> top fine cells inside the
  // beam -> POIs inside surviving fine cells scored by summed log-probs.
  std::vector<int64_t> coarse_order(static_cast<size_t>(coarse_lp.numel()));
  std::iota(coarse_order.begin(), coarse_order.end(), 0);
  const float* cs = coarse_lp.data();
  std::sort(coarse_order.begin(), coarse_order.end(),
            [&](int64_t a, int64_t b) { return cs[a] > cs[b]; });
  coarse_order.resize(static_cast<size_t>(
      std::min<int64_t>(kBeamCoarse, static_cast<int64_t>(coarse_order.size()))));

  // Fine cells whose centre lies in a surviving coarse cell.
  std::vector<std::pair<double, int64_t>> fine_scored;
  const float* fs = fine_lp.data();
  for (int64_t f = 0; f < fine_grid_.NumTiles(); ++f) {
    geo::GeoPoint center = fine_grid_.TileBounds(f).Center();
    int64_t parent = coarse_grid_.TileOf(center);
    auto it = std::find(coarse_order.begin(), coarse_order.end(), parent);
    if (it == coarse_order.end()) continue;
    fine_scored.emplace_back(fs[f] + cs[parent], f);
  }
  std::sort(fine_scored.begin(), fine_scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (static_cast<int64_t>(fine_scored.size()) > kBeamFine) {
    fine_scored.resize(static_cast<size_t>(kBeamFine));
  }

  const float* ps = poi_lp.data();
  std::vector<std::pair<double, int64_t>> candidates;
  for (const auto& [cell_score, cell] : fine_scored) {
    for (int64_t pid : pois_per_fine_cell_[static_cast<size_t>(cell)]) {
      if (!allows(pid)) continue;  // constraints apply before selection
      candidates.emplace_back(cell_score + ps[pid], pid);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  eval::RecommendResponse response;
  response.stages_used = 2;  // region beam, then POI scoring
  response.tiles_screened = static_cast<int64_t>(fine_scored.size());
  std::vector<bool> used(static_cast<size_t>(num_pois()), false);
  for (const auto& [score, pid] : candidates) {
    if (static_cast<int64_t>(response.items.size()) >= top_n) break;
    if (!used[static_cast<size_t>(pid)]) {
      response.items.push_back({pid, static_cast<float>(score), -1});
      used[static_cast<size_t>(pid)] = true;
    }
  }
  // Back-fill with globally ranked (allowed) POIs if the beam under-produced.
  if (static_cast<int64_t>(response.items.size()) < top_n) {
    std::vector<int64_t> order(static_cast<size_t>(num_pois()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int64_t a, int64_t b) { return ps[a] > ps[b]; });
    for (int64_t pid : order) {
      if (static_cast<int64_t>(response.items.size()) >= top_n) break;
      if (!used[static_cast<size_t>(pid)] && allows(pid)) {
        response.items.push_back({pid, ps[pid], -1});
        used[static_cast<size_t>(pid)] = true;
      }
    }
  }
  return response;
}

}  // namespace tspn::baselines
