#ifndef TSPN_BASELINES_STAN_H_
#define TSPN_BASELINES_STAN_H_

#include <memory>

#include "baselines/base.h"

namespace tspn::baselines {

/// STAN baseline (Luo et al. 2021): bi-layer attention with explicit
/// spatio-temporal interval matrices — every pair of sequence positions gets
/// a learnable bias from its bucketed time gap and distance — plus
/// personalized item frequency (PIF) at scoring. The O(L^2) relation
/// matrices over a long attended window are what make it slow and memory-
/// hungry in Table V; this implementation keeps that signature by attending
/// over an extended window of recent check-ins.
class Stan : public SequenceModelBase {
 public:
  Stan(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
       uint64_t seed);

  std::string name() const override { return "STAN"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }
  void Prepare() override;

 private:
  static constexpr int64_t kNumBuckets = 16;

  /// Pairwise bucket-bias matrix [L, L] from gaps/distances.
  nn::Tensor RelationBias(const Prefix& prefix) const;

  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), slot_embedding(48, dm, rng),
          attn1(dm, rng), attn2(dm, rng), out(dm, dm, rng),
          time_buckets(kNumBuckets, 1, rng), dist_buckets(kNumBuckets, 1, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&slot_embedding);
      RegisterChild(&attn1);
      RegisterChild(&attn2);
      RegisterChild(&out);
      RegisterChild(&time_buckets);
      RegisterChild(&dist_buckets);
      pif_weight = RegisterParameter(nn::Tensor::Full({1}, 0.5f, true));
    }
    nn::Embedding poi_embedding;
    nn::Embedding slot_embedding;
    nn::Attention attn1;
    nn::Attention attn2;
    nn::Linear out;
    nn::Embedding time_buckets;  // scalar bias per time-gap bucket
    nn::Embedding dist_buckets;  // scalar bias per distance bucket
    nn::Tensor pif_weight;
  };
  std::unique_ptr<Net> net_;
  /// Personal item frequency from the train split: [user][poi] -> count.
  std::vector<std::vector<float>> pif_;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_STAN_H_
