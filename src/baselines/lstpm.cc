#include "baselines/lstpm.h"

namespace tspn::baselines {

Lstpm::Lstpm(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
             uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

nn::Tensor Lstpm::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor x = nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
                         net_->slot_embedding.Forward(prefix.time_slots));
  // Short-term: plain recurrence over the prefix.
  nn::Tensor states = net_->gru.Unroll(x);
  nn::Tensor h_short = nn::Row(states, states.dim(0) - 1);

  // Geo-dilated recurrence: only the prefix elements within a radius of the
  // current position feed a second recurrence (skipping spatial outliers).
  const geo::GeoPoint& here = prefix.locations.back();
  std::vector<int64_t> near_ids;
  std::vector<int64_t> near_slots;
  for (size_t i = 0; i < prefix.poi_ids.size(); ++i) {
    if (geo::EquirectangularKm(prefix.locations[i], here) <= geo_radius_km_) {
      near_ids.push_back(prefix.poi_ids[i]);
      near_slots.push_back(prefix.time_slots[i]);
    }
  }
  nn::Tensor h_geo = h_short;
  if (!near_ids.empty()) {
    nn::Tensor xg = nn::Add(net_->poi_embedding.Forward(near_ids),
                            net_->slot_embedding.Forward(near_slots));
    nn::Tensor geo_states = net_->geo_gru.Unroll(xg);
    h_geo = nn::Row(geo_states, geo_states.dim(0) - 1);
  }

  // Long-term: similarity-weighted pooling of historical trajectory
  // summaries against the pooled current prefix.
  nn::Tensor current_pool = nn::MeanRows(x);
  const auto& user = dataset_->users()[static_cast<size_t>(prefix.user)];
  std::vector<nn::Tensor> summaries;
  int32_t first = std::max<int32_t>(
      0, prefix.traj - static_cast<int32_t>(max_history_trajs_));
  for (int32_t t = first; t < prefix.traj; ++t) {
    std::vector<int64_t> ids;
    for (const data::Checkin& c :
         user.trajectories[static_cast<size_t>(t)].checkins) {
      ids.push_back(c.poi_id);
    }
    if (ids.empty()) continue;
    summaries.push_back(nn::MeanRows(net_->poi_embedding.Forward(ids)));
  }
  nn::Tensor h_long;
  if (summaries.empty()) {
    h_long = nn::Reshape(net_->null_history, {net_->null_history.dim(1)});
  } else {
    nn::Tensor history = nn::StackRows(summaries);
    nn::Tensor weights = nn::Softmax(nn::MatVec(history, current_pool));
    h_long = nn::Reshape(
        nn::MatMul(nn::Reshape(weights, {1, history.dim(0)}), history),
        {history.dim(1)});
  }

  nn::Tensor fused = nn::Tanh(
      net_->fuse.Forward(nn::ConcatLast({h_long, h_short, h_geo})));
  return nn::MatVec(net_->poi_embedding.weight(), fused);
}

}  // namespace tspn::baselines
