#include "baselines/stisan.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tspn::baselines {

Stisan::Stisan(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
               uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

nn::Tensor Stisan::EncodeState(const Prefix& prefix) const {
  const int64_t length = static_cast<int64_t>(prefix.poi_ids.size());
  // Time-aware position encoding: position embedding + interval embedding of
  // the gap to the previous check-in.
  std::vector<int64_t> positions(static_cast<size_t>(length));
  std::vector<int64_t> gap_bucket(static_cast<size_t>(length), 0);
  for (int64_t i = 0; i < length; ++i) {
    positions[static_cast<size_t>(i)] = std::min<int64_t>(i, kMaxPositions - 1);
    if (i > 0) {
      double gap_h =
          static_cast<double>(prefix.timestamps[static_cast<size_t>(i)] -
                              prefix.timestamps[static_cast<size_t>(i - 1)]) /
          3600.0;
      gap_bucket[static_cast<size_t>(i)] = std::min<int64_t>(
          kNumBuckets - 1, static_cast<int64_t>(std::log2(1.0 + gap_h)));
    }
  }
  nn::Tensor x = nn::Add(
      nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
              net_->position_embedding.Forward(positions)),
      net_->interval_embedding.Forward(gap_bucket));

  // Interval-aware attention: causal self-attention plus a pairwise additive
  // value mix weighted by bucketed gaps.
  std::vector<int64_t> pair_buckets(static_cast<size_t>(length * length));
  for (int64_t i = 0; i < length; ++i) {
    for (int64_t j = 0; j < length; ++j) {
      double gap_h =
          std::abs(static_cast<double>(prefix.timestamps[static_cast<size_t>(i)] -
                                       prefix.timestamps[static_cast<size_t>(j)])) /
          3600.0;
      pair_buckets[static_cast<size_t>(i * length + j)] = std::min<int64_t>(
          kNumBuckets - 1, static_cast<int64_t>(std::log2(1.0 + gap_h)));
    }
  }
  nn::Tensor bias = nn::Reshape(net_->gap_buckets.Forward(pair_buckets),
                                {length, length});
  nn::Tensor h = nn::Add(net_->attn.Forward(x, x, /*causal=*/true),
                         nn::MatMul(nn::Softmax(bias), x));
  return nn::Row(h, length - 1);
}

nn::Tensor Stisan::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor h = EncodeState(prefix);
  return nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h));
}

nn::Tensor Stisan::SampleLoss(const Prefix& prefix, common::Rng& rng) const {
  nn::Tensor h = EncodeState(prefix);
  // Negative sampling: the POIs nearest to the target plus a few random
  // ones. On sparse datasets the nearest negatives are uninformative, which
  // reproduces STiSAN's weakness there.
  const data::Poi& target = dataset_->poi(prefix.target_poi);
  std::vector<std::pair<double, int64_t>> by_distance;
  by_distance.reserve(static_cast<size_t>(num_pois()));
  for (int64_t p = 0; p < num_pois(); ++p) {
    if (p == prefix.target_poi) continue;
    by_distance.emplace_back(
        geo::EquirectangularKm(dataset_->poi(p).loc, target.loc), p);
  }
  int64_t nearest = std::min<int64_t>(kNearestNegatives,
                                      static_cast<int64_t>(by_distance.size()));
  std::partial_sort(by_distance.begin(), by_distance.begin() + nearest,
                    by_distance.end());
  std::vector<int64_t> candidates = {prefix.target_poi};
  for (int64_t i = 0; i < nearest; ++i) {
    candidates.push_back(by_distance[static_cast<size_t>(i)].second);
  }
  for (int64_t i = 0; i < kRandomNegatives; ++i) {
    candidates.push_back(rng.UniformInt(num_pois()));
  }
  std::vector<int64_t> unique = candidates;
  std::sort(unique.begin() + 1, unique.end());
  unique.erase(std::unique(unique.begin() + 1, unique.end()), unique.end());
  // Remove duplicates of the target among negatives.
  unique.erase(std::remove(unique.begin() + 1, unique.end(), prefix.target_poi),
               unique.end());

  nn::Tensor cand = net_->poi_embedding.Forward(unique);
  nn::Tensor logits = nn::MatVec(cand, net_->out.Forward(h));
  return nn::CrossEntropyWithLogits(logits, 0);
}

}  // namespace tspn::baselines
