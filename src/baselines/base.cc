#include "baselines/base.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "eval/constraints.h"
#include "nn/serialize.h"

namespace tspn::baselines {

SequenceModelBase::Prefix SequenceModelBase::ExtractPrefix(
    const data::SampleRef& sample, int64_t max_len) const {
  const data::Trajectory& traj = dataset_->trajectory(sample);
  Prefix prefix;
  prefix.user = sample.user;
  prefix.traj = sample.traj;
  int64_t start = std::max<int64_t>(0, sample.prefix_len - max_len);
  for (int64_t i = start; i < sample.prefix_len; ++i) {
    const data::Checkin& c = traj.checkins[static_cast<size_t>(i)];
    const data::Poi& poi = dataset_->poi(c.poi_id);
    prefix.poi_ids.push_back(c.poi_id);
    prefix.categories.push_back(poi.category);
    prefix.time_slots.push_back(data::TimeSlotOf(c.timestamp));
    prefix.timestamps.push_back(c.timestamp);
    prefix.locations.push_back(poi.loc);
  }
  prefix.target_poi = dataset_->Target(sample).poi_id;
  return prefix;
}

nn::Tensor SequenceModelBase::SampleLoss(const Prefix& prefix,
                                         common::Rng& rng) const {
  (void)rng;
  nn::Tensor logits = ScoreAllPois(prefix);
  return nn::CrossEntropyWithLogits(logits, prefix.target_poi);
}

void SequenceModelBase::Train(const eval::TrainOptions& options) {
  Prepare();
  net().SetTraining(true);
  std::vector<data::SampleRef> samples = dataset_->Samples(data::Split::kTrain);
  common::Rng rng(options.seed);
  nn::Adam optimizer(net().Parameters(), {.lr = options.lr});
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(samples);
    int64_t budget = options.max_samples_per_epoch > 0
                         ? std::min<int64_t>(options.max_samples_per_epoch,
                                             static_cast<int64_t>(samples.size()))
                         : static_cast<int64_t>(samples.size());
    for (int64_t begin = 0; begin < budget; begin += options.batch_size) {
      int64_t end = std::min<int64_t>(begin + options.batch_size, budget);
      optimizer.ZeroGrad();
      nn::Tensor loss = nn::Tensor::Scalar(0.0f);
      for (int64_t i = begin; i < end; ++i) {
        Prefix prefix =
            ExtractPrefix(samples[static_cast<size_t>(i)], max_seq_len_);
        loss = nn::Add(loss, SampleLoss(prefix, rng));
      }
      loss = nn::MulScalar(loss, 1.0f / static_cast<float>(end - begin));
      loss.Backward();
      optimizer.Step();
    }
    optimizer.DecayLr(options.lr_decay);
  }
  net().SetTraining(false);
}

eval::RecommendResponse SequenceModelBase::RecommendImpl(
    const eval::RecommendRequest& request) const {
  nn::NoGradGuard guard;
  Prefix prefix = ExtractPrefix(request.sample, max_seq_len_);
  nn::Tensor logits = ScoreAllPois(prefix);
  TSPN_CHECK_EQ(logits.numel(), num_pois());
  return eval::RankAllPois(logits.data(), num_pois(), request, *dataset_);
}

void SequenceModelBase::SaveState(std::ostream& out) const {
  nn::SaveParameters(net_const().Parameters(), out);
}

bool SequenceModelBase::LoadState(std::istream& in) {
  // Validate the whole payload into staged tensors BEFORE mutating any live
  // state: Prepare() is not read-only everywhere (Graph-Flashback smooths
  // the embedding table in place), so running it ahead of validation would
  // corrupt a trained model on a rejected load. On success, replay a
  // Train() run's state order — Prepare() (count-based structures rebuild
  // deterministically from the dataset), then the checkpointed parameters
  // overwrite the weights, then inference mode. Parameter tensors share
  // storage with the live net, so copying into them updates the model in
  // place.
  std::vector<nn::Tensor> params = net().Parameters();
  std::vector<nn::Tensor> staged;
  if (!nn::LoadParametersStaged(params, in, &staged)) return false;
  Prepare();
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy_n(staged[i].data(), staged[i].numel(), params[i].data());
  }
  net().SetTraining(false);
  return true;
}

}  // namespace tspn::baselines
