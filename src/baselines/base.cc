#include "baselines/base.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace tspn::baselines {

SequenceModelBase::Prefix SequenceModelBase::ExtractPrefix(
    const data::SampleRef& sample, int64_t max_len) const {
  const data::Trajectory& traj = dataset_->trajectory(sample);
  Prefix prefix;
  prefix.user = sample.user;
  prefix.traj = sample.traj;
  int64_t start = std::max<int64_t>(0, sample.prefix_len - max_len);
  for (int64_t i = start; i < sample.prefix_len; ++i) {
    const data::Checkin& c = traj.checkins[static_cast<size_t>(i)];
    const data::Poi& poi = dataset_->poi(c.poi_id);
    prefix.poi_ids.push_back(c.poi_id);
    prefix.categories.push_back(poi.category);
    prefix.time_slots.push_back(data::TimeSlotOf(c.timestamp));
    prefix.timestamps.push_back(c.timestamp);
    prefix.locations.push_back(poi.loc);
  }
  prefix.target_poi = dataset_->Target(sample).poi_id;
  return prefix;
}

nn::Tensor SequenceModelBase::SampleLoss(const Prefix& prefix,
                                         common::Rng& rng) const {
  (void)rng;
  nn::Tensor logits = ScoreAllPois(prefix);
  return nn::CrossEntropyWithLogits(logits, prefix.target_poi);
}

void SequenceModelBase::Train(const eval::TrainOptions& options) {
  Prepare();
  net().SetTraining(true);
  std::vector<data::SampleRef> samples = dataset_->Samples(data::Split::kTrain);
  common::Rng rng(options.seed);
  nn::Adam optimizer(net().Parameters(), {.lr = options.lr});
  for (int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(samples);
    int64_t budget = options.max_samples_per_epoch > 0
                         ? std::min<int64_t>(options.max_samples_per_epoch,
                                             static_cast<int64_t>(samples.size()))
                         : static_cast<int64_t>(samples.size());
    for (int64_t begin = 0; begin < budget; begin += options.batch_size) {
      int64_t end = std::min<int64_t>(begin + options.batch_size, budget);
      optimizer.ZeroGrad();
      nn::Tensor loss = nn::Tensor::Scalar(0.0f);
      for (int64_t i = begin; i < end; ++i) {
        Prefix prefix =
            ExtractPrefix(samples[static_cast<size_t>(i)], max_seq_len_);
        loss = nn::Add(loss, SampleLoss(prefix, rng));
      }
      loss = nn::MulScalar(loss, 1.0f / static_cast<float>(end - begin));
      loss.Backward();
      optimizer.Step();
    }
    optimizer.DecayLr(options.lr_decay);
  }
  net().SetTraining(false);
}

std::vector<int64_t> SequenceModelBase::Recommend(const data::SampleRef& sample,
                                                  int64_t top_n) const {
  nn::NoGradGuard guard;
  Prefix prefix = ExtractPrefix(sample, max_seq_len_);
  nn::Tensor logits = ScoreAllPois(prefix);
  TSPN_CHECK_EQ(logits.numel(), num_pois());
  std::vector<int64_t> order(static_cast<size_t>(num_pois()));
  std::iota(order.begin(), order.end(), 0);
  const float* scores = logits.data();
  int64_t keep = std::min<int64_t>(top_n, num_pois());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](int64_t a, int64_t b) { return scores[a] > scores[b]; });
  order.resize(static_cast<size_t>(keep));
  return order;
}

}  // namespace tspn::baselines
