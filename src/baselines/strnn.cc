#include "baselines/strnn.h"

#include <algorithm>

namespace tspn::baselines {

Strnn::Strnn(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
             uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

nn::Tensor Strnn::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor embeddings = net_->poi_embedding.Forward(prefix.poi_ids);
  int64_t length = embeddings.dim(0);
  nn::Tensor h = nn::Tensor::Zeros({embeddings.dim(1)});
  for (int64_t t = 0; t < length; ++t) {
    nn::Tensor x = nn::Row(embeddings, t);
    // Interpolation factors from the previous step's gap / distance.
    float a = 0.0f, b = 0.0f;
    if (t > 0) {
      double gap_h = static_cast<double>(prefix.timestamps[static_cast<size_t>(t)] -
                                         prefix.timestamps[static_cast<size_t>(t - 1)]) /
                     3600.0;
      a = static_cast<float>(std::clamp(gap_h / max_gap_hours_, 0.0, 1.0));
      double dist = geo::EquirectangularKm(prefix.locations[static_cast<size_t>(t - 1)],
                                           prefix.locations[static_cast<size_t>(t)]);
      b = static_cast<float>(std::clamp(dist / max_dist_km_, 0.0, 1.0));
    }
    nn::Tensor xt = nn::Add(
        nn::Add(nn::MulScalar(net_->w_time0.Forward(x), 1.0f - a),
                nn::MulScalar(net_->w_time1.Forward(x), a)),
        nn::Add(nn::MulScalar(net_->w_dist0.Forward(x), 1.0f - b),
                nn::MulScalar(net_->w_dist1.Forward(x), b)));
    h = nn::Tanh(nn::Add(nn::MulScalar(xt, 0.5f), net_->recurrent.Forward(h)));
  }
  return nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h));
}

}  // namespace tspn::baselines
