#ifndef TSPN_BASELINES_DEEPMOVE_H_
#define TSPN_BASELINES_DEEPMOVE_H_

#include <memory>

#include "baselines/base.h"
#include "nn/gru.h"

namespace tspn::baselines {

/// DeepMove baseline (Feng et al. 2018): an attentional recurrent network.
/// A GRU encodes the current prefix; attention over per-trajectory summaries
/// of the user's history injects periodicity; both are fused for scoring.
class DeepMove : public SequenceModelBase {
 public:
  DeepMove(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
           uint64_t seed);

  std::string name() const override { return "DeepMove"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  /// Mean-pooled embedding per historical trajectory (most recent first,
  /// up to `max_history_trajs_`). Empty if the user has no history.
  nn::Tensor HistorySummaries(const Prefix& prefix) const;

  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), slot_embedding(48, dm, rng),
          gru(dm, dm, rng), fuse(2 * dm, dm, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&slot_embedding);
      RegisterChild(&gru);
      RegisterChild(&fuse);
      null_history =
          RegisterParameter(nn::Tensor::RandomNormal({1, dm}, 0.1f, rng, true));
    }
    nn::Embedding poi_embedding;
    nn::Embedding slot_embedding;
    nn::GruCell gru;
    nn::Linear fuse;
    nn::Tensor null_history;
  };
  std::unique_ptr<Net> net_;
  int64_t max_history_trajs_ = 10;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_DEEPMOVE_H_
