#include "baselines/sae_nad.h"

#include <cmath>

namespace tspn::baselines {

SaeNad::SaeNad(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
               uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

nn::Tensor SaeNad::ScoreAllPois(const Prefix& prefix) const {
  // Self-attentive set encoder: learnable-query attention pooling (order-
  // insensitive by construction).
  nn::Tensor x = net_->poi_embedding.Forward(prefix.poi_ids);
  nn::Tensor keys = nn::Tanh(net_->attend.Forward(x));
  nn::Tensor weights = nn::Softmax(nn::MatVec(keys, net_->query));
  nn::Tensor user_vec = nn::Reshape(
      nn::MatMul(nn::Reshape(weights, {1, x.dim(0)}), x), {x.dim(1)});
  nn::Tensor logits =
      nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(user_vec));

  // Neighbour-aware decoder: geographic kernel around the last check-in.
  const geo::GeoPoint& here = prefix.locations.back();
  std::vector<float> bias(static_cast<size_t>(num_pois()));
  for (int64_t p = 0; p < num_pois(); ++p) {
    double d = geo::EquirectangularKm(dataset_->poi(p).loc, here);
    bias[static_cast<size_t>(p)] =
        static_cast<float>(std::exp(-d / geo_sigma_km_));
  }
  nn::Tensor geo_bias = nn::Tensor::FromVector({num_pois()}, std::move(bias));
  return nn::Add(logits, nn::Mul(net_->geo_weight, geo_bias));
}

}  // namespace tspn::baselines
