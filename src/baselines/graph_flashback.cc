#include "baselines/graph_flashback.h"

#include <cmath>

namespace tspn::baselines {

GraphFlashback::GraphFlashback(std::shared_ptr<const data::CityDataset> dataset,
                               int64_t dm, uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

void GraphFlashback::Prepare() {
  transitions_.clear();
  for (const auto& user : dataset_->users()) {
    for (size_t t = 0; t < user.trajectories.size(); ++t) {
      if (user.splits[t] != data::Split::kTrain) continue;
      const auto& checkins = user.trajectories[t].checkins;
      for (size_t i = 1; i < checkins.size(); ++i) {
        transitions_[checkins[i - 1].poi_id][checkins[i].poi_id] += 1.0f;
      }
    }
  }
  // One-shot knowledge-graph smoothing of the embedding table:
  //   E[p] <- 0.6 E[p] + 0.4 * mean(E[successors of p])
  // performed directly on the parameter data before training (the STKG
  // enrichment of the paper, collapsed into an initialization step).
  nn::Tensor weight = net_->poi_embedding.weight();
  const int64_t dm = weight.dim(1);
  std::vector<float> original = weight.ToVector();
  float* data = weight.data();
  for (const auto& [src, successors] : transitions_) {
    if (successors.empty()) continue;
    std::vector<double> mean(static_cast<size_t>(dm), 0.0);
    double total = 0.0;
    for (const auto& [dst, count] : successors) {
      for (int64_t d = 0; d < dm; ++d) {
        mean[static_cast<size_t>(d)] +=
            count * original[static_cast<size_t>(dst * dm + d)];
      }
      total += count;
    }
    for (int64_t d = 0; d < dm; ++d) {
      data[src * dm + d] = 0.6f * original[static_cast<size_t>(src * dm + d)] +
                           0.4f * static_cast<float>(mean[static_cast<size_t>(d)] /
                                                     total);
    }
  }
}

nn::Tensor GraphFlashback::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor x = nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
                         net_->slot_embedding.Forward(prefix.time_slots));
  nn::Tensor states = net_->gru.Unroll(x);
  const int64_t length = states.dim(0);

  // Flashback aggregation: context = sum_t w_t h_t with temporal/spatial
  // decay relative to the most recent check-in.
  std::vector<float> weights(static_cast<size_t>(length));
  double total = 0.0;
  int64_t now = prefix.timestamps.back();
  const geo::GeoPoint& here = prefix.locations.back();
  for (int64_t t = 0; t < length; ++t) {
    double gap_h = static_cast<double>(now - prefix.timestamps[static_cast<size_t>(t)]) /
                   3600.0;
    double dist =
        geo::EquirectangularKm(prefix.locations[static_cast<size_t>(t)], here);
    double w = std::exp(-time_decay_per_hour_ * gap_h) *
               std::exp(-space_decay_per_km_ * dist);
    weights[static_cast<size_t>(t)] = static_cast<float>(w);
    total += w;
  }
  for (float& w : weights) w = static_cast<float>(w / std::max(total, 1e-9));
  nn::Tensor w_row = nn::Tensor::FromVector({1, length}, std::move(weights));
  nn::Tensor context = nn::Reshape(nn::MatMul(w_row, states), {states.dim(1)});

  nn::Tensor logits =
      nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(context));
  // Transition-graph prior from the current POI.
  std::vector<float> prior(static_cast<size_t>(num_pois()), 0.0f);
  auto it = transitions_.find(prefix.poi_ids.back());
  if (it != transitions_.end()) {
    for (const auto& [dst, count] : it->second) {
      prior[static_cast<size_t>(dst)] = std::log1p(count);
    }
  }
  nn::Tensor prior_bias = nn::Tensor::FromVector({num_pois()}, std::move(prior));
  return nn::Add(logits, nn::Mul(net_->prior_weight, prior_bias));
}

}  // namespace tspn::baselines
