#include "baselines/stan.h"

#include <algorithm>
#include <cmath>

namespace tspn::baselines {

Stan::Stan(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
           uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
  // STAN's signature: a long attended window (whole recent history).
  max_seq_len_ = 48;
}

void Stan::Prepare() {
  pif_.assign(dataset_->users().size(),
              std::vector<float>(static_cast<size_t>(num_pois()), 0.0f));
  for (size_t u = 0; u < dataset_->users().size(); ++u) {
    const auto& user = dataset_->users()[u];
    for (size_t t = 0; t < user.trajectories.size(); ++t) {
      if (user.splits[t] != data::Split::kTrain) continue;
      for (const data::Checkin& c : user.trajectories[t].checkins) {
        pif_[u][static_cast<size_t>(c.poi_id)] += 1.0f;
      }
    }
  }
}

nn::Tensor Stan::RelationBias(const Prefix& prefix) const {
  const int64_t length = static_cast<int64_t>(prefix.poi_ids.size());
  std::vector<int64_t> time_idx(static_cast<size_t>(length * length));
  std::vector<int64_t> dist_idx(static_cast<size_t>(length * length));
  for (int64_t i = 0; i < length; ++i) {
    for (int64_t j = 0; j < length; ++j) {
      double gap_h =
          std::abs(static_cast<double>(prefix.timestamps[static_cast<size_t>(i)] -
                                       prefix.timestamps[static_cast<size_t>(j)])) /
          3600.0;
      double dist = geo::EquirectangularKm(prefix.locations[static_cast<size_t>(i)],
                                           prefix.locations[static_cast<size_t>(j)]);
      int64_t tb = std::min<int64_t>(kNumBuckets - 1,
                                     static_cast<int64_t>(std::log2(1.0 + gap_h)));
      int64_t db = std::min<int64_t>(kNumBuckets - 1,
                                     static_cast<int64_t>(std::log2(1.0 + dist)));
      time_idx[static_cast<size_t>(i * length + j)] = tb;
      dist_idx[static_cast<size_t>(i * length + j)] = db;
    }
  }
  nn::Tensor tbias = nn::Reshape(net_->time_buckets.Forward(time_idx),
                                 {length, length});
  nn::Tensor dbias = nn::Reshape(net_->dist_buckets.Forward(dist_idx),
                                 {length, length});
  return nn::Add(tbias, dbias);
}

nn::Tensor Stan::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor x = nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
                         net_->slot_embedding.Forward(prefix.time_slots));
  // Two attention layers, each modulated by the O(L^2) interval bias: the
  // bias enters additively through value mixing (simplified from the paper's
  // formulation but preserving the pairwise-relation structure and cost).
  nn::Tensor bias = RelationBias(prefix);
  nn::Tensor mixed = nn::MatMul(nn::Softmax(bias), x);
  nn::Tensor h1 = nn::Add(net_->attn1.Forward(x, x, /*causal=*/false), mixed);
  nn::Tensor h2 = nn::Add(net_->attn2.Forward(h1, h1, /*causal=*/false),
                          nn::MatMul(nn::Softmax(bias), h1));
  nn::Tensor h = nn::Row(h2, h2.dim(0) - 1);
  nn::Tensor logits =
      nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h));
  // Personalized item frequency enters the way STAN's paper handles it:
  // repeated visits stay as repeated keys in the attended window (no
  // deduplication), so frequent POIs dominate attention mass. A mild
  // explicit bias (bounded by tanh) complements it without acting as a
  // personal-popularity shortcut.
  std::vector<float> pif = pif_.empty()
                               ? std::vector<float>(static_cast<size_t>(num_pois()), 0.0f)
                               : pif_[static_cast<size_t>(prefix.user)];
  for (float& v : pif) v = std::tanh(0.5f * std::log1p(v));
  nn::Tensor pif_bias = nn::Tensor::FromVector({num_pois()}, std::move(pif));
  return nn::Add(logits, nn::Mul(net_->pif_weight, pif_bias));
}

}  // namespace tspn::baselines
