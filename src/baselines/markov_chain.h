#ifndef TSPN_BASELINES_MARKOV_CHAIN_H_
#define TSPN_BASELINES_MARKOV_CHAIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"

namespace tspn::baselines {

/// MC baseline (Gambs et al. 2012): a first-order Markov chain over POIs.
/// Transition counts are estimated from the train split; ranking backs off
/// to global popularity for unseen transitions. No learned parameters —
/// exactly the "simplistic, predefined and unchanging" method the paper
/// contrasts deep models against.
class MarkovChain : public eval::NextPoiModel {
 public:
  explicit MarkovChain(std::shared_ptr<const data::CityDataset> dataset);

  std::string name() const override { return "MC"; }
  void Train(const eval::TrainOptions& options) override;

 protected:
  eval::RecommendResponse RecommendImpl(
      const eval::RecommendRequest& request) const override;

  /// Checkpoint payload: popularity vector + transition counts (sources and
  /// successors written in sorted order so checkpoints are deterministic).
  void SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

 private:
  /// Rebuilds pop_rank_scores_ from popularity_ (after Train/LoadState).
  void RebuildPopularityRanks();

  std::shared_ptr<const data::CityDataset> dataset_;
  // All structures are written only by Train()/LoadState() and read-only
  // afterwards, so concurrent Recommend() calls are safe (NextPoiModel
  // contract).
  /// transitions_[cur] = {(next, count), ...}
  std::unordered_map<int64_t, std::unordered_map<int64_t, double>> transitions_;
  std::vector<double> popularity_;
  /// Per-POI popularity-rank fraction in [0, 1): the back-off/tiebreaker
  /// added to transition counts at scoring time (see RecommendImpl).
  std::vector<float> pop_rank_scores_;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_MARKOV_CHAIN_H_
