#ifndef TSPN_BASELINES_LSTPM_H_
#define TSPN_BASELINES_LSTPM_H_

#include <memory>

#include "baselines/base.h"
#include "nn/gru.h"

namespace tspn::baselines {

/// LSTPM baseline (Sun et al. 2020): long- and short-term preference
/// modelling. Long-term: historical trajectory summaries weighted by their
/// similarity to the current prefix (a non-local operation). Short-term: a
/// recurrent pass plus a geo-dilated recurrence over the spatially closest
/// recent check-ins.
class Lstpm : public SequenceModelBase {
 public:
  Lstpm(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
        uint64_t seed);

  std::string name() const override { return "LSTPM"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), slot_embedding(48, dm, rng),
          gru(dm, dm, rng), geo_gru(dm, dm, rng), fuse(3 * dm, dm, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&slot_embedding);
      RegisterChild(&gru);
      RegisterChild(&geo_gru);
      RegisterChild(&fuse);
      null_history =
          RegisterParameter(nn::Tensor::RandomNormal({1, dm}, 0.1f, rng, true));
    }
    nn::Embedding poi_embedding;
    nn::Embedding slot_embedding;
    nn::GruCell gru;
    nn::GruCell geo_gru;
    nn::Linear fuse;
    nn::Tensor null_history;
  };
  std::unique_ptr<Net> net_;
  int64_t max_history_trajs_ = 10;
  double geo_radius_km_ = 3.0;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_LSTPM_H_
