#include "baselines/deepmove.h"

namespace tspn::baselines {

DeepMove::DeepMove(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
                   uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

nn::Tensor DeepMove::HistorySummaries(const Prefix& prefix) const {
  const auto& user = dataset_->users()[static_cast<size_t>(prefix.user)];
  std::vector<nn::Tensor> summaries;
  int32_t first = std::max<int32_t>(
      0, prefix.traj - static_cast<int32_t>(max_history_trajs_));
  for (int32_t t = first; t < prefix.traj; ++t) {
    const data::Trajectory& traj = user.trajectories[static_cast<size_t>(t)];
    std::vector<int64_t> ids;
    ids.reserve(traj.checkins.size());
    for (const data::Checkin& c : traj.checkins) ids.push_back(c.poi_id);
    if (ids.empty()) continue;
    summaries.push_back(nn::MeanRows(net_->poi_embedding.Forward(ids)));
  }
  if (summaries.empty()) return net_->null_history;
  return nn::StackRows(summaries);
}

nn::Tensor DeepMove::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor x = nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
                         net_->slot_embedding.Forward(prefix.time_slots));
  nn::Tensor states = net_->gru.Unroll(x);
  nn::Tensor h = nn::Row(states, states.dim(0) - 1);

  // Attention of the current state over historical trajectory summaries.
  nn::Tensor history = HistorySummaries(prefix);
  nn::Tensor weights = nn::Softmax(nn::MatVec(history, h));
  nn::Tensor context = nn::Reshape(
      nn::MatMul(nn::Reshape(weights, {1, history.dim(0)}), history),
      {history.dim(1)});

  nn::Tensor fused = nn::Tanh(net_->fuse.Forward(nn::ConcatLast({h, context})));
  return nn::MatVec(net_->poi_embedding.weight(), fused);
}

}  // namespace tspn::baselines
