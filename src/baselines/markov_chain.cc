#include "baselines/markov_chain.h"

#include <algorithm>
#include <numeric>

namespace tspn::baselines {

MarkovChain::MarkovChain(std::shared_ptr<const data::CityDataset> dataset)
    : dataset_(std::move(dataset)) {}

void MarkovChain::Train(const eval::TrainOptions& options) {
  (void)options;
  transitions_.clear();
  popularity_.assign(dataset_->pois().size(), 0.0);
  const auto& users = dataset_->users();
  for (const auto& user : users) {
    for (size_t t = 0; t < user.trajectories.size(); ++t) {
      if (user.splits[t] != data::Split::kTrain) continue;
      const auto& checkins = user.trajectories[t].checkins;
      for (size_t i = 0; i < checkins.size(); ++i) {
        popularity_[static_cast<size_t>(checkins[i].poi_id)] += 1.0;
        if (i > 0) {
          transitions_[checkins[i - 1].poi_id][checkins[i].poi_id] += 1.0;
        }
      }
    }
  }
}

std::vector<int64_t> MarkovChain::Recommend(const data::SampleRef& sample,
                                            int64_t top_n) const {
  const data::Trajectory& traj = dataset_->trajectory(sample);
  int64_t current =
      traj.checkins[static_cast<size_t>(sample.prefix_len - 1)].poi_id;
  // Score: transition count dominates; popularity is an epsilon-scaled
  // tiebreaker/back-off.
  double max_pop = 1.0;
  for (double p : popularity_) max_pop = std::max(max_pop, p);
  std::vector<double> scores(dataset_->pois().size(), 0.0);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = 1e-3 * popularity_[i] / max_pop;
  }
  auto it = transitions_.find(current);
  if (it != transitions_.end()) {
    for (const auto& [next, count] : it->second) {
      scores[static_cast<size_t>(next)] += count;
    }
  }
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  int64_t keep = std::min<int64_t>(top_n, static_cast<int64_t>(order.size()));
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](int64_t a, int64_t b) {
                      return scores[static_cast<size_t>(a)] >
                             scores[static_cast<size_t>(b)];
                    });
  order.resize(static_cast<size_t>(keep));
  return order;
}

}  // namespace tspn::baselines
