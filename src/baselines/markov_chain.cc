#include "baselines/markov_chain.h"

#include <algorithm>
#include <numeric>

#include "common/binary_io.h"
#include "eval/constraints.h"

namespace tspn::baselines {

using common::ReadPod;
using common::WritePod;

MarkovChain::MarkovChain(std::shared_ptr<const data::CityDataset> dataset)
    : dataset_(std::move(dataset)) {}

void MarkovChain::Train(const eval::TrainOptions& options) {
  (void)options;
  transitions_.clear();
  popularity_.assign(dataset_->pois().size(), 0.0);
  const auto& users = dataset_->users();
  for (const auto& user : users) {
    for (size_t t = 0; t < user.trajectories.size(); ++t) {
      if (user.splits[t] != data::Split::kTrain) continue;
      const auto& checkins = user.trajectories[t].checkins;
      for (size_t i = 0; i < checkins.size(); ++i) {
        popularity_[static_cast<size_t>(checkins[i].poi_id)] += 1.0;
        if (i > 0) {
          transitions_[checkins[i - 1].poi_id][checkins[i].poi_id] += 1.0;
        }
      }
    }
  }
  RebuildPopularityRanks();
}

void MarkovChain::RebuildPopularityRanks() {
  // The tiebreaker is the POI's popularity *rank* mapped into [0, 1) — the
  // same ordering as raw popularity, but with a spacing of 1/num_pois that
  // survives float quantization next to integer transition counts (a
  // 1e-3-scaled raw value would be absorbed by the float ulp once counts
  // reach a few hundred). Built once per Train/LoadState, not per query.
  const size_t n = popularity_.size();
  std::vector<int64_t> by_pop(n);
  std::iota(by_pop.begin(), by_pop.end(), 0);
  // Ascending popularity; among equal popularity, descending id, so the
  // lower id gets the larger fraction and wins ties (matching the ranking
  // helper's id-ascending convention).
  std::sort(by_pop.begin(), by_pop.end(), [&](int64_t a, int64_t b) {
    if (popularity_[static_cast<size_t>(a)] !=
        popularity_[static_cast<size_t>(b)]) {
      return popularity_[static_cast<size_t>(a)] <
             popularity_[static_cast<size_t>(b)];
    }
    return a > b;
  });
  pop_rank_scores_.assign(n, 0.0f);
  for (size_t rank = 0; rank < n; ++rank) {
    pop_rank_scores_[static_cast<size_t>(by_pop[rank])] =
        static_cast<float>(rank) / static_cast<float>(n + 1);
  }
}

eval::RecommendResponse MarkovChain::RecommendImpl(
    const eval::RecommendRequest& request) const {
  const data::Trajectory& traj = dataset_->trajectory(request.sample);
  int64_t current =
      traj.checkins[static_cast<size_t>(request.sample.prefix_len - 1)].poi_id;
  // Score: transition count dominates; the precomputed popularity-rank
  // fraction is the tiebreaker/back-off.
  const size_t n = dataset_->pois().size();
  std::vector<float> scores = pop_rank_scores_.size() == n
                                  ? pop_rank_scores_
                                  : std::vector<float>(n, 0.0f);
  auto it = transitions_.find(current);
  if (it != transitions_.end()) {
    for (const auto& [next, count] : it->second) {
      scores[static_cast<size_t>(next)] += static_cast<float>(count);
    }
  }
  return eval::RankAllPois(scores.data(), static_cast<int64_t>(n), request,
                           *dataset_);
}

void MarkovChain::SaveState(std::ostream& out) const {
  WritePod(out, static_cast<uint64_t>(popularity_.size()));
  out.write(reinterpret_cast<const char*>(popularity_.data()),
            static_cast<std::streamsize>(popularity_.size() * sizeof(double)));
  std::vector<int64_t> sources;
  sources.reserve(transitions_.size());
  for (const auto& [src, unused] : transitions_) sources.push_back(src);
  std::sort(sources.begin(), sources.end());
  WritePod(out, static_cast<uint64_t>(sources.size()));
  for (int64_t src : sources) {
    const auto& successors = transitions_.at(src);
    std::vector<std::pair<int64_t, double>> sorted(successors.begin(),
                                                   successors.end());
    std::sort(sorted.begin(), sorted.end());
    WritePod(out, src);
    WritePod(out, static_cast<uint64_t>(sorted.size()));
    for (const auto& [next, count] : sorted) {
      WritePod(out, next);
      WritePod(out, count);
    }
  }
}

bool MarkovChain::LoadState(std::istream& in) {
  const uint64_t num_pois = dataset_->pois().size();
  uint64_t stored_pois = 0;
  if (!ReadPod(in, &stored_pois) || stored_pois != num_pois) return false;
  std::vector<double> popularity(stored_pois);
  in.read(reinterpret_cast<char*>(popularity.data()),
          static_cast<std::streamsize>(stored_pois * sizeof(double)));
  if (!in.good()) return false;
  uint64_t num_sources = 0;
  if (!ReadPod(in, &num_sources) || num_sources > num_pois) return false;
  std::unordered_map<int64_t, std::unordered_map<int64_t, double>> transitions;
  for (uint64_t s = 0; s < num_sources; ++s) {
    int64_t src = 0;
    uint64_t num_next = 0;
    if (!ReadPod(in, &src) || src < 0 ||
        src >= static_cast<int64_t>(num_pois) || !ReadPod(in, &num_next) ||
        num_next > num_pois) {
      return false;
    }
    auto& successors = transitions[src];
    for (uint64_t n = 0; n < num_next; ++n) {
      int64_t next = 0;
      double count = 0.0;
      if (!ReadPod(in, &next) || next < 0 ||
          next >= static_cast<int64_t>(num_pois) || !ReadPod(in, &count)) {
        return false;
      }
      successors[next] = count;
    }
  }
  popularity_ = std::move(popularity);
  transitions_ = std::move(transitions);
  RebuildPopularityRanks();
  return true;
}

}  // namespace tspn::baselines
