#ifndef TSPN_BASELINES_SAE_NAD_H_
#define TSPN_BASELINES_SAE_NAD_H_

#include <memory>

#include "baselines/base.h"

namespace tspn::baselines {

/// SAE-NAD baseline (Ma et al. 2018): a self-attentive encoder treats the
/// prefix as a check-in *set* (no order), and a neighbour-aware decoder adds
/// a geographic proximity bias towards POIs near the user's recent area —
/// which is why its predictions degrade for order-sensitive sequences, as
/// the paper observes.
class SaeNad : public SequenceModelBase {
 public:
  SaeNad(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
         uint64_t seed);

  std::string name() const override { return "SAE-NAD"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), attend(dm, dm, rng), out(dm, dm, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&attend);
      RegisterChild(&out);
      query = RegisterParameter(nn::Tensor::RandomNormal({dm}, 0.2f, rng, true));
      geo_weight = RegisterParameter(nn::Tensor::Full({1}, 1.0f, true));
    }
    nn::Embedding poi_embedding;
    nn::Linear attend;
    nn::Linear out;
    nn::Tensor query;       // learnable attention query for set pooling
    nn::Tensor geo_weight;  // strength of the neighbour-aware bias
  };
  std::unique_ptr<Net> net_;
  double geo_sigma_km_ = 2.0;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_SAE_NAD_H_
