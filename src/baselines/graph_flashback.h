#ifndef TSPN_BASELINES_GRAPH_FLASHBACK_H_
#define TSPN_BASELINES_GRAPH_FLASHBACK_H_

#include <memory>
#include <unordered_map>

#include "baselines/base.h"
#include "nn/gru.h"

namespace tspn::baselines {

/// Graph-Flashback baseline (Rao et al. 2022): POI representations enriched
/// by a transition knowledge graph (here: one-shot smoothing of the
/// embedding table over the train-split transition graph at Prepare time),
/// combined with Flashback-style scoring — hidden states of the recurrence
/// are aggregated with temporal/spatial decay weights, and a transition
/// prior from the graph biases the final ranking. Trains fast (Table V).
class GraphFlashback : public SequenceModelBase {
 public:
  GraphFlashback(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
                 uint64_t seed);

  std::string name() const override { return "Graph-Flashback"; }

 protected:
  void Prepare() override;
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), slot_embedding(48, dm, rng),
          gru(dm, dm, rng), out(dm, dm, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&slot_embedding);
      RegisterChild(&gru);
      RegisterChild(&out);
      prior_weight = RegisterParameter(nn::Tensor::Full({1}, 0.5f, true));
    }
    nn::Embedding poi_embedding;
    nn::Embedding slot_embedding;
    nn::GruCell gru;
    nn::Linear out;
    nn::Tensor prior_weight;
  };
  std::unique_ptr<Net> net_;
  /// Sparse transition counts from the train split.
  std::unordered_map<int64_t, std::unordered_map<int64_t, float>> transitions_;
  double time_decay_per_hour_ = 0.05;
  double space_decay_per_km_ = 0.2;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_GRAPH_FLASHBACK_H_
