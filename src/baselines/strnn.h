#ifndef TSPN_BASELINES_STRNN_H_
#define TSPN_BASELINES_STRNN_H_

#include <memory>

#include "baselines/base.h"

namespace tspn::baselines {

/// STRNN baseline (Liu et al. 2016): a recurrent model whose input transform
/// linearly interpolates between boundary matrices according to the time gap
/// and geographic distance of consecutive visits — the transition-matrix
/// flavour that the paper reports performing poorly.
class Strnn : public SequenceModelBase {
 public:
  Strnn(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
        uint64_t seed);

  std::string name() const override { return "STRNN"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng),
          w_time0(dm, dm, rng, false), w_time1(dm, dm, rng, false),
          w_dist0(dm, dm, rng, false), w_dist1(dm, dm, rng, false),
          recurrent(dm, dm, rng, false), out(dm, dm, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&w_time0);
      RegisterChild(&w_time1);
      RegisterChild(&w_dist0);
      RegisterChild(&w_dist1);
      RegisterChild(&recurrent);
      RegisterChild(&out);
    }
    nn::Embedding poi_embedding;
    nn::Linear w_time0, w_time1;  // time-gap interpolation endpoints
    nn::Linear w_dist0, w_dist1;  // distance interpolation endpoints
    nn::Linear recurrent;
    nn::Linear out;
  };
  std::unique_ptr<Net> net_;
  double max_gap_hours_ = 24.0;
  double max_dist_km_ = 10.0;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_STRNN_H_
