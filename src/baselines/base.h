#ifndef TSPN_BASELINES_BASE_H_
#define TSPN_BASELINES_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace tspn::baselines {

/// Shared scaffolding for the learned baselines: prefix-feature extraction,
/// tied-embedding scoring over the full POI vocabulary, a generic
/// Adam/cross-entropy training loop and rank-by-score recommendation.
/// Subclasses implement ScoreAllPois() — a [num_pois] logits tensor for one
/// sample — which serves both the loss and inference.
///
/// Thread-safety (audited for serve::InferenceEngine): after Train(),
/// Recommend() only reads model weights and dataset state — no baseline
/// keeps mutable caches or rngs behind its const methods (grad-mode is a
/// thread_local flag and tensor byte accounting is atomic), so concurrent
/// Recommend/RecommendBatch calls are safe on every model in this directory.
/// Subclasses adding lazily built inference state must guard it themselves.
class SequenceModelBase : public eval::NextPoiModel {
 public:
  explicit SequenceModelBase(std::shared_ptr<const data::CityDataset> dataset)
      : dataset_(std::move(dataset)) {}

  void Train(const eval::TrainOptions& options) override;

 protected:
  /// v2 core shared by all ScoreAllPois-shaped baselines: score the whole
  /// vocabulary once, then let eval::RankAllPois apply the request's
  /// constraints before top-k selection (so constrained queries still fill
  /// top_n) and attach the logits as ranking scores.
  eval::RecommendResponse RecommendImpl(
      const eval::RecommendRequest& request) const override;

  /// Checkpoint payload: the subclass net's parameter tensors via
  /// nn::serialize; shapes are validated on load.
  void SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Truncated prefix features of a sample.
  struct Prefix {
    std::vector<int64_t> poi_ids;
    std::vector<int64_t> categories;
    std::vector<int64_t> time_slots;
    std::vector<int64_t> timestamps;
    std::vector<geo::GeoPoint> locations;
    int64_t target_poi = -1;
    int32_t user = 0;
    int32_t traj = 0;
  };
  Prefix ExtractPrefix(const data::SampleRef& sample, int64_t max_len) const;

  /// Logits over all POIs for one sample. Must be differentiable.
  virtual nn::Tensor ScoreAllPois(const Prefix& prefix) const = 0;

  /// The module whose parameters are optimized.
  virtual nn::Module& net() = 0;
  virtual const nn::Module& net_const() const = 0;

  /// Optional hook before training (e.g. count-based structures).
  virtual void Prepare() {}

  /// Per-sample loss; defaults to cross-entropy over ScoreAllPois.
  virtual nn::Tensor SampleLoss(const Prefix& prefix, common::Rng& rng) const;

  int64_t num_pois() const { return static_cast<int64_t>(dataset_->pois().size()); }

  std::shared_ptr<const data::CityDataset> dataset_;
  int64_t max_seq_len_ = 16;
};

/// Names of all implemented baselines, in the paper's Table II order.
std::vector<std::string> BaselineNames();

/// Factory by name (e.g. "MC", "GRU", "DeepMove", ...). Aborts on an
/// unknown name.
std::unique_ptr<eval::NextPoiModel> MakeBaseline(
    const std::string& name, std::shared_ptr<const data::CityDataset> dataset,
    int64_t dm = 32, uint64_t seed = 7);

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_BASE_H_
