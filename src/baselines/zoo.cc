// Deprecated baseline factory shims: the general name -> factory registry
// (covering TSPN-RA as well) moved to eval::ModelRegistry; these wrappers
// keep pre-registry call sites compiling during migration.

#include "baselines/base.h"

#include "common/check.h"
#include "eval/model_registry.h"

namespace tspn::baselines {

std::vector<std::string> BaselineNames() {
  // The paper's Table II order (not the registry's sorted order), without
  // TSPN-RA: bench tables iterate this list for baseline rows.
  return {"MC",      "GRU",     "STRNN",   "DeepMove",        "LSTPM",
          "STAN",    "SAE-NAD", "HMT-GRN", "Graph-Flashback", "STiSAN"};
}

std::unique_ptr<eval::NextPoiModel> MakeBaseline(
    const std::string& name, std::shared_ptr<const data::CityDataset> dataset,
    int64_t dm, uint64_t seed) {
  eval::ModelOptions options;
  options.dm = dm;
  options.seed = seed;
  std::unique_ptr<eval::NextPoiModel> model =
      eval::ModelRegistry::Global().Create(name, std::move(dataset), options);
  TSPN_CHECK(model != nullptr) << "unknown baseline: " << name;
  return model;
}

}  // namespace tspn::baselines
