// Baseline registry: names and factory.

#include "baselines/base.h"

#include "baselines/deepmove.h"
#include "baselines/graph_flashback.h"
#include "baselines/gru_model.h"
#include "baselines/hmt_grn.h"
#include "baselines/lstpm.h"
#include "baselines/markov_chain.h"
#include "baselines/sae_nad.h"
#include "baselines/stan.h"
#include "baselines/stisan.h"
#include "baselines/strnn.h"
#include "common/check.h"

namespace tspn::baselines {

std::vector<std::string> BaselineNames() {
  return {"MC",      "GRU",     "STRNN",   "DeepMove",        "LSTPM",
          "STAN",    "SAE-NAD", "HMT-GRN", "Graph-Flashback", "STiSAN"};
}

std::unique_ptr<eval::NextPoiModel> MakeBaseline(
    const std::string& name, std::shared_ptr<const data::CityDataset> dataset,
    int64_t dm, uint64_t seed) {
  if (name == "MC") return std::make_unique<MarkovChain>(std::move(dataset));
  if (name == "GRU") return std::make_unique<GruModel>(std::move(dataset), dm, seed);
  if (name == "STRNN") return std::make_unique<Strnn>(std::move(dataset), dm, seed);
  if (name == "DeepMove") {
    return std::make_unique<DeepMove>(std::move(dataset), dm, seed);
  }
  if (name == "LSTPM") return std::make_unique<Lstpm>(std::move(dataset), dm, seed);
  if (name == "STAN") return std::make_unique<Stan>(std::move(dataset), dm, seed);
  if (name == "SAE-NAD") {
    return std::make_unique<SaeNad>(std::move(dataset), dm, seed);
  }
  if (name == "HMT-GRN") {
    return std::make_unique<HmtGrn>(std::move(dataset), dm, seed);
  }
  if (name == "Graph-Flashback") {
    return std::make_unique<GraphFlashback>(std::move(dataset), dm, seed);
  }
  if (name == "STiSAN") return std::make_unique<Stisan>(std::move(dataset), dm, seed);
  TSPN_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

}  // namespace tspn::baselines
