#ifndef TSPN_BASELINES_STISAN_H_
#define TSPN_BASELINES_STISAN_H_

#include <memory>

#include "baselines/base.h"

namespace tspn::baselines {

/// STiSAN baseline (Wang et al., ICDE 2022): a time-aware position encoder
/// (position embeddings shifted by time-interval embeddings) feeding an
/// interval-aware self-attention block, trained with nearest-POI negative
/// sampling. The nearest-negative scheme is what hurts it on sparse
/// state-wide datasets (Sec. VI-B observation 4).
class Stisan : public SequenceModelBase {
 public:
  Stisan(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
         uint64_t seed);

  std::string name() const override { return "STiSAN"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Tensor SampleLoss(const Prefix& prefix, common::Rng& rng) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  static constexpr int64_t kMaxPositions = 64;
  static constexpr int64_t kNumBuckets = 16;
  static constexpr int64_t kNearestNegatives = 24;
  static constexpr int64_t kRandomNegatives = 8;

  nn::Tensor EncodeState(const Prefix& prefix) const;

  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng),
          position_embedding(kMaxPositions, dm, rng),
          interval_embedding(kNumBuckets, dm, rng),
          attn(dm, rng), out(dm, dm, rng),
          gap_buckets(kNumBuckets, 1, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&position_embedding);
      RegisterChild(&interval_embedding);
      RegisterChild(&attn);
      RegisterChild(&out);
      RegisterChild(&gap_buckets);
    }
    nn::Embedding poi_embedding;
    nn::Embedding position_embedding;  // TAPE positions
    nn::Embedding interval_embedding;  // TAPE time-interval shifts
    nn::Attention attn;                // IAAB core
    nn::Linear out;
    nn::Embedding gap_buckets;         // scalar attention bias per gap bucket
  };
  std::unique_ptr<Net> net_;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_STISAN_H_
