#include "baselines/gru_model.h"

namespace tspn::baselines {

GruModel::GruModel(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
                   uint64_t seed)
    : SequenceModelBase(std::move(dataset)) {
  common::Rng rng(seed);
  net_ = std::make_unique<Net>(num_pois(), dm, rng);
}

nn::Tensor GruModel::ScoreAllPois(const Prefix& prefix) const {
  nn::Tensor x = nn::Add(net_->poi_embedding.Forward(prefix.poi_ids),
                         net_->slot_embedding.Forward(prefix.time_slots));
  nn::Tensor states = net_->gru.Unroll(x);
  nn::Tensor h = nn::Row(states, states.dim(0) - 1);
  return nn::MatVec(net_->poi_embedding.weight(), net_->out.Forward(h));
}

}  // namespace tspn::baselines
