#ifndef TSPN_BASELINES_GRU_MODEL_H_
#define TSPN_BASELINES_GRU_MODEL_H_

#include <memory>

#include "baselines/base.h"
#include "nn/gru.h"

namespace tspn::baselines {

/// GRU baseline (Cho et al. 2014): POI-id + time-slot embeddings through a
/// gated recurrent unit; the last hidden state scores all POIs via the tied
/// embedding table.
class GruModel : public SequenceModelBase {
 public:
  GruModel(std::shared_ptr<const data::CityDataset> dataset, int64_t dm,
           uint64_t seed);

  std::string name() const override { return "GRU"; }

 protected:
  nn::Tensor ScoreAllPois(const Prefix& prefix) const override;
  nn::Module& net() override { return *net_; }
  const nn::Module& net_const() const override { return *net_; }

 private:
  struct Net : nn::Module {
    Net(int64_t num_pois, int64_t dm, common::Rng& rng)
        : poi_embedding(num_pois, dm, rng), slot_embedding(48, dm, rng),
          gru(dm, dm, rng), out(dm, dm, rng) {
      RegisterChild(&poi_embedding);
      RegisterChild(&slot_embedding);
      RegisterChild(&gru);
      RegisterChild(&out);
    }
    nn::Embedding poi_embedding;
    nn::Embedding slot_embedding;
    nn::GruCell gru;
    nn::Linear out;
  };
  std::unique_ptr<Net> net_;
};

}  // namespace tspn::baselines

#endif  // TSPN_BASELINES_GRU_MODEL_H_
