#ifndef TSPN_RS_LAND_USE_H_
#define TSPN_RS_LAND_USE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"

namespace tspn::rs {

/// Ground-truth land-use classes driving both POI placement (data simulator)
/// and tile imagery (synthesizer). This shared provenance is exactly what
/// lets the CNN recover POI-relevant signal from imagery, mirroring the role
/// of real satellite data in the paper.
enum class LandUse : uint8_t {
  kWater = 0,
  kCoastal,      // beach strip along a coastline
  kPark,
  kResidential,
  kCommercial,
  kIndustrial,
  kSuburban,     // default background
};

constexpr int kNumLandUseClasses = 7;

/// Human-readable name (for docs/debug dumps).
std::string LandUseName(LandUse value);

/// One urban district: a disc of a given land-use type.
struct District {
  geo::GeoPoint center;
  double radius_deg = 0.01;
  LandUse type = LandUse::kResidential;
};

/// Optional linear east-coast model: water where
///   lon > base_lon + slope * (lat - anchor_lat),
/// with a `coastal_width_deg` beach strip inland of the waterline.
struct CoastSpec {
  bool enabled = false;
  double base_lon = 0.0;
  double slope = 0.0;
  double anchor_lat = 0.0;
  double coastal_width_deg = 0.02;
};

/// The synthetic city "world": region, districts, optional coast.
class CityLayout {
 public:
  CityLayout(geo::BoundingBox region, std::vector<District> districts,
             CoastSpec coast);

  const geo::BoundingBox& region() const { return region_; }
  const std::vector<District>& districts() const { return districts_; }
  const CoastSpec& coast() const { return coast_; }

  /// Land use at a point: water/coast first, then the nearest covering
  /// district, defaulting to suburban background.
  LandUse LandUseAt(const geo::GeoPoint& p) const;

  /// Signed distance to the waterline in degrees of longitude; negative
  /// means inland, positive means in the water. Returns -inf when there is
  /// no coast.
  double CoastDistanceDeg(const geo::GeoPoint& p) const;

  /// Longitude of the waterline at the given latitude (coast must be enabled).
  double CoastLonAt(double lat) const;

 private:
  geo::BoundingBox region_;
  std::vector<District> districts_;
  CoastSpec coast_;
};

}  // namespace tspn::rs

#endif  // TSPN_RS_LAND_USE_H_
