#include "rs/image.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace tspn::rs {

float Image::ChannelMean(int32_t c) const {
  TSPN_CHECK_GE(c, 0);
  TSPN_CHECK_LT(c, channels);
  double total = 0.0;
  const float* plane = data.data() + static_cast<size_t>(c) * height * width;
  for (int64_t i = 0; i < NumPixels(); ++i) total += plane[i];
  return static_cast<float>(total / static_cast<double>(NumPixels()));
}

void AddPixelNoise(Image& image, double fraction, common::Rng& rng) {
  TSPN_CHECK_GE(fraction, 0.0);
  TSPN_CHECK_LE(fraction, 1.0);
  for (int32_t y = 0; y < image.height; ++y) {
    for (int32_t x = 0; x < image.width; ++x) {
      if (!rng.Bernoulli(fraction)) continue;
      for (int32_t c = 0; c < image.channels; ++c) {
        image.at(c, y, x) = static_cast<float>(rng.Uniform());
      }
    }
  }
}

void WritePpm(const Image& image, const std::string& path) {
  TSPN_CHECK_EQ(image.channels, 3);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  TSPN_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "P6\n%d %d\n255\n", image.width, image.height);
  for (int32_t y = 0; y < image.height; ++y) {
    for (int32_t x = 0; x < image.width; ++x) {
      for (int32_t c = 0; c < 3; ++c) {
        float v = std::clamp(image.at(c, y, x), 0.0f, 1.0f);
        unsigned char byte = static_cast<unsigned char>(v * 255.0f);
        std::fwrite(&byte, 1, 1, f);
      }
    }
  }
  std::fclose(f);
}

}  // namespace tspn::rs
