#ifndef TSPN_RS_IMAGE_H_
#define TSPN_RS_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tspn::rs {

/// A dense CHW float image in [0, 1]; the synthetic analogue of the 256x256
/// RGB tiles the paper extracts from Google Maps. Resolution is configurable
/// so tests can exercise 256^2 while training loops stay CPU-friendly.
struct Image {
  int32_t channels = 3;
  int32_t height = 0;
  int32_t width = 0;
  std::vector<float> data;  // channels * height * width, CHW

  Image() = default;
  Image(int32_t c, int32_t h, int32_t w)
      : channels(c), height(h), width(w),
        data(static_cast<size_t>(c) * h * w, 0.0f) {}

  float& at(int32_t c, int32_t y, int32_t x) {
    return data[static_cast<size_t>((c * height + y) * width + x)];
  }
  float at(int32_t c, int32_t y, int32_t x) const {
    return data[static_cast<size_t>((c * height + y) * width + x)];
  }

  int64_t NumPixels() const { return static_cast<int64_t>(height) * width; }

  /// Per-channel mean (e.g. "blueness" of a coastal tile in tests).
  float ChannelMean(int32_t c) const;
};

/// Replaces `fraction` of the pixels with uniform random RGB noise — the
/// corruption used by the paper's Fig. 12(b) "20% noisy imagery" case study.
void AddPixelNoise(Image& image, double fraction, common::Rng& rng);

/// Writes a binary PPM (P6) for eyeballing synthesized tiles.
void WritePpm(const Image& image, const std::string& path);

}  // namespace tspn::rs

#endif  // TSPN_RS_IMAGE_H_
