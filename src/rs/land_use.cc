#include "rs/land_use.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace tspn::rs {

std::string LandUseName(LandUse value) {
  switch (value) {
    case LandUse::kWater: return "water";
    case LandUse::kCoastal: return "coastal";
    case LandUse::kPark: return "park";
    case LandUse::kResidential: return "residential";
    case LandUse::kCommercial: return "commercial";
    case LandUse::kIndustrial: return "industrial";
    case LandUse::kSuburban: return "suburban";
  }
  return "unknown";
}

CityLayout::CityLayout(geo::BoundingBox region, std::vector<District> districts,
                       CoastSpec coast)
    : region_(region), districts_(std::move(districts)), coast_(coast) {
  TSPN_CHECK_GT(region_.LatSpan(), 0.0);
  TSPN_CHECK_GT(region_.LonSpan(), 0.0);
}

double CityLayout::CoastLonAt(double lat) const {
  TSPN_CHECK(coast_.enabled);
  return coast_.base_lon + coast_.slope * (lat - coast_.anchor_lat);
}

double CityLayout::CoastDistanceDeg(const geo::GeoPoint& p) const {
  if (!coast_.enabled) return -std::numeric_limits<double>::infinity();
  return p.lon - CoastLonAt(p.lat);
}

LandUse CityLayout::LandUseAt(const geo::GeoPoint& p) const {
  if (coast_.enabled) {
    double d = CoastDistanceDeg(p);
    if (d > 0.0) return LandUse::kWater;
    if (d > -coast_.coastal_width_deg) return LandUse::kCoastal;
  }
  // Nearest covering district wins; ties broken by declaration order.
  const District* best = nullptr;
  double best_frac = std::numeric_limits<double>::max();
  for (const District& d : districts_) {
    double dist = std::hypot(p.lat - d.center.lat, p.lon - d.center.lon);
    double frac = dist / std::max(d.radius_deg, 1e-12);
    if (frac <= 1.0 && frac < best_frac) {
      best_frac = frac;
      best = &d;
    }
  }
  return best != nullptr ? best->type : LandUse::kSuburban;
}

}  // namespace tspn::rs
