#include "rs/synthesizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tspn::rs {

namespace {

struct Rgb {
  float r, g, b;
};

/// Base palette per land-use class, loosely matching aerial appearance.
Rgb BaseColor(LandUse use) {
  switch (use) {
    case LandUse::kWater: return {0.10f, 0.30f, 0.65f};
    case LandUse::kCoastal: return {0.85f, 0.80f, 0.60f};
    case LandUse::kPark: return {0.20f, 0.55f, 0.25f};
    case LandUse::kResidential: return {0.75f, 0.65f, 0.55f};
    case LandUse::kCommercial: return {0.55f, 0.55f, 0.60f};
    case LandUse::kIndustrial: return {0.45f, 0.40f, 0.45f};
    case LandUse::kSuburban: return {0.55f, 0.60f, 0.40f};
  }
  return {0.0f, 0.0f, 0.0f};
}

/// Deterministic hash of a quantized world coordinate; drives texture and
/// building speckle so renders are resolution- and tile-independent.
uint64_t HashCell(int64_t qlat, int64_t qlon, uint64_t salt) {
  uint64_t h = salt;
  h ^= static_cast<uint64_t>(qlat) * 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<uint64_t>(qlon) * 0xC2B2AE3D27D4EB4FULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

float HashUnit(uint64_t h) {
  return static_cast<float>(h >> 11) * (1.0f / 9007199254740992.0f);
}

}  // namespace

ImageSynthesizer::ImageSynthesizer(const CityLayout* layout,
                                   const roadnet::RoadNetwork* roads,
                                   const Options& options)
    : layout_(layout), roads_(roads), options_(options) {
  TSPN_CHECK(layout_ != nullptr);
  TSPN_CHECK_GE(options_.resolution, 4);
}

Image ImageSynthesizer::RenderTile(const geo::BoundingBox& bounds) const {
  Image image(3, options_.resolution, options_.resolution);
  PaintLandUse(bounds, image);
  if (roads_ != nullptr) PaintRoads(bounds, image);
  return image;
}

void ImageSynthesizer::PaintLandUse(const geo::BoundingBox& bounds,
                                    Image& image) const {
  const int32_t res = options_.resolution;
  const double lat_step = bounds.LatSpan() / res;
  const double lon_step = bounds.LonSpan() / res;
  // World-texture quantization: ~1/4096 of the full region so texture is
  // stable across zoom levels.
  const double q = std::max(layout_->region().LatSpan(),
                            layout_->region().LonSpan()) / 4096.0;
  for (int32_t y = 0; y < res; ++y) {
    // Row 0 is the northern edge, like map imagery.
    double lat = bounds.max_lat - (y + 0.5) * lat_step;
    for (int32_t x = 0; x < res; ++x) {
      double lon = bounds.min_lon + (x + 0.5) * lon_step;
      geo::GeoPoint p{lat, lon};
      LandUse use = layout_->LandUseAt(p);
      Rgb color = BaseColor(use);
      uint64_t h = HashCell(static_cast<int64_t>(std::floor(lat / q)),
                            static_cast<int64_t>(std::floor(lon / q)),
                            options_.world_seed);
      float noise =
          (HashUnit(h) - 0.5f) * 2.0f * static_cast<float>(options_.texture_noise);
      // Building speckle in built-up districts: small dark/light squares.
      float speckle = 0.0f;
      if (use == LandUse::kResidential || use == LandUse::kCommercial ||
          use == LandUse::kIndustrial) {
        uint64_t h2 = HashCell(static_cast<int64_t>(std::floor(lat / (q * 2))),
                               static_cast<int64_t>(std::floor(lon / (q * 2))),
                               options_.world_seed ^ 0xABCDULL);
        if (HashUnit(h2) < options_.building_density) {
          speckle = (HashUnit(h2 * 31) - 0.5f) * 0.25f;
        }
      }
      image.at(0, y, x) = std::clamp(color.r + noise + speckle, 0.0f, 1.0f);
      image.at(1, y, x) = std::clamp(color.g + noise + speckle, 0.0f, 1.0f);
      image.at(2, y, x) = std::clamp(color.b + noise + speckle, 0.0f, 1.0f);
    }
  }
}

void ImageSynthesizer::PaintRoads(const geo::BoundingBox& bounds,
                                  Image& image) const {
  const int32_t res = options_.resolution;
  const double lat_step = bounds.LatSpan() / res;
  const double lon_step = bounds.LonSpan() / res;
  const float road_color[3] = {0.20f, 0.20f, 0.22f};
  for (int64_t s = 0; s < roads_->NumSegments(); ++s) {
    const roadnet::RoadNetwork::Segment& seg = roads_->segment(s);
    geo::GeoPoint a = roads_->node(seg.a);
    geo::GeoPoint b = roads_->node(seg.b);
    // Quick reject: segment bounding box vs tile.
    if (std::max(a.lat, b.lat) < bounds.min_lat ||
        std::min(a.lat, b.lat) > bounds.max_lat ||
        std::max(a.lon, b.lon) < bounds.min_lon ||
        std::min(a.lon, b.lon) > bounds.max_lon) {
      continue;
    }
    double span_px = std::max(std::abs(a.lat - b.lat) / lat_step,
                              std::abs(a.lon - b.lon) / lon_step);
    int steps = std::max(2, static_cast<int>(std::ceil(span_px * 2.0)));
    int radius = seg.klass >= 2 ? 1 : 0;  // highways are wider
    for (int i = 0; i <= steps; ++i) {
      geo::GeoPoint p = geo::Lerp(a, b, static_cast<double>(i) / steps);
      int32_t px = static_cast<int32_t>((p.lon - bounds.min_lon) / lon_step);
      int32_t py = static_cast<int32_t>((bounds.max_lat - p.lat) / lat_step);
      for (int32_t dy = -radius; dy <= radius; ++dy) {
        for (int32_t dx = -radius; dx <= radius; ++dx) {
          int32_t xx = px + dx, yy = py + dy;
          if (xx < 0 || xx >= res || yy < 0 || yy >= res) continue;
          image.at(0, yy, xx) = road_color[0];
          image.at(1, yy, xx) = road_color[1];
          image.at(2, yy, xx) = road_color[2];
        }
      }
    }
  }
}

}  // namespace tspn::rs
