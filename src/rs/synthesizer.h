#ifndef TSPN_RS_SYNTHESIZER_H_
#define TSPN_RS_SYNTHESIZER_H_

#include <cstdint>

#include "geo/geometry.h"
#include "roadnet/road_network.h"
#include "rs/image.h"
#include "rs/land_use.h"

namespace tspn::rs {

/// Procedural satellite-tile renderer. Each pixel's colour is a deterministic
/// function of its *world* coordinate (land use + hashed texture), so
/// overlapping tiles at different quad-tree depths depict the same ground —
/// the multi-scale consistency Fig. 4 of the paper relies on. Roads are
/// stroked from the road network with class-dependent width.
class ImageSynthesizer {
 public:
  struct Options {
    int32_t resolution = 64;       ///< output is resolution x resolution x 3
    double texture_noise = 0.05;   ///< amplitude of hashed per-pixel texture
    double building_density = 0.5; ///< speckle probability in built-up areas
    uint64_t world_seed = 17;      ///< texture hash salt
  };

  ImageSynthesizer(const CityLayout* layout, const roadnet::RoadNetwork* roads,
                   const Options& options);

  /// Renders the tile covering `bounds`.
  Image RenderTile(const geo::BoundingBox& bounds) const;

  const Options& options() const { return options_; }

 private:
  void PaintLandUse(const geo::BoundingBox& bounds, Image& image) const;
  void PaintRoads(const geo::BoundingBox& bounds, Image& image) const;

  const CityLayout* layout_;        // not owned
  const roadnet::RoadNetwork* roads_;  // not owned, may be null
  Options options_;
};

}  // namespace tspn::rs

#endif  // TSPN_RS_SYNTHESIZER_H_
