#include "graph/qrp_graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace tspn::graph {

QrpGraph BuildQrpGraph(const spatial::QuadTree& tree,
                       const roadnet::TileAdjacency& leaf_adjacency,
                       const std::vector<data::Poi>& pois,
                       const std::vector<int64_t>& visited_poi_ids) {
  QrpGraph graph;
  if (visited_poi_ids.empty()) return graph;

  // Unique POIs in first-visit order, and their leaf tiles.
  std::unordered_set<int64_t> seen;
  std::vector<int32_t> leaves;
  for (int64_t pid : visited_poi_ids) {
    TSPN_CHECK_GE(pid, 0);
    TSPN_CHECK_LT(pid, static_cast<int64_t>(pois.size()));
    if (seen.insert(pid).second) {
      graph.poi_ids.push_back(pid);
      leaves.push_back(tree.LocateLeaf(pois[static_cast<size_t>(pid)].loc));
    }
  }

  // Step 1: minimal sub-tree covering the visited leaves.
  std::vector<int32_t> unique_leaves = leaves;
  std::sort(unique_leaves.begin(), unique_leaves.end());
  unique_leaves.erase(std::unique(unique_leaves.begin(), unique_leaves.end()),
                      unique_leaves.end());
  graph.tile_ids = tree.MinimalSubtree(unique_leaves);

  std::unordered_map<int32_t, int32_t> tile_local;
  for (size_t i = 0; i < graph.tile_ids.size(); ++i) {
    tile_local[graph.tile_ids[i]] = static_cast<int32_t>(i);
  }

  // Branch edges: parent-child pairs inside the sub-tree.
  for (size_t i = 0; i < graph.tile_ids.size(); ++i) {
    int32_t parent = tree.node(graph.tile_ids[i]).parent;
    auto it = parent >= 0 ? tile_local.find(parent) : tile_local.end();
    if (it != tile_local.end()) {
      graph.branch_edges.emplace_back(it->second, static_cast<int32_t>(i));
    }
  }

  // Step 2: road edges between leaf tiles of the sub-tree.
  for (size_t i = 0; i < unique_leaves.size(); ++i) {
    for (size_t j = i + 1; j < unique_leaves.size(); ++j) {
      int64_t leaf_i = tree.LeafIndexOf(unique_leaves[i]);
      int64_t leaf_j = tree.LeafIndexOf(unique_leaves[j]);
      if (leaf_adjacency.Connected(leaf_i, leaf_j)) {
        graph.road_edges.emplace_back(tile_local.at(unique_leaves[i]),
                                      tile_local.at(unique_leaves[j]));
      }
    }
  }

  // Step 3: contain edges (leaf tile -> POI node). POI local indices start
  // after the tile nodes.
  for (size_t p = 0; p < graph.poi_ids.size(); ++p) {
    int32_t leaf = leaves[p];
    auto it = tile_local.find(leaf);
    TSPN_CHECK(it != tile_local.end()) << "leaf missing from minimal subtree";
    graph.contain_edges.emplace_back(
        it->second, static_cast<int32_t>(graph.tile_ids.size() + p));
  }
  return graph;
}

QrpGraph BuildQrpGraphFromGrid(const spatial::GridIndex& grid,
                               const roadnet::TileAdjacency& cell_adjacency,
                               const std::vector<data::Poi>& pois,
                               const std::vector<int64_t>& visited_poi_ids) {
  QrpGraph graph;
  if (visited_poi_ids.empty()) return graph;

  std::unordered_set<int64_t> seen;
  std::vector<int64_t> cells;
  for (int64_t pid : visited_poi_ids) {
    TSPN_CHECK_GE(pid, 0);
    TSPN_CHECK_LT(pid, static_cast<int64_t>(pois.size()));
    if (seen.insert(pid).second) {
      graph.poi_ids.push_back(pid);
      cells.push_back(grid.TileOf(pois[static_cast<size_t>(pid)].loc));
    }
  }

  std::vector<int64_t> unique_cells = cells;
  std::sort(unique_cells.begin(), unique_cells.end());
  unique_cells.erase(std::unique(unique_cells.begin(), unique_cells.end()),
                     unique_cells.end());
  std::unordered_map<int64_t, int32_t> cell_local;
  for (size_t i = 0; i < unique_cells.size(); ++i) {
    graph.tile_ids.push_back(static_cast<int32_t>(unique_cells[i]));
    cell_local[unique_cells[i]] = static_cast<int32_t>(i);
  }

  for (size_t i = 0; i < unique_cells.size(); ++i) {
    for (size_t j = i + 1; j < unique_cells.size(); ++j) {
      if (cell_adjacency.Connected(unique_cells[i], unique_cells[j])) {
        graph.road_edges.emplace_back(cell_local.at(unique_cells[i]),
                                      cell_local.at(unique_cells[j]));
      }
    }
  }

  for (size_t p = 0; p < graph.poi_ids.size(); ++p) {
    graph.contain_edges.emplace_back(
        cell_local.at(cells[p]),
        static_cast<int32_t>(graph.tile_ids.size() + p));
  }
  return graph;
}

}  // namespace tspn::graph
