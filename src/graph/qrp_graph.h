#ifndef TSPN_GRAPH_QRP_GRAPH_H_
#define TSPN_GRAPH_QRP_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/poi.h"
#include "roadnet/tile_adjacency.h"
#include "spatial/grid_index.h"
#include "spatial/quadtree.h"

namespace tspn::graph {

/// The heterogeneous QR-P graph of Sec. II-B: tile nodes (the minimal
/// quad-tree sub-tree covering a trajectory's POIs) and POI nodes, joined by
///   - branch edges  (quad-tree parent/child),
///   - road edges    (road-network adjacency between leaf tiles),
///   - contain edges (POI inside leaf tile).
/// Node indexing is local: tiles first ([0, NumTileNodes())), then POIs.
struct QrpGraph {
  /// Per tile node: the quad-tree node id (or grid cell id for the grid
  /// ablation). ET rows are looked up with these ids.
  std::vector<int32_t> tile_ids;
  /// Per POI node: the POI id (unique; repeat visits collapse to one node).
  std::vector<int64_t> poi_ids;

  /// Edges in local node indices. Branch/road connect tiles; contain
  /// connects (tile, poi).
  std::vector<std::pair<int32_t, int32_t>> branch_edges;
  std::vector<std::pair<int32_t, int32_t>> road_edges;
  std::vector<std::pair<int32_t, int32_t>> contain_edges;

  int64_t NumTileNodes() const { return static_cast<int64_t>(tile_ids.size()); }
  int64_t NumPoiNodes() const { return static_cast<int64_t>(poi_ids.size()); }
  int64_t NumNodes() const { return NumTileNodes() + NumPoiNodes(); }
  int64_t NumEdges() const {
    return static_cast<int64_t>(branch_edges.size() + road_edges.size() +
                                contain_edges.size());
  }
  bool empty() const { return NumNodes() == 0; }
};

/// Builds the QR-P graph for the visited POI ids (a concatenated historical
/// trajectory) against the quad-tree partition. Follows the four construction
/// steps of Sec. II-B.
QrpGraph BuildQrpGraph(const spatial::QuadTree& tree,
                       const roadnet::TileAdjacency& leaf_adjacency,
                       const std::vector<data::Poi>& pois,
                       const std::vector<int64_t>& visited_poi_ids);

/// Grid-partition variant for the "Grid Replace Quad-tree" ablation: tile
/// nodes are the distinct grid cells of the visited POIs; there is no
/// hierarchy, so the graph has road and contain edges only.
QrpGraph BuildQrpGraphFromGrid(const spatial::GridIndex& grid,
                               const roadnet::TileAdjacency& cell_adjacency,
                               const std::vector<data::Poi>& pois,
                               const std::vector<int64_t>& visited_poi_ids);

}  // namespace tspn::graph

#endif  // TSPN_GRAPH_QRP_GRAPH_H_
