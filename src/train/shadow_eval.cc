#include "train/shadow_eval.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/stopwatch.h"

namespace tspn::train {

GateOptions GateOptions::FromEnv() {
  GateOptions options;
  options.shadow_window =
      common::EnvInt("TSPN_TRAIN_SHADOW_WINDOW", options.shadow_window);
  options.min_window =
      common::EnvInt("TSPN_TRAIN_GATE_MIN_WINDOW", options.min_window);
  options.epsilon = common::EnvDouble("TSPN_TRAIN_GATE_EPSILON", options.epsilon);
  return options;
}

ShadowEvaluator::ShadowEvaluator(
    std::shared_ptr<const data::CityDataset> dataset, GateOptions options)
    : dataset_(std::move(dataset)), options_(options) {
  TSPN_CHECK(dataset_ != nullptr);
  TSPN_CHECK_GT(options_.shadow_window, 0);
}

void ShadowEvaluator::Observe(const data::SampleRef& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int64_t>(window_.size()) >= options_.shadow_window) {
    window_.pop_front();
  }
  window_.push_back(sample);
}

int64_t ShadowEvaluator::WindowSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(window_.size());
}

ShadowEvaluator::SideMetrics ShadowEvaluator::Replay(
    const eval::NextPoiModel& model,
    const std::vector<data::SampleRef>& window) const {
  SideMetrics side;
  double tile_rr_sum = 0.0;
  const int64_t batch_size = std::max<int64_t>(1, options_.batch_size);
  std::vector<eval::RecommendRequest> requests;
  for (size_t begin = 0; begin < window.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(window.size(),
                                begin + static_cast<size_t>(batch_size));
    requests.clear();
    for (size_t i = begin; i < end; ++i) {
      eval::RecommendRequest request;
      request.sample = window[i];
      request.top_n = options_.list_length;
      requests.push_back(request);
    }
    std::vector<eval::RecommendResponse> responses = model.RecommendBatch(
        common::Span<eval::RecommendRequest>(requests));
    for (size_t i = begin; i < end; ++i) {
      const data::SampleRef& sample = window[i];
      const eval::RecommendResponse& response = responses[i - begin];
      const int64_t target = dataset_->Target(sample).poi_id;
      side.ranking.Add(response.PoiIds(), target);
      // Auxiliary tile-MRR: reciprocal rank of the target's quad-tree leaf
      // among the *distinct* tiles of the ranked items, in order of first
      // appearance. Single-stage models emit tile_index -1 and contribute 0.
      const int64_t target_tile = dataset_->quadtree().LeafIndexOf(
          dataset_->LeafNodeOfPoi(target));
      int64_t tile_rank = 0;
      int64_t distinct = 0;
      int64_t last_tile = -2;
      for (const eval::ScoredPoi& item : response.items) {
        if (item.tile_index < 0) continue;
        if (item.tile_index != last_tile) {
          ++distinct;
          last_tile = item.tile_index;
        }
        if (item.tile_index == target_tile) {
          tile_rank = distinct;
          break;
        }
      }
      if (tile_rank > 0) tile_rr_sum += 1.0 / static_cast<double>(tile_rank);
    }
  }
  side.tile_mrr = window.empty()
                      ? 0.0
                      : tile_rr_sum / static_cast<double>(window.size());
  return side;
}

GateReport ShadowEvaluator::Judge(const eval::NextPoiModel& candidate,
                                  const eval::NextPoiModel& live) const {
  std::vector<data::SampleRef> window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    window.assign(window_.begin(), window_.end());
  }
  GateReport report;
  report.window = static_cast<int64_t>(window.size());
  common::Stopwatch watch;
  SideMetrics live_side = Replay(live, window);
  SideMetrics candidate_side = Replay(candidate, window);
  report.eval_ms = watch.ElapsedSeconds() * 1e3;
  if (!window.empty()) {
    report.live_recall10 = live_side.ranking.RecallAt(10);
    report.candidate_recall10 = candidate_side.ranking.RecallAt(10);
    report.live_mrr = live_side.ranking.Mrr();
    report.candidate_mrr = candidate_side.ranking.Mrr();
    report.live_tile_mrr = live_side.tile_mrr;
    report.candidate_tile_mrr = candidate_side.tile_mrr;
  }
  return report;
}

GateReport PromotionGate::Evaluate(const ShadowEvaluator& evaluator,
                                   const eval::NextPoiModel& candidate,
                                   const eval::NextPoiModel& live) const {
  GateReport report = evaluator.Judge(candidate, live);
  Decide(&report);
  return report;
}

void PromotionGate::Decide(GateReport* report) const {
  if (report->window < options_.min_window) {
    report->pass = false;
    report->reason = "window " + std::to_string(report->window) +
                     " below minimum " + std::to_string(options_.min_window);
    return;
  }
  auto trails = [this](double candidate, double live) {
    return candidate < live - options_.epsilon;
  };
  if (trails(report->candidate_recall10, report->live_recall10)) {
    report->pass = false;
    report->reason = "Recall@10 regression: candidate " +
                     std::to_string(report->candidate_recall10) + " vs live " +
                     std::to_string(report->live_recall10);
    return;
  }
  if (trails(report->candidate_mrr, report->live_mrr)) {
    report->pass = false;
    report->reason = "MRR regression: candidate " +
                     std::to_string(report->candidate_mrr) + " vs live " +
                     std::to_string(report->live_mrr);
    return;
  }
  if (trails(report->candidate_tile_mrr, report->live_tile_mrr)) {
    report->pass = false;
    report->reason = "tile-MRR regression: candidate " +
                     std::to_string(report->candidate_tile_mrr) + " vs live " +
                     std::to_string(report->live_tile_mrr);
    return;
  }
  report->pass = true;
  report->reason.clear();
}

}  // namespace tspn::train
