#ifndef TSPN_TRAIN_SHADOW_EVAL_H_
#define TSPN_TRAIN_SHADOW_EVAL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/model_api.h"

namespace tspn::train {

/// Gate knobs, overridable from the environment (FromEnv):
///
///   TSPN_TRAIN_SHADOW_WINDOW    rolling replay-window capacity       (128)
///   TSPN_TRAIN_GATE_MIN_WINDOW  min observed samples before judging   (32)
///   TSPN_TRAIN_GATE_EPSILON     metric slack: candidate may trail the
///                               live model by at most this much     (0.02)
struct GateOptions {
  int64_t shadow_window = 128;
  int64_t min_window = 32;
  double epsilon = 0.02;
  int64_t batch_size = 16;
  int64_t list_length = 20;

  static GateOptions FromEnv();
};

/// Outcome of one shadow evaluation. The headline metrics are Recall@10 and
/// MRR from the paper's evaluation protocol, plus the auxiliary tile-MRR —
/// how early the target's quad-tree tile appears among the tiles of the
/// ranked items (MobTCast's auxiliary-trajectory signal recast onto the
/// two-step pipeline: a candidate that ranks the right POIs for the wrong
/// spatial reasons loses tile-MRR before it loses Recall).
struct GateReport {
  bool pass = false;
  std::string reason;  ///< non-empty exactly when pass == false
  int64_t window = 0;  ///< samples replayed
  double eval_ms = 0.0;

  double live_recall10 = 0.0;
  double candidate_recall10 = 0.0;
  double live_mrr = 0.0;
  double candidate_mrr = 0.0;
  double live_tile_mrr = 0.0;
  double candidate_tile_mrr = 0.0;
};

/// Maintains the rolling window of recently served prediction instances and
/// replays it through a model via RecommendBatch. Observe() is thread-safe
/// (the serving path records; the trainer thread judges).
class ShadowEvaluator {
 public:
  ShadowEvaluator(std::shared_ptr<const data::CityDataset> dataset,
                  GateOptions options);

  /// Records one served request's prediction instance into the window
  /// (oldest evicted at capacity).
  void Observe(const data::SampleRef& sample);

  int64_t WindowSize() const;

  /// Replays the current window through both models and fills a report's
  /// metrics (pass/reason are left for PromotionGate::Decide). The window
  /// is snapshotted once so both sides replay identical samples.
  GateReport Judge(const eval::NextPoiModel& candidate,
                   const eval::NextPoiModel& live) const;

  const GateOptions& options() const { return options_; }

 private:
  struct SideMetrics {
    eval::RankingMetrics ranking;
    double tile_mrr = 0.0;
  };

  SideMetrics Replay(const eval::NextPoiModel& model,
                     const std::vector<data::SampleRef>& window) const;

  std::shared_ptr<const data::CityDataset> dataset_;
  GateOptions options_;
  mutable std::mutex mutex_;
  std::deque<data::SampleRef> window_;
};

/// Parity-or-better promotion policy over a GateReport: the candidate is
/// promotable only when the replay window is large enough to mean anything
/// and none of the three metrics trails the live model by more than
/// epsilon. Decide() stamps pass/reason into the report.
class PromotionGate {
 public:
  explicit PromotionGate(GateOptions options) : options_(options) {}

  /// Judges `candidate` against `live` over the evaluator's window and
  /// applies the policy. The returned report carries the verdict.
  GateReport Evaluate(const ShadowEvaluator& evaluator,
                      const eval::NextPoiModel& candidate,
                      const eval::NextPoiModel& live) const;

  /// The policy alone, for reports produced elsewhere.
  void Decide(GateReport* report) const;

 private:
  GateOptions options_;
};

}  // namespace tspn::train

#endif  // TSPN_TRAIN_SHADOW_EVAL_H_
