#ifndef TSPN_TRAIN_LIVE_FEED_H_
#define TSPN_TRAIN_LIVE_FEED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "train/checkin_stream.h"

namespace tspn::train {

/// Deterministic "live traffic" replayer: re-runs the behavioural simulator
/// (data::SimulateUsers) over the dataset's existing world — same city,
/// roads, categories and POIs — under a *different* seed, producing
/// check-ins the model has never trained on, merged across users into one
/// time-ordered stream. A fixed seed yields an identical event sequence
/// (and hence, through SampleAssembler, an identical sample sequence) on
/// every run, which is what makes the trainer tests reproducible.
///
/// Cold start: `novel_poi_count > 0` synthesizes that many POIs that do not
/// exist in the dataset (ids starting at dataset->pois().size(), locations
/// drawn inside the region) and rewrites every `novel_visit_every`-th event
/// into a visit to one of them — the mid-stream arrivals the cold-start
/// priors must make rankable.
class LiveFeed {
 public:
  struct Options {
    uint64_t seed = 0x5EEDF00D;     ///< traffic seed (decoupled from the
                                    ///< dataset's world/behaviour seed)
    int64_t checkins_per_user = 0;  ///< 0 = the profile's own count
    int64_t novel_poi_count = 0;
    int64_t novel_visit_every = 16;
  };

  LiveFeed(std::shared_ptr<const data::CityDataset> dataset, Options options);

  /// All events, time-ordered, novel rewrites applied.
  const std::vector<StreamEvent>& events() const { return events_; }

  /// Pushes up to `n` not-yet-pumped events into the stream (n <= 0 pumps
  /// everything left). Returns how many were pushed; 0 means exhausted.
  int64_t PumpInto(CheckinStream& stream, int64_t n);

  /// Events not yet pumped.
  int64_t Remaining() const {
    return static_cast<int64_t>(events_.size()) - cursor_;
  }

 private:
  std::vector<StreamEvent> events_;
  int64_t cursor_ = 0;
};

}  // namespace tspn::train

#endif  // TSPN_TRAIN_LIVE_FEED_H_
