#include "train/checkin_stream.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace tspn::train {

CheckinStream::CheckinStream(int64_t capacity) : capacity_(capacity) {
  TSPN_CHECK_GT(capacity, 0);
}

void CheckinStream::Push(const StreamEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    if (static_cast<int64_t>(queue_.size()) >= capacity_) {
      queue_.pop_front();
      ++dropped_;
    }
    queue_.push_back(event);
    ++pushed_;
  }
  cv_.notify_one();
}

std::vector<StreamEvent> CheckinStream::PopBatch(int64_t max_events,
                                                 int64_t wait_ms) {
  std::vector<StreamEvent> batch;
  if (max_events <= 0) return batch;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
               [this] { return closed_ || !queue_.empty(); });
  const int64_t take =
      std::min<int64_t>(max_events, static_cast<int64_t>(queue_.size()));
  batch.reserve(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  popped_ += take;
  return batch;
}

void CheckinStream::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool CheckinStream::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

StreamStats CheckinStream::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamStats stats;
  stats.pushed = pushed_;
  stats.dropped = dropped_;
  stats.popped = popped_;
  stats.depth = static_cast<int64_t>(queue_.size());
  return stats;
}

int64_t SampleAssembler::Feed(const StreamEvent& event,
                              std::vector<eval::OnlineSample>* out) {
  std::vector<data::Checkin>& window = windows_[event.user];
  const int64_t gap_seconds = options_.window_gap_hours * 3600;
  if (!window.empty() &&
      event.checkin.timestamp - window.back().timestamp >= gap_seconds) {
    window.clear();
  }
  int64_t emitted = 0;
  if (!window.empty()) {
    eval::OnlineSample sample;
    sample.user = event.user;
    sample.history = window;
    sample.target = event.checkin;
    out->push_back(std::move(sample));
    emitted = 1;
  }
  window.push_back(event.checkin);
  if (static_cast<int64_t>(window.size()) > options_.max_history) {
    window.erase(window.begin());
  }
  return emitted;
}

}  // namespace tspn::train
