#ifndef TSPN_TRAIN_CHECKIN_STREAM_H_
#define TSPN_TRAIN_CHECKIN_STREAM_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/poi.h"
#include "eval/model_api.h"
#include "geo/geometry.h"

namespace tspn::train {

/// One live check-in flowing through the training pipeline. For POIs the
/// dataset already knows, `checkin.poi_id` resolves through the dataset and
/// the trailing fields are unused. For POIs that first appear mid-stream
/// (cold start), `novel` is set and the location/category travel with the
/// event — the dataset cannot resolve them, and the cold-start priors
/// (eval/cold_start.h) need them to make the POI rankable.
struct StreamEvent {
  int64_t user = -1;
  data::Checkin checkin;
  bool novel = false;
  geo::GeoPoint loc;
  int32_t category = -1;
};

/// Point-in-time counters of a CheckinStream.
struct StreamStats {
  int64_t pushed = 0;   ///< accepted by Push (dropped events included)
  int64_t dropped = 0;  ///< oldest events evicted by backpressure
  int64_t popped = 0;   ///< handed to the consumer
  int64_t depth = 0;    ///< currently buffered
};

/// Bounded MPSC buffer between check-in producers (live traffic, the
/// LiveFeed replayer) and the continual trainer. Backpressure is
/// drop-oldest: a full buffer evicts its oldest event rather than blocking
/// the producer — a trainer that falls behind trains on the freshest
/// traffic, which is the point of online learning, and the drop counter
/// makes the lag observable. Push never blocks; PopBatch blocks (bounded by
/// `wait`) until events arrive or the stream closes.
class CheckinStream {
 public:
  explicit CheckinStream(int64_t capacity);

  /// Enqueues one event, evicting the oldest when full. Events pushed after
  /// Close() are rejected (counted neither as pushed nor dropped).
  void Push(const StreamEvent& event);

  /// Pops up to `max_events` in arrival order. Blocks until at least one
  /// event is available, the stream is closed, or `wait_ms` elapses —
  /// whichever comes first. An empty result with closed() true means the
  /// stream is fully drained.
  std::vector<StreamEvent> PopBatch(int64_t max_events, int64_t wait_ms);

  /// Signals end-of-stream: producers stop, the consumer drains what
  /// remains and then sees empty batches.
  void Close();

  bool closed() const;
  StreamStats Stats() const;

 private:
  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<StreamEvent> queue_;
  bool closed_ = false;
  int64_t pushed_ = 0;
  int64_t dropped_ = 0;
  int64_t popped_ = 0;
};

/// Per-user sequence assembly: folds the interleaved event stream into the
/// paper's trajectory windows (a gap of >= `window_gap_hours` starts a new
/// window, Sec. II-A) and emits one eval::OnlineSample per check-in that
/// extends a non-empty window — exactly the prediction instances the
/// offline dataset would have generated from the same stream. Novel-POI
/// events extend the user's window (they are real visits) but the samples
/// they terminate are still emitted; the trainer's feature extraction
/// decides what is trainable.
class SampleAssembler {
 public:
  struct Options {
    int64_t window_gap_hours = 72;  ///< the paper's delta-t
    int64_t max_history = 64;       ///< per-sample history cap (newest kept)
  };

  explicit SampleAssembler(Options options) : options_(options) {}

  /// Feeds one event; appends any completed samples to `out` and returns
  /// how many were appended (0 or 1). Events must arrive time-ordered per
  /// user (the stream preserves producer order).
  int64_t Feed(const StreamEvent& event, std::vector<eval::OnlineSample>* out);

  /// Number of users with an open window.
  int64_t ActiveUsers() const { return static_cast<int64_t>(windows_.size()); }

 private:
  Options options_;
  std::unordered_map<int64_t, std::vector<data::Checkin>> windows_;
};

}  // namespace tspn::train

#endif  // TSPN_TRAIN_CHECKIN_STREAM_H_
