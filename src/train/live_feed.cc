#include "train/live_feed.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "data/checkin_generator.h"

namespace tspn::train {

LiveFeed::LiveFeed(std::shared_ptr<const data::CityDataset> dataset,
                   Options options) {
  TSPN_CHECK(dataset != nullptr);
  // The world is reconstructed from the dataset's accessors rather than
  // rebuilt from the profile, so the feed is guaranteed to walk the exact
  // POI inventory the serving model was trained over.
  data::World world{dataset->layout(), dataset->roads(), dataset->categories(),
                    dataset->pois()};

  data::CityProfile profile = dataset->profile();
  profile.seed ^= options.seed;  // new behaviour stream over the same world
  if (options.checkins_per_user > 0) {
    profile.checkins_per_user = options.checkins_per_user;
  }
  std::vector<data::UserStream> streams = data::SimulateUsers(profile, world);

  size_t total = 0;
  for (const data::UserStream& s : streams) total += s.checkins.size();
  events_.reserve(total);
  for (size_t user = 0; user < streams.size(); ++user) {
    for (const data::Checkin& checkin : streams[user].checkins) {
      StreamEvent event;
      event.user = static_cast<int64_t>(user);
      event.checkin = checkin;
      events_.push_back(event);
    }
  }
  // Global arrival order: by timestamp, user index breaking ties so the
  // order is total and seed-stable.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     if (a.checkin.timestamp != b.checkin.timestamp) {
                       return a.checkin.timestamp < b.checkin.timestamp;
                     }
                     return a.user < b.user;
                   });

  if (options.novel_poi_count > 0 && !events_.empty()) {
    common::Rng rng(options.seed ^ 0xC01D57A27ULL);
    const geo::BoundingBox& bbox = dataset->profile().bbox;
    const int64_t num_categories =
        static_cast<int64_t>(dataset->categories().size());
    struct NovelPoi {
      geo::GeoPoint loc;
      int32_t category;
    };
    std::vector<NovelPoi> novel(static_cast<size_t>(options.novel_poi_count));
    for (NovelPoi& poi : novel) {
      poi.loc.lat = rng.Uniform(bbox.min_lat, bbox.max_lat);
      poi.loc.lon = rng.Uniform(bbox.min_lon, bbox.max_lon);
      poi.category = static_cast<int32_t>(rng.UniformInt(num_categories));
    }
    const int64_t base_id = static_cast<int64_t>(dataset->pois().size());
    const int64_t every = std::max<int64_t>(1, options.novel_visit_every);
    for (size_t i = every - 1; i < events_.size();
         i += static_cast<size_t>(every)) {
      const int64_t pick = rng.UniformInt(options.novel_poi_count);
      StreamEvent& event = events_[i];
      event.checkin.poi_id = base_id + pick;
      event.novel = true;
      event.loc = novel[static_cast<size_t>(pick)].loc;
      event.category = novel[static_cast<size_t>(pick)].category;
    }
  }
}

int64_t LiveFeed::PumpInto(CheckinStream& stream, int64_t n) {
  const int64_t remaining = Remaining();
  const int64_t take = n <= 0 ? remaining : std::min<int64_t>(n, remaining);
  for (int64_t i = 0; i < take; ++i) {
    stream.Push(events_[static_cast<size_t>(cursor_ + i)]);
  }
  cursor_ += take;
  return take;
}

}  // namespace tspn::train
