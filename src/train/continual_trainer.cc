#include "train/continual_trainer.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "eval/model_registry.h"

namespace tspn::train {

TrainerOptions TrainerOptions::FromEnv() {
  TrainerOptions options;
  options.checkpoint_every =
      common::EnvInt("TSPN_TRAIN_CHECKPOINT_EVERY", options.checkpoint_every);
  options.batch_size =
      common::EnvInt("TSPN_TRAIN_BATCH_SIZE", options.batch_size);
  options.lr = common::EnvDouble("TSPN_TRAIN_LR", options.lr);
  options.promote_timeout_ms = common::EnvInt("TSPN_TRAIN_PROMOTE_TIMEOUT_MS",
                                              options.promote_timeout_ms);
  options.gate = GateOptions::FromEnv();
  return options;
}

ContinualTrainer::ContinualTrainer(
    std::shared_ptr<const data::CityDataset> dataset, CheckinStream* stream,
    serve::Gateway* gateway, TrainerOptions options)
    : dataset_(std::move(dataset)),
      stream_(stream),
      gateway_(gateway),
      options_(std::move(options)),
      assembler_(SampleAssembler::Options{options_.window_gap_hours,
                                          options_.max_history}),
      evaluator_(dataset_, options_.gate),
      gate_(options_.gate),
      priors_(dataset_, eval::ColdStartPriors::Options::FromEnv()) {
  TSPN_CHECK(dataset_ != nullptr);
  TSPN_CHECK(stream_ != nullptr);
  TSPN_CHECK(gateway_ != nullptr);
  TSPN_CHECK_GT(options_.checkpoint_every, 0);
}

ContinualTrainer::~ContinualTrainer() { Stop(); }

bool ContinualTrainer::Init(const serve::DeployConfig& live_config,
                            std::string* error) {
  eval::ModelOptions model_options;
  if (!eval::ModelOptions::FromKeyValues(live_config.model_options,
                                         &model_options, error)) {
    return false;
  }
  auto build = [&](const char* role) -> std::unique_ptr<eval::NextPoiModel> {
    std::unique_ptr<eval::NextPoiModel> model =
        eval::ModelRegistry::Global().Create(live_config.model_name, dataset_,
                                             model_options);
    if (model == nullptr) {
      if (error != nullptr) {
        *error = "unknown model '" + live_config.model_name + "'";
      }
      return nullptr;
    }
    if (!live_config.checkpoint_path.empty() &&
        !model->LoadCheckpoint(live_config.checkpoint_path)) {
      if (error != nullptr) {
        *error = std::string("cannot restore ") + role + " from checkpoint '" +
                 live_config.checkpoint_path + "'";
      }
      return nullptr;
    }
    return model;
  };
  candidate_ = build("candidate");
  if (candidate_ == nullptr) return false;
  live_replica_ = build("live replica");
  if (live_replica_ == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.live_checkpoint = live_config.checkpoint_path;
  }
  return true;
}

void ContinualTrainer::Start() {
  TSPN_CHECK(candidate_ != nullptr) << "Init() must succeed before Start()";
  TSPN_CHECK(!started_);
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

bool ContinualTrainer::Finish(int64_t timeout_ms) {
  if (!started_) return true;
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    if (!done_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return done_; })) {
      return false;  // hung: the thread is still draining or wedged
    }
  }
  if (thread_.joinable()) thread_.join();
  return true;
}

void ContinualTrainer::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void ContinualTrainer::Observe(const data::SampleRef& sample) {
  evaluator_.Observe(sample);
}

void ContinualTrainer::Loop() {
  while (!stop_.load()) {
    std::vector<StreamEvent> events =
        stream_->PopBatch(options_.pop_batch, options_.pop_wait_ms);
    if (events.empty()) {
      if (stream_->closed()) break;
      continue;
    }
    ProcessEvents(events);
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void ContinualTrainer::ProcessEvents(const std::vector<StreamEvent>& events) {
  const int64_t num_known = static_cast<int64_t>(dataset_->pois().size());
  std::vector<eval::OnlineSample> samples;
  int64_t cold_seen = 0;
  for (const StreamEvent& event : events) {
    // Cold-start observations feed the priors; known visits feed them too
    // (the category-time and density statistics are global).
    if (event.novel || event.checkin.poi_id >= num_known) {
      priors_.AddPoi(event.checkin.poi_id, event.loc, event.category);
      priors_.RecordVisit(event.loc, event.category, event.checkin.timestamp);
      ++cold_seen;
    } else {
      const data::Poi& poi = dataset_->poi(event.checkin.poi_id);
      priors_.RecordVisit(poi.loc, poi.category, event.checkin.timestamp);
    }
    assembler_.Feed(event, &samples);
  }
  const int64_t trained = candidate_->TrainOnline(
      common::Span<const eval::OnlineSample>(samples.data(), samples.size()),
      eval::TrainOptions{.batch_size = static_cast<int32_t>(options_.batch_size),
                         .lr = static_cast<float>(options_.lr),
                         .seed = options_.seed});
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.events_consumed += static_cast<int64_t>(events.size());
    stats_.samples_assembled += static_cast<int64_t>(samples.size());
    stats_.samples_trained += trained;
    stats_.samples_skipped += static_cast<int64_t>(samples.size()) - trained;
    stats_.cold_pois_seen += cold_seen;
  }
  since_checkpoint_ += trained;
  if (since_checkpoint_ >= options_.checkpoint_every) {
    since_checkpoint_ = 0;
    CheckpointAndGate();
  }
}

void ContinualTrainer::CheckpointAndGate() {
  const std::string path = options_.checkpoint_dir + "/candidate-" +
                           std::to_string(++checkpoint_seq_) + ".tsck";
  candidate_->SaveCheckpoint(path);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.checkpoints;
    stats_.last_checkpoint = path;
  }
  GateAndMaybePromote(*candidate_, path);
}

bool ContinualTrainer::GateAndMaybePromote(const eval::NextPoiModel& candidate,
                                           const std::string& checkpoint_path) {
  GateReport report = gate_.Evaluate(evaluator_, candidate, *live_replica_);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    last_report_ = report;
    stats_.last_gate_eval_ms = report.eval_ms;
    if (report.pass) {
      ++stats_.gate_passes;
    } else {
      ++stats_.gate_rejects;
    }
  }
  if (!report.pass) return false;

  std::string error;
  if (!gateway_->SwapAsync(options_.endpoint, checkpoint_path, &error)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.promote_failures;
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.promote_timeout_ms);
  serve::DeployStatus status;
  do {
    status = gateway_->GetDeployStatus(options_.endpoint);
    if (status.state != serve::DeployState::kBuilding) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (std::chrono::steady_clock::now() < deadline);

  if (status.state != serve::DeployState::kLive) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.promote_failures;
    return false;
  }
  // The live replica follows the promotion so the next gate compares
  // against what actually serves.
  TSPN_CHECK(live_replica_->LoadCheckpoint(checkpoint_path))
      << "promoted checkpoint no longer loads: " << checkpoint_path;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.promotions;
  // Retention: the checkpoint that was serving until now becomes the
  // rollback target; the promoted candidate becomes live.
  stats_.last_good_checkpoint = stats_.live_checkpoint;
  stats_.live_checkpoint = checkpoint_path;
  return true;
}

bool ContinualTrainer::Rollback(std::string* error) {
  std::string target;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    target = stats_.last_good_checkpoint;
  }
  if (target.empty()) {
    if (error != nullptr) *error = "no last-good checkpoint retained yet";
    return false;
  }
  if (!gateway_->Swap(options_.endpoint, target, error)) return false;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.rollbacks;
  stats_.last_good_checkpoint = stats_.live_checkpoint;
  stats_.live_checkpoint = target;
  TSPN_CHECK(live_replica_->LoadCheckpoint(target));
  return true;
}

TrainerStats ContinualTrainer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

GateReport ContinualTrainer::LastGateReport() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return last_report_;
}

serve::TrainerTelemetry ContinualTrainer::Telemetry() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  serve::TrainerTelemetry telemetry;
  telemetry.attached = true;
  telemetry.events_consumed = stats_.events_consumed;
  telemetry.samples_trained = stats_.samples_trained;
  telemetry.samples_skipped = stats_.samples_skipped;
  telemetry.checkpoints = stats_.checkpoints;
  telemetry.gate_passes = stats_.gate_passes;
  telemetry.gate_rejects = stats_.gate_rejects;
  telemetry.promotions = stats_.promotions;
  telemetry.promote_failures = stats_.promote_failures;
  telemetry.last_checkpoint = stats_.last_checkpoint;
  return telemetry;
}

}  // namespace tspn::train
