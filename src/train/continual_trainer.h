#ifndef TSPN_TRAIN_CONTINUAL_TRAINER_H_
#define TSPN_TRAIN_CONTINUAL_TRAINER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "data/dataset.h"
#include "eval/cold_start.h"
#include "eval/model_api.h"
#include "serve/gateway.h"
#include "train/checkin_stream.h"
#include "train/shadow_eval.h"

namespace tspn::train {

/// Trainer knobs, overridable from the environment (FromEnv):
///
///   TSPN_TRAIN_CHECKPOINT_EVERY   samples trained between candidate
///                                 checkpoints (and gate passes)      (64)
///   TSPN_TRAIN_BATCH_SIZE         online mini-batch size              (8)
///   TSPN_TRAIN_LR                 online learning rate             (5e-4)
///   TSPN_TRAIN_BUFFER_CAPACITY    CheckinStream capacity — consumed by
///                                 whoever constructs the stream    (4096)
///   TSPN_TRAIN_PROMOTE_TIMEOUT_MS max wait for SwapAsync to leave
///                                 kBuilding                       (30000)
///
/// Gate knobs (TSPN_TRAIN_SHADOW_WINDOW, TSPN_TRAIN_GATE_MIN_WINDOW,
/// TSPN_TRAIN_GATE_EPSILON) live on GateOptions::FromEnv.
struct TrainerOptions {
  std::string endpoint;        ///< gateway endpoint to promote onto
  std::string checkpoint_dir;  ///< candidate checkpoints land here
  int64_t checkpoint_every = 64;
  int64_t batch_size = 8;
  double lr = 5e-4;
  int64_t pop_batch = 128;     ///< stream events drained per loop turn
  int64_t pop_wait_ms = 100;   ///< PopBatch block bound
  int64_t promote_timeout_ms = 30000;
  int64_t window_gap_hours = 72;  ///< SampleAssembler trajectory gap
  int64_t max_history = 64;       ///< SampleAssembler history cap
  uint64_t seed = 11;
  GateOptions gate;

  /// Defaults with every TSPN_TRAIN_* env override applied (gate included).
  static TrainerOptions FromEnv();
};

/// Counters of one trainer instance. All monotonic except depth-style
/// gauges; snapshot via ContinualTrainer::Stats().
struct TrainerStats {
  int64_t events_consumed = 0;
  int64_t samples_assembled = 0;
  int64_t samples_trained = 0;
  int64_t samples_skipped = 0;   ///< assembled but unresolvable (cold start)
  int64_t cold_pois_seen = 0;
  int64_t checkpoints = 0;
  int64_t gate_passes = 0;
  int64_t gate_rejects = 0;
  int64_t promotions = 0;
  int64_t promote_failures = 0;
  int64_t rollbacks = 0;
  double last_gate_eval_ms = 0.0;
  std::string last_checkpoint;       ///< newest candidate checkpoint
  std::string live_checkpoint;       ///< checkpoint the endpoint serves
  std::string last_good_checkpoint;  ///< rollback target
};

/// The continuous-training pipeline head: a background thread that drains
/// the check-in stream, assembles per-user training samples, runs
/// incremental updates on a *private* clone of the live model (the serving
/// deployment is never touched — zero serving-path interference), writes an
/// atomic candidate checkpoint every `checkpoint_every` trained samples,
/// shadow-evaluates the candidate against a live replica over the rolling
/// request window, and only on a parity-or-better gate verdict promotes via
/// Gateway::SwapAsync, polling GetDeployStatus until kLive. The previously
/// live checkpoint is retained as the rollback target (Rollback()).
///
/// Lifecycle: construct → Init(live deploy config) → Start() →
/// [stream producers push; serving calls Observe()] → stream Close() →
/// Finish(timeout) (or Stop() for immediate shutdown). Telemetry() is the
/// provider shape Gateway::AttachTrainer expects.
class ContinualTrainer {
 public:
  ContinualTrainer(std::shared_ptr<const data::CityDataset> dataset,
                   CheckinStream* stream, serve::Gateway* gateway,
                   TrainerOptions options);
  ~ContinualTrainer();

  ContinualTrainer(const ContinualTrainer&) = delete;
  ContinualTrainer& operator=(const ContinualTrainer&) = delete;

  /// Builds the candidate clone and the live replica through the model
  /// registry with the deployment's exact options, restoring both from the
  /// deployment's checkpoint. Must be called before Start(); false (with
  /// *error) on unknown model, bad options, or a checkpoint that fails to
  /// load.
  bool Init(const serve::DeployConfig& live_config, std::string* error);

  /// Spawns the background training thread.
  void Start();

  /// Waits for the thread to drain the (closed) stream and exit. Returns
  /// false if it has not finished within the timeout — the hung-thread
  /// signal the CI smoke turns into a non-zero exit.
  bool Finish(int64_t timeout_ms);

  /// Signals shutdown and joins, abandoning unprocessed events.
  void Stop();

  /// Records a served prediction instance into the shadow window.
  void Observe(const data::SampleRef& sample);

  TrainerStats Stats() const;
  serve::TrainerTelemetry Telemetry() const;

  /// Cold-start priors accumulated from the stream (novel POIs, visit
  /// statistics); serving-side consumers blend them via Augment().
  eval::ColdStartPriors& priors() { return priors_; }
  const eval::ColdStartPriors& priors() const { return priors_; }

  /// Verdict of the most recent gate evaluation (zero-window report before
  /// any gate has run).
  GateReport LastGateReport() const;

  /// Shadow-gates `candidate` (checkpointed at `checkpoint_path`) against
  /// the live replica and promotes on a pass: SwapAsync + GetDeployStatus
  /// poll until kLive (bounded by promote_timeout_ms), updating the
  /// last-good retention on success. Returns whether a promotion landed.
  /// Used internally after every checkpoint; public so tests and the demo
  /// can prove the gate blocks a deliberately broken candidate.
  bool GateAndMaybePromote(const eval::NextPoiModel& candidate,
                           const std::string& checkpoint_path);

  /// One-command rollback: synchronously swaps the endpoint back to the
  /// last-good checkpoint. False (with *error) when there is none or the
  /// swap fails.
  bool Rollback(std::string* error);

 private:
  void Loop();
  void ProcessEvents(const std::vector<StreamEvent>& events);
  void CheckpointAndGate();

  std::shared_ptr<const data::CityDataset> dataset_;
  CheckinStream* stream_;
  serve::Gateway* gateway_;
  TrainerOptions options_;

  SampleAssembler assembler_;
  ShadowEvaluator evaluator_;
  PromotionGate gate_;
  eval::ColdStartPriors priors_;

  /// Private model clone the updates run on, and the frozen replica of the
  /// live deployment the gate compares against. Both are trainer-owned;
  /// the serving deployment only ever changes through SwapAsync.
  std::unique_ptr<eval::NextPoiModel> candidate_;
  std::unique_ptr<eval::NextPoiModel> live_replica_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  bool started_ = false;

  mutable std::mutex stats_mutex_;
  TrainerStats stats_;
  GateReport last_report_;
  int64_t since_checkpoint_ = 0;
  int64_t checkpoint_seq_ = 0;
};

}  // namespace tspn::train

#endif  // TSPN_TRAIN_CONTINUAL_TRAINER_H_
