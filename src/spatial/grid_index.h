#ifndef TSPN_SPATIAL_GRID_INDEX_H_
#define TSPN_SPATIAL_GRID_INDEX_H_

#include <cstdint>

#include "geo/geometry.h"
#include "spatial/tile_partition.h"

namespace tspn::spatial {

/// Fixed-granularity G x G grid over a region. This is the conventional
/// partitioning the paper's "Grid Replace Quad-tree" ablation compares
/// against: every cell has the same extent regardless of POI density.
class GridIndex : public TilePartition {
 public:
  GridIndex(const geo::BoundingBox& region, int32_t cells_per_side);

  int64_t NumTiles() const override;
  int64_t TileOf(const geo::GeoPoint& point) const override;
  geo::BoundingBox TileBounds(int64_t tile) const override;
  const geo::BoundingBox& Region() const override { return region_; }

  int32_t cells_per_side() const { return cells_per_side_; }

  /// (row, col) of a tile index.
  void TileRowCol(int64_t tile, int32_t* row, int32_t* col) const;

  /// Inclusive (row, col) ranges of the cells overlapping `box`, clamped to
  /// the grid. Returns false when the box misses the region entirely —
  /// geo-fenced queries use this to touch only the cells a fence can reach.
  bool TileSpan(const geo::BoundingBox& box, int32_t* row_begin,
                int32_t* row_end, int32_t* col_begin, int32_t* col_end) const;

 private:
  geo::BoundingBox region_;
  int32_t cells_per_side_;
};

}  // namespace tspn::spatial

#endif  // TSPN_SPATIAL_GRID_INDEX_H_
