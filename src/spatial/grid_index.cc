#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tspn::spatial {

GridIndex::GridIndex(const geo::BoundingBox& region, int32_t cells_per_side)
    : region_(region), cells_per_side_(cells_per_side) {
  TSPN_CHECK_GT(cells_per_side, 0);
  TSPN_CHECK_GT(region.LatSpan(), 0.0);
  TSPN_CHECK_GT(region.LonSpan(), 0.0);
}

int64_t GridIndex::NumTiles() const {
  return static_cast<int64_t>(cells_per_side_) * cells_per_side_;
}

int64_t GridIndex::TileOf(const geo::GeoPoint& point) const {
  double x, y;
  region_.Normalize(point, &x, &y);
  int32_t col = std::min<int32_t>(
      cells_per_side_ - 1, static_cast<int32_t>(x * cells_per_side_));
  int32_t row = std::min<int32_t>(
      cells_per_side_ - 1, static_cast<int32_t>(y * cells_per_side_));
  return static_cast<int64_t>(row) * cells_per_side_ + col;
}

geo::BoundingBox GridIndex::TileBounds(int64_t tile) const {
  int32_t row, col;
  TileRowCol(tile, &row, &col);
  double lat_step = region_.LatSpan() / cells_per_side_;
  double lon_step = region_.LonSpan() / cells_per_side_;
  return geo::BoundingBox{region_.min_lat + row * lat_step,
                          region_.min_lon + col * lon_step,
                          region_.min_lat + (row + 1) * lat_step,
                          region_.min_lon + (col + 1) * lon_step};
}

void GridIndex::TileRowCol(int64_t tile, int32_t* row, int32_t* col) const {
  TSPN_CHECK_GE(tile, 0);
  TSPN_CHECK_LT(tile, NumTiles());
  *row = static_cast<int32_t>(tile / cells_per_side_);
  *col = static_cast<int32_t>(tile % cells_per_side_);
}

bool GridIndex::TileSpan(const geo::BoundingBox& box, int32_t* row_begin,
                         int32_t* row_end, int32_t* col_begin,
                         int32_t* col_end) const {
  if (box.max_lat < region_.min_lat || box.min_lat >= region_.max_lat ||
      box.max_lon < region_.min_lon || box.min_lon >= region_.max_lon) {
    return false;
  }
  double lat_step = region_.LatSpan() / cells_per_side_;
  double lon_step = region_.LonSpan() / cells_per_side_;
  auto clamp_cell = [this](double offset, double step) {
    return std::clamp<int32_t>(static_cast<int32_t>(std::floor(offset / step)),
                               0, cells_per_side_ - 1);
  };
  *row_begin = clamp_cell(box.min_lat - region_.min_lat, lat_step);
  *row_end = clamp_cell(box.max_lat - region_.min_lat, lat_step);
  *col_begin = clamp_cell(box.min_lon - region_.min_lon, lon_step);
  *col_end = clamp_cell(box.max_lon - region_.min_lon, lon_step);
  return true;
}

}  // namespace tspn::spatial
