#ifndef TSPN_SPATIAL_QUADTREE_H_
#define TSPN_SPATIAL_QUADTREE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "spatial/tile_partition.h"

namespace tspn::spatial {

/// One node ("tile") of the region quad-tree. Non-leaf nodes have exactly
/// four children covering their quadrants.
struct QuadTreeNode {
  geo::BoundingBox bounds;
  int32_t parent = -1;
  std::array<int32_t, 4> children = {-1, -1, -1, -1};
  int32_t depth = 0;
  /// Indices (into the build-time point vector) stored at this leaf;
  /// empty for internal nodes.
  std::vector<int64_t> point_ids;

  bool is_leaf() const { return children[0] < 0; }
};

/// Region quad-tree over a fixed bounding box (Finkel & Bentley, 1974; Sec.
/// II-A of the paper). A node splits into four quadrants when it holds more
/// than `leaf_capacity` points and is shallower than `max_depth` — so leaf
/// tiles adapt their granularity to POI density, the property the paper
/// exploits against fixed grids.
class QuadTree : public TilePartition {
 public:
  struct Options {
    int32_t max_depth = 8;       ///< D in the paper
    int64_t leaf_capacity = 100; ///< Omega in the paper
  };

  /// Builds the tree over `points` (all inside or clamped into `region`).
  static QuadTree Build(const geo::BoundingBox& region,
                        const std::vector<geo::GeoPoint>& points,
                        const Options& options);

  // --- Tree structure -------------------------------------------------------

  int64_t NumNodes() const { return static_cast<int64_t>(nodes_.size()); }
  const QuadTreeNode& node(int64_t id) const;
  int32_t root() const { return 0; }

  /// Node id of the leaf containing the (clamped) point.
  int32_t LocateLeaf(const geo::GeoPoint& point) const;

  /// Node ids of all leaves, in dense-leaf-index order.
  const std::vector<int32_t>& LeafNodes() const { return leaf_nodes_; }

  /// Dense leaf index of a leaf node id (-1 for internal nodes).
  int64_t LeafIndexOf(int32_t node_id) const;

  /// Leaf node id that the i-th build point landed in.
  int32_t LeafOfPoint(int64_t point_index) const;

  /// Extracts the minimal sub-tree covering the given leaves: the deepest
  /// common ancestor plus every node on the paths down to those leaves
  /// (Sec. II-B construction step 1). Returns node ids sorted ascending.
  std::vector<int32_t> MinimalSubtree(const std::vector<int32_t>& leaf_node_ids) const;

  // --- TilePartition (atomic tiles = leaves) --------------------------------

  int64_t NumTiles() const override {
    return static_cast<int64_t>(leaf_nodes_.size());
  }
  int64_t TileOf(const geo::GeoPoint& point) const override;
  geo::BoundingBox TileBounds(int64_t tile) const override;
  const geo::BoundingBox& Region() const override { return region_; }

  const Options& options() const { return options_; }

 private:
  QuadTree(geo::BoundingBox region, Options options)
      : region_(region), options_(options) {}

  void Split(int32_t node_id, const std::vector<geo::GeoPoint>& points);
  void FinalizeLeaves();

  geo::BoundingBox region_;
  Options options_;
  std::vector<QuadTreeNode> nodes_;
  std::vector<int32_t> leaf_nodes_;          // dense leaf order
  std::vector<int64_t> node_to_leaf_index_;  // node id -> dense leaf index or -1
  std::vector<int32_t> point_leaf_;          // build point index -> leaf node id
};

}  // namespace tspn::spatial

#endif  // TSPN_SPATIAL_QUADTREE_H_
