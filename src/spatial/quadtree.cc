#include "spatial/quadtree.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace tspn::spatial {

QuadTree QuadTree::Build(const geo::BoundingBox& region,
                         const std::vector<geo::GeoPoint>& points,
                         const Options& options) {
  TSPN_CHECK_GT(region.LatSpan(), 0.0);
  TSPN_CHECK_GT(region.LonSpan(), 0.0);
  TSPN_CHECK_GE(options.max_depth, 0);
  TSPN_CHECK_GT(options.leaf_capacity, 0);

  QuadTree tree(region, options);
  QuadTreeNode root;
  root.bounds = region;
  root.depth = 0;
  root.point_ids.reserve(points.size());
  for (int64_t i = 0; i < static_cast<int64_t>(points.size()); ++i) {
    root.point_ids.push_back(i);
  }
  tree.nodes_.push_back(std::move(root));
  tree.Split(0, points);
  tree.point_leaf_.assign(points.size(), -1);
  tree.FinalizeLeaves();
  for (int32_t leaf : tree.leaf_nodes_) {
    for (int64_t pid : tree.nodes_[static_cast<size_t>(leaf)].point_ids) {
      tree.point_leaf_[static_cast<size_t>(pid)] = leaf;
    }
  }
  return tree;
}

void QuadTree::Split(int32_t node_id, const std::vector<geo::GeoPoint>& points) {
  // Depth-first recursive subdivision. Node references may be invalidated by
  // push_back, so re-index through nodes_ each time.
  bool should_split =
      static_cast<int64_t>(nodes_[static_cast<size_t>(node_id)].point_ids.size()) >
          options_.leaf_capacity &&
      nodes_[static_cast<size_t>(node_id)].depth < options_.max_depth;
  if (!should_split) return;

  std::array<int32_t, 4> child_ids;
  for (int q = 0; q < 4; ++q) {
    QuadTreeNode child;
    child.bounds = nodes_[static_cast<size_t>(node_id)].bounds.Quadrant(q);
    child.parent = node_id;
    child.depth = nodes_[static_cast<size_t>(node_id)].depth + 1;
    child_ids[static_cast<size_t>(q)] = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(child));
  }
  // Distribute points to quadrants by comparing against the midpoint; the
  // half-open box convention makes the assignment unique.
  {
    QuadTreeNode& node = nodes_[static_cast<size_t>(node_id)];
    const geo::BoundingBox& b = node.bounds;
    double mid_lat = 0.5 * (b.min_lat + b.max_lat);
    double mid_lon = 0.5 * (b.min_lon + b.max_lon);
    for (int64_t pid : node.point_ids) {
      const geo::GeoPoint& p = points[static_cast<size_t>(pid)];
      int q = (p.lat >= mid_lat ? 2 : 0) | (p.lon >= mid_lon ? 1 : 0);
      nodes_[static_cast<size_t>(child_ids[static_cast<size_t>(q)])].point_ids.push_back(
          pid);
    }
    node.point_ids.clear();
    node.point_ids.shrink_to_fit();
    node.children = child_ids;
  }
  for (int q = 0; q < 4; ++q) Split(child_ids[static_cast<size_t>(q)], points);
}

void QuadTree::FinalizeLeaves() {
  node_to_leaf_index_.assign(nodes_.size(), -1);
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].is_leaf()) {
      node_to_leaf_index_[id] = static_cast<int64_t>(leaf_nodes_.size());
      leaf_nodes_.push_back(static_cast<int32_t>(id));
    }
  }
}

const QuadTreeNode& QuadTree::node(int64_t id) const {
  TSPN_CHECK_GE(id, 0);
  TSPN_CHECK_LT(id, NumNodes());
  return nodes_[static_cast<size_t>(id)];
}

int32_t QuadTree::LocateLeaf(const geo::GeoPoint& point) const {
  geo::GeoPoint p = region_.Clamp(point);
  int32_t current = 0;
  while (!nodes_[static_cast<size_t>(current)].is_leaf()) {
    const QuadTreeNode& node = nodes_[static_cast<size_t>(current)];
    const geo::BoundingBox& b = node.bounds;
    double mid_lat = 0.5 * (b.min_lat + b.max_lat);
    double mid_lon = 0.5 * (b.min_lon + b.max_lon);
    int q = (p.lat >= mid_lat ? 2 : 0) | (p.lon >= mid_lon ? 1 : 0);
    current = node.children[static_cast<size_t>(q)];
  }
  return current;
}

int64_t QuadTree::LeafIndexOf(int32_t node_id) const {
  TSPN_CHECK_GE(node_id, 0);
  TSPN_CHECK_LT(node_id, NumNodes());
  return node_to_leaf_index_[static_cast<size_t>(node_id)];
}

int32_t QuadTree::LeafOfPoint(int64_t point_index) const {
  TSPN_CHECK_GE(point_index, 0);
  TSPN_CHECK_LT(point_index, static_cast<int64_t>(point_leaf_.size()));
  return point_leaf_[static_cast<size_t>(point_index)];
}

std::vector<int32_t> QuadTree::MinimalSubtree(
    const std::vector<int32_t>& leaf_node_ids) const {
  if (leaf_node_ids.empty()) return {};
  // Mark every ancestor of each target leaf, counting coverage.
  std::unordered_set<int32_t> unique_leaves(leaf_node_ids.begin(), leaf_node_ids.end());
  std::unordered_set<int32_t> on_path;
  for (int32_t leaf : unique_leaves) {
    TSPN_CHECK(node(leaf).is_leaf()) << "MinimalSubtree expects leaf ids";
    int32_t cur = leaf;
    while (cur >= 0) {
      on_path.insert(cur);
      cur = nodes_[static_cast<size_t>(cur)].parent;
    }
  }
  // The minimal root is the deepest node that is an ancestor of all target
  // leaves: walk down from the root while exactly one child is on a path.
  int32_t subtree_root = 0;
  while (true) {
    const QuadTreeNode& n = nodes_[static_cast<size_t>(subtree_root)];
    if (n.is_leaf()) break;
    int32_t next = -1;
    int children_on_path = 0;
    for (int32_t child : n.children) {
      if (on_path.count(child) > 0) {
        ++children_on_path;
        next = child;
      }
    }
    if (children_on_path != 1) break;
    subtree_root = next;
  }
  // Collect nodes on paths from subtree_root down to the target leaves.
  std::vector<int32_t> result;
  for (int32_t id : on_path) {
    // Keep ids that are within the subtree rooted at subtree_root.
    int32_t cur = id;
    bool inside = false;
    while (cur >= 0) {
      if (cur == subtree_root) {
        inside = true;
        break;
      }
      cur = nodes_[static_cast<size_t>(cur)].parent;
    }
    if (inside) result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

int64_t QuadTree::TileOf(const geo::GeoPoint& point) const {
  return LeafIndexOf(LocateLeaf(point));
}

geo::BoundingBox QuadTree::TileBounds(int64_t tile) const {
  TSPN_CHECK_GE(tile, 0);
  TSPN_CHECK_LT(tile, NumTiles());
  return nodes_[static_cast<size_t>(leaf_nodes_[static_cast<size_t>(tile)])].bounds;
}

}  // namespace tspn::spatial
