#ifndef TSPN_SPATIAL_TILE_PARTITION_H_
#define TSPN_SPATIAL_TILE_PARTITION_H_

#include <cstdint>

#include "geo/geometry.h"

namespace tspn::spatial {

/// Interface for a partitioning of a region into disjoint tiles that jointly
/// cover it. Both the quad-tree (leaf tiles) and the fixed grid (ablation
/// baseline) implement it, so the prediction pipeline can swap partitions.
class TilePartition {
 public:
  virtual ~TilePartition() = default;

  /// Number of atomic (predictable) tiles.
  virtual int64_t NumTiles() const = 0;

  /// Dense tile index in [0, NumTiles()) containing the (clamped) point.
  virtual int64_t TileOf(const geo::GeoPoint& point) const = 0;

  /// Boundary box of a tile.
  virtual geo::BoundingBox TileBounds(int64_t tile) const = 0;

  /// The covered region.
  virtual const geo::BoundingBox& Region() const = 0;
};

}  // namespace tspn::spatial

#endif  // TSPN_SPATIAL_TILE_PARTITION_H_
