#include "roadnet/tile_adjacency.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/check.h"

namespace tspn::roadnet {

TileAdjacency TileAdjacency::Build(const RoadNetwork& roads,
                                   const spatial::TilePartition& partition) {
  TileAdjacency adjacency;
  const int64_t num_tiles = partition.NumTiles();
  adjacency.neighbors_.assign(static_cast<size_t>(num_tiles), {});

  // Find the smallest tile span to pick a safe sampling step.
  double min_span_deg = std::numeric_limits<double>::max();
  for (int64_t t = 0; t < num_tiles; ++t) {
    geo::BoundingBox b = partition.TileBounds(t);
    min_span_deg = std::min({min_span_deg, b.LatSpan(), b.LonSpan()});
  }
  if (num_tiles == 0) return adjacency;
  const double step_deg = std::max(min_span_deg / 3.0, 1e-7);

  std::set<std::pair<int64_t, int64_t>> pair_set;
  for (int64_t s = 0; s < roads.NumSegments(); ++s) {
    const RoadNetwork::Segment& seg = roads.segment(s);
    const geo::GeoPoint& a = roads.node(seg.a);
    const geo::GeoPoint& b = roads.node(seg.b);
    double span = std::max(std::abs(a.lat - b.lat), std::abs(a.lon - b.lon));
    int steps = std::max(1, static_cast<int>(std::ceil(span / step_deg)));
    int64_t prev_tile = -1;
    for (int i = 0; i <= steps; ++i) {
      geo::GeoPoint p = geo::Lerp(a, b, static_cast<double>(i) / steps);
      if (!partition.Region().Contains(p)) {
        p = partition.Region().Clamp(p);
      }
      int64_t tile = partition.TileOf(p);
      if (prev_tile >= 0 && tile != prev_tile) {
        pair_set.insert({std::min(prev_tile, tile), std::max(prev_tile, tile)});
      }
      prev_tile = tile;
    }
  }

  for (const auto& [lo, hi] : pair_set) {
    adjacency.neighbors_[static_cast<size_t>(lo)].push_back(hi);
    adjacency.neighbors_[static_cast<size_t>(hi)].push_back(lo);
    adjacency.pairs_.emplace_back(lo, hi);
  }
  for (auto& list : adjacency.neighbors_) std::sort(list.begin(), list.end());
  return adjacency;
}

bool TileAdjacency::Connected(int64_t a, int64_t b) const {
  if (a < 0 || a >= NumTiles() || b < 0 || b >= NumTiles()) return false;
  const std::vector<int64_t>& list = neighbors_[static_cast<size_t>(a)];
  return std::binary_search(list.begin(), list.end(), b);
}

const std::vector<int64_t>& TileAdjacency::Neighbors(int64_t tile) const {
  TSPN_CHECK_GE(tile, 0);
  TSPN_CHECK_LT(tile, NumTiles());
  return neighbors_[static_cast<size_t>(tile)];
}

}  // namespace tspn::roadnet
