#ifndef TSPN_ROADNET_GENERATOR_H_
#define TSPN_ROADNET_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"
#include "roadnet/road_network.h"

namespace tspn::roadnet {

/// Parameters for the synthetic road generator. The generator lays a local
/// street grid inside each district, connects district centres with arterial
/// roads (so the network is connected), and optionally adds a polyline
/// highway (used for the coastal-Florida profile).
struct GeneratorOptions {
  /// Street-grid half-extent around each district centre, in degrees.
  double district_grid_radius_deg = 0.01;
  /// Number of grid lines per district side (>= 2).
  int32_t grid_lines = 5;
  /// Random jitter applied to grid intersections, as a fraction of spacing.
  double jitter = 0.15;
};

/// Generates a connected synthetic road network for the given district
/// centres inside `region`. `highway` may be empty; if given, its points are
/// joined as a class-2 polyline and connected to the nearest district.
RoadNetwork GenerateRoads(const geo::BoundingBox& region,
                          const std::vector<geo::GeoPoint>& district_centers,
                          const std::vector<geo::GeoPoint>& highway,
                          const GeneratorOptions& options, common::Rng& rng);

}  // namespace tspn::roadnet

#endif  // TSPN_ROADNET_GENERATOR_H_
