#include "roadnet/road_network.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/check.h"

namespace tspn::roadnet {

int32_t RoadNetwork::AddNode(const geo::GeoPoint& position) {
  nodes_.push_back(position);
  return static_cast<int32_t>(nodes_.size()) - 1;
}

void RoadNetwork::AddSegment(int32_t a, int32_t b, int32_t klass) {
  TSPN_CHECK_GE(a, 0);
  TSPN_CHECK_LT(a, NumNodes());
  TSPN_CHECK_GE(b, 0);
  TSPN_CHECK_LT(b, NumNodes());
  TSPN_CHECK_NE(a, b);
  segments_.push_back(Segment{a, b, klass});
}

const geo::GeoPoint& RoadNetwork::node(int32_t id) const {
  TSPN_CHECK_GE(id, 0);
  TSPN_CHECK_LT(id, NumNodes());
  return nodes_[static_cast<size_t>(id)];
}

const RoadNetwork::Segment& RoadNetwork::segment(int64_t index) const {
  TSPN_CHECK_GE(index, 0);
  TSPN_CHECK_LT(index, NumSegments());
  return segments_[static_cast<size_t>(index)];
}

double RoadNetwork::TotalLengthKm() const {
  double total = 0.0;
  for (const Segment& s : segments_) {
    total += geo::EquirectangularKm(node(s.a), node(s.b));
  }
  return total;
}

int64_t RoadNetwork::ConnectedComponents() const {
  if (nodes_.empty()) return 0;
  std::vector<int32_t> parent(nodes_.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int32_t(int32_t)> find = [&](int32_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const Segment& s : segments_) {
    int32_t ra = find(s.a), rb = find(s.b);
    if (ra != rb) parent[static_cast<size_t>(ra)] = rb;
  }
  int64_t components = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(nodes_.size()); ++i) {
    if (find(i) == i) ++components;
  }
  return components;
}

double RoadNetwork::DensityInBox(const geo::BoundingBox& box,
                                 double sample_step_km) const {
  TSPN_CHECK_GT(sample_step_km, 0.0);
  double total = 0.0;
  for (const Segment& s : segments_) {
    const geo::GeoPoint& a = node(s.a);
    const geo::GeoPoint& b = node(s.b);
    double length = geo::EquirectangularKm(a, b);
    if (length <= 0.0) continue;
    int steps = std::max(1, static_cast<int>(length / sample_step_km));
    double inside = 0.0;
    for (int i = 0; i < steps; ++i) {
      geo::GeoPoint p = geo::Lerp(a, b, (i + 0.5) / steps);
      if (box.Contains(p)) inside += 1.0;
    }
    total += length * inside / steps;
  }
  return total;
}

}  // namespace tspn::roadnet
