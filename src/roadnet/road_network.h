#ifndef TSPN_ROADNET_ROAD_NETWORK_H_
#define TSPN_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "geo/geometry.h"

namespace tspn::roadnet {

/// Road graph: intersections (nodes) joined by straight segments. Stands in
/// for the OpenStreetMap extract the paper uses; only geometry matters here
/// because the model consumes roads solely through tile adjacency and image
/// rendering.
class RoadNetwork {
 public:
  struct Segment {
    int32_t a = -1;
    int32_t b = -1;
    /// 0 = local street, 1 = arterial road, 2 = highway. Affects rendering
    /// width and adjacency sampling density.
    int32_t klass = 0;
  };

  /// Adds an intersection, returning its id.
  int32_t AddNode(const geo::GeoPoint& position);

  /// Adds a segment between existing nodes.
  void AddSegment(int32_t a, int32_t b, int32_t klass = 0);

  int64_t NumNodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t NumSegments() const { return static_cast<int64_t>(segments_.size()); }
  const geo::GeoPoint& node(int32_t id) const;
  const Segment& segment(int64_t index) const;
  const std::vector<Segment>& segments() const { return segments_; }

  /// Total length of all segments in km.
  double TotalLengthKm() const;

  /// Number of connected components (for generator sanity checks).
  int64_t ConnectedComponents() const;

  /// Sum of segment lengths intersecting the box, in km — the "road density"
  /// environmental signal the paper motivates (Sec. I challenge 1).
  double DensityInBox(const geo::BoundingBox& box, double sample_step_km = 0.05) const;

 private:
  std::vector<geo::GeoPoint> nodes_;
  std::vector<Segment> segments_;
};

}  // namespace tspn::roadnet

#endif  // TSPN_ROADNET_ROAD_NETWORK_H_
