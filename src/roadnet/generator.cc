#include "roadnet/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace tspn::roadnet {

namespace {

/// Index of the district whose centre is nearest to `p`.
int64_t NearestDistrict(const std::vector<geo::GeoPoint>& centers,
                        const geo::GeoPoint& p) {
  int64_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t i = 0; i < centers.size(); ++i) {
    double d = geo::EquirectangularKm(centers[i], p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int64_t>(i);
    }
  }
  return best;
}

}  // namespace

RoadNetwork GenerateRoads(const geo::BoundingBox& region,
                          const std::vector<geo::GeoPoint>& district_centers,
                          const std::vector<geo::GeoPoint>& highway,
                          const GeneratorOptions& options, common::Rng& rng) {
  TSPN_CHECK(!district_centers.empty());
  TSPN_CHECK_GE(options.grid_lines, 2);
  RoadNetwork net;

  // 1. Street grid per district: grid_lines x grid_lines jittered lattice.
  std::vector<int32_t> district_hub(district_centers.size(), -1);
  const int32_t g = options.grid_lines;
  for (size_t d = 0; d < district_centers.size(); ++d) {
    const geo::GeoPoint& c = district_centers[d];
    double r = options.district_grid_radius_deg;
    double step = 2.0 * r / (g - 1);
    std::vector<int32_t> lattice(static_cast<size_t>(g) * g);
    for (int32_t row = 0; row < g; ++row) {
      for (int32_t col = 0; col < g; ++col) {
        geo::GeoPoint p{
            c.lat - r + row * step + rng.Uniform(-1, 1) * options.jitter * step,
            c.lon - r + col * step + rng.Uniform(-1, 1) * options.jitter * step};
        p = region.Clamp(p);
        lattice[static_cast<size_t>(row * g + col)] = net.AddNode(p);
      }
    }
    for (int32_t row = 0; row < g; ++row) {
      for (int32_t col = 0; col < g; ++col) {
        int32_t id = lattice[static_cast<size_t>(row * g + col)];
        if (col + 1 < g) {
          net.AddSegment(id, lattice[static_cast<size_t>(row * g + col + 1)], 0);
        }
        if (row + 1 < g) {
          net.AddSegment(id, lattice[static_cast<size_t>((row + 1) * g + col)], 0);
        }
      }
    }
    district_hub[d] = lattice[static_cast<size_t>((g / 2) * g + g / 2)];
  }

  // 2. Arterial roads: connect each district to its nearest already-connected
  // predecessor (a simple spanning construction keeps the network connected).
  for (size_t d = 1; d < district_centers.size(); ++d) {
    double best_dist = std::numeric_limits<double>::max();
    size_t best_prev = 0;
    for (size_t e = 0; e < d; ++e) {
      double dist = geo::EquirectangularKm(district_centers[d], district_centers[e]);
      if (dist < best_dist) {
        best_dist = dist;
        best_prev = e;
      }
    }
    net.AddSegment(district_hub[d], district_hub[best_prev], 1);
  }

  // 3. Optional highway polyline (e.g. coastal highway).
  if (highway.size() >= 2) {
    std::vector<int32_t> hw_nodes;
    hw_nodes.reserve(highway.size());
    for (const geo::GeoPoint& p : highway) hw_nodes.push_back(net.AddNode(region.Clamp(p)));
    for (size_t i = 0; i + 1 < highway.size(); ++i) {
      net.AddSegment(hw_nodes[i], hw_nodes[i + 1], 2);
    }
    // Tie the highway into the road fabric at its midpoint.
    int64_t d = NearestDistrict(district_centers, highway[highway.size() / 2]);
    net.AddSegment(hw_nodes[highway.size() / 2], district_hub[static_cast<size_t>(d)],
                   1);
  }

  return net;
}

}  // namespace tspn::roadnet
