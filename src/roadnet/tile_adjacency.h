#ifndef TSPN_ROADNET_TILE_ADJACENCY_H_
#define TSPN_ROADNET_TILE_ADJACENCY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "roadnet/road_network.h"
#include "spatial/tile_partition.h"

namespace tspn::roadnet {

/// Undirected adjacency between tiles induced by the road network: two tiles
/// are adjacent iff some road segment passes from one into the other. These
/// become the "road" edges of the QR-P graph (Sec. II-B step 2).
class TileAdjacency {
 public:
  /// Derives adjacency by sampling points along every segment. The sampling
  /// step adapts to the smallest tile so no crossing is missed in practice.
  static TileAdjacency Build(const RoadNetwork& roads,
                             const spatial::TilePartition& partition);

  /// True if tiles a and b are road-connected (order-insensitive).
  bool Connected(int64_t a, int64_t b) const;

  /// Road-neighbours of a tile (sorted, unique).
  const std::vector<int64_t>& Neighbors(int64_t tile) const;

  /// All unique undirected pairs (a < b).
  const std::vector<std::pair<int64_t, int64_t>>& Pairs() const { return pairs_; }

  int64_t NumTiles() const { return static_cast<int64_t>(neighbors_.size()); }

 private:
  std::vector<std::vector<int64_t>> neighbors_;
  std::vector<std::pair<int64_t, int64_t>> pairs_;
};

}  // namespace tspn::roadnet

#endif  // TSPN_ROADNET_TILE_ADJACENCY_H_
