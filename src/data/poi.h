#ifndef TSPN_DATA_POI_H_
#define TSPN_DATA_POI_H_

#include <array>
#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "rs/land_use.h"

namespace tspn::data {

/// Half-hour slots per day, as in the paper's temporal encoder (Sec. IV-A).
constexpr int64_t kTimeSlotsPerDay = 48;
constexpr int64_t kSecondsPerDay = 86400;

/// Day-part buckets used by category/user temporal preferences.
enum class DayPart : uint8_t { kMorning = 0, kMidday, kEvening, kNight };
constexpr int kNumDayParts = 4;

/// Time-of-day slot in [0, 48) of a unix-style timestamp (seconds).
int64_t TimeSlotOf(int64_t timestamp);

/// Day-part of a timestamp: morning 06-11, midday 11-17, evening 17-23,
/// night 23-06.
DayPart DayPartOf(int64_t timestamp);

/// A point of interest: (id, loc, cate) per Sec. II-A.
struct Poi {
  int64_t id = 0;
  geo::GeoPoint loc;
  int32_t category = 0;
  /// Zipf-style popularity weight used by the check-in simulator.
  double popularity = 1.0;
};

/// Semantic description of a POI category: which land use it is native to
/// and when during the day it attracts visits. The land-use affinity is what
/// couples categories to satellite imagery appearance.
struct CategoryInfo {
  rs::LandUse affinity = rs::LandUse::kCommercial;
  std::array<double, kNumDayParts> time_weights = {1.0, 1.0, 1.0, 1.0};
};

/// One check-in record (POI visit at a timestamp).
struct Checkin {
  int64_t poi_id = 0;
  int64_t timestamp = 0;
};

/// A trajectory: check-ins within one time window (Sec. II-A), time-ordered.
struct Trajectory {
  std::vector<Checkin> checkins;

  int64_t size() const { return static_cast<int64_t>(checkins.size()); }
};

}  // namespace tspn::data

#endif  // TSPN_DATA_POI_H_
