#include "data/city_profile.h"

namespace tspn::data {

CityProfile CityProfile::Scaled(int64_t scale) const {
  CityProfile scaled = *this;
  if (scale <= 1) return scaled;
  scaled.num_users *= scale;
  scaled.num_pois *= scale;
  scaled.checkins_per_user *= scale;
  return scaled;
}

CityProfile CityProfile::FoursquareTky() {
  CityProfile p;
  p.name = "Foursquare(TKY-sim)";
  // ~14 x 14 km urban core (paper: 211.98 km^2).
  p.bbox = {35.55, 139.60, 35.68, 139.76};
  p.num_districts = 12;
  p.district_radius_frac = 0.09;
  p.seed = 1001;
  p.num_users = 48;
  p.num_pois = 1400;
  p.num_categories = 36;
  p.checkins_per_user = 150;
  p.p_repeat = 0.35;
  p.p_nearby = 0.40;
  p.quadtree_max_depth = 8;
  p.quadtree_leaf_capacity = 40;
  p.top_k_tiles = 8;
  return p;
}

CityProfile CityProfile::FoursquareNyc() {
  CityProfile p;
  p.name = "Foursquare(NYC-sim)";
  // ~22 x 22 km (paper: 482.75 km^2).
  p.bbox = {40.58, -74.10, 40.78, -73.84};
  p.num_districts = 10;
  p.district_radius_frac = 0.08;
  p.seed = 1002;
  p.num_users = 40;
  p.num_pois = 1000;
  p.num_categories = 36;
  p.checkins_per_user = 120;
  p.p_repeat = 0.35;
  p.p_nearby = 0.40;
  p.quadtree_max_depth = 8;
  p.quadtree_leaf_capacity = 30;
  p.top_k_tiles = 8;
  return p;
}

CityProfile CityProfile::WeeplacesCalifornia() {
  CityProfile p;
  p.name = "Weeplaces(California-sim)";
  // ~4 x 4 degrees, about 1000x the urban coverage (paper: 423,967 km^2).
  p.bbox = {34.0, -122.0, 38.0, -118.0};
  p.num_districts = 9;
  p.district_radius_frac = 0.035;
  p.seed = 1003;
  p.num_users = 52;
  p.num_pois = 1500;
  p.num_categories = 40;
  p.checkins_per_user = 130;
  p.p_repeat = 0.35;
  p.p_nearby = 0.45;  // state-scale users roam within metro areas
  p.nearby_radius_frac = 0.03;
  p.quadtree_max_depth = 9;
  p.quadtree_leaf_capacity = 40;
  p.top_k_tiles = 6;
  return p;
}

CityProfile CityProfile::WeeplacesFlorida() {
  CityProfile p;
  p.name = "Weeplaces(Florida-sim)";
  // ~3 x 3 degrees with an eastern coastline (paper: 139,670 km^2).
  p.bbox = {26.0, -82.5, 29.0, -79.5};
  p.coastal = true;
  p.num_districts = 8;
  p.district_radius_frac = 0.04;
  p.seed = 1004;
  p.num_users = 40;
  p.num_pois = 900;
  p.num_categories = 34;
  p.checkins_per_user = 110;
  p.p_repeat = 0.35;
  p.p_nearby = 0.45;
  p.nearby_radius_frac = 0.03;
  p.quadtree_max_depth = 8;
  p.quadtree_leaf_capacity = 30;
  p.top_k_tiles = 6;
  return p;
}

CityProfile CityProfile::TestTiny() {
  CityProfile p;
  p.name = "TestTiny";
  p.bbox = {0.0, 0.0, 0.2, 0.2};
  p.num_districts = 4;
  p.district_radius_frac = 0.12;
  p.seed = 7;
  p.num_users = 8;
  p.num_pois = 120;
  p.num_categories = 8;
  p.checkins_per_user = 60;
  p.quadtree_max_depth = 6;
  p.quadtree_leaf_capacity = 12;
  p.top_k_tiles = 5;
  return p;
}

}  // namespace tspn::data
