#include "data/checkin_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "roadnet/generator.h"

namespace tspn::data {

namespace {

using rs::CityLayout;
using rs::CoastSpec;
using rs::District;
using rs::LandUse;

/// District land-use mix for synthesized cities.
LandUse SampleDistrictType(common::Rng& rng) {
  static const LandUse kTypes[4] = {LandUse::kResidential, LandUse::kCommercial,
                                    LandUse::kPark, LandUse::kIndustrial};
  return kTypes[rng.Categorical({0.35, 0.30, 0.20, 0.15})];
}

/// POI capacity of a district type: commercial cores host the most venues.
double DistrictCapacity(LandUse type) {
  switch (type) {
    case LandUse::kCommercial: return 3.0;
    case LandUse::kResidential: return 2.0;
    case LandUse::kPark: return 1.0;
    case LandUse::kIndustrial: return 0.8;
    default: return 0.5;
  }
}

/// Diurnal archetypes assigned to categories.
std::array<double, kNumDayParts> SampleTimeArchetype(common::Rng& rng) {
  static const std::array<double, kNumDayParts> kArchetypes[5] = {
      {3.0, 1.0, 0.5, 0.2},   // breakfast / commute
      {1.0, 3.0, 1.5, 0.2},   // work / shopping
      {0.2, 0.5, 3.0, 1.5},   // dinner / nightlife
      {1.5, 2.0, 1.0, 0.2},   // outdoor / daytime leisure
      {0.5, 1.0, 2.0, 2.0},   // home / late leisure
  };
  return kArchetypes[rng.UniformInt(5)];
}

/// Simple uniform-grid bucket index over POIs for radius queries.
class PoiBuckets {
 public:
  PoiBuckets(const geo::BoundingBox& bbox, const std::vector<Poi>& pois, int32_t side)
      : bbox_(bbox), side_(side), cells_(static_cast<size_t>(side) * side) {
    for (size_t i = 0; i < pois.size(); ++i) {
      cells_[CellOf(pois[i].loc)].push_back(static_cast<int64_t>(i));
    }
  }

  /// Indices of POIs within a lat/lon box of half-width `radius_deg`.
  void Collect(const geo::GeoPoint& center, double radius_deg,
               std::vector<int64_t>* out) const {
    out->clear();
    double lat_cell = bbox_.LatSpan() / side_;
    double lon_cell = bbox_.LonSpan() / side_;
    int32_t r_lat = static_cast<int32_t>(radius_deg / lat_cell) + 1;
    int32_t r_lon = static_cast<int32_t>(radius_deg / lon_cell) + 1;
    int32_t crow, ccol;
    RowCol(center, &crow, &ccol);
    for (int32_t row = std::max(0, crow - r_lat);
         row <= std::min(side_ - 1, crow + r_lat); ++row) {
      for (int32_t col = std::max(0, ccol - r_lon);
           col <= std::min(side_ - 1, ccol + r_lon); ++col) {
        const auto& cell = cells_[static_cast<size_t>(row * side_ + col)];
        out->insert(out->end(), cell.begin(), cell.end());
      }
    }
  }

 private:
  void RowCol(const geo::GeoPoint& p, int32_t* row, int32_t* col) const {
    double x, y;
    bbox_.Normalize(p, &x, &y);
    *row = std::min(side_ - 1, static_cast<int32_t>(y * side_));
    *col = std::min(side_ - 1, static_cast<int32_t>(x * side_));
  }
  size_t CellOf(const geo::GeoPoint& p) const {
    int32_t row, col;
    RowCol(p, &row, &col);
    return static_cast<size_t>(row * side_ + col);
  }

  geo::BoundingBox bbox_;
  int32_t side_;
  std::vector<std::vector<int64_t>> cells_;
};

}  // namespace

World BuildWorld(const CityProfile& profile) {
  common::Rng rng(profile.seed);
  const geo::BoundingBox& bbox = profile.bbox;
  double span = std::max(bbox.LatSpan(), bbox.LonSpan());

  // --- Coast (Florida-style east coast) -------------------------------------
  CoastSpec coast;
  if (profile.coastal) {
    coast.enabled = true;
    coast.base_lon = bbox.max_lon - 0.22 * bbox.LonSpan();
    coast.slope = -0.15;
    coast.anchor_lat = bbox.min_lat;
    coast.coastal_width_deg = 0.035 * bbox.LonSpan();
  }

  // --- Districts -------------------------------------------------------------
  std::vector<District> districts;
  std::vector<geo::GeoPoint> centers;
  double radius = profile.district_radius_frac * span;
  for (int32_t d = 0; d < profile.num_districts; ++d) {
    geo::GeoPoint c;
    for (int attempt = 0; attempt < 50; ++attempt) {
      c = {rng.Uniform(bbox.min_lat + 0.08 * bbox.LatSpan(),
                       bbox.max_lat - 0.08 * bbox.LatSpan()),
           rng.Uniform(bbox.min_lon + 0.08 * bbox.LonSpan(),
                       bbox.max_lon - 0.08 * bbox.LonSpan())};
      if (!coast.enabled) break;
      // Keep district centres on land, with the first quarter hugging the
      // coast (coastal cities cluster along the shore).
      double water_line = coast.base_lon + coast.slope * (c.lat - coast.anchor_lat);
      if (c.lon < water_line - radius) {
        if (d < profile.num_districts / 4) {
          // Snap near the coast for seaside districts.
          c.lon = water_line - radius - 0.02 * bbox.LonSpan() * rng.Uniform();
        }
        break;
      }
    }
    districts.push_back({c, radius, SampleDistrictType(rng)});
    centers.push_back(c);
  }
  CityLayout layout(bbox, districts, coast);

  // --- Roads -------------------------------------------------------------
  std::vector<geo::GeoPoint> highway;
  if (coast.enabled) {
    // Coastal highway tracking the waterline slightly inland.
    for (int i = 0; i <= 12; ++i) {
      double lat = bbox.min_lat + bbox.LatSpan() * i / 12.0;
      double lon = coast.base_lon + coast.slope * (lat - coast.anchor_lat) -
                   0.5 * coast.coastal_width_deg;
      highway.push_back({lat, lon});
    }
  }
  roadnet::GeneratorOptions road_opt;
  road_opt.district_grid_radius_deg = radius * 0.8;
  road_opt.grid_lines = 5;
  common::Rng road_rng = rng.Fork();
  roadnet::RoadNetwork roads =
      roadnet::GenerateRoads(bbox, centers, highway, road_opt, road_rng);

  // --- Categories -------------------------------------------------------------
  std::vector<CategoryInfo> categories(static_cast<size_t>(profile.num_categories));
  for (auto& cat : categories) {
    int64_t pick = rng.Categorical(profile.coastal
                                       ? std::vector<double>{0.15, 0.22, 0.25, 0.08,
                                                             0.10, 0.20}
                                       : std::vector<double>{0.18, 0.27, 0.32, 0.10,
                                                             0.13, 0.00});
    static const LandUse kAffinities[6] = {LandUse::kPark, LandUse::kResidential,
                                           LandUse::kCommercial, LandUse::kIndustrial,
                                           LandUse::kSuburban, LandUse::kCoastal};
    cat.affinity = kAffinities[pick];
    cat.time_weights = SampleTimeArchetype(rng);
  }
  // Category ids whose affinity matches each land use, for placement draws.
  auto categories_of = [&](LandUse use) {
    std::vector<int64_t> ids;
    for (size_t c = 0; c < categories.size(); ++c) {
      if (categories[c].affinity == use) ids.push_back(static_cast<int64_t>(c));
    }
    return ids;
  };

  // --- POIs -------------------------------------------------------------
  std::vector<Poi> pois;
  pois.reserve(static_cast<size_t>(profile.num_pois));
  std::vector<double> district_capacity(districts.size());
  for (size_t d = 0; d < districts.size(); ++d) {
    district_capacity[d] = DistrictCapacity(districts[d].type);
  }
  const double coastal_fraction = profile.coastal ? 0.22 : 0.0;
  for (int64_t i = 0; i < profile.num_pois; ++i) {
    Poi poi;
    poi.id = i;
    LandUse site_use;
    if (profile.coastal && rng.Uniform() < coastal_fraction) {
      // Seaside POI: placed in the coastal strip.
      double lat = rng.Uniform(bbox.min_lat, bbox.max_lat);
      double water_line = coast.base_lon + coast.slope * (lat - coast.anchor_lat);
      double lon = water_line - rng.Uniform() * coast.coastal_width_deg;
      poi.loc = bbox.Clamp({lat, lon});
      site_use = LandUse::kCoastal;
    } else {
      int64_t d = rng.Categorical(district_capacity);
      const District& district = districts[static_cast<size_t>(d)];
      geo::GeoPoint p;
      for (int attempt = 0; attempt < 10; ++attempt) {
        p = {rng.Gaussian(district.center.lat, district.radius_deg * 0.5),
             rng.Gaussian(district.center.lon, district.radius_deg * 0.5)};
        p = bbox.Clamp(p);
        if (layout.LandUseAt(p) != LandUse::kWater) break;
        p = district.center;  // fallback: centre is on land by construction
      }
      poi.loc = p;
      site_use = layout.LandUseAt(p);
    }
    // Category: compatible with the site's land use w.p. 0.7, else any.
    std::vector<int64_t> compatible = categories_of(site_use);
    if (!compatible.empty() && rng.Uniform() < 0.7) {
      poi.category = static_cast<int32_t>(
          compatible[static_cast<size_t>(rng.UniformInt(
              static_cast<int64_t>(compatible.size())))]);
    } else {
      poi.category = static_cast<int32_t>(rng.UniformInt(profile.num_categories));
    }
    pois.push_back(poi);
  }
  // Zipf-style popularity over a random permutation.
  std::vector<int64_t> order(pois.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    pois[static_cast<size_t>(order[rank])].popularity =
        1.0 / std::pow(static_cast<double>(rank + 1), 0.8);
  }

  return World{std::move(layout), std::move(roads), std::move(categories),
               std::move(pois)};
}

std::vector<UserStream> SimulateUsers(const CityProfile& profile, const World& world) {
  common::Rng rng(profile.seed ^ 0xBEEF0000ULL);
  const geo::BoundingBox& bbox = profile.bbox;
  double span = std::max(bbox.LatSpan(), bbox.LonSpan());
  double nearby_radius = profile.nearby_radius_frac * span;
  double home_radius = profile.district_radius_frac * span * 2.0;

  // Home-district weights: residential >> others.
  std::vector<double> district_weights;
  std::vector<geo::GeoPoint> centers;
  for (const rs::District& d : world.layout.districts()) {
    district_weights.push_back(d.type == rs::LandUse::kResidential ? 3.0 : 1.0);
    centers.push_back(d.center);
  }

  PoiBuckets buckets(bbox, world.pois, 48);
  std::vector<int64_t> nearby_scratch;
  std::vector<double> weight_scratch;

  // Map from poi id to index (ids are dense by construction, but stay safe).
  const std::vector<Poi>& pois = world.pois;

  std::vector<UserStream> users;
  users.reserve(static_cast<size_t>(profile.num_users));
  for (int64_t u = 0; u < profile.num_users; ++u) {
    UserStream stream;
    stream.profile = SampleUserProfile(
        u, profile.num_categories, district_weights, pois, centers, home_radius,
        /*frequent_count=*/12, rng);
    const UserProfile& up = stream.profile;

    int64_t t = rng.UniformInt(14 * kSecondsPerDay);
    int64_t current =
        up.frequent_pois[static_cast<size_t>(rng.UniformInt(
            static_cast<int64_t>(up.frequent_pois.size())))];
    for (int64_t n = 0; n < profile.checkins_per_user; ++n) {
      stream.checkins.push_back({current, t});

      // Advance time; occasional long gaps create the 72 h window breaks.
      double gap_draw = rng.Uniform();
      int64_t dt;
      if (gap_draw < 0.78) {
        dt = static_cast<int64_t>(rng.Uniform(1.0, 9.0) * 3600.0);
      } else if (gap_draw < 0.92) {
        dt = static_cast<int64_t>(rng.Uniform(10.0, 40.0) * 3600.0);
      } else {
        dt = static_cast<int64_t>(rng.Uniform(80.0, 240.0) * 3600.0);
      }
      t += dt;

      // Choose the next POI. The squared category-time weight makes intent
      // strongly time-of-day conditioned — a signal first-order transition
      // models cannot see but temporal encoders can.
      auto score = [&](int64_t poi_index) {
        const Poi& p = pois[static_cast<size_t>(poi_index)];
        double w = up.CategoryTimeWeight(world.categories, p.category, t);
        return p.popularity * w * w;
      };
      double mode = rng.Uniform();
      int64_t next = -1;
      if (mode < profile.p_repeat) {
        weight_scratch.clear();
        for (int64_t pid : up.frequent_pois) {
          weight_scratch.push_back(pid == current ? 0.0 : score(pid));
        }
        double total = std::accumulate(weight_scratch.begin(), weight_scratch.end(), 0.0);
        if (total > 0.0) {
          next = up.frequent_pois[static_cast<size_t>(
              rng.Categorical(weight_scratch))];
        }
      } else if (mode < profile.p_repeat + profile.p_nearby) {
        buckets.Collect(pois[static_cast<size_t>(current)].loc, nearby_radius,
                        &nearby_scratch);
        weight_scratch.clear();
        for (int64_t idx : nearby_scratch) {
          weight_scratch.push_back(idx == current ? 0.0 : score(idx));
        }
        double total = std::accumulate(weight_scratch.begin(), weight_scratch.end(), 0.0);
        if (total > 0.0) {
          next = nearby_scratch[static_cast<size_t>(rng.Categorical(weight_scratch))];
        }
      }
      if (next < 0) {
        // Exploration: popularity x time affinity over a random subsample.
        weight_scratch.clear();
        nearby_scratch.clear();
        int64_t samples = std::min<int64_t>(200, static_cast<int64_t>(pois.size()));
        for (int64_t s = 0; s < samples; ++s) {
          int64_t idx = rng.UniformInt(static_cast<int64_t>(pois.size()));
          nearby_scratch.push_back(idx);
          weight_scratch.push_back(idx == current ? 0.0 : score(idx));
        }
        double total = std::accumulate(weight_scratch.begin(), weight_scratch.end(), 0.0);
        next = total > 0.0
                   ? nearby_scratch[static_cast<size_t>(rng.Categorical(weight_scratch))]
                   : (current + 1) % static_cast<int64_t>(pois.size());
      }
      current = next;
    }
    users.push_back(std::move(stream));
  }
  return users;
}

}  // namespace tspn::data
