#ifndef TSPN_DATA_TRAJECTORY_H_
#define TSPN_DATA_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/poi.h"

namespace tspn::data {

/// Splits a time-ordered check-in stream into disjoint trajectories: a new
/// window starts whenever the gap to the previous check-in is at least
/// `gap_hours` (the paper's delta-t = 72 h rule, Sec. II-A).
std::vector<Trajectory> SplitIntoTrajectories(const std::vector<Checkin>& checkins,
                                              int64_t gap_hours);

/// Dataset split tags.
enum class Split : uint8_t { kTrain = 0, kVal = 1, kTest = 2 };

/// Randomly tags `count` trajectories 80/10/10 (paper Sec. VI-A).
std::vector<Split> AssignSplits(int64_t count, common::Rng& rng);

/// A prediction instance: within trajectory `traj` of user `user`, the
/// prefix [0, prefix_len) is observed and checkins[prefix_len] is the target.
struct SampleRef {
  int32_t user = 0;
  int32_t traj = 0;
  int32_t prefix_len = 0;
};

}  // namespace tspn::data

#endif  // TSPN_DATA_TRAJECTORY_H_
