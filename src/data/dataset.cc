#include "data/dataset.h"

#include "common/check.h"

namespace tspn::data {

CityDataset::CityDataset(CityProfile profile, World world)
    : profile_(std::move(profile)), world_(std::move(world)) {}

std::shared_ptr<CityDataset> CityDataset::Generate(const CityProfile& profile) {
  World world = BuildWorld(profile);
  auto dataset = std::shared_ptr<CityDataset>(
      new CityDataset(profile, std::move(world)));

  // Quad-tree over every POI location (Sec. II-A: Q manages all POIs).
  std::vector<geo::GeoPoint> points;
  points.reserve(dataset->world_.pois.size());
  for (const Poi& p : dataset->world_.pois) points.push_back(p.loc);
  dataset->quadtree_ = std::make_unique<spatial::QuadTree>(spatial::QuadTree::Build(
      profile.bbox, points,
      {.max_depth = profile.quadtree_max_depth,
       .leaf_capacity = profile.quadtree_leaf_capacity}));
  dataset->leaf_adjacency_ = std::make_unique<roadnet::TileAdjacency>(
      roadnet::TileAdjacency::Build(dataset->world_.roads, *dataset->quadtree_));

  // User streams -> windowed trajectories. Split tags are assigned globally
  // over the whole trajectory dataset (paper Sec. VI-A: "randomly select 80%
  // of the trajectory dataset").
  std::vector<UserStream> streams = SimulateUsers(profile, dataset->world_);
  dataset->users_.reserve(streams.size());
  int64_t total_trajectories = 0;
  for (UserStream& stream : streams) {
    UserData user;
    user.profile = std::move(stream.profile);
    user.trajectories =
        SplitIntoTrajectories(stream.checkins, profile.window_gap_hours);
    total_trajectories += static_cast<int64_t>(user.trajectories.size());
    dataset->users_.push_back(std::move(user));
  }
  common::Rng split_rng(profile.seed ^ 0x5EED5EEDULL);
  std::vector<Split> global_splits = AssignSplits(total_trajectories, split_rng);
  size_t cursor = 0;
  for (UserData& user : dataset->users_) {
    user.splits.assign(global_splits.begin() + static_cast<int64_t>(cursor),
                       global_splits.begin() + static_cast<int64_t>(cursor) +
                           static_cast<int64_t>(user.trajectories.size()));
    cursor += user.trajectories.size();
  }
  return dataset;
}

const Poi& CityDataset::poi(int64_t id) const {
  TSPN_CHECK_GE(id, 0);
  TSPN_CHECK_LT(id, static_cast<int64_t>(world_.pois.size()));
  return world_.pois[static_cast<size_t>(id)];
}

int32_t CityDataset::LeafNodeOfPoi(int64_t poi_id) const {
  return quadtree_->LeafOfPoint(poi_id);
}

std::vector<SampleRef> CityDataset::Samples(Split split) const {
  std::vector<SampleRef> samples;
  for (size_t u = 0; u < users_.size(); ++u) {
    const UserData& user = users_[u];
    for (size_t t = 0; t < user.trajectories.size(); ++t) {
      if (user.splits[t] != split) continue;
      int64_t len = user.trajectories[t].size();
      for (int64_t j = 1; j < len; ++j) {
        samples.push_back(SampleRef{static_cast<int32_t>(u), static_cast<int32_t>(t),
                                    static_cast<int32_t>(j)});
      }
    }
  }
  return samples;
}

const Trajectory& CityDataset::trajectory(const SampleRef& s) const {
  TSPN_CHECK_LT(static_cast<size_t>(s.user), users_.size());
  const UserData& user = users_[static_cast<size_t>(s.user)];
  TSPN_CHECK_LT(static_cast<size_t>(s.traj), user.trajectories.size());
  return user.trajectories[static_cast<size_t>(s.traj)];
}

const Checkin& CityDataset::Target(const SampleRef& s) const {
  const Trajectory& traj = trajectory(s);
  TSPN_CHECK_LT(s.prefix_len, traj.size());
  return traj.checkins[static_cast<size_t>(s.prefix_len)];
}

std::vector<int64_t> CityDataset::HistoryPoiIds(int32_t user, int32_t traj) const {
  TSPN_CHECK_LT(static_cast<size_t>(user), users_.size());
  const UserData& data = users_[static_cast<size_t>(user)];
  std::vector<int64_t> ids;
  int32_t limit = std::min<int32_t>(traj, static_cast<int32_t>(data.trajectories.size()));
  for (int32_t t = 0; t < limit; ++t) {
    for (const Checkin& c : data.trajectories[static_cast<size_t>(t)].checkins) {
      ids.push_back(c.poi_id);
    }
  }
  return ids;
}

int64_t CityDataset::TotalCheckins() const {
  int64_t total = 0;
  for (const UserData& user : users_) {
    for (const Trajectory& t : user.trajectories) total += t.size();
  }
  return total;
}

int64_t CityDataset::NumTrajectories() const {
  int64_t total = 0;
  for (const UserData& user : users_) {
    total += static_cast<int64_t>(user.trajectories.size());
  }
  return total;
}

}  // namespace tspn::data
