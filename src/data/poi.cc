#include "data/poi.h"

namespace tspn::data {

int64_t TimeSlotOf(int64_t timestamp) {
  int64_t seconds_of_day = ((timestamp % kSecondsPerDay) + kSecondsPerDay) %
                           kSecondsPerDay;
  return seconds_of_day / 1800;
}

DayPart DayPartOf(int64_t timestamp) {
  int64_t hour = TimeSlotOf(timestamp) / 2;
  if (hour >= 6 && hour < 11) return DayPart::kMorning;
  if (hour >= 11 && hour < 17) return DayPart::kMidday;
  if (hour >= 17 && hour < 23) return DayPart::kEvening;
  return DayPart::kNight;
}

}  // namespace tspn::data
