#ifndef TSPN_DATA_DATASET_H_
#define TSPN_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "data/checkin_generator.h"
#include "data/city_profile.h"
#include "data/poi.h"
#include "data/trajectory.h"
#include "data/user_model.h"
#include "roadnet/tile_adjacency.h"
#include "spatial/quadtree.h"

namespace tspn::data {

/// A fully generated city + workload, ready for model training/evaluation:
/// world (land use, roads, POIs), per-user trajectories with 80/10/10 split
/// tags, the region quad-tree over all POIs (D / Omega from the profile) and
/// the road-induced adjacency between its leaf tiles.
class CityDataset {
 public:
  struct UserData {
    UserProfile profile;
    std::vector<Trajectory> trajectories;
    std::vector<Split> splits;  // one tag per trajectory
  };

  /// Generates everything deterministically from the profile.
  static std::shared_ptr<CityDataset> Generate(const CityProfile& profile);

  const CityProfile& profile() const { return profile_; }
  const rs::CityLayout& layout() const { return world_.layout; }
  const roadnet::RoadNetwork& roads() const { return world_.roads; }
  const std::vector<CategoryInfo>& categories() const { return world_.categories; }
  const std::vector<Poi>& pois() const { return world_.pois; }
  const Poi& poi(int64_t id) const;
  const std::vector<UserData>& users() const { return users_; }

  const spatial::QuadTree& quadtree() const { return *quadtree_; }
  const roadnet::TileAdjacency& leaf_adjacency() const { return *leaf_adjacency_; }

  /// Quad-tree leaf node id containing the given POI.
  int32_t LeafNodeOfPoi(int64_t poi_id) const;

  // --- Samples ---------------------------------------------------------------

  /// All prediction instances in the given split: every position >= 1 of
  /// every tagged trajectory with at least two check-ins.
  std::vector<SampleRef> Samples(Split split) const;

  const Trajectory& trajectory(const SampleRef& s) const;
  const Checkin& Target(const SampleRef& s) const;

  /// POI ids of all check-ins in the user's trajectories strictly before
  /// `traj` (the historical trajectories S_<i feeding the QR-P graph).
  std::vector<int64_t> HistoryPoiIds(int32_t user, int32_t traj) const;

  // --- Statistics (Table I) ----------------------------------------------------

  int64_t TotalCheckins() const;
  int64_t NumTrajectories() const;
  double CoverageKm2() const { return profile_.bbox.AreaKm2(); }

 private:
  CityDataset(CityProfile profile, World world);

  CityProfile profile_;
  World world_;
  std::vector<UserData> users_;
  std::unique_ptr<spatial::QuadTree> quadtree_;
  std::unique_ptr<roadnet::TileAdjacency> leaf_adjacency_;
};

}  // namespace tspn::data

#endif  // TSPN_DATA_DATASET_H_
