#include "data/user_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tspn::data {

double UserProfile::CategoryTimeWeight(const std::vector<CategoryInfo>& categories,
                                       int32_t cat, int64_t timestamp) const {
  TSPN_CHECK_GE(cat, 0);
  TSPN_CHECK_LT(static_cast<size_t>(cat), categories.size());
  DayPart part = DayPartOf(timestamp);
  double diurnal = categories[static_cast<size_t>(cat)]
                       .time_weights[static_cast<size_t>(part)];
  double taste = category_affinity.empty()
                     ? 1.0
                     : category_affinity[static_cast<size_t>(cat)];
  return diurnal * taste;
}

UserProfile SampleUserProfile(int64_t user_id, int64_t num_categories,
                              const std::vector<double>& district_weights,
                              const std::vector<Poi>& pois,
                              const std::vector<geo::GeoPoint>& district_centers,
                              double home_radius_deg, int64_t frequent_count,
                              common::Rng& rng) {
  TSPN_CHECK(!pois.empty());
  TSPN_CHECK_EQ(district_weights.size(), district_centers.size());
  UserProfile profile;
  profile.user_id = user_id;
  profile.home_district = static_cast<int32_t>(rng.Categorical(district_weights));

  // Per-category taste: mostly mild, a few strong favourites.
  profile.category_affinity.resize(static_cast<size_t>(num_categories));
  for (double& a : profile.category_affinity) {
    double u = rng.Uniform();
    a = 0.3 + 2.0 * u * u;
  }

  // Frequent-POI set: popularity-weighted, strongly biased towards home.
  const geo::GeoPoint& home =
      district_centers[static_cast<size_t>(profile.home_district)];
  std::vector<double> weights(pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    double d = std::hypot(pois[i].loc.lat - home.lat, pois[i].loc.lon - home.lon);
    double locality = d < home_radius_deg ? 6.0 : (d < 2.0 * home_radius_deg ? 2.0 : 0.3);
    double taste = profile.category_affinity[static_cast<size_t>(pois[i].category)];
    weights[i] = pois[i].popularity * locality * taste;
  }
  std::vector<double> draw = weights;
  int64_t count = std::min<int64_t>(frequent_count, static_cast<int64_t>(pois.size()));
  for (int64_t k = 0; k < count; ++k) {
    int64_t pick = rng.Categorical(draw);
    profile.frequent_pois.push_back(pois[static_cast<size_t>(pick)].id);
    draw[static_cast<size_t>(pick)] = 0.0;  // without replacement
  }
  return profile;
}

}  // namespace tspn::data
