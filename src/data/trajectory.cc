#include "data/trajectory.h"

#include <algorithm>

#include "common/check.h"

namespace tspn::data {

std::vector<Trajectory> SplitIntoTrajectories(const std::vector<Checkin>& checkins,
                                              int64_t gap_hours) {
  TSPN_CHECK_GT(gap_hours, 0);
  const int64_t gap_seconds = gap_hours * 3600;
  std::vector<Trajectory> trajectories;
  Trajectory current;
  for (const Checkin& c : checkins) {
    if (!current.checkins.empty()) {
      int64_t previous = current.checkins.back().timestamp;
      TSPN_CHECK_GE(c.timestamp, previous) << "check-ins must be time-ordered";
      if (c.timestamp - previous >= gap_seconds) {
        trajectories.push_back(std::move(current));
        current = Trajectory{};
      }
    }
    current.checkins.push_back(c);
  }
  if (!current.checkins.empty()) trajectories.push_back(std::move(current));
  return trajectories;
}

std::vector<Split> AssignSplits(int64_t count, common::Rng& rng) {
  std::vector<Split> splits(static_cast<size_t>(count), Split::kTrain);
  // Deterministic shuffled assignment of 80/10/10.
  std::vector<int64_t> order(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);
  // 80/10/10, with at least one val/test trajectory once there are >= 3.
  int64_t val_count = count / 10;
  int64_t test_count = count / 10;
  if (count >= 3) {
    val_count = std::max<int64_t>(val_count, 1);
    test_count = std::max<int64_t>(test_count, 1);
  }
  for (int64_t i = 0; i < val_count; ++i) {
    splits[static_cast<size_t>(order[static_cast<size_t>(i)])] = Split::kVal;
  }
  for (int64_t i = val_count; i < val_count + test_count; ++i) {
    splits[static_cast<size_t>(order[static_cast<size_t>(i)])] = Split::kTest;
  }
  return splits;
}

}  // namespace tspn::data
