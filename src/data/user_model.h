#ifndef TSPN_DATA_USER_MODEL_H_
#define TSPN_DATA_USER_MODEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/poi.h"

namespace tspn::data {

/// Latent behavioural profile of a simulated user. These latents create the
/// regularities next-POI models exploit: a frequent-POI set (repeat visits /
/// periodicity), a home district (spatial locality), and per-category tastes
/// modulated by time of day (semantic intent).
struct UserProfile {
  int64_t user_id = 0;
  int32_t home_district = 0;
  std::vector<int64_t> frequent_pois;
  std::vector<double> category_affinity;  // one multiplier per category

  /// Preference weight of visiting category `cat` at `timestamp`, combining
  /// the user's taste with the category's diurnal profile.
  double CategoryTimeWeight(const std::vector<CategoryInfo>& categories,
                            int32_t cat, int64_t timestamp) const;
};

/// Samples a user profile. `district_weights` biases the home-district draw
/// (residential districts should dominate), `poi_home_weight` multiplies the
/// frequent-POI draw for POIs near home.
UserProfile SampleUserProfile(int64_t user_id, int64_t num_categories,
                              const std::vector<double>& district_weights,
                              const std::vector<Poi>& pois,
                              const std::vector<geo::GeoPoint>& district_centers,
                              double home_radius_deg, int64_t frequent_count,
                              common::Rng& rng);

}  // namespace tspn::data

#endif  // TSPN_DATA_USER_MODEL_H_
