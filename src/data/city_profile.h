#ifndef TSPN_DATA_CITY_PROFILE_H_
#define TSPN_DATA_CITY_PROFILE_H_

#include <cstdint>
#include <string>

#include "geo/geometry.h"

namespace tspn::data {

/// Knobs describing a synthetic city + check-in workload. The four presets
/// mirror the spatial/sparsity contrast of the paper's Table I datasets at a
/// CPU-friendly scale: two dense urban regions (TKY/NYC analogues) and two
/// sparse state-wide regions (California/Florida analogues, the latter with
/// an eastern coastline). Sizes scale linearly with `scale` (TSPN_BENCH_SCALE).
struct CityProfile {
  std::string name;
  geo::BoundingBox bbox;
  bool coastal = false;

  // World synthesis.
  int32_t num_districts = 10;
  double district_radius_frac = 0.08;  ///< district radius as fraction of bbox span
  uint64_t seed = 1;

  // Workload.
  int64_t num_users = 40;
  int64_t num_pois = 1000;
  int32_t num_categories = 30;
  int64_t checkins_per_user = 120;

  // Behavioural mix (must sum to <= 1; remainder = exploration).
  double p_repeat = 0.50;   ///< revisit a frequent POI
  double p_nearby = 0.35;   ///< move to a POI near the current one
  double nearby_radius_frac = 0.06;  ///< of bbox span

  // Trajectory windowing (the paper's delta-t = 72 h).
  int64_t window_gap_hours = 72;

  // Quad-tree / prediction parameters (D, Omega, K of Sec. VI-A).
  int32_t quadtree_max_depth = 8;
  int64_t quadtree_leaf_capacity = 40;
  int32_t top_k_tiles = 10;

  /// Multiplies user/POI/check-in counts (>=1).
  CityProfile Scaled(int64_t scale) const;

  // --- Presets ---------------------------------------------------------------

  /// Dense urban profile analogous to Foursquare Tokyo (largest workload).
  static CityProfile FoursquareTky();
  /// Dense urban profile analogous to Foursquare New York.
  static CityProfile FoursquareNyc();
  /// Sparse state-wide profile analogous to Weeplaces California.
  static CityProfile WeeplacesCalifornia();
  /// Sparse coastal state profile analogous to Weeplaces Florida.
  static CityProfile WeeplacesFlorida();

  /// Tiny profile for unit tests (seconds to build and train on).
  static CityProfile TestTiny();
};

}  // namespace tspn::data

#endif  // TSPN_DATA_CITY_PROFILE_H_
