#ifndef TSPN_DATA_CHECKIN_GENERATOR_H_
#define TSPN_DATA_CHECKIN_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "data/city_profile.h"
#include "data/poi.h"
#include "data/user_model.h"
#include "roadnet/road_network.h"
#include "rs/land_use.h"

namespace tspn::data {

/// Everything the simulator synthesizes before user behaviour: the land-use
/// world, its road network, the category semantics and the POI inventory.
struct World {
  rs::CityLayout layout;
  roadnet::RoadNetwork roads;
  std::vector<CategoryInfo> categories;
  std::vector<Poi> pois;
};

/// Builds the world for a profile (deterministic given profile.seed).
World BuildWorld(const CityProfile& profile);

/// One user's raw check-in stream (time-ordered) plus the latent profile
/// that generated it.
struct UserStream {
  UserProfile profile;
  std::vector<Checkin> checkins;
};

/// Simulates check-in streams for every user. The movement policy mixes
/// frequent-POI revisits (p_repeat), near-current moves (p_nearby) and
/// global exploration, with category-time preferences shaping every draw —
/// the regularities that give history-, sequence- and environment-aware
/// models their respective edges.
std::vector<UserStream> SimulateUsers(const CityProfile& profile, const World& world);

}  // namespace tspn::data

#endif  // TSPN_DATA_CHECKIN_GENERATOR_H_
