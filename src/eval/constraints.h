#ifndef TSPN_EVAL_CONSTRAINTS_H_
#define TSPN_EVAL_CONSTRAINTS_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "eval/recommend.h"

namespace tspn::eval {

/// A compiled geo-fence: every cell of a fixed grid over the dataset
/// region classified against the fence circle (outside/boundary/inside).
/// Immutable once built, so recurring fences are shared across evaluators
/// through the process-wide classification cache below.
struct FenceClassification;

/// Binds a request's CandidateConstraints to the dataset and sample so
/// models can test candidates with one Allows() call. Construction is
/// per-request: category sets become a bitmask over category ids, the
/// observed prefix becomes a visited set, and the geo fence is compiled
/// into a coarse spatial::GridIndex cell classification (outside /
/// boundary / inside) so most POIs resolve without a distance computation.
///
/// Fence compilation is cached per (dataset region, center, radius): a
/// recurring fence — e.g. one fixed city-center fence across millions of
/// queries — classifies its grid once and every later evaluator reuses the
/// shared immutable classification (see FenceClassificationCacheStats).
/// TSPN_DISABLE_FENCE_CACHE=1 restores per-request compilation (A/B +
/// parity testing).
///
/// The referenced dataset and constraints must outlive the evaluator.
class ConstraintEvaluator {
 public:
  ConstraintEvaluator(const data::CityDataset& dataset,
                      const CandidateConstraints& constraints,
                      const data::SampleRef& sample);

  /// Whether any constraint is active; an inactive evaluator allows all.
  bool active() const { return active_; }

  /// Whether the POI satisfies every active constraint, with the open-time
  /// window evaluated at the request's own `constraints.open_at`.
  bool Allows(int64_t poi_id) const;

  /// Allows(), but with the open-time window evaluated at `timestamp`
  /// instead of the request's open_at. Multi-step callers (the itinerary
  /// planner) advance a clock across one request, so the day-part a POI
  /// must be open in is a per-step property, not a per-request one; every
  /// other constraint (allow/block lists, visited set, fence) is
  /// time-invariant and checked identically. A negative timestamp skips
  /// the open-time check. No-op passthrough when the request carries no
  /// open-time constraint (open_at < 0).
  bool AllowsAt(int64_t poi_id, int64_t timestamp) const;

  /// Conservative tile-level prune: false only when no point of `bounds`
  /// can lie inside the geo fence, so an entire candidate tile can be
  /// skipped before its POIs are gathered. Always true without a fence.
  bool BoundsMayIntersectFence(const geo::BoundingBox& bounds) const;

 private:
  const data::CityDataset& dataset_;
  const CandidateConstraints& constraints_;
  bool active_ = false;

  /// category id -> allowed, folding the allow/block lists. Empty when
  /// neither list is active. The open-time window is deliberately NOT
  /// folded in here (it used to be): it depends on the query time, which
  /// AllowsAt() varies per call.
  std::vector<char> category_allowed_;

  /// Day-part-resolved open-time mask, [part * num_categories + cat] ->
  /// open, for all data::kNumDayParts parts. Empty when open_at < 0.
  std::vector<char> open_allowed_;
  std::unordered_set<int64_t> visited_;

  /// Geo-fence prefilter (only when the fence is active): the shared
  /// immutable cell classification, from the cache or freshly compiled;
  /// Allows() then needs a haversine only for boundary cells.
  std::shared_ptr<const FenceClassification> fence_;
};

/// Hit/miss counters of the process-wide fence-classification cache.
struct FenceCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;  ///< compilations (cache disabled counts here too)
};

FenceCacheStats FenceClassificationCacheStats();

/// Drops every cached classification and zeroes the counters (tests).
void ClearFenceClassificationCache();

/// Evaluator bound to a request's constraints, or null when none are
/// active — the one idiom every model uses to go from request to filter.
std::unique_ptr<ConstraintEvaluator> MakeConstraintFilter(
    const data::CityDataset& dataset, const RecommendRequest& request);

/// Shared single-stage ranking: selects the request's top_n from a dense
/// score vector over the whole POI vocabulary, applying the request's
/// constraints *before* selection (ties rank by ascending POI id). This is
/// how every all-POI-scoring model (the baselines) serves the v2 API.
RecommendResponse RankAllPois(const float* scores, int64_t num_pois,
                              const RecommendRequest& request,
                              const data::CityDataset& dataset);

}  // namespace tspn::eval

#endif  // TSPN_EVAL_CONSTRAINTS_H_
