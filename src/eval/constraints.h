#ifndef TSPN_EVAL_CONSTRAINTS_H_
#define TSPN_EVAL_CONSTRAINTS_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "eval/recommend.h"
#include "spatial/grid_index.h"

namespace tspn::eval {

/// Binds a request's CandidateConstraints to the dataset and sample so
/// models can test candidates with one Allows() call. Construction is
/// per-request: category sets become a bitmask over category ids, the
/// observed prefix becomes a visited set, and the geo fence is compiled
/// into a coarse spatial::GridIndex cell classification (outside /
/// boundary / inside) so most POIs resolve without a distance computation.
///
/// The referenced dataset and constraints must outlive the evaluator.
class ConstraintEvaluator {
 public:
  ConstraintEvaluator(const data::CityDataset& dataset,
                      const CandidateConstraints& constraints,
                      const data::SampleRef& sample);

  /// Whether any constraint is active; an inactive evaluator allows all.
  bool active() const { return active_; }

  /// Whether the POI satisfies every active constraint.
  bool Allows(int64_t poi_id) const;

  /// Conservative tile-level prune: false only when no point of `bounds`
  /// can lie inside the geo fence, so an entire candidate tile can be
  /// skipped before its POIs are gathered. Always true without a fence.
  bool BoundsMayIntersectFence(const geo::BoundingBox& bounds) const;

 private:
  /// Fence classification of one prefilter grid cell.
  enum CellState : uint8_t { kOutside = 0, kBoundary = 1, kInside = 2 };

  const data::CityDataset& dataset_;
  const CandidateConstraints& constraints_;
  bool active_ = false;

  /// category id -> allowed, folding allow/block lists and the open-time
  /// window (all three are per-category predicates). Empty when no
  /// category-shaped constraint is active.
  std::vector<char> category_allowed_;
  std::unordered_set<int64_t> visited_;

  /// Geo-fence prefilter (only when the fence is active): every cell of a
  /// fixed grid over the dataset region is classified against the fence
  /// circle once; Allows() then needs a haversine only for boundary cells.
  std::unique_ptr<spatial::GridIndex> fence_grid_;
  std::vector<uint8_t> cell_state_;
};

/// Evaluator bound to a request's constraints, or null when none are
/// active — the one idiom every model uses to go from request to filter.
std::unique_ptr<ConstraintEvaluator> MakeConstraintFilter(
    const data::CityDataset& dataset, const RecommendRequest& request);

/// Shared single-stage ranking: selects the request's top_n from a dense
/// score vector over the whole POI vocabulary, applying the request's
/// constraints *before* selection (ties rank by ascending POI id). This is
/// how every all-POI-scoring model (the baselines) serves the v2 API.
RecommendResponse RankAllPois(const float* scores, int64_t num_pois,
                              const RecommendRequest& request,
                              const data::CityDataset& dataset);

}  // namespace tspn::eval

#endif  // TSPN_EVAL_CONSTRAINTS_H_
