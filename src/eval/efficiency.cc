#include "eval/efficiency.h"

#include <cstdio>

#include "common/stopwatch.h"
#include "eval/metrics.h"
#include "nn/tensor.h"

namespace tspn::eval {

EfficiencyReport MeasureEfficiency(
    const std::function<std::unique_ptr<NextPoiModel>()>& factory,
    const data::CityDataset& dataset, const TrainOptions& options,
    int64_t eval_samples, uint64_t seed) {
  EfficiencyReport report;
  std::unique_ptr<NextPoiModel> model = factory();
  report.model_name = model->name();

  nn::ResetMemoryStats();
  common::Stopwatch train_watch;
  model->Train(options);
  report.train_seconds = train_watch.ElapsedSeconds();
  report.peak_train_bytes = nn::PeakTensorBytes();

  common::Stopwatch infer_watch;
  RankingMetrics metrics =
      EvaluateModel(*model, dataset, data::Split::kTest, eval_samples, seed);
  report.infer_seconds = infer_watch.ElapsedSeconds();
  report.eval_samples = metrics.count();
  return report;
}

std::string FormatBytes(int64_t bytes) {
  char buffer[64];
  if (bytes >= (1 << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1f MB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1 << 10)) {
    std::snprintf(buffer, sizeof(buffer), "%.1f KB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lld B", static_cast<long long>(bytes));
  }
  return buffer;
}

std::string FormatMinSec(double seconds) {
  int64_t total = static_cast<int64_t>(seconds + 0.5);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%02lld:%02lld",
                static_cast<long long>(total / 60),
                static_cast<long long>(total % 60));
  return buffer;
}

}  // namespace tspn::eval
