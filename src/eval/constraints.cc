#include "eval/constraints.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>

#include "common/check.h"
#include "common/env.h"
#include "spatial/grid_index.h"

namespace tspn::eval {

/// See constraints.h: one fence circle compiled against the prefilter grid.
struct FenceClassification {
  /// Classification of one prefilter grid cell.
  enum CellState : uint8_t { kOutside = 0, kBoundary = 1, kInside = 2 };

  explicit FenceClassification(const geo::BoundingBox& region, int32_t cells)
      : grid(region, cells) {}

  spatial::GridIndex grid;
  std::vector<uint8_t> cell_state;
};

namespace {

/// Cells per side of the geo-fence prefilter grid. 32x32 keeps the one-off
/// classification cheap (only cells inside the fence's bounding box are
/// visited) while making boundary cells — the only ones that still need a
/// per-POI haversine — a thin ring around the fence circle.
constexpr int32_t kFenceGridCells = 32;

/// Degrees of latitude per kilometre (and of longitude at the equator).
constexpr double kDegPerKm = 1.0 / 111.19;

/// Compiles one fence circle: classify every grid cell the fence's bounding
/// box can reach as outside/boundary/inside the circle.
std::shared_ptr<const FenceClassification> CompileFence(
    const geo::BoundingBox& region, const geo::GeoPoint& center,
    double radius_km) {
  auto fence = std::make_shared<FenceClassification>(region, kFenceGridCells);
  fence->cell_state.assign(static_cast<size_t>(fence->grid.NumTiles()),
                           FenceClassification::kOutside);
  // Classify only the cells the fence's bounding box can reach; everything
  // else stays kOutside.
  // 10% slack on the box so spherical-vs-planar drift can never leave a
  // fence-reaching cell unclassified (unvisited cells read as kOutside).
  const double dlat = 1.1 * radius_km * kDegPerKm;
  const double dlon = 1.1 * radius_km * kDegPerKm /
                      std::max(0.1, std::cos(center.lat * M_PI / 180.0));
  geo::BoundingBox fence_box{center.lat - dlat, center.lon - dlon,
                             center.lat + dlat, center.lon + dlon};
  int32_t row0, row1, col0, col1;
  if (fence->grid.TileSpan(fence_box, &row0, &row1, &col0, &col1)) {
    for (int32_t row = row0; row <= row1; ++row) {
      for (int32_t col = col0; col <= col1; ++col) {
        const int64_t cell = static_cast<int64_t>(row) * kFenceGridCells + col;
        const geo::BoundingBox bounds = fence->grid.TileBounds(cell);
        if (geo::MinDistanceKm(bounds, center) > radius_km) {
          continue;  // stays kOutside
        }
        fence->cell_state[static_cast<size_t>(cell)] =
            geo::MaxCornerDistanceKm(bounds, center) <= radius_km
                ? FenceClassification::kInside
                : FenceClassification::kBoundary;
      }
    }
  }
  return fence;
}

/// Process-wide classification cache. The classification is a pure function
/// of (region, center, radius) — nothing dataset-lifetime-bound is stored —
/// so the key is the exact bit patterns of those seven doubles: any change
/// of fence or region recompiles, identical recurring fences share one
/// immutable compiled entry. Bounded FIFO so a scan over many distinct
/// fences cannot grow it without bound.
class FenceCache {
 public:
  static constexpr size_t kMaxEntries = 128;
  using Key = std::array<uint64_t, 7>;

  static Key MakeKey(const geo::BoundingBox& region, const geo::GeoPoint& center,
                     double radius_km) {
    const double values[7] = {region.min_lat, region.min_lon, region.max_lat,
                              region.max_lon, center.lat,     center.lon,
                              radius_km};
    Key key;
    std::memcpy(key.data(), values, sizeof(values));
    return key;
  }

  std::shared_ptr<const FenceClassification> Get(const geo::BoundingBox& region,
                                                 const geo::GeoPoint& center,
                                                 double radius_km) {
    const Key key = MakeKey(region, center, radius_km);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        return it->second;
      }
    }
    // Compile outside the lock: concurrent first-seen fences build in
    // parallel. On a racing duplicate, emplace keeps the first-inserted
    // entry and this thread's identical compilation is discarded — Get
    // never replaces an existing entry, so changing the compile logic
    // requires a Clear(), not a re-Get.
    std::shared_ptr<const FenceClassification> fence =
        CompileFence(region, center, radius_km);
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    auto [it, inserted] = entries_.emplace(key, fence);
    if (inserted) {
      order_.push_back(key);
      if (order_.size() > kMaxEntries) {
        entries_.erase(order_.front());
        order_.pop_front();
      }
    }
    return it->second;
  }

  void CountMiss() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
  }

  FenceCacheStats Stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_};
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    order_.clear();
    hits_ = 0;
    misses_ = 0;
  }

  static FenceCache& Global() {
    static FenceCache* cache = new FenceCache();
    return *cache;
  }

 private:
  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const FenceClassification>> entries_;
  std::deque<Key> order_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace

FenceCacheStats FenceClassificationCacheStats() {
  return FenceCache::Global().Stats();
}

void ClearFenceClassificationCache() { FenceCache::Global().Clear(); }

ConstraintEvaluator::ConstraintEvaluator(const data::CityDataset& dataset,
                                         const CandidateConstraints& constraints,
                                         const data::SampleRef& sample)
    : dataset_(dataset), constraints_(constraints), active_(constraints.Active()) {
  if (!active_) return;

  const size_t num_categories =
      static_cast<size_t>(dataset.profile().num_categories);
  if (!constraints.allowed_categories.empty() ||
      !constraints.blocked_categories.empty()) {
    category_allowed_.assign(num_categories,
                             constraints.allowed_categories.empty() ? 1 : 0);
    for (int32_t cat : constraints.allowed_categories) {
      if (cat >= 0 && static_cast<size_t>(cat) < num_categories) {
        category_allowed_[static_cast<size_t>(cat)] = 1;
      }
    }
    for (int32_t cat : constraints.blocked_categories) {
      if (cat >= 0 && static_cast<size_t>(cat) < num_categories) {
        category_allowed_[static_cast<size_t>(cat)] = 0;
      }
    }
  }
  if (constraints.open_at >= 0) {
    // Resolve the open-time window for every day part up front, so a
    // multi-step caller can move the query clock without rebuilding the
    // evaluator (AllowsAt picks the row for its timestamp's day part).
    const auto& categories = dataset.categories();
    open_allowed_.assign(static_cast<size_t>(data::kNumDayParts) *
                             num_categories,
                         1);
    for (size_t part = 0; part < static_cast<size_t>(data::kNumDayParts);
         ++part) {
      for (size_t cat = 0; cat < num_categories && cat < categories.size();
           ++cat) {
        if (categories[cat].time_weights[part] < constraints.min_open_weight) {
          open_allowed_[part * num_categories + cat] = 0;
        }
      }
    }
  }

  if (constraints.exclude_visited) {
    const data::Trajectory& traj = dataset.trajectory(sample);
    for (int32_t i = 0; i < sample.prefix_len; ++i) {
      visited_.insert(traj.checkins[static_cast<size_t>(i)].poi_id);
    }
  }

  if (constraints.geo_radius_km > 0.0) {
    if (common::EnvInt("TSPN_DISABLE_FENCE_CACHE", 0) != 0) {
      fence_ = CompileFence(dataset.profile().bbox, constraints.geo_center,
                            constraints.geo_radius_km);
      FenceCache::Global().CountMiss();
    } else {
      fence_ = FenceCache::Global().Get(dataset.profile().bbox,
                                        constraints.geo_center,
                                        constraints.geo_radius_km);
    }
  }
}

bool ConstraintEvaluator::Allows(int64_t poi_id) const {
  return AllowsAt(poi_id, constraints_.open_at);
}

bool ConstraintEvaluator::AllowsAt(int64_t poi_id, int64_t timestamp) const {
  if (!active_) return true;
  const data::Poi& poi = dataset_.poi(poi_id);
  if (!category_allowed_.empty()) {
    const size_t cat = static_cast<size_t>(poi.category);
    if (cat >= category_allowed_.size() || !category_allowed_[cat]) return false;
  }
  if (!open_allowed_.empty() && timestamp >= 0) {
    const size_t num_categories = open_allowed_.size() /
                                  static_cast<size_t>(data::kNumDayParts);
    const size_t part = static_cast<size_t>(data::DayPartOf(timestamp));
    const size_t cat = static_cast<size_t>(poi.category);
    if (cat >= num_categories || !open_allowed_[part * num_categories + cat]) {
      return false;
    }
  }
  if (!visited_.empty() && visited_.count(poi_id) > 0) return false;
  if (fence_ != nullptr) {
    switch (
        fence_->cell_state[static_cast<size_t>(fence_->grid.TileOf(poi.loc))]) {
      case FenceClassification::kOutside:
        return false;
      case FenceClassification::kInside:
        break;
      case FenceClassification::kBoundary:
        if (geo::HaversineKm(poi.loc, constraints_.geo_center) >
            constraints_.geo_radius_km) {
          return false;
        }
        break;
    }
  }
  return true;
}

bool ConstraintEvaluator::BoundsMayIntersectFence(
    const geo::BoundingBox& bounds) const {
  if (fence_ == nullptr) return true;
  return geo::MinDistanceKm(bounds, constraints_.geo_center) <=
         constraints_.geo_radius_km;
}

std::unique_ptr<ConstraintEvaluator> MakeConstraintFilter(
    const data::CityDataset& dataset, const RecommendRequest& request) {
  if (!request.constraints.Active()) return nullptr;
  return std::make_unique<ConstraintEvaluator>(dataset, request.constraints,
                                               request.sample);
}

RecommendResponse RankAllPois(const float* scores, int64_t num_pois,
                              const RecommendRequest& request,
                              const data::CityDataset& dataset) {
  std::vector<int64_t> allowed;
  if (request.constraints.Active()) {
    ConstraintEvaluator filter(dataset, request.constraints, request.sample);
    allowed.reserve(static_cast<size_t>(num_pois));
    for (int64_t id = 0; id < num_pois; ++id) {
      if (filter.Allows(id)) allowed.push_back(id);
    }
  } else {
    allowed.resize(static_cast<size_t>(num_pois));
    for (int64_t id = 0; id < num_pois; ++id) {
      allowed[static_cast<size_t>(id)] = id;
    }
  }

  auto better = [scores](int64_t a, int64_t b) {
    const float sa = scores[a], sb = scores[b];
    if (sa != sb) return sa > sb;
    return a < b;
  };
  const int64_t keep =
      std::min<int64_t>(request.top_n, static_cast<int64_t>(allowed.size()));
  if (keep < static_cast<int64_t>(allowed.size())) {
    std::nth_element(allowed.begin(), allowed.begin() + keep, allowed.end(),
                     better);
    allowed.resize(static_cast<size_t>(keep));
  }
  std::sort(allowed.begin(), allowed.end(), better);

  RecommendResponse response;
  response.stages_used = 1;
  response.items.reserve(allowed.size());
  for (int64_t id : allowed) {
    response.items.push_back({id, scores[id], /*tile_index=*/-1});
  }
  return response;
}

}  // namespace tspn::eval
