#ifndef TSPN_EVAL_MODEL_REGISTRY_H_
#define TSPN_EVAL_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"

namespace tspn::eval {

/// Construction knobs shared by every registered model factory. Factories
/// ignore what does not apply to them (MC has no embeddings, so `dm` is
/// unused there).
struct ModelOptions {
  int64_t dm = 32;                 ///< embedding dimension
  uint64_t seed = 7;               ///< weight-init seed
  int32_t image_resolution = 16;   ///< TSPN-RA tile imagery side
};

/// Unified model lifecycle: one name -> factory registry over NextPoiModel
/// covering TSPN-RA and every baseline, so benches, demos and the serving
/// layer build models the same way — and a checkpoint saved by one process
/// can be restored into a registry-built model in another (see
/// NextPoiModel::SaveCheckpoint/LoadCheckpoint).
class ModelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<NextPoiModel>(
      std::shared_ptr<const data::CityDataset> dataset,
      const ModelOptions& options)>;

  /// The process-wide registry, with every built-in model pre-registered:
  /// "TSPN-RA" plus the ten baselines ("MC", "GRU", "STRNN", "DeepMove",
  /// "LSTPM", "STAN", "SAE-NAD", "HMT-GRN", "Graph-Flashback", "STiSAN").
  static ModelRegistry& Global();

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Builds an untrained model; nullptr when `name` is not registered.
  std::unique_ptr<NextPoiModel> Create(
      const std::string& name,
      std::shared_ptr<const data::CityDataset> dataset,
      const ModelOptions& options = {}) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_MODEL_REGISTRY_H_
