#ifndef TSPN_EVAL_MODEL_REGISTRY_H_
#define TSPN_EVAL_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"

namespace tspn::eval {

/// Construction knobs shared by every registered model factory. Factories
/// ignore what does not apply to them (MC has no embeddings, so `dm` is
/// unused there).
///
/// Besides the typed fields, options travel as string key/value pairs
/// through config-shaped surfaces (serve::DeployConfig, future RPC/file
/// configs): FromKeyValues parses the knobs by name and *rejects unknown
/// keys loudly* — a typoed knob must fail the deploy, not silently fall
/// back to a default — and ToKeyValues round-trips every field.
struct ModelOptions {
  int64_t dm = 32;                 ///< embedding dimension
  uint64_t seed = 7;               ///< weight-init seed
  int32_t image_resolution = 16;   ///< TSPN-RA tile imagery side

  /// Applies one named knob ("dm", "seed", "image_resolution"). Returns
  /// false — with *error naming the offending key/value — on an unknown
  /// key, an unparsable integer, or an out-of-range value.
  bool Set(const std::string& key, const std::string& value, std::string* error);

  /// Defaults overridden by `kv`; false (with *error) on any bad entry.
  static bool FromKeyValues(const std::map<std::string, std::string>& kv,
                            ModelOptions* out, std::string* error);

  /// Every knob as strings; FromKeyValues(ToKeyValues()) reproduces *this.
  std::map<std::string, std::string> ToKeyValues() const;
};

/// Unified model lifecycle: one name -> factory registry over NextPoiModel
/// covering TSPN-RA and every baseline, so benches, demos and the serving
/// layer build models the same way — and a checkpoint saved by one process
/// can be restored into a registry-built model in another (see
/// NextPoiModel::SaveCheckpoint/LoadCheckpoint).
class ModelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<NextPoiModel>(
      std::shared_ptr<const data::CityDataset> dataset,
      const ModelOptions& options)>;

  /// The process-wide registry, with every built-in model pre-registered:
  /// "TSPN-RA" plus the ten baselines ("MC", "GRU", "STRNN", "DeepMove",
  /// "LSTPM", "STAN", "SAE-NAD", "HMT-GRN", "Graph-Flashback", "STiSAN").
  static ModelRegistry& Global();

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Builds an untrained model; nullptr when `name` is not registered.
  std::unique_ptr<NextPoiModel> Create(
      const std::string& name,
      std::shared_ptr<const data::CityDataset> dataset,
      const ModelOptions& options = {}) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_MODEL_REGISTRY_H_
