#ifndef TSPN_EVAL_MODEL_REGISTRY_H_
#define TSPN_EVAL_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"

namespace tspn::eval {

/// Construction knobs shared by every registered model factory. Factories
/// ignore what does not apply to them (MC has no embeddings, so `dm` is
/// unused there).
///
/// Besides the typed fields, options travel as string key/value pairs
/// through config-shaped surfaces (serve::DeployConfig, future RPC/file
/// configs): FromKeyValues parses the knobs by name and *rejects unknown
/// keys loudly* — a typoed knob must fail the deploy, not silently fall
/// back to a default — and ToKeyValues round-trips every field.
struct ModelOptions {
  int64_t dm = 32;                 ///< embedding dimension
  uint64_t seed = 7;               ///< weight-init seed
  int32_t image_resolution = 16;   ///< TSPN-RA tile imagery side

  // Full TSPN-RA architecture/ablation plumbing (mirrors core::TspnRaConfig)
  // so a deployment — or the continual trainer cloning the live deployment —
  // reconstructs the exact model, not a default-shaped approximation.
  // Baselines ignore what does not apply to them.
  int32_t num_fusion_layers = 2;   ///< attention blocks in MP1 / MP2
  int32_t num_hgat_layers = 2;     ///< HGAT depth (Sec. IV-C)
  int32_t max_seq_len = 16;        ///< prefix truncation for the encoders
  int32_t top_k_tiles = 0;         ///< K; 0 = inherit the city profile's K
  int32_t grid_cells_per_side = 12;///< grid-partition ablation granularity
  float alpha = 0.7f;              ///< id/category merge ratio (Eq. 5)
  float dropout = 0.1f;
  float spatial_scale = 64.0f;     ///< sinusoidal position axis multiplier
  bool use_quadtree = true;        ///< false: fixed grid partition
  bool use_two_step = true;        ///< false: rank all POIs directly
  bool use_graph = true;           ///< QR-P graph + historical knowledge
  bool use_imagery = true;         ///< false: learnable tile-id embeddings
  bool use_st_encoder = true;      ///< spatial + temporal encoders
  bool use_category = true;        ///< POI category in Me2

  /// Applies one named knob (any field above, by its field name). Returns
  /// false — with *error naming the offending key/value — on an unknown
  /// key, an unparsable value, or an out-of-range value.
  bool Set(const std::string& key, const std::string& value, std::string* error);

  /// Defaults overridden by `kv`; false (with *error) on any bad entry.
  static bool FromKeyValues(const std::map<std::string, std::string>& kv,
                            ModelOptions* out, std::string* error);

  /// Every knob as strings; FromKeyValues(ToKeyValues()) reproduces *this.
  std::map<std::string, std::string> ToKeyValues() const;
};

/// Unified model lifecycle: one name -> factory registry over NextPoiModel
/// covering TSPN-RA and every baseline, so benches, demos and the serving
/// layer build models the same way — and a checkpoint saved by one process
/// can be restored into a registry-built model in another (see
/// NextPoiModel::SaveCheckpoint/LoadCheckpoint).
class ModelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<NextPoiModel>(
      std::shared_ptr<const data::CityDataset> dataset,
      const ModelOptions& options)>;

  /// The process-wide registry, with every built-in model pre-registered:
  /// "TSPN-RA" plus the ten baselines ("MC", "GRU", "STRNN", "DeepMove",
  /// "LSTPM", "STAN", "SAE-NAD", "HMT-GRN", "Graph-Flashback", "STiSAN").
  static ModelRegistry& Global();

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Builds an untrained model; nullptr when `name` is not registered.
  std::unique_ptr<NextPoiModel> Create(
      const std::string& name,
      std::shared_ptr<const data::CityDataset> dataset,
      const ModelOptions& options = {}) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_MODEL_REGISTRY_H_
