// The registry implementation deliberately lives in eval/ but reaches into
// core/ and baselines/ (everything is one library; the dependency is
// link-time only): a lazy builtin-registration function avoids the
// static-initializer-in-static-library pitfall where self-registering
// translation units are dropped by the linker.

#include "eval/model_registry.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "baselines/deepmove.h"
#include "baselines/graph_flashback.h"
#include "baselines/gru_model.h"
#include "baselines/hmt_grn.h"
#include "baselines/lstpm.h"
#include "baselines/markov_chain.h"
#include "baselines/sae_nad.h"
#include "baselines/stan.h"
#include "baselines/stisan.h"
#include "baselines/strnn.h"
#include "core/tspn_ra.h"

namespace tspn::eval {

namespace {

using Dataset = std::shared_ptr<const data::CityDataset>;

template <typename Model>
ModelRegistry::Factory EmbeddingBaseline() {
  return [](Dataset dataset, const ModelOptions& options) {
    return std::make_unique<Model>(std::move(dataset), options.dm,
                                   options.seed);
  };
}

void RegisterBuiltins(ModelRegistry& registry) {
  registry.Register("TSPN-RA", [](Dataset dataset, const ModelOptions& options) {
    core::TspnRaConfig config;
    config.dm = options.dm;
    config.seed = options.seed;
    config.image_resolution = options.image_resolution;
    config.num_fusion_layers = options.num_fusion_layers;
    config.num_hgat_layers = options.num_hgat_layers;
    config.max_seq_len = options.max_seq_len;
    config.top_k_tiles = options.top_k_tiles > 0
                             ? options.top_k_tiles
                             : dataset->profile().top_k_tiles;
    config.grid_cells_per_side = options.grid_cells_per_side;
    config.alpha = options.alpha;
    config.dropout = options.dropout;
    config.spatial_scale = options.spatial_scale;
    config.use_quadtree = options.use_quadtree;
    config.use_two_step = options.use_two_step;
    config.use_graph = options.use_graph;
    config.use_imagery = options.use_imagery;
    config.use_st_encoder = options.use_st_encoder;
    config.use_category = options.use_category;
    return std::make_unique<core::TspnRa>(std::move(dataset), config);
  });
  registry.Register("MC", [](Dataset dataset, const ModelOptions&) {
    return std::make_unique<baselines::MarkovChain>(std::move(dataset));
  });
  registry.Register("GRU", EmbeddingBaseline<baselines::GruModel>());
  registry.Register("STRNN", EmbeddingBaseline<baselines::Strnn>());
  registry.Register("DeepMove", EmbeddingBaseline<baselines::DeepMove>());
  registry.Register("LSTPM", EmbeddingBaseline<baselines::Lstpm>());
  registry.Register("STAN", EmbeddingBaseline<baselines::Stan>());
  registry.Register("SAE-NAD", EmbeddingBaseline<baselines::SaeNad>());
  registry.Register("HMT-GRN", EmbeddingBaseline<baselines::HmtGrn>());
  registry.Register("Graph-Flashback",
                    EmbeddingBaseline<baselines::GraphFlashback>());
  registry.Register("STiSAN", EmbeddingBaseline<baselines::Stisan>());
}

/// Strict base-10 integer parse: the whole string must be consumed.
bool ParseInt64(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

/// Unsigned variant for the seed knob: ToKeyValues emits the full uint64
/// range, so FromKeyValues must accept it (round-trip contract).
bool ParseUint64(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

/// Strict float parse: the whole string must be consumed and the value finite.
bool ParseFloat(const std::string& value, float* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const float parsed = std::strtof(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  if (!std::isfinite(parsed)) return false;
  *out = parsed;
  return true;
}

bool ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0") {
    *out = false;
    return true;
  }
  return false;
}

/// Shortest decimal that round-trips the exact float (FLT_DECIMAL_DIG).
std::string FloatToString(float value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(value));
  return buf;
}

constexpr const char* kKnownKeys =
    "dm, seed, image_resolution, num_fusion_layers, num_hgat_layers, "
    "max_seq_len, top_k_tiles, grid_cells_per_side, alpha, dropout, "
    "spatial_scale, use_quadtree, use_two_step, use_graph, use_imagery, "
    "use_st_encoder, use_category";

}  // namespace

bool ModelOptions::Set(const std::string& key, const std::string& value,
                       std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "model option '" + key + "' has " + what + " value '" + value + "'";
    }
    return false;
  };

  if (key == "seed") {
    // Seed spans the full uint64 range ToKeyValues can emit.
    uint64_t parsed = 0;
    if (!ParseUint64(value, &parsed)) return fail("non-integer or negative");
    seed = parsed;
    return true;
  }
  if (key == "dm") {
    int64_t parsed = 0;
    if (!ParseInt64(value, &parsed) || parsed < 0) {
      return fail("non-integer or negative");
    }
    dm = parsed;
    return true;
  }

  // int32-typed knobs; rejected — not truncated — past int32, because a
  // silent wrap would deploy a model with a corrupt knob.
  int32_t* int32_knob = nullptr;
  if (key == "image_resolution") int32_knob = &image_resolution;
  if (key == "num_fusion_layers") int32_knob = &num_fusion_layers;
  if (key == "num_hgat_layers") int32_knob = &num_hgat_layers;
  if (key == "max_seq_len") int32_knob = &max_seq_len;
  if (key == "top_k_tiles") int32_knob = &top_k_tiles;
  if (key == "grid_cells_per_side") int32_knob = &grid_cells_per_side;
  if (int32_knob != nullptr) {
    int64_t parsed = 0;
    if (!ParseInt64(value, &parsed) || parsed < 0) {
      return fail("non-integer or negative");
    }
    if (parsed > std::numeric_limits<int32_t>::max()) {
      if (error != nullptr) {
        *error = "model option '" + key + "' value '" + value +
                 "' is out of range";
      }
      return false;
    }
    *int32_knob = static_cast<int32_t>(parsed);
    return true;
  }

  float* float_knob = nullptr;
  if (key == "alpha") float_knob = &alpha;
  if (key == "dropout") float_knob = &dropout;
  if (key == "spatial_scale") float_knob = &spatial_scale;
  if (float_knob != nullptr) {
    float parsed = 0.0f;
    if (!ParseFloat(value, &parsed) || parsed < 0.0f) {
      return fail("non-numeric or negative");
    }
    *float_knob = parsed;
    return true;
  }

  bool* bool_knob = nullptr;
  if (key == "use_quadtree") bool_knob = &use_quadtree;
  if (key == "use_two_step") bool_knob = &use_two_step;
  if (key == "use_graph") bool_knob = &use_graph;
  if (key == "use_imagery") bool_knob = &use_imagery;
  if (key == "use_st_encoder") bool_knob = &use_st_encoder;
  if (key == "use_category") bool_knob = &use_category;
  if (bool_knob != nullptr) {
    bool parsed = false;
    if (!ParseBool(value, &parsed)) return fail("non-boolean");
    *bool_knob = parsed;
    return true;
  }

  if (error != nullptr) {
    *error = "unknown model option '" + key + "' (known: " + kKnownKeys + ")";
  }
  return false;
}

bool ModelOptions::FromKeyValues(const std::map<std::string, std::string>& kv,
                                 ModelOptions* out, std::string* error) {
  ModelOptions options;
  for (const auto& [key, value] : kv) {
    if (!options.Set(key, value, error)) return false;
  }
  *out = options;
  return true;
}

std::map<std::string, std::string> ModelOptions::ToKeyValues() const {
  auto bool_str = [](bool b) { return std::string(b ? "true" : "false"); };
  return {{"dm", std::to_string(dm)},
          {"seed", std::to_string(seed)},
          {"image_resolution", std::to_string(image_resolution)},
          {"num_fusion_layers", std::to_string(num_fusion_layers)},
          {"num_hgat_layers", std::to_string(num_hgat_layers)},
          {"max_seq_len", std::to_string(max_seq_len)},
          {"top_k_tiles", std::to_string(top_k_tiles)},
          {"grid_cells_per_side", std::to_string(grid_cells_per_side)},
          {"alpha", FloatToString(alpha)},
          {"dropout", FloatToString(dropout)},
          {"spatial_scale", FloatToString(spatial_scale)},
          {"use_quadtree", bool_str(use_quadtree)},
          {"use_two_step", bool_str(use_two_step)},
          {"use_graph", bool_str(use_graph)},
          {"use_imagery", bool_str(use_imagery)},
          {"use_st_encoder", bool_str(use_st_encoder)},
          {"use_category", bool_str(use_category)}};
}

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<NextPoiModel> ModelRegistry::Create(
    const std::string& name, std::shared_ptr<const data::CityDataset> dataset,
    const ModelOptions& options) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(std::move(dataset), options);
}

bool ModelRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  return names;
}

}  // namespace tspn::eval
