// The registry implementation deliberately lives in eval/ but reaches into
// core/ and baselines/ (everything is one library; the dependency is
// link-time only): a lazy builtin-registration function avoids the
// static-initializer-in-static-library pitfall where self-registering
// translation units are dropped by the linker.

#include "eval/model_registry.h"

#include <utility>

#include "baselines/deepmove.h"
#include "baselines/graph_flashback.h"
#include "baselines/gru_model.h"
#include "baselines/hmt_grn.h"
#include "baselines/lstpm.h"
#include "baselines/markov_chain.h"
#include "baselines/sae_nad.h"
#include "baselines/stan.h"
#include "baselines/stisan.h"
#include "baselines/strnn.h"
#include "core/tspn_ra.h"

namespace tspn::eval {

namespace {

using Dataset = std::shared_ptr<const data::CityDataset>;

template <typename Model>
ModelRegistry::Factory EmbeddingBaseline() {
  return [](Dataset dataset, const ModelOptions& options) {
    return std::make_unique<Model>(std::move(dataset), options.dm,
                                   options.seed);
  };
}

void RegisterBuiltins(ModelRegistry& registry) {
  registry.Register("TSPN-RA", [](Dataset dataset, const ModelOptions& options) {
    core::TspnRaConfig config;
    config.dm = options.dm;
    config.seed = options.seed;
    config.image_resolution = options.image_resolution;
    config.top_k_tiles = dataset->profile().top_k_tiles;
    return std::make_unique<core::TspnRa>(std::move(dataset), config);
  });
  registry.Register("MC", [](Dataset dataset, const ModelOptions&) {
    return std::make_unique<baselines::MarkovChain>(std::move(dataset));
  });
  registry.Register("GRU", EmbeddingBaseline<baselines::GruModel>());
  registry.Register("STRNN", EmbeddingBaseline<baselines::Strnn>());
  registry.Register("DeepMove", EmbeddingBaseline<baselines::DeepMove>());
  registry.Register("LSTPM", EmbeddingBaseline<baselines::Lstpm>());
  registry.Register("STAN", EmbeddingBaseline<baselines::Stan>());
  registry.Register("SAE-NAD", EmbeddingBaseline<baselines::SaeNad>());
  registry.Register("HMT-GRN", EmbeddingBaseline<baselines::HmtGrn>());
  registry.Register("Graph-Flashback",
                    EmbeddingBaseline<baselines::GraphFlashback>());
  registry.Register("STiSAN", EmbeddingBaseline<baselines::Stisan>());
}

}  // namespace

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<NextPoiModel> ModelRegistry::Create(
    const std::string& name, std::shared_ptr<const data::CityDataset> dataset,
    const ModelOptions& options) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(std::move(dataset), options);
}

bool ModelRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  return names;
}

}  // namespace tspn::eval
