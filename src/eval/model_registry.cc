// The registry implementation deliberately lives in eval/ but reaches into
// core/ and baselines/ (everything is one library; the dependency is
// link-time only): a lazy builtin-registration function avoids the
// static-initializer-in-static-library pitfall where self-registering
// translation units are dropped by the linker.

#include "eval/model_registry.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <utility>

#include "baselines/deepmove.h"
#include "baselines/graph_flashback.h"
#include "baselines/gru_model.h"
#include "baselines/hmt_grn.h"
#include "baselines/lstpm.h"
#include "baselines/markov_chain.h"
#include "baselines/sae_nad.h"
#include "baselines/stan.h"
#include "baselines/stisan.h"
#include "baselines/strnn.h"
#include "core/tspn_ra.h"

namespace tspn::eval {

namespace {

using Dataset = std::shared_ptr<const data::CityDataset>;

template <typename Model>
ModelRegistry::Factory EmbeddingBaseline() {
  return [](Dataset dataset, const ModelOptions& options) {
    return std::make_unique<Model>(std::move(dataset), options.dm,
                                   options.seed);
  };
}

void RegisterBuiltins(ModelRegistry& registry) {
  registry.Register("TSPN-RA", [](Dataset dataset, const ModelOptions& options) {
    core::TspnRaConfig config;
    config.dm = options.dm;
    config.seed = options.seed;
    config.image_resolution = options.image_resolution;
    config.top_k_tiles = dataset->profile().top_k_tiles;
    return std::make_unique<core::TspnRa>(std::move(dataset), config);
  });
  registry.Register("MC", [](Dataset dataset, const ModelOptions&) {
    return std::make_unique<baselines::MarkovChain>(std::move(dataset));
  });
  registry.Register("GRU", EmbeddingBaseline<baselines::GruModel>());
  registry.Register("STRNN", EmbeddingBaseline<baselines::Strnn>());
  registry.Register("DeepMove", EmbeddingBaseline<baselines::DeepMove>());
  registry.Register("LSTPM", EmbeddingBaseline<baselines::Lstpm>());
  registry.Register("STAN", EmbeddingBaseline<baselines::Stan>());
  registry.Register("SAE-NAD", EmbeddingBaseline<baselines::SaeNad>());
  registry.Register("HMT-GRN", EmbeddingBaseline<baselines::HmtGrn>());
  registry.Register("Graph-Flashback",
                    EmbeddingBaseline<baselines::GraphFlashback>());
  registry.Register("STiSAN", EmbeddingBaseline<baselines::Stisan>());
}

/// Strict base-10 integer parse: the whole string must be consumed.
bool ParseInt64(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

/// Unsigned variant for the seed knob: ToKeyValues emits the full uint64
/// range, so FromKeyValues must accept it (round-trip contract).
bool ParseUint64(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

}  // namespace

bool ModelOptions::Set(const std::string& key, const std::string& value,
                       std::string* error) {
  if (key == "seed") {
    // Seed spans the full uint64 range ToKeyValues can emit.
    uint64_t parsed = 0;
    if (!ParseUint64(value, &parsed)) {
      if (error != nullptr) {
        *error = "model option 'seed' has non-integer or negative value '" +
                 value + "'";
      }
      return false;
    }
    seed = parsed;
    return true;
  }
  if (key == "dm" || key == "image_resolution") {
    int64_t parsed = 0;
    if (!ParseInt64(value, &parsed) || parsed < 0) {
      if (error != nullptr) {
        *error = "model option '" + key + "' has non-integer or negative value '" +
                 value + "'";
      }
      return false;
    }
    if (key == "image_resolution" &&
        parsed > std::numeric_limits<int32_t>::max()) {
      // Rejected, not truncated: a silent int32 wrap would deploy a model
      // with a corrupt knob.
      if (error != nullptr) {
        *error = "model option 'image_resolution' value '" + value +
                 "' is out of range";
      }
      return false;
    }
    if (key == "dm") {
      dm = parsed;
    } else {
      image_resolution = static_cast<int32_t>(parsed);
    }
    return true;
  }
  if (error != nullptr) {
    *error = "unknown model option '" + key + "' (known: dm, seed, image_resolution)";
  }
  return false;
}

bool ModelOptions::FromKeyValues(const std::map<std::string, std::string>& kv,
                                 ModelOptions* out, std::string* error) {
  ModelOptions options;
  for (const auto& [key, value] : kv) {
    if (!options.Set(key, value, error)) return false;
  }
  *out = options;
  return true;
}

std::map<std::string, std::string> ModelOptions::ToKeyValues() const {
  return {{"dm", std::to_string(dm)},
          {"seed", std::to_string(seed)},
          {"image_resolution", std::to_string(image_resolution)}};
}

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<NextPoiModel> ModelRegistry::Create(
    const std::string& name, std::shared_ptr<const data::CityDataset> dataset,
    const ModelOptions& options) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(std::move(dataset), options);
}

bool ModelRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  return names;
}

}  // namespace tspn::eval
