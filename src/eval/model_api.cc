#include "eval/model_api.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/binary_io.h"
#include "common/check.h"

namespace tspn::eval {

namespace {

// Checkpoint container header: magic + format version + the producing
// model's name. The payload that follows is model-defined (SaveState).
constexpr uint32_t kCheckpointMagic = 0x4B435354;  // "TSCK"
constexpr uint32_t kCheckpointVersion = 1;

}  // namespace

std::vector<RecommendResponse> NextPoiModel::RecommendBatchImpl(
    common::Span<RecommendRequest> requests) const {
  std::vector<RecommendResponse> responses;
  responses.reserve(requests.size());
  for (const RecommendRequest& request : requests) {
    responses.push_back(RecommendImpl(request));
  }
  return responses;
}

std::vector<int64_t> NextPoiModel::Recommend(const data::SampleRef& sample,
                                             int64_t top_n) const {
  RecommendRequest request;
  request.sample = sample;
  request.top_n = top_n;
  return RecommendImpl(request).PoiIds();
}

std::vector<std::vector<int64_t>> NextPoiModel::RecommendBatch(
    common::Span<data::SampleRef> samples, int64_t top_n) const {
  std::vector<RecommendRequest> requests(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    requests[i].sample = samples[i];
    requests[i].top_n = top_n;
  }
  std::vector<RecommendResponse> responses =
      RecommendBatchImpl(common::Span<RecommendRequest>(requests));
  std::vector<std::vector<int64_t>> results;
  results.reserve(responses.size());
  for (const RecommendResponse& response : responses) {
    results.push_back(response.PoiIds());
  }
  return results;
}

void NextPoiModel::SaveState(std::ostream& out) const { (void)out; }

bool NextPoiModel::LoadState(std::istream& in) { return in.good(); }

void NextPoiModel::SaveCheckpoint(const std::string& path) const {
  // Atomic publish: stage the full checkpoint in a sibling temp file, fsync
  // it, then rename over the target. A crash mid-write leaves at worst a
  // stale `*.tmp` plus the intact previous checkpoint — never a torn TSCK
  // file for LoadCheckpoint to trip on.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    TSPN_CHECK(out.is_open()) << "cannot open " << tmp_path;
    common::WritePod(out, kCheckpointMagic);
    common::WritePod(out, kCheckpointVersion);
    const std::string model_name = name();
    common::WritePod(out, static_cast<uint32_t>(model_name.size()));
    out.write(model_name.data(),
              static_cast<std::streamsize>(model_name.size()));
    SaveState(out);
    out.flush();
    TSPN_CHECK(out.good()) << "checkpoint write failed: " << tmp_path;
  }
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  TSPN_CHECK(fd >= 0) << "cannot reopen " << tmp_path << " for fsync";
  const int fsync_rc = ::fsync(fd);
  ::close(fd);
  TSPN_CHECK(fsync_rc == 0) << "fsync failed: " << tmp_path;
  TSPN_CHECK(std::rename(tmp_path.c_str(), path.c_str()) == 0)
      << "rename " << tmp_path << " -> " << path << " failed";
}

bool NextPoiModel::LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  uint32_t magic = 0;
  if (!common::ReadPod(in, &magic) || magic != kCheckpointMagic) return false;
  uint32_t version = 0;
  if (!common::ReadPod(in, &version) || version != kCheckpointVersion) {
    return false;
  }
  uint32_t name_len = 0;
  if (!common::ReadPod(in, &name_len) || name_len > 256) return false;
  std::string stored_name(name_len, '\0');
  in.read(stored_name.data(), static_cast<std::streamsize>(name_len));
  if (!in.good() || stored_name != name()) return false;
  return LoadState(in);
}

}  // namespace tspn::eval
