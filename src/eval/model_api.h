#ifndef TSPN_EVAL_MODEL_API_H_
#define TSPN_EVAL_MODEL_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/trajectory.h"

namespace tspn::eval {

/// Training hyper-parameters shared by all models.
struct TrainOptions {
  int32_t epochs = 4;
  int32_t batch_size = 8;                  ///< paper default (Sec. VI-A)
  float lr = 2e-3f;
  float lr_decay = 0.95f;                  ///< multiplicative per epoch
  int64_t max_samples_per_epoch = 600;     ///< subsample cap; <=0 = all
  uint64_t seed = 1;
  bool verbose = false;
};

/// Common interface for TSPN-RA and every baseline: train on the dataset's
/// train split, then produce a ranked list of POI ids for a prediction
/// instance. Models receive the dataset at construction.
class NextPoiModel {
 public:
  virtual ~NextPoiModel() = default;

  virtual std::string name() const = 0;

  /// Trains on the dataset's kTrain samples.
  virtual void Train(const TrainOptions& options) = 0;

  /// Ranked POI ids (best first), at most `top_n` entries.
  virtual std::vector<int64_t> Recommend(const data::SampleRef& sample,
                                         int64_t top_n) const = 0;
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_MODEL_API_H_
