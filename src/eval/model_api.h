#ifndef TSPN_EVAL_MODEL_API_H_
#define TSPN_EVAL_MODEL_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "data/dataset.h"
#include "data/trajectory.h"

namespace tspn::eval {

/// Training hyper-parameters shared by all models.
struct TrainOptions {
  int32_t epochs = 4;
  int32_t batch_size = 8;                  ///< paper default (Sec. VI-A)
  float lr = 2e-3f;
  float lr_decay = 0.95f;                  ///< multiplicative per epoch
  int64_t max_samples_per_epoch = 600;     ///< subsample cap; <=0 = all
  uint64_t seed = 1;
  bool verbose = false;
};

/// Common interface for TSPN-RA and every baseline: train on the dataset's
/// train split, then produce a ranked list of POI ids for a prediction
/// instance. Models receive the dataset at construction.
///
/// Thread-safety contract: after Train() has returned, Recommend() and
/// RecommendBatch() must be safe to call concurrently from multiple threads
/// (the serving layer in src/serve/ relies on this). Implementations with
/// lazily built inference state must guard it themselves.
class NextPoiModel {
 public:
  virtual ~NextPoiModel() = default;

  virtual std::string name() const = 0;

  /// Trains on the dataset's kTrain samples.
  virtual void Train(const TrainOptions& options) = 0;

  /// Ranked POI ids (best first), at most `top_n` entries.
  virtual std::vector<int64_t> Recommend(const data::SampleRef& sample,
                                         int64_t top_n) const = 0;

  /// Ranked POI ids for a batch of prediction instances; result[i] is what
  /// Recommend(samples[i], top_n) would return. The default implementation
  /// is the serial per-query loop, so every model supports the batched API;
  /// models whose scoring amortizes across queries (TSPN-RA stacks the batch
  /// into one GEMM per prediction stage) override this with a true batched
  /// path. Overrides must preserve per-query ranking parity with
  /// Recommend().
  virtual std::vector<std::vector<int64_t>> RecommendBatch(
      common::Span<data::SampleRef> samples, int64_t top_n) const {
    std::vector<std::vector<int64_t>> results;
    results.reserve(samples.size());
    for (const data::SampleRef& sample : samples) {
      results.push_back(Recommend(sample, top_n));
    }
    return results;
  }
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_MODEL_API_H_
