#ifndef TSPN_EVAL_MODEL_API_H_
#define TSPN_EVAL_MODEL_API_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/span.h"
#include "data/dataset.h"
#include "data/trajectory.h"
#include "eval/recommend.h"

namespace tspn::eval {

/// Training hyper-parameters shared by all models.
struct TrainOptions {
  int32_t epochs = 4;
  int32_t batch_size = 8;                  ///< paper default (Sec. VI-A)
  float lr = 2e-3f;
  float lr_decay = 0.95f;                  ///< multiplicative per epoch
  int64_t max_samples_per_epoch = 600;     ///< subsample cap; <=0 = all
  uint64_t seed = 1;
  bool verbose = false;
};

/// One self-contained online training example: the user's recent history
/// (oldest first) plus the check-in to predict. Unlike data::SampleRef this
/// does not point into the dataset's stored trajectories, so the continual
/// trainer can assemble samples from live traffic that the dataset has
/// never seen.
struct OnlineSample {
  int64_t user = -1;
  std::vector<data::Checkin> history;  ///< prefix, oldest first, non-empty
  data::Checkin target;                ///< the check-in to predict
};

/// Common interface for TSPN-RA and every baseline: train on the dataset's
/// train split, then serve structured recommendation requests. Models
/// receive the dataset at construction and are created by name through
/// eval::ModelRegistry (model_registry.h).
///
/// The v2 surface is request/response-shaped: callers build a
/// RecommendRequest (sample, top_n, CandidateConstraints) and receive a
/// RecommendResponse of ranked {poi_id, score} pairs. Constraints are
/// applied *before* top-k selection, so a filtered query fills its full
/// top_n whenever enough candidates satisfy the predicate. The public
/// methods are non-virtual; implementations override the protected *Impl
/// hooks (so the deprecated id-only overloads below keep resolving on every
/// concrete model without per-class using-declarations).
///
/// Thread-safety contract: after Train() has returned, Recommend() and
/// RecommendBatch() must be safe to call concurrently from multiple threads
/// (the serving layer in src/serve/ relies on this). Implementations with
/// lazily built inference state must guard it themselves.
class NextPoiModel {
 public:
  virtual ~NextPoiModel() = default;

  virtual std::string name() const = 0;

  /// Trains on the dataset's kTrain samples.
  virtual void Train(const TrainOptions& options) = 0;

  /// Applies incremental gradient updates from streamed samples, preserving
  /// optimizer state across calls (one call = one online mini-batch sweep).
  /// Returns the number of samples actually trained on; the default is a
  /// no-op returning 0 for models without an online path. Samples whose
  /// POIs are unknown to the model must be skipped, not fatal.
  virtual int64_t TrainOnline(common::Span<const OnlineSample> samples,
                              const TrainOptions& options) {
    (void)samples;
    (void)options;
    return 0;
  }

  /// Serves one structured request: ranked {poi_id, score} pairs, best
  /// first, at most request.top_n entries, every one satisfying the
  /// request's constraints.
  RecommendResponse Recommend(const RecommendRequest& request) const {
    return RecommendImpl(request);
  }

  /// Serves a batch of requests; result[i] is what Recommend(requests[i])
  /// would return. Requests in one batch may differ in top_n and
  /// constraints — implementations must honour each request individually.
  std::vector<RecommendResponse> RecommendBatch(
      common::Span<RecommendRequest> requests) const {
    return RecommendBatchImpl(requests);
  }

  // --- Deprecated v1 surface (id-only, unconstrained) ------------------------
  // Thin shims over the scored API, kept so pre-v2 call sites compile during
  // migration. New code should build RecommendRequests.

  /// Ranked POI ids (best first), at most `top_n` entries.
  std::vector<int64_t> Recommend(const data::SampleRef& sample,
                                 int64_t top_n) const;

  /// Ranked POI ids for a batch of prediction instances sharing one top_n.
  std::vector<std::vector<int64_t>> RecommendBatch(
      common::Span<data::SampleRef> samples, int64_t top_n) const;

  // --- Checkpoints -----------------------------------------------------------

  /// Writes a versioned checkpoint: a header (magic, format version, model
  /// name) followed by the model's serialized state (nn::serialize payload
  /// for the learned models). Aborts on I/O failure.
  void SaveCheckpoint(const std::string& path) const;

  /// Restores a checkpoint written by SaveCheckpoint on an identically
  /// configured model. Returns false — leaving the model usable — when the
  /// file is missing, corrupted, from a different model, or shape-mismatched.
  bool LoadCheckpoint(const std::string& path);

 protected:
  /// The scored, constraint-aware core every model implements.
  virtual RecommendResponse RecommendImpl(const RecommendRequest& request) const = 0;

  /// Default: the serial per-query loop, so every model supports the batched
  /// API. Models whose scoring amortizes across queries (TSPN-RA stacks the
  /// batch into one GEMM per prediction stage) override this with a true
  /// batched path; overrides must preserve per-request parity with
  /// RecommendImpl().
  virtual std::vector<RecommendResponse> RecommendBatchImpl(
      common::Span<RecommendRequest> requests) const;

  /// Serializes model state after the checkpoint header. The default writes
  /// nothing (a stateless model); models with learned or counted state
  /// must override both hooks.
  virtual void SaveState(std::ostream& out) const;

  /// Restores what SaveState wrote; false on corruption or shape mismatch.
  virtual bool LoadState(std::istream& in);
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_MODEL_API_H_
