#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tspn::eval {

namespace {
constexpr int kCutoffs[3] = {5, 10, 20};
}  // namespace

int RankingMetrics::KIndex(int k) {
  for (int i = 0; i < 3; ++i) {
    if (kCutoffs[i] == k) return i;
  }
  TSPN_CHECK(false) << "unsupported cutoff " << k;
  return -1;
}

void RankingMetrics::Add(const std::vector<int64_t>& ranked, int64_t target) {
  ++count_;
  int64_t position = -1;  // 1-based rank
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == target) {
      position = static_cast<int64_t>(i) + 1;
      break;
    }
  }
  if (position < 0) return;  // miss: contributes zero
  for (int i = 0; i < 3; ++i) {
    if (position <= kCutoffs[i]) {
      hits_[i] += 1.0;
      // Single relevant item: DCG = 1/log2(1+pos), IDCG = 1.
      ndcg_[i] += 1.0 / std::log2(static_cast<double>(position) + 1.0);
    }
  }
  mrr_sum_ += 1.0 / static_cast<double>(position);
}

double RankingMetrics::RecallAt(int k) const {
  return count_ == 0 ? 0.0 : hits_[KIndex(k)] / static_cast<double>(count_);
}

double RankingMetrics::NdcgAt(int k) const {
  return count_ == 0 ? 0.0 : ndcg_[KIndex(k)] / static_cast<double>(count_);
}

double RankingMetrics::Mrr() const {
  return count_ == 0 ? 0.0 : mrr_sum_ / static_cast<double>(count_);
}

void RankingMetrics::Merge(const RankingMetrics& other) {
  count_ += other.count_;
  for (int i = 0; i < 3; ++i) {
    hits_[i] += other.hits_[i];
    ndcg_[i] += other.ndcg_[i];
  }
  mrr_sum_ += other.mrr_sum_;
}

namespace {

/// Deterministic evaluation subset shared by both evaluation drivers.
std::vector<data::SampleRef> EvalSamples(const data::CityDataset& dataset,
                                         data::Split split, int64_t max_samples,
                                         uint64_t seed) {
  std::vector<data::SampleRef> samples = dataset.Samples(split);
  if (max_samples > 0 && static_cast<int64_t>(samples.size()) > max_samples) {
    common::Rng rng(seed);
    rng.Shuffle(samples);
    samples.resize(static_cast<size_t>(max_samples));
  }
  return samples;
}

}  // namespace

RankingMetrics EvaluateModel(const NextPoiModel& model,
                             const data::CityDataset& dataset, data::Split split,
                             int64_t max_samples, uint64_t seed,
                             int64_t list_length) {
  std::vector<data::SampleRef> samples =
      EvalSamples(dataset, split, max_samples, seed);
  RankingMetrics metrics;
  RecommendRequest request;
  request.top_n = list_length;
  for (const data::SampleRef& sample : samples) {
    request.sample = sample;
    metrics.Add(model.Recommend(request).PoiIds(),
                dataset.Target(sample).poi_id);
  }
  return metrics;
}

RankingMetrics EvaluateModelBatched(const NextPoiModel& model,
                                    const data::CityDataset& dataset,
                                    data::Split split, int64_t max_samples,
                                    uint64_t seed, int64_t batch_size,
                                    int64_t list_length) {
  TSPN_CHECK_GE(batch_size, 1);
  std::vector<data::SampleRef> samples =
      EvalSamples(dataset, split, max_samples, seed);
  std::vector<RecommendRequest> requests(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    requests[i].sample = samples[i];
    requests[i].top_n = list_length;
  }
  common::Span<RecommendRequest> all(requests);
  RankingMetrics metrics;
  for (size_t begin = 0; begin < all.size();
       begin += static_cast<size_t>(batch_size)) {
    common::Span<RecommendRequest> chunk =
        all.subspan(begin, static_cast<size_t>(batch_size));
    std::vector<RecommendResponse> ranked = model.RecommendBatch(chunk);
    for (size_t i = 0; i < chunk.size(); ++i) {
      metrics.Add(ranked[i].PoiIds(), dataset.Target(chunk[i].sample).poi_id);
    }
  }
  return metrics;
}

}  // namespace tspn::eval
