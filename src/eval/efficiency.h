#ifndef TSPN_EVAL_EFFICIENCY_H_
#define TSPN_EVAL_EFFICIENCY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "eval/model_api.h"

namespace tspn::eval {

/// Cost measurements for Table V: training wall time, inference wall time
/// over the test split, and peak live tensor bytes during training (the
/// CPU analogue of the paper's GPU memory column).
struct EfficiencyReport {
  std::string model_name;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  int64_t peak_train_bytes = 0;
  int64_t eval_samples = 0;

  /// Mean inference latency per query in milliseconds.
  double MsPerQuery() const {
    return eval_samples > 0 ? infer_seconds * 1000.0 / static_cast<double>(eval_samples)
                            : 0.0;
  }
};

/// Trains and evaluates a freshly built model under instrumentation.
/// `factory` must create an untrained model bound to `dataset`.
EfficiencyReport MeasureEfficiency(
    const std::function<std::unique_ptr<NextPoiModel>()>& factory,
    const data::CityDataset& dataset, const TrainOptions& options,
    int64_t eval_samples, uint64_t seed);

/// Renders bytes as a human-friendly "12.3 MB" string.
std::string FormatBytes(int64_t bytes);

/// Renders seconds as "mm:ss" like the paper's Table V.
std::string FormatMinSec(double seconds);

}  // namespace tspn::eval

#endif  // TSPN_EVAL_EFFICIENCY_H_
