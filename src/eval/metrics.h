#ifndef TSPN_EVAL_METRICS_H_
#define TSPN_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "eval/model_api.h"

namespace tspn::eval {

/// Accumulates Recall@K, NDCG@K (K in {5,10,20}) and MRR over ranked lists,
/// matching the paper's evaluation metrics (Sec. VI-A). A target missing from
/// the list contributes zero everywhere (index = |R_P| + 1 convention).
class RankingMetrics {
 public:
  /// Records one prediction: `ranked` is the model's list (best first).
  void Add(const std::vector<int64_t>& ranked, int64_t target);

  int64_t count() const { return count_; }
  double RecallAt(int k) const;  ///< k in {5, 10, 20}
  double NdcgAt(int k) const;    ///< k in {5, 10, 20}
  double Mrr() const;

  /// Merges another accumulator into this one.
  void Merge(const RankingMetrics& other);

 private:
  static int KIndex(int k);
  int64_t count_ = 0;
  double hits_[3] = {0, 0, 0};
  double ndcg_[3] = {0, 0, 0};
  double mrr_sum_ = 0;
};

/// Evaluates a trained model on the given split. `max_samples` caps the
/// number of evaluation points (<=0 = all), subsampled deterministically.
/// Lists of length `list_length` are requested from the model (>= 20 so all
/// metrics are computable).
RankingMetrics EvaluateModel(const NextPoiModel& model,
                             const data::CityDataset& dataset, data::Split split,
                             int64_t max_samples, uint64_t seed,
                             int64_t list_length = 50);

/// Batched counterpart of EvaluateModel: identical sample selection and
/// metrics, but the model is queried through RecommendBatch() in chunks of
/// `batch_size` — the production-shaped path where many queries share one
/// GEMM per prediction stage. With a parity-preserving RecommendBatch the
/// resulting metrics equal EvaluateModel's exactly.
RankingMetrics EvaluateModelBatched(const NextPoiModel& model,
                                    const data::CityDataset& dataset,
                                    data::Split split, int64_t max_samples,
                                    uint64_t seed, int64_t batch_size,
                                    int64_t list_length = 50);

}  // namespace tspn::eval

#endif  // TSPN_EVAL_METRICS_H_
