#include "eval/cold_start.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "data/poi.h"

namespace tspn::eval {

ColdStartPriors::Options ColdStartPriors::Options::FromEnv() {
  Options options;
  options.tau_km = common::EnvDouble("TSPN_COLDSTART_TAU_KM", options.tau_km);
  return options;
}

ColdStartPriors::ColdStartPriors(
    std::shared_ptr<const data::CityDataset> dataset, Options options)
    : dataset_(std::move(dataset)),
      options_(options),
      density_grid_(dataset_->profile().bbox, options.grid_cells_per_side),
      day_part_totals_(data::kNumDayParts, 0),
      tile_visits_(static_cast<size_t>(density_grid_.NumTiles()), 0) {
  TSPN_CHECK_GT(options_.tau_km, 0.0);
}

bool ColdStartPriors::AddPoi(int64_t poi_id, const geo::GeoPoint& loc,
                             int32_t category) {
  if (poi_id >= 0 && poi_id < static_cast<int64_t>(dataset_->pois().size())) {
    return false;  // not cold: the dataset (and the model) know this id
  }
  std::lock_guard<std::mutex> lock(mutex_);
  cold_pois_.emplace(poi_id, ColdPoi{loc, category});
  return true;
}

void ColdStartPriors::RecordVisit(const geo::GeoPoint& loc, int32_t category,
                                  int64_t timestamp) {
  const int day_part = static_cast<int>(data::DayPartOf(timestamp));
  const int64_t tile = density_grid_.TileOf(loc);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] =
      category_visits_.try_emplace(category, data::kNumDayParts, 0);
  ++it->second[static_cast<size_t>(day_part)];
  ++day_part_totals_[static_cast<size_t>(day_part)];
  if (tile >= 0 && tile < static_cast<int64_t>(tile_visits_.size())) {
    max_tile_visits_ =
        std::max(max_tile_visits_, ++tile_visits_[static_cast<size_t>(tile)]);
  }
}

int64_t ColdStartPriors::NumColdPois() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(cold_pois_.size());
}

bool ColdStartPriors::Contains(int64_t poi_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cold_pois_.count(poi_id) > 0;
}

double ColdStartPriors::ScoreLocked(const ColdPoi& poi,
                                    const geo::GeoPoint& from,
                                    int64_t timestamp) const {
  const double proximity =
      std::exp(-geo::HaversineKm(from, poi.loc) / options_.tau_km);
  // Category-time affinity in [0.5, 1.5]: the category's share of all
  // visits observed in this day-part, centred so an unobserved category
  // still scores (new POIs should not be starved by empty statistics).
  const int day_part = static_cast<int>(data::DayPartOf(timestamp));
  double share = 0.0;
  auto it = category_visits_.find(poi.category);
  if (it != category_visits_.end() &&
      day_part_totals_[static_cast<size_t>(day_part)] > 0) {
    share = static_cast<double>(it->second[static_cast<size_t>(day_part)]) /
            static_cast<double>(day_part_totals_[static_cast<size_t>(day_part)]);
  }
  const double affinity = 0.5 + share;
  // Local density in [0.5, 1.0]: visit mass of the POI's grid cell relative
  // to the busiest cell.
  double density = 0.5;
  const int64_t tile = density_grid_.TileOf(poi.loc);
  if (max_tile_visits_ > 0 && tile >= 0 &&
      tile < static_cast<int64_t>(tile_visits_.size())) {
    density = 0.5 + 0.5 * static_cast<double>(
                              tile_visits_[static_cast<size_t>(tile)]) /
                        static_cast<double>(max_tile_visits_);
  }
  return proximity * affinity * density;
}

double ColdStartPriors::Score(int64_t poi_id, const geo::GeoPoint& from,
                              int64_t timestamp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cold_pois_.find(poi_id);
  if (it == cold_pois_.end()) return 0.0;
  return ScoreLocked(it->second, from, timestamp);
}

int64_t ColdStartPriors::Augment(const geo::GeoPoint& from, int64_t timestamp,
                                 int64_t top_n,
                                 RecommendResponse* response) const {
  if (static_cast<int64_t>(response->items.size()) >= top_n) return 0;
  struct Scored {
    int64_t poi_id;
    double prior;
  };
  std::vector<Scored> scored;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scored.reserve(cold_pois_.size());
    for (const auto& [poi_id, poi] : cold_pois_) {
      scored.push_back({poi_id, ScoreLocked(poi, from, timestamp)});
    }
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.prior != b.prior) return a.prior > b.prior;
    return a.poi_id < b.poi_id;
  });
  // Band placement: every cold item scores strictly below the model's worst
  // ranked item. prior / (1 + prior) maps (0, inf) into (0, 1), keeping the
  // cold items' relative order inside a band of width < 1 under the floor.
  const float floor = response->items.empty()
                          ? 0.0f
                          : response->items.back().score;
  int64_t added = 0;
  for (const Scored& entry : scored) {
    if (static_cast<int64_t>(response->items.size()) >= top_n) break;
    ScoredPoi item;
    item.poi_id = entry.poi_id;
    item.score = floor - 1.0f +
                 static_cast<float>(entry.prior / (1.0 + entry.prior));
    item.tile_index = -1;
    response->items.push_back(item);
    ++added;
  }
  return added;
}

}  // namespace tspn::eval
