#ifndef TSPN_EVAL_COLD_START_H_
#define TSPN_EVAL_COLD_START_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "eval/recommend.h"
#include "geo/geometry.h"
#include "spatial/grid_index.h"

namespace tspn::eval {

/// Priors for POIs that first appear mid-stream — after the serving model's
/// embedding tables were shaped — and are therefore unknown to the model
/// and silently unrankable (the "Forecasting Unseen POI Visits" direction).
/// A cold POI is scored from context instead of learned embeddings:
///
///   prior(p | from, t) = proximity * category-time affinity * local density
///
/// where proximity is an exponential decay exp(-d_km / tau) from the user's
/// reference location, the affinity is the visit share of p's category in
/// the current day-part (accumulated from the observed stream), and density
/// is the grid-cell visit mass around p (people go where people go).
/// Augment() blends cold POIs into a ranked response *strictly below* every
/// model-ranked item — a prior may surface an unseen POI, never displace a
/// learned ranking.
///
/// Thread-safe: the trainer records visits while serving-side callers score.
///
/// Env knob (Options::FromEnv): TSPN_COLDSTART_TAU_KM — proximity decay
/// length in km (1.5).
class ColdStartPriors {
 public:
  struct Options {
    double tau_km = 1.5;
    int32_t grid_cells_per_side = 16;

    static Options FromEnv();
  };

  ColdStartPriors(std::shared_ptr<const data::CityDataset> dataset,
                  Options options);

  /// Registers a POI the dataset does not know. Idempotent per id; ids that
  /// collide with dataset POIs are rejected (false).
  bool AddPoi(int64_t poi_id, const geo::GeoPoint& loc, int32_t category);

  /// Records one observed visit (any POI, known or cold) into the
  /// category-time and spatial-density statistics.
  void RecordVisit(const geo::GeoPoint& loc, int32_t category,
                   int64_t timestamp);

  int64_t NumColdPois() const;
  bool Contains(int64_t poi_id) const;

  /// Prior score of a registered cold POI given the user's last location
  /// and the query time; 0 for unregistered ids.
  double Score(int64_t poi_id, const geo::GeoPoint& from,
               int64_t timestamp) const;

  /// Appends cold POIs (prior-ordered, best first) to the response until it
  /// holds `top_n` items, each scored into the band strictly below the
  /// model's worst-ranked item. Returns how many were added.
  int64_t Augment(const geo::GeoPoint& from, int64_t timestamp, int64_t top_n,
                  RecommendResponse* response) const;

 private:
  struct ColdPoi {
    geo::GeoPoint loc;
    int32_t category = 0;
  };

  double ScoreLocked(const ColdPoi& poi, const geo::GeoPoint& from,
                     int64_t timestamp) const;

  std::shared_ptr<const data::CityDataset> dataset_;
  Options options_;
  spatial::GridIndex density_grid_;

  mutable std::mutex mutex_;
  std::unordered_map<int64_t, ColdPoi> cold_pois_;
  /// visits[category][day_part] and the per-day-part totals.
  std::unordered_map<int32_t, std::vector<int64_t>> category_visits_;
  std::vector<int64_t> day_part_totals_;
  std::vector<int64_t> tile_visits_;  ///< density mass per grid cell
  int64_t max_tile_visits_ = 0;
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_COLD_START_H_
