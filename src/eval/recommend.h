#ifndef TSPN_EVAL_RECOMMEND_H_
#define TSPN_EVAL_RECOMMEND_H_

#include <cstdint>
#include <vector>

#include "data/trajectory.h"
#include "geo/geometry.h"

namespace tspn::eval {

/// Candidate filters applied *before* top-k selection, so a constrained
/// query still fills its full top_n whenever enough candidates satisfy the
/// predicate (TSPN-RA widens its stage-1 tile screen until they do).
/// Default-constructed constraints are inactive and leave rankings
/// identical to an unconstrained query.
struct CandidateConstraints {
  /// Geo fence: keep POIs within `geo_radius_km` of `geo_center`
  /// (great-circle distance). radius <= 0 disables the fence.
  geo::GeoPoint geo_center;
  double geo_radius_km = 0.0;

  /// Category allow-list (empty = every category allowed) and block-list.
  /// A category on both lists is blocked.
  std::vector<int32_t> allowed_categories;
  std::vector<int32_t> blocked_categories;

  /// Drop POIs already visited in the sample's observed prefix
  /// (novelty-seeking queries).
  bool exclude_visited = false;

  /// Open-time window: keep POIs whose category's day-part visiting
  /// affinity at this timestamp is >= `min_open_weight` (see
  /// data::CategoryInfo::time_weights). open_at < 0 disables.
  int64_t open_at = -1;
  double min_open_weight = 0.5;

  bool Active() const {
    return geo_radius_km > 0.0 || !allowed_categories.empty() ||
           !blocked_categories.empty() || exclude_visited || open_at >= 0;
  }
};

/// A structured recommendation query: which prediction instance to serve,
/// how many POIs to return, and the candidate constraints to apply.
struct RecommendRequest {
  data::SampleRef sample;
  int64_t top_n = 10;
  CandidateConstraints constraints;

  /// Upper bound on the stage-1 tile screen, constraint-driven widening
  /// included; 0 (the default) leaves the screen unbounded. Not a wire
  /// field: the serving gateway sets it while an endpoint is degraded under
  /// overload, trading constrained-recall for bounded per-request work
  /// (docs/serving.md "Graceful degradation"). A capped screen may return
  /// fewer than top_n items for a heavily constrained query.
  int64_t max_tiles_screened = 0;
};

/// One ranked entry of a RecommendResponse.
struct ScoredPoi {
  int64_t poi_id = 0;
  /// The model's native ranking score (cosine similarity for TSPN-RA —
  /// with the gamma-weighted stage-1 tile prior fused in — raw logits for
  /// the baselines). Never comparable across models; the item order is the
  /// authoritative ranking — models with tiered rankings (HMT-GRN's beam,
  /// then its global back-fill) emit tier-local score scales, so consumers
  /// must not re-sort a response by score.
  float score = 0.0f;
  /// Dense candidate-tile index whose stage-1 screen produced this POI
  /// (TSPN-RA's two-step pipeline); -1 for single-stage models.
  int64_t tile_index = -1;
};

/// Ranked scored recommendations, best first, at most `top_n` entries.
struct RecommendResponse {
  std::vector<ScoredPoi> items;
  /// 1 = single-stage scoring over the POI vocabulary; 2 = the stage-1 tile
  /// screen ran before POI ranking (TSPN-RA with use_two_step).
  int32_t stages_used = 1;
  /// Stage-1 tiles kept by the screen, after any constraint-driven
  /// widening; 0 for single-stage models.
  int64_t tiles_screened = 0;

  /// The ranked POI ids alone — what the deprecated v1 API returned.
  std::vector<int64_t> PoiIds() const {
    std::vector<int64_t> ids;
    ids.reserve(items.size());
    for (const ScoredPoi& item : items) ids.push_back(item.poi_id);
    return ids;
  }
};

}  // namespace tspn::eval

#endif  // TSPN_EVAL_RECOMMEND_H_
