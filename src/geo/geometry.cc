#include "geo/geometry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tspn::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = a.lat * kDegToRad, lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlon = (b.lon - a.lon) * kDegToRad;
  double s = std::sin(dlat / 2.0), t = std::sin(dlon / 2.0);
  double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

double EquirectangularKm(const GeoPoint& a, const GeoPoint& b) {
  double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  double x = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  double y = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusKm * std::sqrt(x * x + y * y);
}

BoundingBox BoundingBox::Quadrant(int index) const {
  TSPN_CHECK_GE(index, 0);
  TSPN_CHECK_LT(index, 4);
  double mid_lat = 0.5 * (min_lat + max_lat);
  double mid_lon = 0.5 * (min_lon + max_lon);
  bool north = (index & 2) != 0;
  bool east = (index & 1) != 0;
  return BoundingBox{north ? mid_lat : min_lat, east ? mid_lon : min_lon,
                     north ? max_lat : mid_lat, east ? max_lon : mid_lon};
}

double BoundingBox::AreaKm2() const {
  GeoPoint sw{min_lat, min_lon};
  GeoPoint se{min_lat, max_lon};
  GeoPoint nw{max_lat, min_lon};
  return EquirectangularKm(sw, se) * EquirectangularKm(sw, nw);
}

void BoundingBox::Normalize(const GeoPoint& p, double* x, double* y) const {
  double lon_span = std::max(LonSpan(), 1e-12);
  double lat_span = std::max(LatSpan(), 1e-12);
  *x = std::clamp((p.lon - min_lon) / lon_span, 0.0, 1.0);
  *y = std::clamp((p.lat - min_lat) / lat_span, 0.0, 1.0);
}

GeoPoint BoundingBox::Clamp(const GeoPoint& p) const {
  GeoPoint out = p;
  out.lat = std::clamp(out.lat, min_lat, std::nextafter(max_lat, min_lat));
  out.lon = std::clamp(out.lon, min_lon, std::nextafter(max_lon, min_lon));
  return out;
}

GeoPoint Lerp(const GeoPoint& a, const GeoPoint& b, double t) {
  return {a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t};
}

double MinDistanceKm(const BoundingBox& box, const GeoPoint& p) {
  // The nearest point of an axis-aligned lat/lon rectangle is the point
  // clamped into it (per-axis independence holds at city scales).
  GeoPoint nearest{std::clamp(p.lat, box.min_lat, box.max_lat),
                   std::clamp(p.lon, box.min_lon, box.max_lon)};
  return HaversineKm(nearest, p);
}

double MaxCornerDistanceKm(const BoundingBox& box, const GeoPoint& p) {
  double best = 0.0;
  for (double lat : {box.min_lat, box.max_lat}) {
    for (double lon : {box.min_lon, box.max_lon}) {
      best = std::max(best, HaversineKm({lat, lon}, p));
    }
  }
  return best;
}

}  // namespace tspn::geo
