#ifndef TSPN_GEO_GEOMETRY_H_
#define TSPN_GEO_GEOMETRY_H_

#include <cstdint>

namespace tspn::geo {

/// A WGS84-style coordinate in degrees. Synthetic cities use the same
/// convention so distances come out in kilometres.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometres (haversine formula).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Fast equirectangular-approximation distance in kilometres; accurate for
/// city-scale separations and ~5x cheaper than haversine.
double EquirectangularKm(const GeoPoint& a, const GeoPoint& b);

/// Axis-aligned lat/lon rectangle; min corner inclusive, max exclusive for
/// point-assignment purposes so tilings partition space without overlap.
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  bool Contains(const GeoPoint& p) const {
    return p.lat >= min_lat && p.lat < max_lat && p.lon >= min_lon && p.lon < max_lon;
  }

  GeoPoint Center() const {
    return {0.5 * (min_lat + max_lat), 0.5 * (min_lon + max_lon)};
  }

  double LatSpan() const { return max_lat - min_lat; }
  double LonSpan() const { return max_lon - min_lon; }

  /// Quadrant sub-box: 0=SW, 1=SE, 2=NW, 3=NE.
  BoundingBox Quadrant(int index) const;

  /// Approximate area in km^2 (equirectangular).
  double AreaKm2() const;

  /// Maps a contained point to [0,1)^2 as (x=lon fraction, y=lat fraction).
  /// Out-of-box points are clamped.
  void Normalize(const GeoPoint& p, double* x, double* y) const;

  /// Clamps a point into the half-open box.
  GeoPoint Clamp(const GeoPoint& p) const;
};

/// Linear interpolation between two points.
GeoPoint Lerp(const GeoPoint& a, const GeoPoint& b, double t);

/// Great-circle distance from `p` to the nearest point of `box`; 0 when the
/// point lies inside. Used for circle-vs-tile intersection tests.
double MinDistanceKm(const BoundingBox& box, const GeoPoint& p);

/// Great-circle distance from `p` to the farthest corner of `box` — an upper
/// bound on the distance to any point of the box at city scales.
double MaxCornerDistanceKm(const BoundingBox& box, const GeoPoint& p);

}  // namespace tspn::geo

#endif  // TSPN_GEO_GEOMETRY_H_
