#include "plan/itinerary.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/env.h"
#include "eval/constraints.h"
#include "geo/geometry.h"
#include "roadnet/tile_adjacency.h"
#include "spatial/quadtree.h"

namespace tspn::plan {

namespace {

/// Departure timestamp of the trip: the request's, or the last observed
/// check-in's when unset. Callers have validated the sample.
int64_t EffectiveStartTime(const ItineraryRequest& request,
                           const data::CityDataset& dataset) {
  if (request.start_time >= 0) return request.start_time;
  const data::Trajectory& traj = dataset.trajectory(request.start);
  return traj.checkins[static_cast<size_t>(request.start.prefix_len) - 1]
      .timestamp;
}

/// The clock, in whole seconds: hour offsets quantize through llround so
/// the open-hour day part a step lands in is a deterministic function of
/// the plan, immune to float printing/rounding differences.
int64_t ClockTimestamp(int64_t start_time, double offset_hours) {
  return start_time + static_cast<int64_t>(std::llround(offset_hours * 3600.0));
}

/// A partial itinerary on the search frontier.
struct Node {
  std::vector<ItineraryStop> stops;
  double clock_hours = 0.0;  ///< departure time from `loc`, hours from T0
  geo::GeoPoint loc;
  int64_t last_poi = -1;  ///< POI at `loc` (the anchor for the root)
  double total_score = 0.0;
  double total_km = 0.0;
};

/// Strict-weak order for plans and nodes: score descending, then the stop
/// sequence ascending (lexicographic by POI id, shorter prefix first) so
/// equal-score plans rank bit-deterministically.
bool StopsLess(const std::vector<ItineraryStop>& a,
               const std::vector<ItineraryStop>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i].poi_id != b[i].poi_id) return a[i].poi_id < b[i].poi_id;
  }
  return a.size() < b.size();
}

bool BetterNode(const Node& a, const Node& b) {
  if (a.total_score != b.total_score) return a.total_score > b.total_score;
  return StopsLess(a.stops, b.stops);
}

bool BetterPlan(const ItineraryPlan& a, const ItineraryPlan& b) {
  if (a.total_score != b.total_score) return a.total_score > b.total_score;
  return StopsLess(a.stops, b.stops);
}

}  // namespace

PlannerOptions PlannerOptions::FromEnv() {
  PlannerOptions options;
  options.beam_width = static_cast<int32_t>(std::clamp<int64_t>(
      common::EnvInt("TSPN_PLAN_BEAM_WIDTH", options.beam_width), 1, 256));
  options.candidates_per_expansion = static_cast<int32_t>(std::clamp<int64_t>(
      common::EnvInt("TSPN_PLAN_CANDIDATES", options.candidates_per_expansion),
      1, 1024));
  options.max_plans = static_cast<int32_t>(std::clamp<int64_t>(
      common::EnvInt("TSPN_PLAN_MAX_PLANS", options.max_plans), 1, 64));
  options.adjacency_hops = static_cast<int32_t>(std::clamp<int64_t>(
      common::EnvInt("TSPN_PLAN_ADJACENCY_HOPS", options.adjacency_hops), 0,
      64));
  options.mcts_iterations = static_cast<int32_t>(std::clamp<int64_t>(
      common::EnvInt("TSPN_PLAN_MCTS_ITERS", options.mcts_iterations), 1,
      1 << 16));
  options.mcts_exploration = std::clamp(
      common::EnvDouble("TSPN_PLAN_MCTS_EXPLORATION", options.mcts_exploration),
      0.0, 1e6);
  options.serial_reference =
      common::EnvInt("TSPN_PLAN_SERIAL_REFERENCE", 0) != 0;
  return options;
}

/// Everything one Plan() call carries through the search: the request, the
/// resolved clock/geometry, the evaluator for exact open-hour checks, the
/// scoring seam, and the running terminal-plan set.
struct ItineraryPlanner::SearchContext {
  const ItineraryRequest& request;
  const data::CityDataset& dataset;
  const PlannerOptions& options;
  const BatchScoreFn& scorer;

  int64_t start_time = 0;
  geo::GeoPoint start_loc;
  int64_t start_poi = -1;

  /// Constraints the exact arrival-time check evaluates (open_at forced
  /// onto the trip clock when the request enforces open hours, so the
  /// evaluator builds its day-part masks). Owned here: the evaluator
  /// keeps a reference.
  eval::CandidateConstraints eval_constraints;
  std::unique_ptr<eval::ConstraintEvaluator> evaluator;

  std::vector<ItineraryPlan> terminals;
  int64_t expansions = 0;
  int64_t rollouts_scored = 0;

  /// One frontier wave of step scoring. Counts one expansion regardless of
  /// how the wave is scored, so the batched and serial paths report
  /// identical counters (their responses are parity-pinned).
  std::vector<eval::RecommendResponse> Score(
      std::vector<eval::RecommendRequest>& requests) {
    ++expansions;
    rollouts_scored += static_cast<int64_t>(requests.size());
    if (!options.serial_reference) {
      return scorer(common::Span<eval::RecommendRequest>(requests));
    }
    std::vector<eval::RecommendResponse> responses;
    responses.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      std::vector<eval::RecommendResponse> one =
          scorer(common::Span<eval::RecommendRequest>(&requests[i], 1));
      responses.push_back(one.empty() ? eval::RecommendResponse{}
                                      : std::move(one[0]));
    }
    return responses;
  }

  /// The step request for a node whose planned prefix is `node.stops`.
  eval::RecommendRequest StepRequest(const Node& node) const {
    ItineraryPlan prefix;
    prefix.stops = node.stops;  // only stops matter for the request
    return ItineraryPlanner::StepRequestFor(request, prefix, node.stops.size(),
                                            dataset, options);
  }

  /// Leaf tiles within `hops` leaf-adjacency hops of `from_leaf` (BFS over
  /// the road-induced adjacency), for the optional locality gate.
  std::unordered_set<int64_t> ReachableLeaves(int64_t from_leaf,
                                              int32_t hops) const {
    std::unordered_set<int64_t> seen{from_leaf};
    std::deque<std::pair<int64_t, int32_t>> frontier{{from_leaf, 0}};
    const roadnet::TileAdjacency& adjacency = dataset.leaf_adjacency();
    while (!frontier.empty()) {
      auto [leaf, depth] = frontier.front();
      frontier.pop_front();
      if (depth >= hops) continue;
      for (int64_t next : adjacency.Neighbors(leaf)) {
        if (seen.insert(next).second) frontier.emplace_back(next, depth + 1);
      }
    }
    return seen;
  }

  /// Feasible children of `node`, in the model's ranked candidate order,
  /// capped at candidates_per_expansion.
  std::vector<Node> Children(const Node& node,
                             const eval::RecommendResponse& response) const {
    std::vector<Node> children;
    std::unordered_set<int64_t> reachable;
    if (options.adjacency_hops > 0) {
      reachable = ReachableLeaves(dataset.LeafNodeOfPoi(node.last_poi),
                                  options.adjacency_hops);
    }
    for (const eval::ScoredPoi& item : response.items) {
      if (static_cast<int32_t>(children.size()) >=
          options.candidates_per_expansion) {
        break;
      }
      const int64_t poi_id = item.poi_id;
      if (poi_id == start_poi) continue;  // a trip never revisits its anchor
      bool repeated = false;
      int32_t category_count = 0;
      const int32_t category = dataset.poi(poi_id).category;
      for (const ItineraryStop& stop : node.stops) {
        if (stop.poi_id == poi_id) {
          repeated = true;
          break;
        }
        if (dataset.poi(stop.poi_id).category == category) ++category_count;
      }
      if (repeated) continue;
      if (request.max_stops_per_category > 0 &&
          category_count >= request.max_stops_per_category) {
        continue;
      }
      if (options.adjacency_hops > 0 &&
          reachable.count(dataset.LeafNodeOfPoi(poi_id)) == 0) {
        continue;
      }

      const geo::GeoPoint& loc = dataset.poi(poi_id).loc;
      const double travel_km = geo::HaversineKm(node.loc, loc);
      const double arrive = node.clock_hours +
                            travel_km / request.travel_speed_kmh;
      const double depart = arrive + request.dwell_hours;
      double completion = depart;
      if (request.return_to_start) {
        completion +=
            geo::HaversineKm(loc, start_loc) / request.travel_speed_kmh;
      }
      if (completion > request.time_budget_hours) continue;
      if (request.enforce_open_hours && evaluator != nullptr &&
          !evaluator->AllowsAt(poi_id,
                               ClockTimestamp(start_time, arrive))) {
        continue;
      }

      Node child;
      child.stops = node.stops;
      child.stops.push_back({poi_id, item.score, arrive, depart, travel_km});
      child.clock_hours = depart;
      child.loc = loc;
      child.last_poi = poi_id;
      child.total_score = node.total_score + static_cast<double>(item.score);
      child.total_km = node.total_km + travel_km;
      children.push_back(std::move(child));
    }
    return children;
  }

  /// Seals a node into a plan, adding the return leg when fenced.
  ItineraryPlan Finish(const Node& node) const {
    ItineraryPlan plan;
    plan.stops = node.stops;
    plan.total_score = node.total_score;
    plan.total_hours = node.clock_hours;
    plan.total_km = node.total_km;
    if (request.return_to_start && !node.stops.empty()) {
      const double back_km = geo::HaversineKm(node.loc, start_loc);
      plan.total_km += back_km;
      plan.total_hours += back_km / request.travel_speed_kmh;
    }
    return plan;
  }

  void RecordTerminal(const Node& node) {
    if (node.stops.empty()) return;
    terminals.push_back(Finish(node));
  }
};

ItineraryPlanner::ItineraryPlanner(const eval::NextPoiModel& model,
                                   std::shared_ptr<const data::CityDataset> dataset,
                                   PlannerOptions options)
    : model_(model), dataset_(std::move(dataset)), options_(options) {
  scorer_ = [this](common::Span<eval::RecommendRequest> requests) {
    return model_.RecommendBatch(requests);
  };
}

void ItineraryPlanner::set_scorer(BatchScoreFn scorer) {
  if (scorer) scorer_ = std::move(scorer);
}

bool ItineraryPlanner::Validate(const ItineraryRequest& request,
                                const data::CityDataset& dataset,
                                std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = "invalid request: " + why;
    return false;
  };
  if (request.k_stops < 1 || request.k_stops > kMaxItineraryStops) {
    return fail("k_stops out of range");
  }
  if (!(request.time_budget_hours > 0.0) ||
      !std::isfinite(request.time_budget_hours)) {
    return fail("time_budget_hours must be positive");
  }
  if (!(request.travel_speed_kmh > 0.0) ||
      !std::isfinite(request.travel_speed_kmh)) {
    return fail("travel_speed_kmh must be positive");
  }
  if (request.dwell_hours < 0.0 || !std::isfinite(request.dwell_hours)) {
    return fail("dwell_hours must be non-negative");
  }
  if (request.max_stops_per_category < 0) {
    return fail("max_stops_per_category must be non-negative");
  }
  if (request.mode != SearchMode::kBeam && request.mode != SearchMode::kMcts) {
    return fail("unknown search mode");
  }
  const auto& users = dataset.users();
  if (request.start.user < 0 ||
      static_cast<size_t>(request.start.user) >= users.size()) {
    return fail("start.user out of range");
  }
  const auto& trajectories =
      users[static_cast<size_t>(request.start.user)].trajectories;
  if (request.start.traj < 0 ||
      static_cast<size_t>(request.start.traj) >= trajectories.size()) {
    return fail("start.traj out of range");
  }
  const auto& checkins =
      trajectories[static_cast<size_t>(request.start.traj)].checkins;
  if (request.start.prefix_len < 1 ||
      static_cast<size_t>(request.start.prefix_len) >= checkins.size()) {
    return fail("start.prefix_len out of range");
  }
  return true;
}

eval::RecommendRequest ItineraryPlanner::StepRequestFor(
    const ItineraryRequest& request, const ItineraryPlan& plan,
    size_t step_index, const data::CityDataset& dataset,
    const PlannerOptions& options) {
  eval::RecommendRequest step;
  step.sample = request.start;
  // Over-fetch: the wire API has no no-repeat predicate, so ask for enough
  // candidates that filtering the anchor and every already-planned stop
  // still leaves a full expansion's worth.
  step.top_n = static_cast<int64_t>(options.candidates_per_expansion) +
               static_cast<int64_t>(step_index) + 1;
  step.constraints = request.constraints;
  if (request.enforce_open_hours) {
    // The model screens candidates by the day part the planner would leave
    // for them in; the exact (arrival-time) check happens at expansion via
    // ConstraintEvaluator::AllowsAt.
    const double depart_hours =
        step_index == 0 ? 0.0 : plan.stops[step_index - 1].depart_hours;
    step.constraints.open_at =
        ClockTimestamp(EffectiveStartTime(request, dataset), depart_hours);
  }
  return step;
}

void ItineraryPlanner::SearchBeam(SearchContext& ctx) const {
  std::vector<Node> frontier(1);
  frontier[0].loc = ctx.start_loc;
  frontier[0].last_poi = ctx.start_poi;
  for (int32_t depth = 0; depth < ctx.request.k_stops; ++depth) {
    std::vector<eval::RecommendRequest> requests;
    requests.reserve(frontier.size());
    for (const Node& node : frontier) requests.push_back(ctx.StepRequest(node));
    std::vector<eval::RecommendResponse> responses = ctx.Score(requests);

    std::vector<Node> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      std::vector<Node> children =
          i < responses.size() ? ctx.Children(frontier[i], responses[i])
                               : std::vector<Node>{};
      if (children.empty()) {
        ctx.RecordTerminal(frontier[i]);  // dead end: a shorter plan
        continue;
      }
      for (Node& child : children) next.push_back(std::move(child));
    }
    if (next.empty()) return;
    std::sort(next.begin(), next.end(), BetterNode);
    if (static_cast<int32_t>(next.size()) > ctx.options.beam_width) {
      next.resize(static_cast<size_t>(ctx.options.beam_width));
    }
    frontier = std::move(next);
  }
  for (const Node& node : frontier) ctx.RecordTerminal(node);
}

namespace {

/// Deterministic single-player UCT node. Children are materialized once
/// (the whole feasible candidate set, in model rank order) and memoized,
/// so repeated visits never re-query the model for the same state.
struct MctsNode {
  Node state;
  bool expanded = false;
  bool recorded = false;  ///< terminal plan already pushed to ctx
  int64_t visits = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  std::vector<std::unique_ptr<MctsNode>> children;

  bool terminal(int32_t k_stops) const {
    return (expanded && children.empty()) ||
           static_cast<int32_t>(state.stops.size()) >= k_stops;
  }
};

}  // namespace

void ItineraryPlanner::SearchMcts(SearchContext& ctx) const {
  MctsNode root;
  root.state.loc = ctx.start_loc;
  root.state.last_poi = ctx.start_poi;

  auto expand = [&ctx](MctsNode& node) {
    if (node.expanded) return;
    node.expanded = true;
    if (static_cast<int32_t>(node.state.stops.size()) >= ctx.request.k_stops) {
      return;
    }
    std::vector<eval::RecommendRequest> requests{ctx.StepRequest(node.state)};
    std::vector<eval::RecommendResponse> responses = ctx.Score(requests);
    if (responses.empty()) return;
    for (Node& child : ctx.Children(node.state, responses[0])) {
      auto mcts_child = std::make_unique<MctsNode>();
      mcts_child->state = std::move(child);
      node.children.push_back(std::move(mcts_child));
    }
  };

  const double c = ctx.options.mcts_exploration;
  for (int32_t iter = 0; iter < ctx.options.mcts_iterations; ++iter) {
    // Selection: walk UCB-best children until an unexpanded or terminal
    // node. Ties break on the lowest child index (= best model rank).
    std::vector<MctsNode*> path{&root};
    MctsNode* node = &root;
    while (node->expanded && !node->terminal(ctx.request.k_stops)) {
      MctsNode* best = nullptr;
      double best_ucb = 0.0;
      for (auto& child : node->children) {
        const double exploit =
            child->visits > 0 ? child->best_value : child->state.total_score;
        const double ucb =
            exploit + c * std::sqrt(std::log(static_cast<double>(
                                        node->visits + 1)) /
                                    static_cast<double>(child->visits + 1));
        if (best == nullptr || ucb > best_ucb) {
          best = child.get();
          best_ucb = ucb;
        }
      }
      node = best;
      path.push_back(node);
    }
    expand(*node);

    // Rollout: greedy descent along the model-best feasible child,
    // memoized in the tree (later iterations reuse every expansion).
    while (!node->terminal(ctx.request.k_stops)) {
      node = node->children[0].get();
      path.push_back(node);
      expand(*node);
    }
    if (!node->recorded) {
      node->recorded = true;
      ctx.RecordTerminal(node->state);
    }
    const double value = node->state.total_score;
    for (MctsNode* visited : path) {
      ++visited->visits;
      visited->best_value = std::max(visited->best_value, value);
    }
    if (root.terminal(ctx.request.k_stops)) break;  // nothing left to search
  }
}

bool ItineraryPlanner::Plan(const ItineraryRequest& request,
                            ItineraryResponse* out,
                            std::string* error) const {
  if (out == nullptr) {
    if (error != nullptr) *error = "invalid request: null response";
    return false;
  }
  if (!Validate(request, *dataset_, error)) return false;

  SearchContext ctx{request, *dataset_, options_, scorer_, {}, {}, {}, {}, {},
                    {}, {}, {}};
  ctx.start_time = EffectiveStartTime(request, *dataset_);
  const data::Trajectory& traj = dataset_->trajectory(request.start);
  ctx.start_poi =
      traj.checkins[static_cast<size_t>(request.start.prefix_len) - 1].poi_id;
  ctx.start_loc = dataset_->poi(ctx.start_poi).loc;
  ctx.eval_constraints = request.constraints;
  if (request.enforce_open_hours && ctx.eval_constraints.open_at < 0) {
    ctx.eval_constraints.open_at = ctx.start_time;
  }
  if (ctx.eval_constraints.Active()) {
    ctx.evaluator = std::make_unique<eval::ConstraintEvaluator>(
        *dataset_, ctx.eval_constraints, request.start);
  }

  if (request.mode == SearchMode::kMcts) {
    SearchMcts(ctx);
  } else {
    SearchBeam(ctx);
  }

  std::sort(ctx.terminals.begin(), ctx.terminals.end(), BetterPlan);
  if (static_cast<int32_t>(ctx.terminals.size()) > options_.max_plans) {
    ctx.terminals.resize(static_cast<size_t>(options_.max_plans));
  }
  out->plans = std::move(ctx.terminals);
  out->expansions = ctx.expansions;
  out->rollouts_scored = ctx.rollouts_scored;
  return true;
}

}  // namespace tspn::plan
