#ifndef TSPN_PLAN_ITINERARY_H_
#define TSPN_PLAN_ITINERARY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/span.h"
#include "data/dataset.h"
#include "eval/model_api.h"
#include "eval/recommend.h"

namespace tspn::plan {

/// How the planner searches the rollout tree (docs/itinerary.md).
enum class SearchMode : uint8_t {
  kBeam = 0,  ///< breadth-first beam over frontier expansions (default)
  kMcts = 1,  ///< deterministic single-player UCT over the same expansions
};

/// A constrained k-stop trip-planning query. The model's next-POI
/// distribution is anchored on `start` (a prediction instance, like every
/// RecommendRequest); the planner chains up to `k_stops` predictions into
/// an itinerary that is feasible under a wall-clock budget, per-stop dwell
/// time, open-hour windows, a category quota, and the request's candidate
/// constraints (geo fence, allow/block lists, exclude-visited).
struct ItineraryRequest {
  /// Prediction instance the rollout is conditioned on. The trip departs
  /// from the location of the prefix's last check-in.
  data::SampleRef start;

  int32_t k_stops = 3;  ///< stops to plan (>= 1); fewer when infeasible

  /// Wall-clock budget in hours, covering every travel leg and per-stop
  /// dwell — and the return leg when `return_to_start` is set.
  double time_budget_hours = 8.0;
  double travel_speed_kmh = 30.0;  ///< straight-line (haversine) speed
  double dwell_hours = 1.0;        ///< time spent at each stop

  /// Departure time (unix seconds); < 0 derives it from the timestamp of
  /// the prefix's last check-in. The per-stop clock advances from here.
  int64_t start_time = -1;

  /// Budget must also cover travelling back to the departure location
  /// (the "return-to-hotel" fence).
  bool return_to_start = false;

  /// At most this many stops of any one category; 0 = unlimited.
  int32_t max_stops_per_category = 0;

  /// Enforce the open-hour window at each stop's *arrival* time (category
  /// day-part weight >= constraints.min_open_weight), advancing the clock
  /// stop by stop. Off, the open-time constraint (if any) stays static at
  /// constraints.open_at, like a plain recommendation query.
  bool enforce_open_hours = false;

  /// Per-candidate filters applied at every expansion (geo fence, category
  /// allow/block, exclude-visited, static open-time window).
  eval::CandidateConstraints constraints;

  SearchMode mode = SearchMode::kBeam;
};

/// One planned stop. Times are offsets in hours from the trip's departure.
struct ItineraryStop {
  int64_t poi_id = 0;
  float model_score = 0.0f;  ///< the model's score for this step
  double arrive_hours = 0.0;
  double depart_hours = 0.0;
  double travel_km = 0.0;  ///< leg from the previous location
};

/// A feasible itinerary. `total_score` is the sum of per-stop model scores
/// accumulated in stop order (double accumulator) — re-scoring each step
/// independently reproduces it exactly.
struct ItineraryPlan {
  std::vector<ItineraryStop> stops;
  double total_score = 0.0;
  double total_hours = 0.0;  ///< includes the return leg when fenced
  double total_km = 0.0;     ///< includes the return leg when fenced
};

/// Planner output: up to PlannerOptions::max_plans feasible plans, best
/// first (total_score descending, stop sequence ascending on ties).
struct ItineraryResponse {
  std::vector<ItineraryPlan> plans;
  int64_t expansions = 0;       ///< batched scoring calls issued
  int64_t rollouts_scored = 0;  ///< individual model queries scored
};

/// Scores a batch of step requests; result[i] answers requests[i]. The
/// default scorer calls NextPoiModel::RecommendBatch directly; the gateway
/// installs one that submits through the deployment's InferenceEngine so
/// rollout batches coalesce with live traffic. Any scorer must preserve
/// per-request parity with model.Recommend (the engine and RecommendBatch
/// both do, bitwise).
using BatchScoreFn = std::function<std::vector<eval::RecommendResponse>(
    common::Span<eval::RecommendRequest>)>;

/// Planner tuning. Environment overrides (FromEnv, TSPN_PLAN_*):
///
///   TSPN_PLAN_BEAM_WIDTH        beam nodes kept per depth          (4)
///   TSPN_PLAN_CANDIDATES        model candidates per expansion     (8)
///   TSPN_PLAN_MAX_PLANS         plans returned, best first         (3)
///   TSPN_PLAN_ADJACENCY_HOPS    quadtree-tile adjacency gate: a
///                               candidate must lie within this many
///                               leaf-adjacency hops of the previous
///                               stop's leaf; 0 disables           (0)
///   TSPN_PLAN_MCTS_ITERS        UCT iterations in kMcts mode       (128)
///   TSPN_PLAN_MCTS_EXPLORATION  UCT exploration constant           (1.4)
///   TSPN_PLAN_SERIAL_REFERENCE  1 = score expansions one query at a
///                               time (the parity reference path)   (0)
struct PlannerOptions {
  int32_t beam_width = 4;
  int32_t candidates_per_expansion = 8;
  int32_t max_plans = 3;
  int32_t adjacency_hops = 0;
  int32_t mcts_iterations = 128;
  double mcts_exploration = 1.4;
  bool serial_reference = false;

  static PlannerOptions FromEnv();
};

/// Hard cap on k_stops — also the per-plan stop cap the wire codec
/// enforces on decode (serve/codec.h).
constexpr int32_t kMaxItineraryStops = 64;

/// Turns the model's next-POI distribution into constrained k-stop trips.
///
/// Search: each frontier node is a partial itinerary (stops so far + a
/// clock). Expanding a node asks the model for its top candidates — and
/// every expansion wave is ONE RecommendBatch call across the whole
/// frontier, so the engine's coalescing prices rollouts like a single
/// batched query. Feasibility (travel time via geo::HaversineKm + dwell,
/// the time budget with its optional return leg, open hours at arrival,
/// no-repeat, category quota, candidate constraints) is enforced at
/// expansion, never post-hoc: an infeasible candidate simply produces no
/// child. A node with no feasible child terminates as a (shorter) plan.
///
/// Determinism: no randomness anywhere — candidate order comes from the
/// model's ranked response, ties in plan ordering break on the stop
/// sequence, and the clock advances in whole seconds — so a fixed request
/// yields bit-identical plans across runs, and the batched and serial
/// scoring paths yield bit-identical plans (RecommendBatch is parity-
/// pinned against Recommend).
///
/// Thread-safe after construction (Plan is const and allocates per call),
/// as long as the scorer is. The model and dataset must outlive the
/// planner.
class ItineraryPlanner {
 public:
  ItineraryPlanner(const eval::NextPoiModel& model,
                   std::shared_ptr<const data::CityDataset> dataset,
                   PlannerOptions options = PlannerOptions::FromEnv());

  /// Replaces the default model.RecommendBatch scorer (see BatchScoreFn).
  void set_scorer(BatchScoreFn scorer);

  /// Plans `request`. False with *error set on an invalid request; an
  /// empty response.plans with true means the request was valid but no
  /// feasible stop exists. Blocking — bounded by the search knobs.
  bool Plan(const ItineraryRequest& request, ItineraryResponse* out,
            std::string* error = nullptr) const;

  /// Request validation shared with the serving gateway. False with
  /// *error set ("invalid request: ..." prefix) when a field is out of
  /// range for this dataset.
  static bool Validate(const ItineraryRequest& request,
                       const data::CityDataset& dataset, std::string* error);

  /// The exact RecommendRequest the planner issues to score step
  /// `step_index` of `plan` (stops [0, step_index) already planned).
  /// Exposed so tests can re-score a returned plan independently and
  /// assert each stop's model_score — and their sum — to the bit.
  static eval::RecommendRequest StepRequestFor(const ItineraryRequest& request,
                                               const ItineraryPlan& plan,
                                               size_t step_index,
                                               const data::CityDataset& dataset,
                                               const PlannerOptions& options);

  const PlannerOptions& options() const { return options_; }

 private:
  struct SearchContext;

  void SearchBeam(SearchContext& ctx) const;
  void SearchMcts(SearchContext& ctx) const;

  const eval::NextPoiModel& model_;
  std::shared_ptr<const data::CityDataset> dataset_;
  PlannerOptions options_;
  BatchScoreFn scorer_;
};

}  // namespace tspn::plan

#endif  // TSPN_PLAN_ITINERARY_H_
