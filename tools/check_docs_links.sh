#!/usr/bin/env bash
# Fails on dead relative links in README.md and docs/*.md.
#
# Checks every markdown link target that is not an external URL or a pure
# in-page anchor: the referenced path (resolved relative to the file the
# link lives in, anchors stripped) must exist. Run from anywhere; CI runs
# it on every push.
#
#   tools/check_docs_links.sh

set -u
cd "$(dirname "$0")/.."

failures=0
checked=0

check_file() {
  local md="$1"
  local dir
  dir="$(dirname "$md")"
  # Pull out every](target) occurrence; tolerates several links per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${target%%#*}"          # strip in-page anchor
    [ -z "$path" ] && continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "DEAD LINK: $md -> $target"
      failures=$((failures + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//; s/ .*$//')
}

for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  check_file "$md"
done

if [ "$failures" -gt 0 ]; then
  echo "docs link check FAILED: $failures dead link(s) of $checked checked"
  exit 1
fi
echo "docs link check OK: $checked link(s) verified"
