// Diagnostic: decomposes TSPN-RA quality on a dataset into (1) training-loss
// trajectory, (2) tile-selection accuracy, (3) candidate coverage of the
// target, (4) POI ranking quality conditioned on coverage. Not a paper
// bench — a development tool.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"

int main(int argc, char** argv) {
  using namespace tspn;
  bench::BenchSettings settings = bench::DefaultSettings();
  auto dataset = bench::MakeDataset(data::CityProfile::FoursquareNyc());
  core::TspnRaConfig config = bench::MakeTspnConfig(*dataset, settings);
  if (argc > 1) config.top_k_tiles = std::atoi(argv[1]);
  core::TspnRa model(dataset, config);
  float lr = static_cast<float>(common::EnvDouble("TSPN_DIAG_LR", 3e-3));
  eval::TrainOptions options = bench::MakeTrainOptions(settings, lr);
  options.max_samples_per_epoch = settings.train_samples * 2;
  options.verbose = true;
  model.Train(options);

  std::vector<data::SampleRef> samples = dataset->Samples(data::Split::kTest);
  common::Rng rng(settings.seed);
  rng.Shuffle(samples);
  samples.resize(std::min<size_t>(samples.size(), 150));

  for (int64_t k : {4L, 8L, 12L, 16L, 24L, 32L}) {
  double tile_hit = 0, covered = 0, hit5_covered = 0, hit5 = 0, hit5_allk = 0;
  for (const auto& sample : samples) {
    auto ranked_tiles = model.RankTiles(sample);
    int64_t target_tile = model.TargetTileIndex(sample);
    bool tile_in_k =
        std::find(ranked_tiles.begin(),
                  ranked_tiles.begin() + std::min<int64_t>(k, ranked_tiles.size()),
                  target_tile) !=
        ranked_tiles.begin() + std::min<int64_t>(k, ranked_tiles.size());
    tile_hit += tile_in_k;
    int64_t target = dataset->Target(sample).poi_id;
    auto top5 = model.RecommendWithK(sample, 5, static_cast<int32_t>(k));
    bool hit = std::find(top5.begin(), top5.end(), target) != top5.end();
    hit5 += hit;
    if (tile_in_k) {
      covered += 1;
      hit5_covered += hit;
    }
    auto top5_all = model.RecommendWithK(
        sample, 5, static_cast<int32_t>(model.NumCandidateTiles()));
    hit5_allk += std::find(top5_all.begin(), top5_all.end(), target) !=
                 top5_all.end();
  }
  double n = static_cast<double>(samples.size());
  std::printf("K=%-3lld tile_acc@K=%.3f  Recall@5=%.3f  "
              "Recall@5|covered=%.3f  Recall@5(K=all)=%.3f\n",
              static_cast<long long>(k), tile_hit / n, hit5 / n,
              covered > 0 ? hit5_covered / covered : 0.0, hit5_allk / n);
  }

  // Geometry of the learned tile embeddings: mean/min/max pairwise cosine of
  // candidate-tile rows (collapse shows up as mean ~ 1).
  nn::Tensor et = model.DebugTileEmbeddings();
  const auto& leaf_ids = model.candidate_tile_ids();
  double sum = 0, mn = 1, mx = -1;
  int64_t pairs = 0;
  int64_t dm = et.dim(1);
  for (size_t i = 0; i < leaf_ids.size(); i += 3) {
    for (size_t j = i + 1; j < leaf_ids.size(); j += 3) {
      double dot = 0;
      for (int64_t d = 0; d < dm; ++d) {
        dot += static_cast<double>(et.at(leaf_ids[i] * dm + d)) *
               et.at(leaf_ids[j] * dm + d);
      }
      sum += dot;
      mn = std::min(mn, dot);
      mx = std::max(mx, dot);
      ++pairs;
    }
  }
  std::printf("leaf-ET pairwise cosine: mean=%.3f min=%.3f max=%.3f over %lld "
              "pairs\n",
              sum / pairs, mn, mx, static_cast<long long>(pairs));
  return 0;
}
