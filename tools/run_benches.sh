#!/usr/bin/env bash
# Builds Release, runs the micro-op + Table V benches at smoke scale, and
# diffs the emitted BENCH_*.json artifacts against the committed baselines in
# bench/baselines/. Exits non-zero when a tracked latency metric regresses by
# more than the threshold.
#
# Usage: tools/run_benches.sh [--threshold X] [--update-baselines]
#   --threshold X        allowed slowdown factor per metric (default 2.0 —
#                        wall-clock metrics on shared/1-core CI boxes jitter
#                        hard; run on an otherwise idle machine, anything
#                        else contends for the only core and trips the diff)
#   --update-baselines   copy the fresh JSONs over bench/baselines/ instead
#                        of diffing
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${TSPN_BENCH_BUILD_DIR:-${REPO_ROOT}/build-bench}"
BASELINE_DIR="${REPO_ROOT}/bench/baselines"
OUT_DIR="${BUILD_DIR}/bench-json"
THRESHOLD=2.0
UPDATE=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --threshold) THRESHOLD="$2"; shift 2 ;;
    --update-baselines) UPDATE=1; shift ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target bench_micro_ops bench_table5_efficiency

mkdir -p "${OUT_DIR}"

# Smoke scale: one epoch, small sample budgets, short timing windows. The
# knobs only shrink workloads; per-op and per-query metrics stay comparable.
export TSPN_BENCH_EPOCHS="${TSPN_BENCH_EPOCHS:-1}"
export TSPN_BENCH_TRAIN_SAMPLES="${TSPN_BENCH_TRAIN_SAMPLES:-48}"
export TSPN_BENCH_EVAL_SAMPLES="${TSPN_BENCH_EVAL_SAMPLES:-40}"
export TSPN_BENCH_MICRO_MS="${TSPN_BENCH_MICRO_MS:-60}"
export TSPN_BENCH_JSON_DIR="${OUT_DIR}"

"${BUILD_DIR}/bench_micro_ops"
"${BUILD_DIR}/bench_table5_efficiency"

if [[ "${UPDATE}" == 1 ]]; then
  mkdir -p "${BASELINE_DIR}"
  cp "${OUT_DIR}"/BENCH_*.json "${BASELINE_DIR}/"
  echo "baselines updated in ${BASELINE_DIR}"
  exit 0
fi

python3 - "$THRESHOLD" "$BASELINE_DIR" "$OUT_DIR" <<'EOF'
import json, sys, os

threshold = float(sys.argv[1])
baseline_dir, out_dir = sys.argv[2], sys.argv[3]
# Lower-is-better metrics tracked for regressions.
TRACKED = ("ns_per_op", "ms_per_query", "ms_per_plan")
# Higher-is-better metrics (serving throughput): regress when the new value
# drops below baseline / threshold.
TRACKED_HIGHER = ("qps",)

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["name"]: r for r in doc.get("results", [])}

failures = []
checked = 0
for fname in sorted(os.listdir(baseline_dir)):
    if not fname.startswith("BENCH_") or not fname.endswith(".json"):
        continue
    new_path = os.path.join(out_dir, fname)
    if not os.path.exists(new_path):
        failures.append(f"{fname}: bench artifact missing from this run")
        continue
    base, new = load(os.path.join(baseline_dir, fname)), load(new_path)
    for name, row in base.items():
        if name not in new:
            failures.append(f"{fname}:{name}: result disappeared")
            continue
        for metric in TRACKED:
            if metric not in row or metric not in new[name]:
                continue
            old_v, new_v = row[metric], new[name][metric]
            checked += 1
            if old_v > 0 and new_v > old_v * threshold:
                failures.append(
                    f"{fname}:{name}: {metric} {old_v:.4g} -> {new_v:.4g} "
                    f"({new_v / old_v:.2f}x, threshold {threshold}x)")
        for metric in TRACKED_HIGHER:
            if metric not in row or metric not in new[name]:
                continue
            old_v, new_v = row[metric], new[name][metric]
            checked += 1
            if old_v > 0 and new_v < old_v / threshold:
                failures.append(
                    f"{fname}:{name}: {metric} {old_v:.4g} -> {new_v:.4g} "
                    f"({old_v / max(new_v, 1e-12):.2f}x slower, "
                    f"threshold {threshold}x)")

print(f"[run_benches] {checked} metrics checked against baselines")
if failures:
    print("[run_benches] REGRESSIONS:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("[run_benches] OK: no metric regressed beyond threshold")
EOF
