// Continuous-training demo and CI smoke: the full stream -> train ->
// shadow-gate -> promote cycle of docs/training.md, with every safety
// property checked and a non-zero exit on any violation.
//
//   1. A synthetic city is generated and a TSPN-RA base checkpoint is
//      trained (or restored). The gateway deploys it twice: "city", which
//      the trainer manages, and "frozen", an untouched control endpoint.
//   2. A LiveFeed replays fresh traffic (different behaviour seed, a few
//      never-seen POIs injected mid-stream) into the bounded CheckinStream;
//      the ContinualTrainer drains it on a background thread, training a
//      private candidate clone and checkpointing periodically.
//   3. While the trainer runs, the demo keeps probing "frozen": responses
//      on an unchanged checkpoint must stay bit-identical — the
//      zero-serving-path-interference contract.
//   4. A deliberately lobotomized candidate is pushed at the gate: it must
//      be rejected and the serving deployment must not move.
//   5. At least one real promotion must land (SwapAsync polled to kLive);
//      the previous checkpoint is retained and a rollback is exercised.
//
// Exit is non-zero on: a hung trainer thread (Finish timeout), any serving
// divergence on the control endpoint, a lobotomized candidate passing the
// gate, no promotion landing, or a failed rollback.
//
// Knobs (docs/operations.md): TSPN_TRAIN_BUFFER_CAPACITY,
// TSPN_TRAIN_CHECKPOINT_EVERY,
// TSPN_TRAIN_BATCH_SIZE, TSPN_TRAIN_LR, TSPN_TRAIN_SHADOW_WINDOW,
// TSPN_TRAIN_GATE_MIN_WINDOW, TSPN_TRAIN_GATE_EPSILON,
// TSPN_TRAIN_PROMOTE_TIMEOUT_MS, TSPN_COLDSTART_TAU_KM;
// TSPN_CHECKPOINT_DIR overrides where checkpoints live (default ".").

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "data/dataset.h"
#include "eval/model_registry.h"
#include "serve/gateway.h"
#include "train/continual_trainer.h"
#include "train/live_feed.h"

using namespace tspn;

namespace {

/// Restores `path` into a registry-built model, or trains one and saves it
/// so the next run deploys without retraining. Returns false on failure.
bool EnsureCheckpoint(const std::string& model_name,
                      std::shared_ptr<const data::CityDataset> dataset,
                      const eval::ModelOptions& options, int32_t epochs,
                      const std::string& path) {
  auto model = eval::ModelRegistry::Global().Create(model_name, dataset, options);
  if (model == nullptr) return false;
  if (model->LoadCheckpoint(path)) {
    std::printf("  checkpoint '%s' already usable\n", path.c_str());
    return true;
  }
  std::printf("  training %s (%d epoch%s) -> '%s'\n", model_name.c_str(),
              epochs, epochs == 1 ? "" : "s", path.c_str());
  eval::TrainOptions train;
  train.epochs = epochs;
  train.max_samples_per_epoch = 96;
  model->Train(train);
  model->SaveCheckpoint(path);
  return true;
}

/// A candidate with its brain removed: empty rankings, all metrics zero.
/// The gate letting this through would ship a dead model to users.
class LobotomizedModel : public eval::NextPoiModel {
 public:
  std::string name() const override { return "Lobotomy"; }
  void Train(const eval::TrainOptions&) override {}

 protected:
  eval::RecommendResponse RecommendImpl(
      const eval::RecommendRequest&) const override {
    return {};
  }
};

/// Serves `samples` through the endpoint and returns the responses.
std::vector<eval::RecommendResponse> Probe(
    serve::Gateway& gateway, const std::string& endpoint,
    const std::vector<data::SampleRef>& samples) {
  std::vector<eval::RecommendResponse> responses;
  responses.reserve(samples.size());
  for (const data::SampleRef& sample : samples) {
    eval::RecommendRequest request;
    request.sample = sample;
    request.top_n = 10;
    responses.push_back(gateway.Submit(endpoint, request).get());
  }
  return responses;
}

/// Bit-exact comparison of two probe sweeps (ids, scores, tiles).
bool Identical(const std::vector<eval::RecommendResponse>& a,
               const std::vector<eval::RecommendResponse>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].items.size() != b[i].items.size()) return false;
    for (size_t j = 0; j < a[i].items.size(); ++j) {
      if (a[i].items[j].poi_id != b[i].items[j].poi_id ||
          a[i].items[j].score != b[i].items[j].score ||
          a[i].items[j].tile_index != b[i].items[j].tile_index) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  bool ok = true;
  auto fail = [&ok](const char* what) {
    std::printf("FAIL: %s\n", what);
    ok = false;
  };

  // 1. City, base checkpoint, and a gateway serving it twice.
  data::CityProfile profile = data::CityProfile::TestTiny();
  profile.name = "ContinualSim";
  auto city = data::CityDataset::Generate(profile);

  const char* dir_env = std::getenv("TSPN_CHECKPOINT_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : ".";
  const std::string base = dir + "/training_base_v1.ckpt";
  eval::ModelOptions options;
  options.dm = 32;
  std::printf("Preparing checkpoint:\n");
  if (!EnsureCheckpoint("TSPN-RA", city, options, 2, base)) {
    std::printf("checkpoint preparation failed\n");
    return 1;
  }

  serve::Gateway gateway;
  serve::DeployConfig config;
  config.model_name = "TSPN-RA";
  config.dataset = city;
  config.checkpoint_path = base;
  config.model_options = options.ToKeyValues();
  std::string error;
  if (!gateway.Deploy("city", config, &error) ||
      !gateway.Deploy("frozen", config, &error)) {
    std::printf("deploy failed: %s\n", error.c_str());
    return 1;
  }

  // 2. Trainer over a bounded stream, wired to the "city" endpoint.
  train::TrainerOptions trainer_options = train::TrainerOptions::FromEnv();
  trainer_options.endpoint = "city";
  trainer_options.checkpoint_dir = dir;
  trainer_options.checkpoint_every = 48;
  trainer_options.gate.min_window = 16;
  trainer_options.gate.epsilon = 0.05;
  trainer_options.gate.list_length = 10;

  train::CheckinStream stream(
      common::EnvInt("TSPN_TRAIN_BUFFER_CAPACITY", 4096));
  train::ContinualTrainer trainer(city, &stream, &gateway, trainer_options);
  if (!trainer.Init(config, &error)) {
    std::printf("trainer init failed: %s\n", error.c_str());
    return 1;
  }
  gateway.AttachTrainer("city", [&trainer] { return trainer.Telemetry(); });

  // The shadow window: the prediction instances recently served (here, the
  // test split stands in for recorded live requests).
  const std::vector<data::SampleRef> window = city->Samples(data::Split::kTest);
  for (const data::SampleRef& sample : window) trainer.Observe(sample);
  std::printf("Shadow window primed with %zu served instances\n",
              window.size());

  // 3. Baseline probe on the control endpoint, then stream + train while
  // re-probing: an unchanged checkpoint must answer bit-identically no
  // matter what the trainer is doing.
  const std::vector<data::SampleRef> probe_samples(
      window.begin(), window.begin() + std::min<size_t>(window.size(), 8));
  const std::vector<eval::RecommendResponse> baseline =
      Probe(gateway, "frozen", probe_samples);

  trainer.Start();
  train::LiveFeed::Options feed_options;
  feed_options.seed = 2026;
  feed_options.checkins_per_user = 40;
  feed_options.novel_poi_count = 4;
  feed_options.novel_visit_every = 24;
  train::LiveFeed feed(city, feed_options);
  const int64_t total_events = feed.Remaining();
  std::printf("Streaming %lld fresh check-ins (4 never-seen POIs injected)\n",
              static_cast<long long>(total_events));
  int64_t probes_while_training = 0;
  while (feed.PumpInto(stream, 64) > 0) {
    if (!Identical(baseline, Probe(gateway, "frozen", probe_samples))) {
      fail("serving diverged on an unchanged checkpoint while training");
    }
    ++probes_while_training;
  }
  stream.Close();
  if (!trainer.Finish(/*timeout_ms=*/120000)) {
    fail("trainer thread hung (Finish timed out)");
    return 1;  // nothing below is meaningful with a wedged thread
  }
  if (!Identical(baseline, Probe(gateway, "frozen", probe_samples))) {
    fail("serving diverged on an unchanged checkpoint after training");
  }
  std::printf("Control endpoint stayed bit-identical across %lld mid-training "
              "probes\n",
              static_cast<long long>(probes_while_training));

  train::TrainerStats stats = trainer.Stats();
  const train::StreamStats stream_stats = stream.Stats();
  std::printf("\nTrainer: %lld events (%lld dropped by backpressure), "
              "%lld samples assembled, %lld trained, %lld cold-start visits, "
              "%lld checkpoints, gate %lld pass / %lld reject, "
              "%lld promotions\n",
              static_cast<long long>(stats.events_consumed),
              static_cast<long long>(stream_stats.dropped),
              static_cast<long long>(stats.samples_assembled),
              static_cast<long long>(stats.samples_trained),
              static_cast<long long>(stats.cold_pois_seen),
              static_cast<long long>(stats.checkpoints),
              static_cast<long long>(stats.gate_passes),
              static_cast<long long>(stats.gate_rejects),
              static_cast<long long>(stats.promotions));
  if (stats.events_consumed + stream_stats.dropped != total_events) {
    fail("stream accounting does not add up");
  }
  if (stats.samples_trained <= 0) fail("no online training happened");
  if (stats.checkpoints <= 0) fail("no candidate checkpoint was written");
  if (stats.cold_pois_seen <= 0 || trainer.priors().NumColdPois() <= 0) {
    fail("cold-start POIs never reached the priors");
  }

  // 4. The gate must block a dead candidate — and must not move serving.
  serve::EndpointStats before_lobotomy;
  gateway.GetEndpointStats("city", &before_lobotomy);
  LobotomizedModel lobotomy;
  if (trainer.GateAndMaybePromote(lobotomy, base)) {
    fail("lobotomized candidate passed the gate");
  }
  train::GateReport lobotomy_report = trainer.LastGateReport();
  std::printf("\nLobotomy probe: %s (live mrr=%.3f candidate mrr=%.3f)\n",
              lobotomy_report.reason.c_str(), lobotomy_report.live_mrr,
              lobotomy_report.candidate_mrr);
  if (lobotomy_report.live_mrr <= trainer_options.gate.epsilon) {
    fail("live model too weak for the lobotomy probe to be meaningful");
  }
  serve::EndpointStats after_lobotomy;
  gateway.GetEndpointStats("city", &after_lobotomy);
  if (after_lobotomy.swaps != before_lobotomy.swaps ||
      after_lobotomy.checkpoint_path != before_lobotomy.checkpoint_path) {
    fail("a rejected candidate still moved the serving deployment");
  }

  // 5. At least one promotion must land. If the streamed candidate already
  // promoted mid-run we are done; otherwise gate the final trained
  // candidate, and — if genuine regression rejects it — a parity candidate,
  // which passes by construction, to prove the promotion machinery.
  stats = trainer.Stats();
  if (stats.promotions == 0 && !stats.last_checkpoint.empty()) {
    auto last = eval::ModelRegistry::Global().Create("TSPN-RA", city, options);
    if (last != nullptr && last->LoadCheckpoint(stats.last_checkpoint)) {
      if (trainer.GateAndMaybePromote(*last, stats.last_checkpoint)) {
        std::printf("Promoted the final streamed candidate: %s\n",
                    stats.last_checkpoint.c_str());
      } else {
        std::printf("Final candidate rejected (%s) — gating a parity "
                    "candidate instead\n",
                    trainer.LastGateReport().reason.c_str());
      }
    }
  }
  stats = trainer.Stats();
  if (stats.promotions == 0) {
    auto parity = eval::ModelRegistry::Global().Create("TSPN-RA", city, options);
    const std::string parity_path = dir + "/training_parity.ckpt";
    if (parity == nullptr || !parity->LoadCheckpoint(stats.live_checkpoint)) {
      fail("could not rebuild a parity candidate");
    } else {
      parity->SaveCheckpoint(parity_path);
      if (!trainer.GateAndMaybePromote(*parity, parity_path)) {
        fail("parity candidate did not promote");
      }
    }
  }
  stats = trainer.Stats();
  serve::EndpointStats serving;
  gateway.GetEndpointStats("city", &serving);
  if (stats.promotions <= 0) {
    fail("no promotion landed");
  } else if (gateway.GetDeployStatus("city").state !=
                 serve::DeployState::kLive ||
             serving.checkpoint_path != stats.live_checkpoint) {
    fail("promotion did not leave the endpoint live on the new checkpoint");
  } else {
    std::printf("Promotion landed: '%s' now serves %s (%lld swap%s)\n",
                "city", serving.checkpoint_path.c_str(),
                static_cast<long long>(serving.swaps),
                serving.swaps == 1 ? "" : "s");
  }

  // 6. One-command rollback onto the retained last-good checkpoint.
  if (!trainer.Rollback(&error)) {
    fail("rollback failed");
    std::printf("  (%s)\n", error.c_str());
  } else {
    gateway.GetEndpointStats("city", &serving);
    std::printf("Rollback restored %s\n", serving.checkpoint_path.c_str());
  }

  // Telemetry rides the ordinary stats surface.
  serve::EndpointStats telemetry_stats;
  gateway.GetEndpointStats("city", &telemetry_stats);
  if (!telemetry_stats.trainer.attached ||
      telemetry_stats.trainer.events_consumed != stats.events_consumed) {
    fail("trainer telemetry missing from the gateway stats");
  } else {
    std::printf("\nTelemetry via GetEndpointStats: trainer attached, "
                "%lld events, %lld checkpoints, %lld promotions, "
                "last gate eval %.1fms\n",
                static_cast<long long>(telemetry_stats.trainer.events_consumed),
                static_cast<long long>(telemetry_stats.trainer.checkpoints),
                static_cast<long long>(telemetry_stats.trainer.promotions),
                trainer.Stats().last_gate_eval_ms);
  }

  gateway.DetachTrainer("city");
  gateway.Undeploy("city");
  gateway.Undeploy("frozen");
  std::printf("\n%s\n", ok ? "Training smoke PASSED" : "Training smoke FAILED");
  return ok ? 0 : 1;
}
