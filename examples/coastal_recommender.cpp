// Coastal recommender: the Fig. 12 scenario as a runnable application. A
// coastal state (Florida-like) is simulated; TSPN-RA and a history-aware
// baseline are trained; for a user heading to the shore we compare where
// each model sends them — then ask TSPN-RA the production-shaped version of
// the same question through the v2 API: a scored, geo-fenced query
// restricted to the stretch of coast the user is actually following.
//
//   ./build/examples/coastal_recommender

#include <algorithm>
#include <cstdio>

#include "baselines/base.h"
#include "core/tspn_ra.h"
#include "data/dataset.h"
#include "eval/recommend.h"

namespace {

using namespace tspn;

/// Fraction of recommended POIs lying in the coastal band.
double CoastalFraction(const data::CityDataset& dataset,
                       const std::vector<int64_t>& pois) {
  double band = 3.0 * dataset.layout().coast().coastal_width_deg;
  double hits = 0.0;
  for (int64_t pid : pois) {
    double d = dataset.layout().CoastDistanceDeg(dataset.poi(pid).loc);
    if (d > -band && d <= 0.0) hits += 1.0;
  }
  return pois.empty() ? 0.0 : hits / static_cast<double>(pois.size());
}

}  // namespace

int main() {
  using namespace tspn;
  // A small coastal profile (Florida-like shape at example scale).
  data::CityProfile profile = data::CityProfile::TestTiny();
  profile.name = "MiniFlorida";
  profile.coastal = true;
  profile.seed = 404;
  auto dataset = data::CityDataset::Generate(profile);
  std::printf("MiniFlorida: %lld POIs, coastline at lon ~%.3f\n",
              static_cast<long long>(dataset->pois().size()),
              dataset->layout().CoastLonAt(profile.bbox.Center().lat));

  // Find a test case whose target is coastal.
  data::SampleRef coastal_case = dataset->Samples(data::Split::kTest).front();
  for (const data::SampleRef& sample : dataset->Samples(data::Split::kTest)) {
    const data::Poi& target = dataset->poi(dataset->Target(sample).poi_id);
    double d = dataset->layout().CoastDistanceDeg(target.loc);
    if (d > -dataset->layout().coast().coastal_width_deg && d <= 0.0) {
      coastal_case = sample;
      break;
    }
  }
  const data::Poi& target = dataset->poi(dataset->Target(coastal_case).poi_id);
  std::printf("Case: user %d heading to POI#%lld (%.4f, %.4f), coastal "
              "distance %.4f deg\n\n",
              coastal_case.user, static_cast<long long>(target.id),
              target.loc.lat, target.loc.lon,
              dataset->layout().CoastDistanceDeg(target.loc));

  eval::TrainOptions options;
  options.epochs = 3;
  options.max_samples_per_epoch = 160;

  core::TspnRaConfig config;
  config.dm = 32;
  config.image_resolution = 16;
  config.top_k_tiles = profile.top_k_tiles;
  core::TspnRa tspn(dataset, config);
  tspn.Train(options);
  std::vector<int64_t> tspn_top = tspn.Recommend(coastal_case, 50);

  auto lstpm = baselines::MakeBaseline("LSTPM", dataset, 32, 7);
  lstpm->Train(options);
  std::vector<int64_t> lstpm_top = lstpm->Recommend(coastal_case, 50);

  std::printf("Top-50 recommendation spread:\n");
  std::printf("  TSPN-RA : %.0f%% of recommendations in the coastal band\n",
              100.0 * CoastalFraction(*dataset, tspn_top));
  std::printf("  LSTPM   : %.0f%% of recommendations in the coastal band\n",
              100.0 * CoastalFraction(*dataset, lstpm_top));
  bool tspn_found = std::find(tspn_top.begin(), tspn_top.end(), target.id) !=
                    tspn_top.end();
  bool lstpm_found = std::find(lstpm_top.begin(), lstpm_top.end(), target.id) !=
                     lstpm_top.end();
  std::printf("  target in top-50: TSPN-RA=%s, LSTPM=%s\n",
              tspn_found ? "yes" : "no", lstpm_found ? "yes" : "no");
  std::printf("\nThe remote-sensing-augmented tile filter biases TSPN-RA "
              "towards the shoreline the user is actually following "
              "(the paper's Fig. 12 observation).\n");

  // The v2 constrained query: scored top-5 within 4 km of the user's last
  // check-in, excluding places already visited on this trip. Constraints
  // are applied before top-k selection, so the fence still yields a full
  // list whenever enough coastal candidates exist.
  const data::Trajectory& traj = dataset->trajectory(coastal_case);
  const data::Poi& last =
      dataset->poi(traj.checkins[coastal_case.prefix_len - 1].poi_id);
  eval::RecommendRequest request;
  request.sample = coastal_case;
  request.top_n = 5;
  request.constraints.geo_center = last.loc;
  request.constraints.geo_radius_km = 4.0;
  request.constraints.exclude_visited = true;
  eval::RecommendResponse response = tspn.Recommend(request);
  std::printf("\nScored top-5 within 4 km of the last check-in (%.4f, %.4f), "
              "unvisited only — %lld tiles screened:\n",
              last.loc.lat, last.loc.lon,
              static_cast<long long>(response.tiles_screened));
  for (size_t r = 0; r < response.items.size(); ++r) {
    const eval::ScoredPoi& item = response.items[r];
    const data::Poi& poi = dataset->poi(item.poi_id);
    std::printf("  %zu. POI#%-4lld score=%+.4f tile=%-3lld  %.2f km away, "
                "coast distance %+.4f deg%s\n",
                r + 1, static_cast<long long>(poi.id), item.score,
                static_cast<long long>(item.tile_index),
                geo::HaversineKm(poi.loc, last.loc),
                dataset->layout().CoastDistanceDeg(poi.loc),
                item.poi_id == target.id ? "   <-- actual next visit" : "");
  }
  return 0;
}
