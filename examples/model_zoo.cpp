// Model zoo: train a selection of next-POI models on one synthetic city and
// print a side-by-side comparison — a miniature of the paper's Table II.
//
//   ./build/examples/model_zoo [epochs]

#include <cstdio>
#include <cstdlib>

#include "baselines/base.h"
#include "common/table_printer.h"
#include "core/tspn_ra.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace tspn;
  int32_t epochs = argc > 1 ? std::atoi(argv[1]) : 3;

  auto dataset = data::CityDataset::Generate(data::CityProfile::TestTiny());
  eval::TrainOptions options;
  options.epochs = epochs;
  options.max_samples_per_epoch = 192;

  common::TablePrinter table({"Model", "Recall@5", "Recall@10", "MRR"});
  for (const std::string& name :
       {std::string("MC"), std::string("GRU"), std::string("DeepMove"),
        std::string("Graph-Flashback")}) {
    auto model = baselines::MakeBaseline(name, dataset, 32, 7);
    model->Train(options);
    eval::RankingMetrics m =
        eval::EvaluateModel(*model, *dataset, data::Split::kTest, 120, 3);
    table.AddRow({name, common::TablePrinter::Metric(m.RecallAt(5)),
                  common::TablePrinter::Metric(m.RecallAt(10)),
                  common::TablePrinter::Metric(m.Mrr())});
  }
  core::TspnRaConfig config;
  config.dm = 32;
  config.image_resolution = 16;
  config.top_k_tiles = dataset->profile().top_k_tiles;
  core::TspnRa tspn(dataset, config);
  tspn.Train(options);
  eval::RankingMetrics m =
      eval::EvaluateModel(tspn, *dataset, data::Split::kTest, 120, 3);
  table.AddRow({"TSPN-RA", common::TablePrinter::Metric(m.RecallAt(5)),
                common::TablePrinter::Metric(m.RecallAt(10)),
                common::TablePrinter::Metric(m.Mrr())});

  std::printf("Model comparison on '%s' (%d epochs each):\n\n",
              dataset->profile().name.c_str(), epochs);
  table.Print();
  return 0;
}
