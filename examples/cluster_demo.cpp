// Sharded-cluster smoke: a ShardRouter fronting three REAL shard processes,
// one of which is SIGKILLed mid-run while client threads keep the pipeline
// full. Exits non-zero on any hung caller or unreconciled counter — this is
// the CI gate for the router tier (docs/cluster.md).
//
//   1. The parent trains (or restores) one tiny TSPN-RA checkpoint, then
//      re-execs itself three times as `--shard <ckpt> <uds_path>` — each
//      child deploys endpoint "city" behind a serve::FrameServer listening
//      on a unix-domain socket and serves until killed.
//   2. The parent waits for all three shards to answer a kPing frame, then
//      stands up a cluster::ShardRouter (replication 2, health pings on)
//      behind its own TCP FrameServer — the cluster front door.
//   3. Client threads fire pipelined request frames at the router. Mid-run
//      the parent SIGKILLs the shard that OWNS the probe user's key (it
//      predicts the owner with a HashRing mirroring the router's): that
//      keyspace fails over to replicas, the circuit breaker stops paying
//      for the corpse, and every caller still gets a reply frame — a
//      response or a typed error, never a hang.
//   4. The parent reconciles: frames sent == responses + typed errors, no
//      transport failures, a majority actually served, and a post-kill
//      probe for the dead shard's own key answered via failover. Any miss
//      exits 1.
//
//   ./build/cluster_demo
//
// Knobs (docs/operations.md): TSPN_CLUSTER_* for the router tier;
// TSPN_CHECKPOINT_DIR overrides where the demo checkpoint lives
// (default ".").

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "data/dataset.h"
#include "eval/model_registry.h"
#include "serve/cluster/shard_router.h"
#include "serve/codec.h"
#include "serve/frame_client.h"
#include "serve/frame_server.h"
#include "serve/gateway.h"

using namespace tspn;

namespace {

eval::ModelOptions TinyOptions() {
  eval::ModelOptions options;
  options.dm = 16;
  options.seed = 3;
  options.image_resolution = 16;
  return options;
}

std::shared_ptr<const data::CityDataset> DemoDataset() {
  // Deterministic: every shard regenerates the identical city, so any
  // replica serves bit-identical responses for the same frame.
  return data::CityDataset::Generate(data::CityProfile::TestTiny());
}

serve::DeployConfig ShardConfigFor(
    std::shared_ptr<const data::CityDataset> dataset,
    const std::string& checkpoint) {
  serve::DeployConfig config;
  config.model_name = "TSPN-RA";
  config.dataset = std::move(dataset);
  config.checkpoint_path = checkpoint;
  config.model_options = TinyOptions().ToKeyValues();
  config.engine_options.num_threads = 2;
  config.engine_options.max_queue_depth = 256;
  config.engine_options.coalesce_window_us = 100;
  return config;
}

/// Child mode: one shard process. Deploys the checkpoint behind a
/// unix-domain FrameServer and serves until the parent kills it.
int RunShard(const std::string& checkpoint, const std::string& uds_path) {
  serve::Gateway gateway;
  if (!gateway.Deploy("city", ShardConfigFor(DemoDataset(), checkpoint))) {
    std::fprintf(stderr, "shard: deploy failed\n");
    return 1;
  }
  serve::FrameServerOptions options;
  options.io_threads = 1;
  options.unix_path = uds_path;
  serve::FrameServer server(gateway, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "shard: listen on %s failed: %s\n", uds_path.c_str(),
                 error.c_str());
    return 1;
  }
  for (;;) pause();  // serve until SIGKILL/SIGTERM
}

bool EnsureCheckpoint(const std::string& path) {
  auto dataset = DemoDataset();
  auto model =
      eval::ModelRegistry::Global().Create("TSPN-RA", dataset, TinyOptions());
  if (model == nullptr) return false;
  if (model->LoadCheckpoint(path)) return true;
  std::printf("training TSPN-RA -> '%s'\n", path.c_str());
  eval::TrainOptions train;
  train.epochs = 1;
  train.max_samples_per_epoch = 24;
  model->Train(train);
  model->SaveCheckpoint(path);
  return true;
}

/// Polls a shard's socket until it answers a ping (or the deadline passes).
bool AwaitShardReady(const std::string& uds_path, int64_t deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    serve::FrameClient client;
    if (client.Connect(common::SocketAddress::Unix(uds_path))) {
      client.set_recv_timeout_ms(1000);
      std::vector<uint8_t> reply;
      uint64_t nonce = 0;
      if (client.SendFrame(serve::EncodePingFrame(1)) &&
          client.RecvFrame(&reply) &&
          serve::DecodePongFrame(reply, &nonce) == serve::DecodeStatus::kOk) {
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--shard") == 0) {
    return RunShard(argv[2], argv[3]);
  }

  const char* dir_env = std::getenv("TSPN_CHECKPOINT_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : ".";
  const std::string checkpoint = dir + "/cluster_demo_tspn.ckpt";
  if (!EnsureCheckpoint(checkpoint)) {
    std::fprintf(stderr, "checkpoint preparation failed\n");
    return 1;
  }

  // --- Spawn three shard processes -----------------------------------------
  constexpr int kShards = 3;
  std::vector<std::string> uds_paths;
  std::vector<pid_t> pids;
  for (int i = 0; i < kShards; ++i) {
    const std::string path =
        dir + "/cluster_demo_shard" + std::to_string(i) + ".sock";
    ::unlink(path.c_str());
    uds_paths.push_back(path);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(argv[0], argv[0], "--shard", checkpoint.c_str(), path.c_str(),
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "execl failed\n");
      _exit(127);
    }
    if (pid < 0) {
      std::fprintf(stderr, "fork failed\n");
      return 1;
    }
    pids.push_back(pid);
  }
  auto kill_all = [&pids] {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    for (pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  };

  for (int i = 0; i < kShards; ++i) {
    if (!AwaitShardReady(uds_paths[i], 30000)) {
      std::fprintf(stderr, "shard %d never became ready\n", i);
      kill_all();
      return 1;
    }
    std::printf("shard %d ready on %s\n", i, uds_paths[i].c_str());
  }

  // --- Router tier ----------------------------------------------------------
  serve::cluster::RouterOptions router_options =
      serve::cluster::RouterOptions::FromEnv();
  router_options.shards.clear();
  for (int i = 0; i < kShards; ++i) {
    router_options.shards.push_back(serve::cluster::ShardConfig{
        "shard" + std::to_string(i),
        common::SocketAddress::Unix(uds_paths[i])});
  }
  router_options.replication = 2;
  router_options.ping_interval_ms = 100;
  router_options.call_timeout_ms = 10000;
  router_options.breaker.failure_threshold = 2;
  router_options.breaker.open_cooldown_ms = 200;
  serve::cluster::ShardRouter router(router_options);
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "router start failed: %s\n", error.c_str());
    kill_all();
    return 1;
  }
  serve::FrameServerOptions front_options;
  front_options.io_threads = 2;
  serve::FrameServer front(router, front_options);
  if (!front.Start(&error)) {
    std::fprintf(stderr, "router front-end failed: %s\n", error.c_str());
    kill_all();
    return 1;
  }
  std::printf("router serving %d shards on port %u (replication 2)\n",
              kShards, front.port());

  // --- Pipelined traffic with a mid-run shard kill --------------------------
  const auto samples = DemoDataset()->Samples(data::Split::kTest);
  if (samples.empty()) {
    std::fprintf(stderr, "no test samples\n");
    kill_all();
    return 1;
  }
  constexpr int kThreads = 4;
  constexpr int kBatches = 8;
  constexpr int kPipeline = 4;
  std::atomic<int64_t> responses{0};
  std::atomic<int64_t> typed_errors{0};
  std::atomic<int64_t> failures{0};

  std::vector<std::thread> callers;
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      serve::FrameClient client;
      client.set_recv_timeout_ms(20000);  // a hang, not slowness, is a bug
      if (!client.Connect(front.address())) {
        failures.fetch_add(kBatches * kPipeline);
        return;
      }
      for (int batch = 0; batch < kBatches; ++batch) {
        int sent = 0;
        for (int i = 0; i < kPipeline; ++i) {
          eval::RecommendRequest request;
          request.sample =
              samples[static_cast<size_t>(t * 131 + batch * kPipeline + i) %
                      samples.size()];
          request.top_n = 5;
          if (client.SendFrame(
                  serve::EncodeRecommendRequest("city", request))) {
            ++sent;
          } else {
            failures.fetch_add(1);
          }
        }
        for (int i = 0; i < sent; ++i) {
          const serve::FrameClient::Reply reply = client.ReceiveTyped();
          if (reply.kind == serve::FrameClient::Reply::Kind::kResponse) {
            responses.fetch_add(1);
          } else if (reply.kind ==
                     serve::FrameClient::Reply::Kind::kServerError) {
            typed_errors.fetch_add(1);
          } else {
            failures.fetch_add(1);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  // Predict which shard owns the probe key with a mirror of the router's
  // ring, so the kill deterministically orphans live keyspace.
  serve::cluster::HashRing mirror(router_options.virtual_nodes);
  for (const auto& shard : router_options.shards) mirror.AddShard(shard.id);
  const std::string probe_key =
      serve::cluster::RoutingKey("city", samples[0].user);
  const std::string victim_id = mirror.ShardsFor(probe_key, 1)[0];
  int victim = 0;
  for (int i = 0; i < kShards; ++i) {
    if (router_options.shards[static_cast<size_t>(i)].id == victim_id) {
      victim = i;
    }
  }

  // Kill once the pipeline is demonstrably mid-flight (a quarter of the
  // traffic answered, more still queued behind it).
  const int64_t total = static_cast<int64_t>(kThreads) * kBatches * kPipeline;
  while (responses.load() + typed_errors.load() + failures.load() < total / 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::printf("SIGKILL %s (pid %d) mid-run — it owns key '%s'\n",
              victim_id.c_str(), pids[victim], probe_key.c_str());
  ::kill(pids[victim], SIGKILL);
  ::waitpid(pids[victim], nullptr, 0);
  pids[victim] = -1;

  for (std::thread& caller : callers) caller.join();

  // The dead shard's own keyspace must still be served, via its replica.
  bool probe_ok = false;
  {
    serve::FrameClient probe;
    probe.set_recv_timeout_ms(20000);
    if (probe.Connect(front.address())) {
      eval::RecommendRequest request;
      request.sample = samples[0];
      request.top_n = 5;
      const serve::FrameClient::Reply reply =
          probe.CallTyped(serve::EncodeRecommendRequest("city", request));
      probe_ok = reply.kind == serve::FrameClient::Reply::Kind::kResponse;
    }
  }

  const serve::cluster::ClusterStats stats = router.Snapshot();
  std::printf(
      "\nsent %d  responses %lld  typed-errors %lld  transport-failures %lld\n",
      kThreads * kBatches * kPipeline,
      static_cast<long long>(responses.load()),
      static_cast<long long>(typed_errors.load()),
      static_cast<long long>(failures.load()));
  std::printf("router: routed %lld  failovers %lld  shard-unavailable %lld\n",
              static_cast<long long>(stats.frames_routed),
              static_cast<long long>(stats.failovers),
              static_cast<long long>(stats.shard_unavailable));
  for (const serve::cluster::ShardHealth& shard : stats.shards) {
    std::printf("  %s %s breaker=%s ok=%lld failed=%lld pings=%lld/%lld\n",
                shard.id.c_str(), shard.address.c_str(),
                serve::cluster::CircuitBreaker::StateName(shard.breaker),
                static_cast<long long>(shard.requests_ok),
                static_cast<long long>(shard.requests_failed),
                static_cast<long long>(shard.pings_ok),
                static_cast<long long>(shard.pings_ok + shard.pings_failed));
  }

  front.Stop();
  router.Stop();
  kill_all();
  for (const std::string& path : uds_paths) ::unlink(path.c_str());

  // --- The gate -------------------------------------------------------------
  const int64_t expected = total;
  if (!probe_ok) {
    std::fprintf(stderr,
                 "FAIL: dead shard's keyspace not served via failover\n");
    return 1;
  }
  if (stats.failovers < 1) {
    std::fprintf(stderr, "FAIL: no failover recorded after the kill\n");
    return 1;
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %lld transport failures / hung callers\n",
                 static_cast<long long>(failures.load()));
    return 1;
  }
  if (responses.load() + typed_errors.load() != expected) {
    std::fprintf(stderr, "FAIL: replies do not reconcile with frames sent\n");
    return 1;
  }
  if (responses.load() <= expected / 2) {
    std::fprintf(stderr,
                 "FAIL: replication 2 should mask a single shard death\n");
    return 1;
  }
  std::printf("\ncluster demo OK: shard death masked, every caller answered\n");
  return 0;
}
