// City explorer: inspect the spatial substrates the model is built on —
// quad-tree tiles, road-induced tile adjacency, synthesized satellite
// imagery (written as PPM files) and a user's QR-P graph.
//
//   ./build/examples/city_explorer [output_dir]

#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "graph/qrp_graph.h"
#include "rs/synthesizer.h"

int main(int argc, char** argv) {
  using namespace tspn;
  std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  auto dataset = data::CityDataset::Generate(data::CityProfile::TestTiny());
  const spatial::QuadTree& tree = dataset->quadtree();

  // --- Quad-tree structure ----------------------------------------------------
  std::printf("Quad-tree: %lld nodes, %lld leaves, max depth %d, leaf capacity "
              "%lld\n",
              static_cast<long long>(tree.NumNodes()),
              static_cast<long long>(tree.NumTiles()),
              dataset->profile().quadtree_max_depth,
              static_cast<long long>(dataset->profile().quadtree_leaf_capacity));
  int64_t max_pois = 0, occupied = 0;
  for (int32_t leaf : tree.LeafNodes()) {
    int64_t count = static_cast<int64_t>(tree.node(leaf).point_ids.size());
    max_pois = std::max(max_pois, count);
    occupied += (count > 0);
  }
  std::printf("POIs per leaf: max %lld; %lld/%lld leaves occupied "
              "(density-adaptive partitioning)\n",
              static_cast<long long>(max_pois), static_cast<long long>(occupied),
              static_cast<long long>(tree.NumTiles()));

  // --- Road adjacency ----------------------------------------------------
  const roadnet::TileAdjacency& adjacency = dataset->leaf_adjacency();
  std::printf("Road network: %lld segments, %.1f km total; %zu road-adjacent "
              "leaf-tile pairs\n",
              static_cast<long long>(dataset->roads().NumSegments()),
              dataset->roads().TotalLengthKm(), adjacency.Pairs().size());

  // --- Remote sensing imagery ----------------------------------------------------
  rs::ImageSynthesizer synth(&dataset->layout(), &dataset->roads(),
                             {.resolution = 256});
  rs::Image overview = synth.RenderTile(dataset->profile().bbox);
  std::string overview_path = out_dir + "/city_overview.ppm";
  rs::WritePpm(overview, overview_path);
  rs::Image tile = synth.RenderTile(tree.TileBounds(0));
  std::string tile_path = out_dir + "/tile_0.ppm";
  rs::WritePpm(tile, tile_path);
  std::printf("Wrote synthetic satellite imagery: %s (whole city), %s (leaf "
              "tile 0)\n",
              overview_path.c_str(), tile_path.c_str());

  // --- QR-P graph of the busiest user ----------------------------------------
  int32_t best_user = 0;
  size_t best_trajs = 0;
  for (size_t u = 0; u < dataset->users().size(); ++u) {
    if (dataset->users()[u].trajectories.size() > best_trajs) {
      best_trajs = dataset->users()[u].trajectories.size();
      best_user = static_cast<int32_t>(u);
    }
  }
  std::vector<int64_t> history =
      dataset->HistoryPoiIds(best_user, static_cast<int32_t>(best_trajs));
  graph::QrpGraph g = graph::BuildQrpGraph(tree, adjacency, dataset->pois(),
                                           history);
  std::printf("\nQR-P graph for user %d (%zu historical check-ins):\n"
              "  %lld tile nodes + %lld POI nodes\n"
              "  %zu branch edges, %zu road edges, %zu contain edges\n",
              best_user, history.size(),
              static_cast<long long>(g.NumTileNodes()),
              static_cast<long long>(g.NumPoiNodes()), g.branch_edges.size(),
              g.road_edges.size(), g.contain_edges.size());
  std::printf("This heterogeneous graph replaces raw historical trajectories "
              "as the model's memory (Sec. II-B of the paper).\n");
  return 0;
}
